"""Legacy setup shim for offline editable installs (see pyproject.toml)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "MOCA: Memory Object Classification and Allocation in Heterogeneous "
        "Memory Systems (IPDPS 2018) — trace-driven reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
