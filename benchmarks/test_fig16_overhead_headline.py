"""Benchmarks for Fig. 16, the Sec. IV-E overhead, and the headline claims."""

from repro.experiments import fig16, headline, overhead


def test_fig16_segment_mpki(benchmark, fidelity):
    fig = benchmark(fig16.compute, fidelity)
    print("\n" + fig.render())
    for row in fig.rows:
        app, stack, code, glob, heap = row
        if heap > 20:  # memory-intensive apps
            assert max(stack, code, glob) < heap / 8, app


def test_overhead(benchmark, fidelity):
    fig = benchmark(overhead.compute, fidelity)
    print("\n" + fig.render())
    # Sanity bound only: profiling bookkeeping must stay the same order
    # of magnitude as the bare cache pass (the paper's hardware-counter
    # analogue costs 0.59%).  Wall-clock measurement is noisy when sweep
    # workers share the machine, so the bound is deliberately loose.
    for row in fig.rows:
        assert row[3] < 300.0, row


def test_headline_claims(benchmark, fidelity):
    fig = benchmark(headline.compute, fidelity)
    print("\n" + fig.render())
    measured = {r[0]: r[2] for r in fig.rows}
    # Direction must match the paper on every claim except the one
    # documented deviation (Homogen-LP's memory EDP — see
    # EXPERIMENTS.md): Table II's 6.5 mW/GB LPDDR2 standby power makes
    # Homogen-LP more memory-EDP-efficient here than the paper shows.
    deviated = "multi: mem EDP vs LP (best-case % better)"
    for claim, value in measured.items():
        if claim == deviated:
            continue
        assert value > 0, claim
    # Magnitude: the two flagship deltas land in a sane band.
    assert measured["single: mem access time vs DDR3 (avg % better)"] > 20
    assert measured["multi: mem EDP vs DDR3 (best-case % better)"] > 30
