"""Ablation benchmarks beyond the paper's figures (DESIGN.md §7).

Each ablation isolates one design choice the paper bakes in:

* FR-FCFS scheduling vs plain FCFS;
* MOCA's hot-object allocation priority (Sec. VI-B) vs naive
  instantiation order;
* the Fig. 5 thresholds vs turning classification off entirely;
* training-input profiling vs an oracle profiled on the test input.
"""

import pytest

from repro.cpu.core import InOrderWindowCore
from repro.memctrl.scheduler import fcfs_order, frfcfs_order
from repro.moca.allocation import MocaPolicy, plan_placement
from repro.moca.classify import Thresholds
from repro.moca.framework import MocaFramework
from repro.moca.profiler import profile_app
from repro.sim.config import HETER_CONFIG1, HOMOGEN_DDR3
from repro.sim.metrics import collect_metrics
from repro.sim.single import _run_single as run_single
from repro.sim.single import filtered_stream
from repro.workloads.inputs import build_app_trace


def test_ablation_frfcfs_vs_fcfs(benchmark, fidelity):
    """FR-FCFS must not lose to FCFS; it should win on row-locality-rich
    streaming traffic (that is its entire purpose)."""

    def run(scheduler):
        stream, _ = filtered_stream("lbm", "ref", fidelity.n_single)
        layout = build_app_trace("lbm", "ref", fidelity.n_single).layout
        memsys = HOMOGEN_DDR3.build()
        for group in memsys.groups:
            for ctl in group.controllers:
                ctl.scheduler = scheduler
        allocator = HOMOGEN_DDR3.make_allocator(memsys)
        from repro.moca.allocation import HomogeneousPolicy
        plan = plan_placement([stream], HomogeneousPolicy(), allocator,
                              layouts=[layout])
        core = InOrderWindowCore(stream, plan.groups[0], plan.gaddrs[0])
        res = core.run_to_completion(memsys)
        return collect_metrics("ddr3", "homogen", "lbm", [res], memsys)

    frfcfs = benchmark(run, frfcfs_order)
    fcfs = run(fcfs_order)
    print(f"\nFR-FCFS mem time: {frfcfs.mem_access_cycles}, "
          f"FCFS: {fcfs.mem_access_cycles}")
    assert frfcfs.mem_access_cycles <= fcfs.mem_access_cycles * 1.01


def test_ablation_heat_priority(benchmark, fidelity):
    """MOCA with the Sec. VI-B hot-object priority vs the same types in
    instantiation order.  Priority must not hurt, and it should help on
    mcf, whose cold setup objects are instantiated first."""

    def run(with_heat: bool):
        app = "mcf"
        stream, _ = filtered_stream(app, "ref", fidelity.n_single)
        trace = build_app_trace(app, "ref", fidelity.n_single)
        fw = MocaFramework(profile_accesses=fidelity.n_single)
        inst = fw.instrument(app)
        types = fw.runtime_types(inst, trace)
        heat = fw.runtime_heat(inst, trace) if with_heat else None
        memsys = HETER_CONFIG1.build()
        allocator = HETER_CONFIG1.make_allocator(memsys)
        policy = MocaPolicy([types], [heat] if heat else None)
        plan = plan_placement([stream], policy, allocator,
                              layouts=[trace.layout])
        core = InOrderWindowCore(stream, plan.groups[0], plan.gaddrs[0])
        res = core.run_to_completion(memsys)
        return collect_metrics("c1", "moca", app, [res], memsys)

    with_heat = benchmark(run, True)
    without = run(False)
    print(f"\nwith heat priority: {with_heat.mem_access_cycles}, "
          f"without: {without.mem_access_cycles}")
    assert with_heat.mem_access_cycles <= without.mem_access_cycles * 1.02


def test_ablation_classification_off(benchmark, fidelity):
    """Thr_Lat = inf sends everything to LPDDR: classification earns its
    keep when MOCA-with-paper-thresholds is much faster."""
    paper = benchmark(
        run_single, "mcf", HETER_CONFIG1, "moca",
        n_accesses=fidelity.n_single)
    off = run_single("mcf", HETER_CONFIG1, "moca",
                     n_accesses=fidelity.n_single,
                     thresholds=Thresholds(thr_lat=1e9, thr_bw=20.0))
    print(f"\npaper thresholds: {paper.mem_access_cycles}, "
          f"classification off: {off.mem_access_cycles}")
    assert paper.mem_access_cycles < off.mem_access_cycles * 0.8


def test_ablation_stride_prefetcher(benchmark, fidelity):
    """Paper extension: Table I's core has no prefetcher.  In this model
    the MSHR-window episodes already hide most streaming latency (that
    is exactly why streaming objects classify B), so a stride prefetcher
    shows up as demand-miss *coverage*, not extra throughput: it must
    absorb most of lbm's stream misses, leave chase-bound mcf untouched,
    and never change execution time materially on either."""
    from repro.cpu.hierarchy import CacheHierarchy
    from repro.cpu.prefetch import StridePrefetcher
    from repro.moca.allocation import HomogeneousPolicy

    def run(app, with_pf: bool):
        trace = build_app_trace(app, "ref", fidelity.n_single)
        pf = StridePrefetcher(degree=2) if with_pf else None
        stream, _ = CacheHierarchy(prefetcher=pf).filter_trace(trace)
        memsys = HOMOGEN_DDR3.build()
        allocator = HOMOGEN_DDR3.make_allocator(memsys)
        plan = plan_placement([stream], HomogeneousPolicy(), allocator,
                              layouts=[trace.layout])
        core = InOrderWindowCore(stream, plan.groups[0], plan.gaddrs[0])
        return core.run_to_completion(memsys)

    lbm_pf = benchmark(run, "lbm", True)
    lbm_plain = run("lbm", False)
    mcf_pf = run("mcf", True)
    mcf_plain = run("mcf", False)
    print(f"\nlbm: plain cycles={lbm_plain.cycles} loads={lbm_plain.n_load_misses}"
          f" | pf cycles={lbm_pf.cycles} loads={lbm_pf.n_load_misses}"
          f" prefetches={lbm_pf.n_prefetches}")
    # Coverage: most streaming demand loads become background fills.
    assert lbm_pf.n_load_misses < lbm_plain.n_load_misses * 0.4
    assert lbm_pf.n_prefetches > 0
    # Chase misses are unpredictable: mcf barely prefetches.
    assert mcf_pf.n_prefetches < mcf_plain.n_demand * 0.1
    # Prefetching may speed streams up (it does, ~20% on lbm at default
    # fidelity) but must never materially slow either app down.
    assert lbm_pf.cycles < lbm_plain.cycles * 1.1
    assert mcf_pf.cycles < mcf_plain.cycles * 1.1


def test_ablation_training_vs_oracle(benchmark, fidelity):
    """Profiling on the training input must be nearly as good as an
    oracle profiled on the reference input itself — the premise that
    behaviour is input-stable (paper Sec. III)."""

    def run(profile_input: str):
        app = "disparity"
        stream, _ = filtered_stream(app, "ref", fidelity.n_single)
        trace = build_app_trace(app, "ref", fidelity.n_single)
        fw = MocaFramework(profile_input=profile_input,
                           profile_accesses=fidelity.n_single)
        inst = fw.instrument(app)
        policy = MocaPolicy([fw.runtime_types(inst, trace)],
                            [fw.runtime_heat(inst, trace)])
        memsys = HETER_CONFIG1.build()
        allocator = HETER_CONFIG1.make_allocator(memsys)
        plan = plan_placement([stream], policy, allocator,
                              layouts=[trace.layout])
        core = InOrderWindowCore(stream, plan.groups[0], plan.gaddrs[0])
        res = core.run_to_completion(memsys)
        return collect_metrics("c1", "moca", app, [res], memsys)

    trained = benchmark(run, "train")
    oracle = run("ref")
    print(f"\ntrain-profiled: {trained.mem_access_cycles}, "
          f"oracle: {oracle.mem_access_cycles}")
    assert trained.mem_access_cycles <= oracle.mem_access_cycles * 1.10
