"""Campaign data-plane benchmark: warm-store throughput vs cold start.

Runs one small-but-real sweep (two workloads, two systems each) through
``engine.execute`` twice against the same miss-stream store:

* **cold** — empty store: every stream is trace-built and cache-filtered
  before any unit simulates;
* **warm** — the store holds the ``.npy`` column files: streams come
  back as zero-copy mmaps and the campaign is pure simulation.

The in-process ``filtered_stream`` memo is cleared between passes, so
the warm pass measures the persistent data plane, not a Python dict.
Rows must be identical across passes (cheap smoke on the store's
bit-identity contract), warm must not be slower than cold, and the warm
units/sec throughput must clear the committed
``campaign_baseline.json`` floor (generous 4x slack — absolute
throughput varies across machines far more than the self-relative
speedups the other benchmarks gate on).  Measurements land in
``BENCH_campaign.json`` for CI to archive and ``bench-report
--record-hotpath`` to ingest.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_campaign.py \
        -p no:hypothesispytest
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.experiments import engine
from repro.sim import stream_store
from repro.sim.single import filtered_stream
from repro.sim.spec import RunSpec

HERE = Path(__file__).parent
BASELINE_PATH = HERE / "campaign_baseline.json"
RESULT_PATH = HERE / "BENCH_campaign.json"

N_ACCESSES = 40_000
SPECS = [RunSpec(app, cfg, pol, N_ACCESSES)
         for app in ("mcf", "milc")
         for cfg, pol in (("Homogen-DDR3", "homogen"),
                          ("Heter-config1", "moca"))]
WARM_REPEATS = 3  # best-of, to shrug off scheduler noise

#: Absolute units/sec only transfers loosely across machines; mirror
#: repro.obs.bench.CAMPAIGN_SLACK.
SLACK = 0.25

#: Environment this benchmark pins so CI job settings (workers, caches,
#: telemetry) cannot skew the measurement.
_FORCED = {
    "REPRO_WORKERS": "1",
    "REPRO_TELEMETRY": None,
    "REPRO_PROFILE": None,
    "REPRO_CACHE_DIR": None,
    "REPRO_BATCH_UNITS": None,
    "REPRO_STREAM_STORE_DIR": None,
    "REPRO_STREAM_REFRESH": None,
}


def _strip_meta(metrics) -> dict:
    doc = metrics.to_dict()
    doc.pop("meta", None)  # provenance timestamps, not result identity
    return doc


def test_campaign_throughput_holds():
    saved = {name: os.environ.get(name) for name in _FORCED}
    for name, value in _FORCED.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
    engine.reset()
    try:
        with tempfile.TemporaryDirectory() as td:
            store_dir = Path(td) / "streams"

            def one_pass():
                filtered_stream.cache_clear()
                stream_store.configure(store_dir)  # fresh per-pass stats
                t0 = time.perf_counter()
                rows = engine.execute(SPECS)
                return time.perf_counter() - t0, rows

            cold_s, cold_rows = one_pass()
            warm_s = float("inf")
            for _ in range(WARM_REPEATS):
                dt, warm_rows = one_pass()
                warm_s = min(warm_s, dt)
                stats = stream_store.stats_dict()
                assert stats["hits"] > 0 and stats["misses"] == 0, stats

            assert [_strip_meta(a) for a in cold_rows] == \
                [_strip_meta(b) for b in warm_rows]

            speedup = cold_s / warm_s
            doc = {
                "units": len(SPECS),
                "n_accesses": N_ACCESSES,
                "warm_repeats": WARM_REPEATS,
                "cold_seconds": round(cold_s, 4),
                "warm_seconds": round(warm_s, 4),
                "units_per_sec": round(len(SPECS) / warm_s, 4),
                "speedup": round(speedup, 2),
                "copies_avoided": stats["hits"],
            }
            RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
            print(f"\ncampaign: cold {cold_s:.2f}s, warm {warm_s:.2f}s, "
                  f"{doc['units_per_sec']} units/s "
                  f"(speedup {doc['speedup']}x)")

            # Warm must never be slower than cold: the store read path
            # (mmap + meta stat) costs less than trace-build + filter.
            assert speedup >= 1.0, doc

            baseline = json.loads(BASELINE_PATH.read_text())
            floor = SLACK * baseline["units_per_sec"]
            assert doc["units_per_sec"] >= floor, (
                f"campaign throughput regressed: measured "
                f"{doc['units_per_sec']} units/s, floor {floor:.2f} "
                f"(baseline {baseline['units_per_sec']} at {SLACK:g}x "
                f"slack); see {RESULT_PATH}")
    finally:
        engine.reset()
        filtered_stream.cache_clear()
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
