"""Benchmark-harness configuration.

Each benchmark regenerates one paper table/figure at the chosen fidelity
(``REPRO_FIDELITY`` env var: tiny | default | full) and asserts the
figure's qualitative shape.  The underlying sweeps are memoized, so the
first benchmark touching a sweep pays the simulation cost and the rest
re-read it — exactly how the figures share runs in the paper.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import FIDELITIES


@pytest.fixture(scope="session")
def fidelity():
    name = os.environ.get("REPRO_FIDELITY", "default")
    if name not in FIDELITIES:
        raise ValueError(
            f"REPRO_FIDELITY must be one of {sorted(FIDELITIES)}")
    return FIDELITIES[name]
