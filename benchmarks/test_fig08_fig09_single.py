"""Benchmarks regenerating the single-core evaluation (Figs. 8 and 9)."""

from repro.experiments import fig08, fig09


def test_fig08_memory_access_time(benchmark, fidelity):
    fig = benchmark(fig08.compute, fidelity)
    print("\n" + fig.render())
    gm = fig.row("geomean")
    cols = {c: gm[i] for i, c in enumerate(fig.columns)}
    # Shape: RL fastest, LP slowest, HBM at or under DDR3, MOCA well
    # under DDR3 and at or under Heter-App on average.
    assert cols["Homogen-RL"] == min(v for k, v in cols.items() if k != "app")
    assert cols["Homogen-LP"] == max(v for k, v in cols.items() if k != "app")
    assert cols["Homogen-HBM"] <= 1.02
    assert cols["MOCA"] < 0.8           # paper: ~0.49
    assert cols["MOCA"] <= cols["Heter-App"]


def test_fig09_memory_edp(benchmark, fidelity):
    fig = benchmark(fig09.compute, fidelity)
    print("\n" + fig.render())
    gm = fig.row("geomean")
    cols = {c: gm[i] for i, c in enumerate(fig.columns)}
    # Shape: every heterogeneous option beats DDR3; MOCA beats Heter-App;
    # RL is the least efficient of the fast systems.
    assert cols["MOCA"] < 1.0
    assert cols["MOCA"] < cols["Heter-App"]
    assert cols["Homogen-RL"] > cols["Homogen-HBM"]
    assert cols["Homogen-RL"] > cols["MOCA"]
