"""Benchmarks for the beyond-the-paper experiments (devices, taillat)."""

from repro.experiments import devices, taillat


def test_devices_characterization(benchmark):
    fig = benchmark(devices.compute)
    print("\n" + fig.render())
    by_dev = {r[0]: r for r in fig.rows}
    cols = fig.columns
    conflict = cols.index("conflict_ns")
    stream = cols.index("stream_gbps")
    # Sec. II character: RLDRAM latency leader, HBM bandwidth leader,
    # LPDDR2 laggard on both.
    assert by_dev["RLDRAM3"][conflict] == min(r[conflict] for r in fig.rows)
    assert by_dev["HBM"][stream] == max(r[stream] for r in fig.rows)
    assert by_dev["LPDDR2"][stream] == min(r[stream] for r in fig.rows)


def test_taillat_percentiles(benchmark, fidelity):
    fig = benchmark(taillat.compute, fidelity)
    print("\n" + fig.render())
    cols = fig.columns
    for row in fig.rows:
        app = row[0]
        # RL's p99 is the shortest tail everywhere.
        rl_p99 = row[cols.index("RL_p99")]
        for label in ("DDR3", "Heter-App", "MOCA"):
            assert rl_p99 <= row[cols.index(f"{label}_p99")], (app, label)
    # MOCA matches RL's p50 bucket for the chase-dominated apps.
    for app in ("mcf", "disparity"):
        row = fig.row(app)
        assert row[cols.index("MOCA_p50")] <= row[cols.index("DDR3_p50")]


def test_obs_disabled_overhead():
    """Disabled observability must cost < 5% of a TINY run's wall-time.

    The registry's hot-path hooks are single ``if OBS.enabled`` guards
    (plus a no-op span handout).  Estimate their disabled-mode cost as
    (number of guard sites a TINY run actually hits) x (measured cost of
    one disabled registry call), and require that to be under 5% of the
    run's wall-time.
    """
    import time
    from timeit import timeit

    from repro.experiments.runner import TINY
    from repro.obs.registry import OBS
    from repro.sim.config import HOMOGEN_DDR3
    from repro.sim.single import _run_single as run_single

    assert not OBS.enabled
    n = TINY.n_single
    run_single("mcf", HOMOGEN_DDR3, "homogen", n_accesses=n)  # warm caches
    t0 = time.perf_counter()
    run_single("mcf", HOMOGEN_DDR3, "homogen", n_accesses=n)
    run_wall = time.perf_counter() - t0

    OBS.reset().enable()
    try:
        run_single("mcf", HOMOGEN_DDR3, "homogen", n_accesses=n)
        # Each enabled-mode registry touch corresponds to one disabled
        # guard evaluation: two per memory batch (controller + system),
        # one per page placement, one per span/instant event, plus a
        # small constant for the per-run publish/meta hooks.
        batches = OBS.counters.get("memsys.batches", 0)
        placements = sum(v for k, v in OBS.counters.items()
                         if k.startswith("alloc.placed."))
        n_sites = 2 * batches + placements + len(OBS.events) + 16
    finally:
        OBS.reset().disable()

    per_op = timeit(lambda: OBS.add("x", 1), number=100_000) / 100_000
    estimated = n_sites * per_op / run_wall
    print(f"\nobs disabled overhead: {n_sites} sites x {per_op * 1e9:.0f}ns"
          f" / {run_wall:.3f}s = {estimated:.4%}")
    assert estimated < 0.05, (n_sites, per_op, run_wall, estimated)
