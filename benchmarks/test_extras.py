"""Benchmarks for the beyond-the-paper experiments (devices, taillat)."""

from repro.experiments import devices, taillat


def test_devices_characterization(benchmark):
    fig = benchmark(devices.compute)
    print("\n" + fig.render())
    by_dev = {r[0]: r for r in fig.rows}
    cols = fig.columns
    conflict = cols.index("conflict_ns")
    stream = cols.index("stream_gbps")
    # Sec. II character: RLDRAM latency leader, HBM bandwidth leader,
    # LPDDR2 laggard on both.
    assert by_dev["RLDRAM3"][conflict] == min(r[conflict] for r in fig.rows)
    assert by_dev["HBM"][stream] == max(r[stream] for r in fig.rows)
    assert by_dev["LPDDR2"][stream] == min(r[stream] for r in fig.rows)


def test_taillat_percentiles(benchmark, fidelity):
    fig = benchmark(taillat.compute, fidelity)
    print("\n" + fig.render())
    cols = fig.columns
    for row in fig.rows:
        app = row[0]
        # RL's p99 is the shortest tail everywhere.
        rl_p99 = row[cols.index("RL_p99")]
        for label in ("DDR3", "Heter-App", "MOCA"):
            assert rl_p99 <= row[cols.index(f"{label}_p99")], (app, label)
    # MOCA matches RL's p50 bucket for the chase-dominated apps.
    for app in ("mcf", "disparity"):
        row = fig.row(app)
        assert row[cols.index("MOCA_p50")] <= row[cols.index("DDR3_p50")]
