"""Hot-loop benchmarks: kernelized fast paths vs reference loops.

Times the two per-access Python loops that PRs 4 and 5 kernelized —
the memory-side replay and the cache-filter front end — on both engines
and asserts each kernel keeps its advantage:

* results must be bit-identical (cheap smoke on top of the exhaustive
  ``tests/test_parity.py`` / ``tests/test_filter_parity.py``);
* the speedup must not regress more than 15% against the committed
  baselines in ``hotpath_baseline.json`` / ``filter_baseline.json``
  (and never below the floors the fast paths were built to clear:
  5x for replay, 4x for filtering).

The timed region covers ``InOrderWindowCore`` construction *plus* the
full replay — episode segmentation happens at construction on the fast
path, so excluding it would flatter the kernel.  Speedup (a ratio on the
same machine) is compared rather than absolute records/sec, which vary
across CI runners.  Measurements land in ``BENCH_hotpath.json`` next to
this file for the CI job to archive.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_hotpath.py \
        -p no:hypothesispytest

The hypothesis pytest plugin is disabled because merely loading it slows
the vectorized replay ~20% (its coverage instrumentation hooks the whole
process), which would poison the speedup measurement.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.cpu.core import InOrderWindowCore
from repro.cpu.hierarchy import CacheHierarchy
from repro.moca.allocation import HomogeneousPolicy, plan_placement
from repro.sim.config import ALL_SYSTEMS
from repro.sim.single import filtered_stream
from repro.trace.builder import TraceBuilder
from repro.util.rng import stream
from repro.workloads.inputs import REF, build_app_trace
from repro.workloads.spec import app

HERE = Path(__file__).parent
BASELINE_PATH = HERE / "hotpath_baseline.json"
RESULT_PATH = HERE / "BENCH_hotpath.json"
FILTER_BASELINE_PATH = HERE / "filter_baseline.json"
FILTER_RESULT_PATH = HERE / "BENCH_filter.json"
SYNTHESIS_BASELINE_PATH = HERE / "synthesis_baseline.json"
SYNTHESIS_RESULT_PATH = HERE / "BENCH_synthesis.json"

APP = "mcf"
CONFIG = "Heter-config1"
N_ACCESSES = 120_000
REPEATS = 3  # best-of, to shrug off scheduler noise


def _replay_once(fast: bool):
    """One full replay; returns (seconds, CoreResult, n_records).

    System build and placement run outside the timed region — they are
    identical on both paths and not what this benchmark measures.
    """
    stream, _ = filtered_stream(APP, REF, N_ACCESSES)
    layout = build_app_trace(APP, REF, N_ACCESSES).layout
    config = ALL_SYSTEMS[CONFIG]
    memsys = config.build()
    allocator = config.make_allocator(memsys)
    plan = plan_placement([stream], HomogeneousPolicy(), allocator,
                          layouts=[layout])
    t0 = time.perf_counter()
    core = InOrderWindowCore(stream, plan.groups[0], plan.gaddrs[0],
                             fast_path=fast)
    result = core.run_to_completion(memsys)
    return time.perf_counter() - t0, result, len(stream)


def test_hotpath_speedup_holds():
    best: dict[bool, float] = {}
    results: dict[bool, dict] = {}
    n_records = 0
    for fast in (True, False):
        times = []
        for _ in range(REPEATS):
            dt, result, n_records = _replay_once(fast)
            times.append(dt)
        best[fast] = min(times)
        results[fast] = result.to_dict()

    # The benchmark is only meaningful if both engines agree.
    assert results[True] == results[False]

    speedup = best[False] / best[True]
    doc = {
        "workload": APP,
        "config": CONFIG,
        "n_accesses": N_ACCESSES,
        "n_records": n_records,
        "repeats": REPEATS,
        "ref_seconds": round(best[False], 4),
        "fast_seconds": round(best[True], 4),
        "ref_records_per_sec": round(n_records / best[False]),
        "fast_records_per_sec": round(n_records / best[True]),
        "speedup": round(speedup, 2),
    }
    RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nhotpath: ref {doc['ref_records_per_sec']} rec/s, "
          f"fast {doc['fast_records_per_sec']} rec/s, "
          f"speedup {doc['speedup']}x")

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = max(5.0, 0.85 * baseline["speedup"])
    assert speedup >= floor, (
        f"fast-path speedup regressed: measured {speedup:.2f}x, "
        f"floor {floor:.2f}x (baseline {baseline['speedup']}x - 15%); "
        f"see {RESULT_PATH}")


def test_filter_speedup_holds():
    """Cache-filter kernel vs reference loop at default fidelity."""
    trace = build_app_trace(APP, REF, N_ACCESSES)
    best: dict[bool, float] = {}
    streams: dict[bool, tuple] = {}
    for fast in (True, False):
        times = []
        for _ in range(REPEATS):
            hierarchy = CacheHierarchy()
            t0 = time.perf_counter()
            result = hierarchy.filter_trace(trace, fast_path=fast)
            times.append(time.perf_counter() - t0)
        best[fast] = min(times)
        streams[fast] = result

    # Identity smoke (the exhaustive check lives in test_filter_parity).
    s_k, c_k = streams[True]
    s_r, c_r = streams[False]
    for name in ("inst", "vline", "obj_id", "dep", "kind"):
        assert np.array_equal(getattr(s_k, name), getattr(s_r, name)), name
    assert c_k == c_r

    speedup = best[False] / best[True]
    doc = {
        "workload": APP,
        "n_accesses": N_ACCESSES,
        "n_records": len(s_k),
        "repeats": REPEATS,
        "ref_seconds": round(best[False], 4),
        "fast_seconds": round(best[True], 4),
        "ref_accesses_per_sec": round(N_ACCESSES / best[False]),
        "fast_accesses_per_sec": round(N_ACCESSES / best[True]),
        "speedup": round(speedup, 2),
    }
    FILTER_RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nfilter: ref {doc['ref_accesses_per_sec']} acc/s, "
          f"fast {doc['fast_accesses_per_sec']} acc/s, "
          f"speedup {doc['speedup']}x")

    baseline = json.loads(FILTER_BASELINE_PATH.read_text())
    floor = max(4.0, 0.85 * baseline["speedup"])
    assert speedup >= floor, (
        f"filter-kernel speedup regressed: measured {speedup:.2f}x, "
        f"floor {floor:.2f}x (baseline {baseline['speedup']}x - 15%); "
        f"see {FILTER_RESULT_PATH}")


SYN_APP = "sift"  # loudest win of the 10 stock apps; all are >= 1x
SYN_ACCESSES = 1_000_000


def test_synthesis_speedup_holds():
    """Trace-synthesis kernel vs reference chunk loop at paper scale.

    1M accesses is where the chunk loop's per-burst Python overhead
    dominates (the scale ``benchmarks/trace_scale.py`` runs at); the
    gate app is the stock behaviour mix with the highest measured gain,
    so a regression here flags kernel rot before the quieter apps feel
    it.
    """
    behaviors = list(app(SYN_APP).behaviors)
    best: dict[bool, float] = {}
    traces: dict[bool, object] = {}
    for fast in (True, False):
        times = []
        for _ in range(REPEATS):
            builder = TraceBuilder(behaviors)
            rng = stream("bench-synthesis", SYN_APP, SYN_ACCESSES)
            t0 = time.perf_counter()
            trace = builder.build(SYN_ACCESSES, rng, fast_path=fast)
            times.append(time.perf_counter() - t0)
        best[fast] = min(times)
        traces[fast] = trace

    # Identity smoke (the exhaustive check lives in test_trace_parity).
    t_k, t_r = traces[True], traces[False]
    for name in ("inst", "vaddr", "is_write", "obj_id", "dep"):
        assert np.array_equal(getattr(t_k, name), getattr(t_r, name)), name
    assert t_k.total_instructions == t_r.total_instructions

    speedup = best[False] / best[True]
    doc = {
        "workload": SYN_APP,
        "n_accesses": SYN_ACCESSES,
        "repeats": REPEATS,
        "ref_seconds": round(best[False], 4),
        "fast_seconds": round(best[True], 4),
        "ref_accesses_per_sec": round(SYN_ACCESSES / best[False]),
        "fast_accesses_per_sec": round(SYN_ACCESSES / best[True]),
        "speedup": round(speedup, 2),
    }
    SYNTHESIS_RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nsynthesis: ref {doc['ref_accesses_per_sec']} acc/s, "
          f"fast {doc['fast_accesses_per_sec']} acc/s, "
          f"speedup {doc['speedup']}x")

    baseline = json.loads(SYNTHESIS_BASELINE_PATH.read_text())
    floor = max(4.0, 0.85 * baseline["speedup"])
    assert speedup >= floor, (
        f"synthesis-kernel speedup regressed: measured {speedup:.2f}x, "
        f"floor {floor:.2f}x (baseline {baseline['speedup']}x - 15%); "
        f"see {SYNTHESIS_RESULT_PATH}")
