"""Scale proof: a 10M-access trace, generated and filtered in bounded RSS.

Monolithic traces hold five full-length columns (~22 bytes/access, plus
build and filter intermediates), so 10M accesses costs hundreds of MB
of peak RSS before filtering even starts.  The chunked pipeline
(``repro.trace.chunked`` + ``CacheHierarchy.filter_chunked``) bounds
peak memory by the shard size instead.  This script runs the full
pipeline — synthesis kernel, chunked store, windowed filter kernel — at
10M accesses and asserts the process's lifetime peak RSS (via
``repro.obs.telemetry.peak_rss_kb``, i.e. ``ru_maxrss``) stays under a
ceiling a monolithic build cannot meet.

``ru_maxrss`` is a process-lifetime high-water mark, so this MUST run
as its own process (the CI job does)::

    PYTHONPATH=src python benchmarks/trace_scale.py

Results land in ``BENCH_trace_scale.json`` next to this file.
Byte-identity of the chunked pipeline with the monolithic one is pinned
separately at test scale (``tests/test_trace_chunked.py``) — verifying
it here would require materializing the monolithic trace, which is
exactly the RSS cost this script proves we avoid.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

HERE = Path(__file__).parent
sys.path.insert(0, str(HERE.parent / "src"))

from repro.cpu.hierarchy import CacheHierarchy  # noqa: E402
from repro.obs.telemetry import peak_rss_kb  # noqa: E402
from repro.trace import chunked  # noqa: E402
from repro.workloads.inputs import build_app_trace_chunked  # noqa: E402

RESULT_PATH = HERE / "BENCH_trace_scale.json"

#: Peak-RSS ceiling.  Measured on the dev box: the chunked pipeline
#: peaks ~430 MB at 10M accesses / 1M-access shards (interpreter +
#: numpy, one shard's columns + filter intermediates, and the
#: accumulated miss stream — mcf turns ~65% of accesses into records,
#: so the *output* dominates), while the monolithic 10M-access
#: build+filter peaks ~1480 MB.  600 MB passes with headroom on a
#: noisy runner and still fails immediately if anything
#: rematerializes full-length trace columns.
DEFAULT_CEILING_MB = 600


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--app", default="mcf")
    ap.add_argument("--n-accesses", type=int, default=10_000_000)
    ap.add_argument("--chunk-accesses", type=int, default=1_000_000)
    ap.add_argument("--rss-ceiling-mb", type=int,
                    default=DEFAULT_CEILING_MB)
    args = ap.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="trace-scale-")
    chunked.configure(tmp)
    try:
        t0 = time.perf_counter()
        trace = build_app_trace_chunked(args.app, "ref", args.n_accesses,
                                        args.chunk_accesses)
        t_build = time.perf_counter() - t0

        t0 = time.perf_counter()
        stream, stats = CacheHierarchy().filter_chunked(trace)
        t_filter = time.perf_counter() - t0

        peak_kb = peak_rss_kb()
        shard_bytes = sum(p.stat().st_size
                          for p in Path(trace.directory).glob("*.npz"))
    finally:
        chunked.reset()
        shutil.rmtree(tmp, ignore_errors=True)

    doc = {
        "app": args.app,
        "n_accesses": args.n_accesses,
        "chunk_accesses": args.chunk_accesses,
        "n_shards": trace.n_shards,
        "shard_bytes_on_disk": shard_bytes,
        "miss_records": len(stream),
        "l2_mpki": round(stats.l2_mpki, 3),
        "build_seconds": round(t_build, 2),
        "filter_seconds": round(t_filter, 2),
        "peak_rss_mb": round(peak_kb / 1024, 1),
        "rss_ceiling_mb": args.rss_ceiling_mb,
    }
    RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(json.dumps(doc, indent=2))

    if peak_kb > args.rss_ceiling_mb * 1024:
        print(f"FAIL: peak RSS {doc['peak_rss_mb']} MB exceeds the "
              f"{args.rss_ceiling_mb} MB ceiling — something is "
              f"materializing full-length columns", file=sys.stderr)
        return 1
    print(f"OK: peak RSS {doc['peak_rss_mb']} MB "
          f"<= {args.rss_ceiling_mb} MB ceiling")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
