"""Benchmarks regenerating the configuration sweep (Figs. 14 and 15)."""

from repro.experiments import fig14, fig15
from repro.experiments.runner import geomean


def test_fig14_access_time_across_configs(benchmark, fidelity):
    fig = benchmark(fig14.compute, fidelity)
    print("\n" + fig.render())
    c1 = [r[1] for r in fig.rows]
    # config1 (small RLDRAM): MOCA at or faster than Heter-App on the
    # memory-intensive sets (paper Sec. VI-C).
    assert geomean(c1) < 1.02
    # As RLDRAM grows, Heter-App closes the performance gap: MOCA's
    # advantage shrinks (ratios drift towards/above 1 from c1 to c3).
    c3 = [r[3] for r in fig.rows]
    assert geomean(c3) > geomean(c1) * 0.95


def test_fig15_edp_across_configs(benchmark, fidelity):
    fig = benchmark(fig15.compute, fidelity)
    print("\n" + fig.render())
    # MOCA stays more energy-efficient than Heter-App on config1/2.
    # On config3 (768 MB RLDRAM) Heter-App parks everything premium and
    # LPDDR's outsized standby advantage (the documented deviation) can
    # flip individual sets; MOCA must stay within ~10% overall.
    for col in (1, 2):
        vals = [r[col] for r in fig.rows]
        assert geomean(vals) < 1.0, fig.columns[col]
    assert geomean([r[3] for r in fig.rows]) < 1.10
