"""Benchmarks regenerating the multicore evaluation (Figs. 10–13)."""

from repro.experiments import fig10, fig11, fig12, fig13
from repro.experiments.runner import geomean


def _geomean_cols(fig):
    gm = fig.row("geomean")
    return {c: gm[i] for i, c in enumerate(fig.columns)}


def test_fig10_memory_access_time(benchmark, fidelity):
    fig = benchmark(fig10.compute, fidelity)
    print("\n" + fig.render())
    cols = _geomean_cols(fig)
    assert cols["Homogen-RL"] < cols["Homogen-HBM"] < 1.0
    assert cols["Homogen-LP"] > 1.2
    # MOCA faster than Heter-App on average and in most sets.
    assert cols["MOCA"] < cols["Heter-App"]
    wins = sum(1 for r in fig.rows[:-1]
               if r[fig.columns.index("MOCA")]
               <= r[fig.columns.index("Heter-App")] * 1.01)
    assert wins >= 8


def test_fig11_memory_edp(benchmark, fidelity):
    fig = benchmark(fig11.compute, fidelity)
    print("\n" + fig.render())
    cols = _geomean_cols(fig)
    assert cols["MOCA"] < 1.0
    assert cols["MOCA"] < cols["Heter-App"]
    # Best-case improvement vs DDR3 should be deep (paper: up to 63%).
    best = min(r[fig.columns.index("MOCA")] for r in fig.rows[:-1])
    assert best < 0.65


def test_fig12_system_performance(benchmark, fidelity):
    fig = benchmark(fig12.compute, fidelity)
    print("\n" + fig.render())
    cols = _geomean_cols(fig)
    assert cols["MOCA"] < 1.0                      # faster than DDR3
    assert cols["MOCA"] <= cols["Heter-App"] * 1.02
    assert cols["Homogen-LP"] > 1.0                # LP hurts system perf


def test_fig13_system_edp(benchmark, fidelity):
    fig = benchmark(fig13.compute, fidelity)
    print("\n" + fig.render())
    cols = _geomean_cols(fig)
    assert cols["MOCA"] < 1.0
    assert cols["MOCA"] <= cols["Heter-App"] * 1.02
    assert cols["Homogen-LP"] > 1.0
