"""Benchmarks regenerating the motivation figures (paper Figs. 1 and 2)."""

from repro.experiments import fig01, fig02
from repro.experiments.fig02 import object_spread


def test_fig01_app_behavior(benchmark, fidelity):
    fig = benchmark(fig01.compute, fidelity)
    print("\n" + fig.render())
    # Shape: the three Table III classes separate on the two metrics.
    by_app = {r[0]: r for r in fig.rows}
    intensive_floor = min(by_app[a][2] for a in
                          ("mcf", "milc", "libquantum", "disparity",
                           "mser", "lbm", "tracking"))
    for lapp in ("mcf", "milc", "libquantum", "disparity"):
        assert by_app[lapp][2] > 10      # memory-intensive
        assert by_app[lapp][3] > 20      # low MLP
    for bapp in ("mser", "lbm", "tracking"):
        assert by_app[bapp][2] > 10
        assert by_app[bapp][3] <= 20     # high MLP
    for napp in ("gcc", "sift", "stitch"):
        # N apps sit far below every intensive app (absolute MPKI at
        # tiny fidelity carries cold-start noise; the *separation* is
        # the figure's point).
        assert by_app[napp][2] < intensive_floor / 2


def test_fig02_object_behavior(benchmark, fidelity):
    fig = benchmark(fig02.compute, fidelity)
    print("\n" + fig.render())
    # Shape: objects inside one app scatter widely on both axes.
    for app in ("mcf", "disparity", "mser"):
        mpki_ratio, stall_range = object_spread(fig, app)
        assert mpki_ratio > 5, app
        assert stall_range > 10, app
    # disparity's two major objects: one L (high stall), one B (low).
    disp = {r[1]: r for r in fig.rows if r[0] == "disparity"}
    assert disp["sad_cost"][5] == "L"
    assert disp["img_pyramid"][5] == "B"
