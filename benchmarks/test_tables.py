"""Benchmarks regenerating Tables I–III."""

from repro.experiments import tables


def test_table1_core_params(benchmark):
    fig = benchmark(tables.table1)
    print("\n" + fig.render())
    assert fig.cell("ROB entries", "value") == 84
    assert fig.cell("Load queue entries", "value") == 32


def test_table2_device_params(benchmark):
    fig = benchmark(tables.table2)
    print("\n" + fig.render())
    # Spot-check Table II values flow through to the report.
    assert fig.cell("tRC (ns)", "RLDRAM3") == 8.0
    assert fig.cell("tCK (ns)", "DDR3") == 1.07
    assert fig.cell("device width (bits)", "HBM") == 128
    assert fig.cell("standby (mW/GB)", "LPDDR2") == 6.5


def test_table3_classification(benchmark, fidelity):
    fig = benchmark(tables.table3, fidelity)
    print("\n" + fig.render())
    matches = sum(1 for r in fig.rows if r[3] == "yes")
    # All ten classes must re-emerge at default fidelity; at tiny
    # fidelity cold caches may flip the two smallest N apps.
    required = 10 if fidelity.name != "tiny" else 8
    assert matches >= required
