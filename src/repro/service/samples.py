"""Per-epoch access-interval samples and their quality guards.

Tenants of the :class:`~repro.service.service.GuidanceService` report one
:class:`EpochSample` per epoch: per-object demand misses, load misses,
ROB-head stall cycles, and store counts over the epoch's instruction
window — exactly the features the offline profiler extracts, but
measured live.  Telemetry is the untrusted input of the online pipeline,
so this module also owns:

* :func:`degrade_sample` — deterministic sample corruption driven by a
  :class:`~repro.faults.plan.FaultPlan`'s *guidance* faults
  (``lut_drop_fraction`` → the epoch's sample goes missing,
  ``lut_scramble_fraction`` → its statistics are garbled), modelling a
  lossy or buggy telemetry channel;
* :class:`SampleGuard` — the admission check: missing, short, or corrupt
  epochs are rejected with a reason and the service holds the last good
  placement (the page table is untouched — pinned by hypothesis tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cpu.core import CoreResult
from repro.cpu.hierarchy import KIND_STORE, MissStream
from repro.faults.plan import FaultPlan
from repro.util.rng import stream as rng_stream

__all__ = ["EpochSample", "ObjectSample", "SampleGuard", "build_epoch_sample",
           "degrade_sample"]


@dataclass
class ObjectSample:
    """One object's share of an epoch's activity."""

    obj_id: int
    misses: int = 0          #: Demand LLC misses this epoch.
    load_misses: int = 0
    stall_cycles: int = 0
    writes: int = 0          #: Store records this epoch.

    def mpki(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return self.misses * 1000.0 / instructions

    @property
    def stall_per_load_miss(self) -> float:
        if self.load_misses <= 0:
            return 0.0
        return self.stall_cycles / self.load_misses

    @property
    def write_frac(self) -> float:
        if self.misses <= 0:
            return 0.0
        return min(1.0, self.writes / self.misses)


@dataclass
class EpochSample:
    """Everything one tenant reports for one epoch."""

    epoch: int
    instructions: int    #: Instructions retired during the epoch.
    n_records: int       #: Miss-stream records observed (sample length).
    objects: dict[int, ObjectSample] = field(default_factory=dict)


def build_epoch_sample(epoch: int, sl: MissStream, result: CoreResult,
                       instructions: int) -> EpochSample:
    """Assemble a sample from one epoch's replayed slice.

    The per-object miss/stall splits come straight off the epoch's
    :class:`~repro.cpu.core.CoreResult` (each epoch replays on a fresh
    core, so its by-object dicts are epoch-local); store counts come from
    the slice's record kinds.
    """
    objects: dict[int, ObjectSample] = {}

    def entry(obj: int) -> ObjectSample:
        s = objects.get(obj)
        if s is None:
            s = objects[obj] = ObjectSample(obj)
        return s

    for obj, n in result.demand_by_obj.items():
        entry(int(obj)).misses = int(n)
    for obj, n in result.load_misses_by_obj.items():
        entry(int(obj)).load_misses = int(n)
    for obj, n in result.stall_by_obj.items():
        entry(int(obj)).stall_cycles = int(n)
    store_objs = sl.obj_id[sl.kind == KIND_STORE]
    if len(store_objs):
        uniq, counts = np.unique(store_objs, return_counts=True)
        for obj, n in zip(uniq.tolist(), counts.tolist()):
            entry(int(obj)).writes = int(n)
    return EpochSample(epoch=epoch, instructions=int(instructions),
                       n_records=len(sl), objects=objects)


def degrade_sample(sample: EpochSample, plan: FaultPlan,
                   tenant: str) -> EpochSample | None:
    """Apply a plan's guidance faults to one epoch's telemetry.

    * ``lut_drop_fraction`` is the per-epoch probability the sample is
      lost entirely (returns ``None`` — a missing report);
    * ``lut_scramble_fraction`` is the per-epoch probability the sample
      arrives *corrupt*: its counters are garbled into detectably
      inconsistent values (negative counts, NaN instruction window).

    Deterministic in ``(tenant, plan.seed, sample.epoch)``, so a faulted
    online :class:`~repro.sim.spec.RunSpec` reproduces bit-identically.
    The clean path returns the sample untouched.
    """
    if not plan.has_lut_fault:
        return sample
    rng = rng_stream("service", "sample-fault", tenant, plan.seed,
                     sample.epoch)
    if plan.lut_drop_fraction > 0.0 and \
            rng.random() < plan.lut_drop_fraction:
        return None
    if plan.lut_scramble_fraction > 0.0 and \
            rng.random() < plan.lut_scramble_fraction:
        garbled = replace(sample, instructions=-1)
        garbled.objects = {
            obj: ObjectSample(obj, misses=-s.misses - 1,
                              load_misses=s.load_misses,
                              stall_cycles=-s.stall_cycles,
                              writes=s.writes)
            for obj, s in sample.objects.items()
        }
        return garbled
    return sample


class SampleGuard:
    """Admission control for epoch samples.

    ``validate`` returns ``None`` for a usable sample or a rejection
    reason (``"missing"`` / ``"short"`` / ``"corrupt"``).  Rejected
    epochs must be side-effect-free for the service: no EWMA updates, no
    moves, no budget consumption.
    """

    def __init__(self, min_records: int = 0):
        self.min_records = max(0, int(min_records))

    def validate(self, sample: EpochSample | None) -> str | None:
        if sample is None:
            return "missing"
        if sample.n_records < self.min_records:
            return "short"
        if not isinstance(sample.instructions, int) \
                or sample.instructions <= 0:
            return "corrupt"
        for s in sample.objects.values():
            if min(s.misses, s.load_misses, s.stall_cycles, s.writes) < 0:
                return "corrupt"
            if not all(math.isfinite(v) for v in
                       (s.misses, s.load_misses, s.stall_cycles, s.writes)):
                return "corrupt"
        return None
