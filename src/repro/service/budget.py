"""Per-epoch migration budgets and the deferred-move priority queue.

Every epoch the service may spend at most ``max_pages`` page moves and
``max_cycles`` of migration overhead (copy bus time + shootdowns).
Moves that do not fit are *deferred*: parked in a priority queue keyed
on urgency (forced fault-reaction moves first, then hotter objects) and
drained at the start of the next epoch's budget, so a burst of
reclassifications spreads its cost over several epochs instead of
stalling the tenant.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.moca.classify import ObjectType

__all__ = ["DeferredMoveQueue", "EpochBudget", "MoveRequest"]


@dataclass(frozen=True)
class MoveRequest:
    """One object's pending relocation to ``target`` placement."""

    obj_id: int
    target: ObjectType
    heat: float = 0.0      #: Urgency (profile heat); higher drains first.
    forced: bool = False   #: Fault reaction — outranks every normal move.
    epoch: int = 0         #: Epoch the request was issued.


class EpochBudget:
    """Page and cycle allowance for a single epoch."""

    def __init__(self, max_pages: int, max_cycles: int):
        self.max_pages = int(max_pages)
        self.max_cycles = int(max_cycles)
        self.pages_used = 0
        self.cycles_used = 0

    def can_move_page(self, page_cycles: int) -> bool:
        return (self.pages_used + 1 <= self.max_pages
                and self.cycles_used + page_cycles <= self.max_cycles)

    def charge_page(self, page_cycles: int) -> None:
        self.pages_used += 1
        self.cycles_used += int(page_cycles)

    @property
    def exhausted(self) -> bool:
        return self.pages_used >= self.max_pages \
            or self.cycles_used >= self.max_cycles


@dataclass
class DeferredMoveQueue:
    """Priority queue of moves waiting for budget.

    Drain order: forced moves before normal ones, hotter before colder,
    earlier requests before later ones (stable FIFO tiebreak so equal
    priorities cannot starve).  At most one pending request per object —
    re-enqueueing replaces the stale target.
    """

    _heap: list[tuple[tuple[int, float, int], int, MoveRequest]] = \
        field(default_factory=list)
    _pending: dict[int, int] = field(default_factory=dict)
    _counter: itertools.count = field(default_factory=itertools.count)

    def push(self, req: MoveRequest) -> None:
        seq = next(self._counter)
        self._pending[req.obj_id] = seq
        key = (0 if req.forced else 1, -req.heat, seq)
        heapq.heappush(self._heap, (key, seq, req))

    def pop(self) -> MoveRequest | None:
        while self._heap:
            _, seq, req = heapq.heappop(self._heap)
            if self._pending.get(req.obj_id) == seq:
                del self._pending[req.obj_id]
                return req
            # Superseded by a later push for the same object.
        return None

    def discard(self, obj_id: int) -> bool:
        """Drop any pending request for ``obj_id`` (lazy deletion)."""
        return self._pending.pop(obj_id, None) is not None

    def pending_target(self, obj_id: int) -> MoveRequest | None:
        seq = self._pending.get(obj_id)
        if seq is None:
            return None
        for _, s, req in self._heap:
            if s == seq:
                return req
        return None

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)
