"""Online MOCA guidance service (epoch-driven reclassification).

The paper's pipeline is strictly offline — profile once, freeze the LUT,
allocate at startup — so inputs that drift from the training input
silently degrade.  This package is the online half (after
"Online Application Guidance for Heterogeneous Memory Systems",
arXiv:2110.02150): a :class:`~repro.service.service.GuidanceService`
that tenants stream per-epoch samples to and receive reclassification +
migration decisions from, hardened against drift (phase-change
detection), noise (EWMA smoothing, hysteresis, sample-quality guards),
and mid-run capacity faults (forced re-placement under the same
migration budget).

Drive it through :func:`repro.sim.online.run_online` /
``RunSpec(online=OnlineSpec(...))``; see ``docs/architecture.md``.
"""

from repro.service.budget import DeferredMoveQueue, EpochBudget, MoveRequest
from repro.service.detector import PhaseChangeDetector
from repro.service.hysteresis import GateDecision, HysteresisGate
from repro.service.samples import (
    EpochSample,
    ObjectSample,
    SampleGuard,
    build_epoch_sample,
    degrade_sample,
)
from repro.service.service import (
    EpochDecision,
    GuidanceService,
    ServiceStats,
    Tenant,
)
from repro.service.spec import OnlineSpec

__all__ = [
    "DeferredMoveQueue",
    "EpochBudget",
    "EpochDecision",
    "EpochSample",
    "GateDecision",
    "GuidanceService",
    "HysteresisGate",
    "MoveRequest",
    "ObjectSample",
    "OnlineSpec",
    "PhaseChangeDetector",
    "SampleGuard",
    "ServiceStats",
    "Tenant",
    "build_epoch_sample",
    "degrade_sample",
]
