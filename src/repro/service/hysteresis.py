"""Hysteresis gating: K-consecutive-epoch confirmation plus cooldown.

Classification flips on a single epoch are cheap to propose and
expensive to act on — a page move costs bus time and shootdowns both
ways.  The gate therefore requires an object to classify away from its
current placement for ``k`` *consecutive* epochs before a move is
released, and pins the object down for ``cooldown`` epochs after every
move.  Together these make ping-pong impossible: two opposing moves of
the same object can never be issued within the cooldown window (pinned
by a hypothesis test in ``tests/test_service.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.moca.classify import ObjectType

__all__ = ["GateDecision", "HysteresisGate"]


@dataclass(frozen=True)
class GateDecision:
    """Outcome of one gate check for one object in one epoch."""

    release: bool
    reason: str  # "release" | "building" | "cooldown" | "agree"
    streak: int = 0


@dataclass
class HysteresisGate:
    k: int = 2
    cooldown: int = 3
    #: Current streak per object: (proposed type, consecutive epochs).
    _streaks: dict[int, tuple[ObjectType, int]] = field(default_factory=dict)
    #: First epoch at which the object may move again.
    _cooldown_until: dict[int, int] = field(default_factory=dict)

    def check(self, obj_id: int, current: ObjectType,
              proposed: ObjectType, epoch: int) -> GateDecision:
        """Advance the object's streak for this epoch and gate the move.

        Call exactly once per object per *accepted* epoch; rejected
        epochs must not advance streaks (the epoch carries no usable
        evidence either way).
        """
        if proposed == current:
            # Agreement with the live placement resets any streak: the
            # K epochs must be consecutive.
            self._streaks.pop(obj_id, None)
            return GateDecision(False, "agree")
        held_type, streak = self._streaks.get(obj_id, (proposed, 0))
        streak = streak + 1 if held_type == proposed else 1
        self._streaks[obj_id] = (proposed, streak)
        if epoch < self._cooldown_until.get(obj_id, 0):
            return GateDecision(False, "cooldown", streak)
        if streak < self.k:
            return GateDecision(False, "building", streak)
        return GateDecision(True, "release", streak)

    def record_move(self, obj_id: int, epoch: int) -> None:
        """Start the object's cooldown and clear its streak."""
        self._streaks.pop(obj_id, None)
        self._cooldown_until[obj_id] = epoch + self.cooldown + 1

    def in_cooldown(self, obj_id: int, epoch: int) -> bool:
        return epoch < self._cooldown_until.get(obj_id, 0)
