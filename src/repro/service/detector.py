"""Phase-change detection over per-object EWMA feature deltas.

The detector keeps, per object, exponentially-weighted moving averages
of the live features the classifier cares about — LLC MPKI,
stall-per-load-miss, and write fraction — primed from the offline
profile.  An object *phase-changes* when its smoothed behaviour moves
far enough (relatively, with absolute floors against near-zero noise)
away from the profile baseline.  Only phase-changed objects are handed
to the classifier for re-evaluation, so a stable run can never drift
away from its offline placement on sampling noise alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.service.samples import EpochSample

__all__ = ["ObjectState", "PhaseChangeDetector"]

# Absolute floors clamping the ratio test: a feature living below its
# floor is "noise-level" and both sides of the comparison are clamped up
# to it, so near-zero values can neither trip the detector on sampling
# jitter nor make a genuine collapse undetectable.  The MPKI floor sits
# at the classification threshold (1.0 miss/kilo-inst); the SPM floor at
# half the latency/bandwidth boundary.
_MPKI_FLOOR = 1.0
_SPM_FLOOR = 10.0
_WF_FLOOR = 0.10


@dataclass
class ObjectState:
    """One object's smoothed live behaviour and its offline baseline."""

    obj_id: int
    base_mpki: float
    base_spm: float
    base_wf: float
    ewma_mpki: float = 0.0
    ewma_spm: float = 0.0
    ewma_wf: float = 0.0
    epochs_seen: int = 0
    #: Live features currently depart from the baseline.  *Transient*:
    #: a one-epoch burst trips it, the decayed EWMA un-trips it — the
    #: hysteresis gate only releases a move when the trip (and hence the
    #: proposal) persists K consecutive epochs.
    phase_changed: bool = False
    #: Classification is permanently driven by live features: the object
    #: was never profiled offline, or it has been moved (its profile
    #: entry describes a placement that no longer exists).
    pinned_live: bool = False

    def observe(self, mpki: float, spm: float, wf: float,
                alpha: float) -> None:
        if self.epochs_seen == 0:
            self.ewma_mpki, self.ewma_spm, self.ewma_wf = mpki, spm, wf
        else:
            self.ewma_mpki += alpha * (mpki - self.ewma_mpki)
            self.ewma_spm += alpha * (spm - self.ewma_spm)
            self.ewma_wf += alpha * (wf - self.ewma_wf)
        self.epochs_seen += 1


def _exceeds(current: float, base: float, floor: float,
             sensitivity: float) -> bool:
    """Ratio test, symmetric in direction and clamped at the floor.

    Trips when the larger of (current, baseline) exceeds the smaller by
    more than a factor of ``1 + sensitivity``, with the smaller side
    clamped up to ``floor``.  A plain delta test cannot work here: a
    hot object collapsing to zero has ``delta == base`` at most, so any
    relative-delta threshold >= 1 makes hot-to-cold drift *undetectable
    by construction*, while near-zero features trip on sampling jitter.
    """
    hi = max(current, base)
    lo = max(min(current, base), floor)
    return hi > (1.0 + sensitivity) * lo


@dataclass
class PhaseChangeDetector:
    """Flags objects whose live EWMAs depart from their profile baseline.

    ``sensitivity`` is the relative departure that counts: 1.0 means the
    smoothed feature must at least double (or halve) relative to its
    baseline, floors clamping both sides against near-zero noise.  The
    trip is *transient* — a one-epoch burst trips it, the decaying EWMA
    un-trips it — so only a sustained departure keeps an object in the
    phase-changed set long enough for the hysteresis gate to release a
    move.  :meth:`rebase` (after a move) pins the object to live
    features permanently and re-anchors its baseline.
    """

    alpha: float = 0.5
    sensitivity: float = 0.5
    objects: dict[int, ObjectState] = field(default_factory=dict)
    #: Heap object ids the detector may track; ``None`` tracks anything
    #: that shows up in a sample.  Tenants pass their named-object set so
    #: segment traffic (negative ids) never grows phantom states.
    known: set[int] | None = None

    def prime(self, obj_id: int, mpki: float, spm: float,
              wf: float) -> None:
        """Register an object's offline-profile baseline."""
        self.objects[obj_id] = ObjectState(
            obj_id, base_mpki=float(mpki), base_spm=float(spm),
            base_wf=float(wf))

    def observe(self, sample: EpochSample) -> set[int]:
        """Fold one accepted epoch in; return newly phase-changed ids."""
        fresh: set[int] = set()
        for obj_id, s in sample.objects.items():
            if self.known is not None and obj_id not in self.known:
                continue  # segment / non-heap traffic: never reclassified
            state = self.objects.get(obj_id)
            if state is None:
                # Never profiled offline: its baseline is its first
                # live epoch, so classification is live-driven from the
                # start.
                state = ObjectState(obj_id, base_mpki=0.0, base_spm=0.0,
                                    base_wf=0.0, pinned_live=True)
                self.objects[obj_id] = state
                fresh.add(obj_id)
            state.observe(s.mpki(sample.instructions),
                          s.stall_per_load_miss, s.write_frac, self.alpha)
            self._retest(state, fresh)
        # Objects absent from the epoch produced zero misses: their
        # intensity EWMA decays toward 0.  Without this, an object the
        # drifted input turned *cold* would keep its hot profile forever
        # — and never free its fast-tier frames for the new hot set.
        for obj_id, state in self.objects.items():
            if obj_id in sample.objects:
                continue
            state.observe(0.0, state.ewma_spm, state.ewma_wf, self.alpha)
            self._retest(state, fresh)
        return fresh

    def _retest(self, state: ObjectState, fresh: set[int]) -> None:
        tripped = self._tripped(state)
        if tripped and not state.phase_changed:
            fresh.add(state.obj_id)
        state.phase_changed = tripped

    def _tripped(self, st: ObjectState) -> bool:
        # Intensity (MPKI) and write mix are the drift-prone features; a
        # per-object *access pattern* — what stall-per-miss measures — is
        # input-stable, and its short-window live estimate sits on a
        # different scale than the whole-run profile (overlap inside the
        # core's miss window), so tripping on it would reclassify every
        # object on estimator bias alone.  The spm EWMA is still kept:
        # it seeds LUT entries for objects that were never profiled.
        return (_exceeds(st.ewma_mpki, st.base_mpki, _MPKI_FLOOR,
                         self.sensitivity)
                or _exceeds(st.ewma_wf, st.base_wf, _WF_FLOOR,
                            self.sensitivity))

    def changed(self) -> set[int]:
        """Objects whose classification should use live features now:
        currently tripped, moved at some point, or never profiled."""
        return {o for o, st in self.objects.items()
                if st.phase_changed or st.pinned_live}

    def rebase(self, obj_id: int) -> None:
        """Re-anchor an object's baseline at its current EWMAs.

        Called after the service moves the object: the new placement is
        now the reference behaviour, so further moves require a *new*
        departure rather than riding the original trip forever.  The
        object is pinned to live features from here on — its offline
        profile describes a placement that no longer exists.
        """
        st = self.objects.get(obj_id)
        if st is None:
            return
        st.base_mpki = st.ewma_mpki
        st.base_spm = st.ewma_spm
        st.base_wf = st.ewma_wf
        st.pinned_live = True
        st.phase_changed = self._tripped(st)
