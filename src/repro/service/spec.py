"""OnlineSpec: the canonical identity of an online-guidance run.

An :class:`OnlineSpec` names every knob of the epoch-driven guidance
loop — epoch length, detector sensitivity, hysteresis depth, cooldown,
the per-epoch migration budget, sample-quality floors, and when a
:class:`~repro.faults.plan.FaultPlan`'s capacity/timing faults fire in
epoch time.  It is frozen and hashable so it can sit directly in a
:class:`~repro.sim.spec.RunSpec`; following the ``faults``/``fast_path``
precedent it enters ``RunSpec.canonical()`` **only when set**, so every
pre-existing (offline) cache key stays byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OnlineSpec"]


@dataclass(frozen=True)
class OnlineSpec:
    """Knobs of the online guidance loop (see ``repro.service``).

    Attributes:
        epoch_misses: LLC-miss-stream records per epoch — the interval at
            which tenants report samples and the service decides.
        ewma_alpha: Smoothing factor of the per-object feature EWMAs
            (1.0 = trust the latest epoch completely).
        sensitivity: Relative EWMA-vs-profile departure above which an
            object's behaviour counts as a phase change: a feature must
            exceed ``(1 + sensitivity)`` times its baseline (or fall
            below it by the same factor, both sides floor-clamped) to
            trip the detector.  Objects without a detected phase change
            keep their offline classification, so sampling noise alone
            can never trigger a move.
        hysteresis_epochs: An object must classify away from its current
            placement for this many *consecutive* epochs before the
            service issues a move.
        cooldown_epochs: Epochs after a move during which the object may
            not move again (ping-pong guard).
        warmup_epochs: Leading epochs that only feed the EWMAs; no moves
            are issued while the estimators prime.
        max_pages_per_epoch: Page-move budget per epoch.
        max_cycles_per_epoch: Migration-overhead budget per epoch
            (page-copy bus time + shootdowns); moves that do not fit
            carry over in the deferred-move queue.
        shootdown_cycles: Fixed per-page-move cost (TLB shootdown +
            kernel bookkeeping), matching
            :class:`~repro.vm.migration.MigrationConfig`.
        min_epoch_records: Sample-quality floor: epochs reporting fewer
            miss records are rejected as *short* and the last good
            placement is held.
        fault_epoch: When the run's :class:`~repro.faults.plan.FaultPlan`
            carries capacity/timing faults, apply them at the start of
            this epoch (0 = at boot, exactly like the offline driver).
    """

    epoch_misses: int = 1_000
    ewma_alpha: float = 0.5
    sensitivity: float = 1.5
    hysteresis_epochs: int = 2
    cooldown_epochs: int = 3
    warmup_epochs: int = 1
    max_pages_per_epoch: int = 4_096
    max_cycles_per_epoch: int = 16_000_000
    shootdown_cycles: int = 1_000
    min_epoch_records: int = 16
    fault_epoch: int = 0

    def __post_init__(self) -> None:
        if self.epoch_misses <= 0:
            raise ValueError(f"epoch_misses must be positive, "
                             f"got {self.epoch_misses}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha={self.ewma_alpha} outside (0, 1]")
        if self.sensitivity < 0.0:
            raise ValueError(f"sensitivity={self.sensitivity} negative")
        if self.hysteresis_epochs < 1:
            raise ValueError("hysteresis_epochs must be >= 1")
        for name in ("cooldown_epochs", "warmup_epochs", "shootdown_cycles",
                     "min_epoch_records", "fault_epoch"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name}={getattr(self, name)} negative")
        for name in ("max_pages_per_epoch", "max_cycles_per_epoch"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name}={getattr(self, name)} must be "
                                 f"positive")

    # ---- identity ------------------------------------------------------------

    def canonical(self) -> dict:
        """Stable JSON form folded into ``RunSpec.canonical()``."""
        return {
            "epoch_misses": self.epoch_misses,
            "ewma_alpha": self.ewma_alpha,
            "sensitivity": self.sensitivity,
            "hysteresis_epochs": self.hysteresis_epochs,
            "cooldown_epochs": self.cooldown_epochs,
            "warmup_epochs": self.warmup_epochs,
            "max_pages_per_epoch": self.max_pages_per_epoch,
            "max_cycles_per_epoch": self.max_cycles_per_epoch,
            "shootdown_cycles": self.shootdown_cycles,
            "min_epoch_records": self.min_epoch_records,
            "fault_epoch": self.fault_epoch,
        }

    to_dict = canonical

    @classmethod
    def from_dict(cls, data: dict) -> "OnlineSpec":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__
                      if k in data})

    def describe(self) -> str:
        """Short label for log lines and spec descriptions."""
        parts = [f"epoch={self.epoch_misses}",
                 f"k={self.hysteresis_epochs}",
                 f"cool={self.cooldown_epochs}"]
        if self.fault_epoch:
            parts.append(f"fault@e{self.fault_epoch}")
        return "online[" + ",".join(parts) + "]"
