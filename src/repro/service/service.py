"""The guidance service: epoch-driven reclassification and migration.

:class:`GuidanceService` is the long-running decision loop of the online
pipeline (the reproduction's analogue of arXiv:2110.02150's guidance
daemon).  Tenants — one per simulated application — register with their
allocator, layout, offline profile, and classifier; every epoch they
report an :class:`~repro.service.samples.EpochSample` and receive an
:class:`EpochDecision` describing what the service did:

1. **guard** — missing/short/corrupt samples are rejected; the epoch is
   a complete no-op (the page table stays byte-identical — pinned by a
   hypothesis test) and the last good placement holds;
2. **detect** — accepted samples feed per-object EWMAs; only objects
   whose smoothed behaviour departs from the offline baseline
   (phase changes) have their LUT slice rewritten with live features;
3. **classify** — the tenant's registered
   :class:`~repro.moca.policy.ClassificationPolicy` re-evaluates the
   updated LUT under the same capacity budget as the offline stage;
4. **gate** — hysteresis (K consecutive epochs) and per-object cooldown
   suppress ping-pong;
5. **move** — released moves drain through a per-epoch page+cycle
   budget, spill into the deferred queue, and are charged through the
   same :func:`~repro.vm.migration.charge_page_copy` accounting as the
   hot-page migrator.

A capacity :class:`~repro.faults.plan.FaultPlan` firing mid-run calls
:meth:`GuidanceService.on_capacity_fault`: every object with pages
stranded in an offline pool gets a *forced* move that outranks the queue
and may fall back to overcommit — the allocator's graceful-degradation
path — when every pool is full.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.moca.lut import ObjectProfile, ProfileLUT
from repro.moca.naming import ObjectName, name_from_site
from repro.moca.policy import CapacityBudget, ClassificationPolicy, UNLIMITED
from repro.obs.registry import OBS
from repro.service.budget import DeferredMoveQueue, EpochBudget, MoveRequest
from repro.service.detector import PhaseChangeDetector
from repro.service.hysteresis import HysteresisGate
from repro.service.samples import EpochSample, SampleGuard
from repro.service.spec import OnlineSpec
from repro.trace.events import PAGE_BYTES, VirtualLayout
from repro.vm.allocator import OSPageAllocator
from repro.vm.heap import ObjectType
from repro.vm.migration import MigrationStats, charge_page_copy

__all__ = ["EpochDecision", "GuidanceService", "ServiceStats", "Tenant"]


@dataclass
class ServiceStats:
    """The service's robustness ledger for one tenant.

    Every counter is mirrored into :data:`~repro.obs.registry.OBS`
    (``service.*``), so an online run's manifest telemetry block carries
    the same numbers.
    """

    epochs: int = 0
    epochs_accepted: int = 0
    epochs_rejected: int = 0
    rejected_by_reason: dict[str, int] = field(default_factory=dict)
    phase_changes: int = 0
    moves: int = 0
    forced_moves: int = 0
    pages_moved: int = 0
    deferred_moves: int = 0
    hysteresis_suppressed: int = 0
    cooldown_suppressed: int = 0

    def to_dict(self) -> dict:
        return {
            "epochs": self.epochs,
            "epochs_accepted": self.epochs_accepted,
            "epochs_rejected": self.epochs_rejected,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "phase_changes": self.phase_changes,
            "moves": self.moves,
            "forced_moves": self.forced_moves,
            "pages_moved": self.pages_moved,
            "deferred_moves": self.deferred_moves,
            "hysteresis_suppressed": self.hysteresis_suppressed,
            "cooldown_suppressed": self.cooldown_suppressed,
        }


@dataclass(frozen=True)
class EpochDecision:
    """What the service did at one epoch boundary."""

    epoch: int
    accepted: bool
    reject_reason: str | None = None
    overhead_cycles: int = 0
    pages_moved: int = 0
    moves: tuple[tuple[int, ObjectType], ...] = ()
    deferred: int = 0
    suppressed: int = 0


class Tenant:
    """One registered application's view of the service.

    Holds the per-tenant robustness state: working LUT (offline profile
    plus live rewrites), phase-change detector, hysteresis gate,
    deferred-move queue, and migration accounting.
    """

    def __init__(self, name: str, *, allocator: OSPageAllocator,
                 memsys, layout: VirtualLayout, lut: ProfileLUT,
                 classifier: ClassificationPolicy,
                 types: dict[int, ObjectType],
                 heat: dict[int, float] | None = None,
                 budget: CapacityBudget = UNLIMITED,
                 core: int = 0, spec: OnlineSpec | None = None):
        from repro.moca.allocation import CORE_STRIDE
        from repro.trace.events import PAGE_BYTES

        spec = spec or OnlineSpec()
        self.name = name
        self.allocator = allocator
        self.memsys = memsys
        self.layout = layout
        self.base_lut = lut
        self.working_lut = lut.clone()
        self.classifier = classifier
        self.capacity_budget = budget
        self.core = core
        #: Live placement class per heap object (the service's view of
        #: "where the object belongs"; pages follow the fallback chain).
        self.current_types = dict(types)
        self.heat = dict(heat or {})
        self.detector = PhaseChangeDetector(alpha=spec.ewma_alpha,
                                            sensitivity=spec.sensitivity,
                                            known=set())
        self.gate = HysteresisGate(k=spec.hysteresis_epochs,
                                   cooldown=spec.cooldown_epochs)
        self.guard = SampleGuard(min_records=spec.min_epoch_records)
        self.queue = DeferredMoveQueue()
        self.stats = ServiceStats()
        self.migration = MigrationStats()
        #: LUT names currently carrying a live rewrite (restored from
        #: the offline profile when the trip that caused them decays).
        self._rewritten: set[ObjectName] = set()
        # Object bookkeeping: names, sizes, and page-table keys.
        page_base = core * (CORE_STRIDE // PAGE_BYTES)
        self._name_of: dict[int, ObjectName] = {}
        self._objs_of_name: dict[ObjectName, list[int]] = {}
        self._pages_of: dict[int, list[int]] = {}
        self._size_of: dict[int, int] = {}
        for obj in layout.objects:
            name = name_from_site(obj.site)
            self._name_of[obj.obj_id] = name
            self._objs_of_name.setdefault(name, []).append(obj.obj_id)
            self._pages_of[obj.obj_id] = [page_base + p for p in obj.pages()]
            self._size_of[obj.obj_id] = obj.size_bytes
        self.detector.known = set(self._name_of)
        # Prime the detector with each profiled object's offline baseline.
        for obj_id, name in self._name_of.items():
            prof = lut.get(name)
            if prof is not None:
                self.detector.prime(obj_id, prof.llc_mpki,
                                    prof.stall_per_load_miss, prof.write_frac)

    def object_pages(self, obj_id: int) -> list[int]:
        return list(self._pages_of.get(obj_id, ()))

    def placements(self) -> dict[int, ObjectType]:
        """Current per-object placement classes (copy)."""
        return dict(self.current_types)


class GuidanceService:
    """Epoch-boundary reclassification with drift/noise/fault hardening."""

    def __init__(self, spec: OnlineSpec | None = None):
        self.spec = spec or OnlineSpec()
        self.tenants: dict[str, Tenant] = {}

    # ---- registration --------------------------------------------------------

    def register(self, name: str, **kwargs) -> Tenant:
        """Register a tenant (see :class:`Tenant` for the arguments)."""
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} is already registered")
        tenant = Tenant(name, spec=self.spec, **kwargs)
        self.tenants[name] = tenant
        return tenant

    # ---- the epoch boundary --------------------------------------------------

    def end_epoch(self, tenant: Tenant,
                  sample: EpochSample | None) -> EpochDecision:
        """Process one epoch's telemetry and decide moves.

        A rejected sample (missing/short/corrupt) makes the whole epoch
        a no-op: no estimator updates, no hysteresis advancement, no
        queue drain — the page table is untouched and the last good
        placement holds.
        """
        spec = self.spec
        stats = tenant.stats
        stats.epochs += 1
        epoch = stats.epochs - 1 if sample is None else sample.epoch
        if OBS.enabled:
            OBS.add("service.epoch")
        reason = tenant.guard.validate(sample)
        if reason is not None:
            stats.epochs_rejected += 1
            stats.rejected_by_reason[reason] = \
                stats.rejected_by_reason.get(reason, 0) + 1
            if OBS.enabled:
                OBS.add("service.rejected_epoch")
                OBS.add(f"service.rejected_epoch.{reason}")
            return EpochDecision(epoch=epoch, accepted=False,
                                 reject_reason=reason)
        stats.epochs_accepted += 1
        fresh = tenant.detector.observe(sample)
        if fresh:
            stats.phase_changes += len(fresh)
            if OBS.enabled:
                OBS.add("service.phase_change", len(fresh))
        if epoch < spec.warmup_epochs:
            # Estimators prime; placement is frozen.
            return EpochDecision(epoch=epoch, accepted=True)
        suppressed = self._propose_moves(tenant, epoch)
        overhead, pages, moves, deferred = self._drain_moves(tenant, epoch)
        return EpochDecision(epoch=epoch, accepted=True,
                             overhead_cycles=overhead, pages_moved=pages,
                             moves=tuple(moves), deferred=deferred,
                             suppressed=suppressed)

    # ---- fault reaction ------------------------------------------------------

    def on_capacity_fault(self, tenant: Tenant) -> int:
        """React to a capacity fault (module offlined/shrunk mid-run).

        Every object with pages stranded in an *offline* pool gets a
        forced move request — drained under the normal per-epoch budget,
        so re-placement is paced, not a stall-the-world event.  Returns
        the number of forced requests queued.
        """
        pt = tenant.allocator.page_table
        pools = tenant.allocator.pools
        forced = 0
        for obj_id, pages in tenant._pages_of.items():
            stranded = any(pools[pt.lookup(key)[0]].is_offline
                           for key in pages)
            if not stranded:
                continue
            target = tenant.current_types.get(obj_id, ObjectType.POW)
            tenant.queue.push(MoveRequest(
                obj_id=obj_id, target=target,
                heat=tenant.heat.get(obj_id, 0.0), forced=True))
            forced += 1
        if forced and OBS.enabled:
            OBS.add("service.fault_replacements", forced)
        return forced

    # ---- internals -----------------------------------------------------------

    def _propose_moves(self, tenant: Tenant, epoch: int) -> int:
        """Reclassify against the live LUT and gate the proposals.

        Returns the number of suppressed (hysteresis/cooldown) proposals.
        """
        self._refresh_lut(tenant)
        assignment = tenant.classifier.classify(
            [tenant.working_lut], tenant.capacity_budget)[0]
        stats = tenant.stats
        suppressed = 0
        for name, proposed in assignment.items():
            for obj_id in tenant._objs_of_name.get(name, ()):
                current = tenant.current_types.get(obj_id, ObjectType.POW)
                decision = tenant.gate.check(obj_id, current, proposed, epoch)
                if decision.release:
                    tenant.queue.push(MoveRequest(
                        obj_id=obj_id, target=proposed,
                        heat=tenant.heat.get(obj_id, 0.0), epoch=epoch))
                elif decision.reason == "cooldown":
                    suppressed += 1
                    stats.cooldown_suppressed += 1
                    if OBS.enabled:
                        OBS.add("service.suppressed.cooldown")
                elif decision.reason == "building":
                    suppressed += 1
                    stats.hysteresis_suppressed += 1
                    if OBS.enabled:
                        OBS.add("service.suppressed.hysteresis")
        return suppressed

    def _refresh_lut(self, tenant: Tenant) -> None:
        """Rewrite phase-changed objects' LUT slices with live EWMAs.

        Objects without a detected phase change keep their offline
        profile verbatim, so a quiet run classifies exactly like the
        offline pipeline (convergence: zero net moves after warmup).
        When a transient trip decays, the rewritten slice is restored
        from the offline profile — a one-epoch burst leaves no residue.
        """
        changed = tenant.detector.changed()
        changed_names = {tenant._name_of[o] for o in changed
                         if o in tenant._name_of}
        for name in tenant._rewritten - changed_names:
            entry = tenant.base_lut.get(name)
            tenant.working_lut.remove(name)
            if entry is not None:
                # Fresh copy: ``register`` merges in place, and the
                # base LUT must stay pristine.
                tenant.working_lut.register(replace(entry))
            tenant._rewritten.discard(name)
        for obj_id in changed:
            state = tenant.detector.objects[obj_id]
            name = tenant._name_of.get(obj_id)
            if name is None:
                continue  # segment or unnamed object: never reclassified
            base = tenant.base_lut.get(name)
            size = tenant._size_of.get(obj_id,
                                       base.size_bytes if base else 0)
            # Stall-per-miss is a *pattern* feature: input-stable, and
            # its short-window live estimate is biased low by overlap
            # inside the core's miss window.  Profiled objects keep the
            # profile's value; only never-profiled objects fall back to
            # the live EWMA.
            spm = base.stall_per_load_miss if base else state.ewma_spm
            # Encode the features exactly: a synthetic 1k-instruction
            # window whose counters reproduce mpki/stall-per-miss/
            # write-frac under ObjectProfile's derived properties.
            entry = ObjectProfile(
                name=name,
                label=base.label if base else f"live:{obj_id}",
                size_bytes=size,
                start_vaddr=base.start_vaddr if base else 0,
                accesses=1000,
                writes=int(round(state.ewma_wf * 1000)),
                llc_misses=int(round(state.ewma_mpki * 1000)),
                load_misses=1000,
                stall_cycles=int(round(spm * 1000)),
                kilo_instructions=1000.0,
            )
            tenant.working_lut.remove(name)
            tenant.working_lut.register(entry)
            tenant._rewritten.add(name)

    def _drain_moves(self, tenant: Tenant, epoch: int,
                     ) -> tuple[int, int, list[tuple[int, ObjectType]], int]:
        """Execute queued moves under this epoch's page+cycle budget.

        Demotions (moves whose target chain does not start at the fast
        group) run before promotions so vacated fast-tier frames are
        reusable within the same epoch.  A request that runs out of
        budget mid-object is re-queued with its remaining pages still
        pending (the page table is always consistent — moves are
        page-atomic).
        """
        spec = self.spec
        budget = EpochBudget(spec.max_pages_per_epoch,
                             spec.max_cycles_per_epoch)
        fast_group = tenant.allocator.roles.get("lat")
        pending: list[MoveRequest] = []
        while True:
            req = tenant.queue.pop()
            if req is None:
                break
            pending.append(req)
        if fast_group is not None:
            pending.sort(key=lambda r: (
                not r.forced,
                tenant.allocator.chain_for(r.target)[0] == fast_group))
        overhead = 0
        pages_moved = 0
        moves: list[tuple[int, ObjectType]] = []
        deferred = 0
        stats = tenant.stats
        for i, req in enumerate(pending):
            if budget.exhausted:
                for rest in pending[i:]:
                    tenant.queue.push(rest)
                    deferred += 1
                    stats.deferred_moves += 1
                    if OBS.enabled:
                        OBS.add("service.deferred_move")
                break
            moved, ran_out = self._apply_move(tenant, req, budget)
            overhead += moved[0]
            pages_moved += moved[1]
            if ran_out:
                # Budget ran dry mid-object: the pages already copied are
                # real (and charged), so account them before re-queueing
                # the remainder for the next epoch's budget.
                stats.pages_moved += moved[1]
                tenant.queue.push(req)
                deferred += 1
                stats.deferred_moves += 1
                if OBS.enabled:
                    OBS.add("service.deferred_move")
                    if moved[1]:
                        OBS.add("service.pages_moved", moved[1])
                continue
            # The object's class follows the classifier even when no
            # page physically moved (full target pool = spill semantics,
            # identical to allocation-time overflow).
            tenant.current_types[req.obj_id] = req.target
            if moved[1] > 0:
                moves.append((req.obj_id, req.target))
                tenant.gate.record_move(req.obj_id, epoch)
                tenant.detector.rebase(req.obj_id)
                stats.moves += 1
                if req.forced:
                    stats.forced_moves += 1
                stats.pages_moved += moved[1]
                if OBS.enabled:
                    OBS.add("service.forced_move" if req.forced
                            else "service.move")
                    OBS.add("service.pages_moved", moved[1])
        return overhead, pages_moved, moves, deferred

    def _apply_move(self, tenant: Tenant, req: MoveRequest,
                    budget: EpochBudget) -> tuple[tuple[int, int], bool]:
        """Relocate one object's pages toward its target chain.

        Returns ``((overhead_cycles, pages_moved), ran_out_of_budget)``.
        Each page independently walks the target type's fallback chain:
        reaching its current group first means it already sits in the
        best available module and stays put.  Forced moves (fault
        reaction) never settle for an offline group and fall back to
        overcommit — the allocator's degraded no-crash path — when every
        pool is exhausted.
        """
        allocator = tenant.allocator
        pt = allocator.page_table
        pools = allocator.pools
        chain = allocator.chain_for(req.target)
        shoot = self.spec.shootdown_cycles
        overhead = 0
        pages_moved = 0
        for key in tenant._pages_of.get(req.obj_id, ()):
            cur_group, cur_frame = pt.lookup(key)
            cur_offline = pools[cur_group].is_offline
            if req.forced and not cur_offline:
                # Fault reaction only evacuates stranded pages; healthy
                # pages of the same object stay where they are.
                continue
            dst = None
            frame = None
            for g in chain:
                if g == cur_group:
                    if not cur_offline:
                        break  # already in the best available module
                    continue  # stranded: keep looking past the dead pool
                f = pools[g].allocate()
                if f is not None:
                    dst, frame = g, f
                    break
            if dst is None:
                if not cur_offline:
                    continue  # nowhere better — page stays
                # Stranded with every pool full: overcommit the last
                # online pool in the chain (graceful degradation).
                dst = next((g for g in reversed(chain)
                            if not pools[g].is_offline), chain[-1])
                frame = pools[dst].allocate_overcommit()
                allocator.stats.exhausted[req.target] += 1
                if OBS.enabled:
                    OBS.add(f"alloc.overcommit.{req.target.name}")
            groups = tenant.memsys.groups
            cost = (groups[cur_group].timing.transfer_cycles(PAGE_BYTES)
                    + groups[dst].timing.transfer_cycles(PAGE_BYTES)
                    + shoot)
            if not budget.can_move_page(cost):
                pools[dst].free(frame)  # return the speculative frame
                return (overhead, pages_moved), True
            charge_page_copy(tenant.memsys, tenant.migration,
                             cur_group, dst, shoot)
            budget.charge_page(cost)
            pt.remap(key, dst, frame)
            pools[cur_group].free(cur_frame)
            overhead += cost
            pages_moved += 1
            tenant.migration.n_migrations += 1
        return (overhead, pages_moved), False
