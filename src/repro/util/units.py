"""Unit helpers for capacities, time, and power.

All simulator time is integer *CPU cycles* at the core clock (1 GHz in the
paper's Table I, so 1 cycle == 1 ns).  Device datasheets speak nanoseconds;
these helpers centralize the conversion so the rest of the code never
multiplies by a raw clock constant.
"""

from __future__ import annotations

import math

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Core clock of the simulated system (Table I: 1 GHz x86 OoO core).
CORE_CLOCK_HZ = 1_000_000_000


def ns_to_cycles(ns: float, clock_hz: int = CORE_CLOCK_HZ) -> int:
    """Convert nanoseconds to an integer number of core cycles (ceiling).

    Ceiling matches how a synchronous controller must round analog device
    timings up to whole clock edges.
    """
    return int(math.ceil(ns * clock_hz / 1e9))


def cycles_to_ns(cycles: float, clock_hz: int = CORE_CLOCK_HZ) -> float:
    """Convert core cycles back to nanoseconds."""
    return cycles * 1e9 / clock_hz


def mw_per_gb(milliwatts: float, capacity_bytes: int) -> float:
    """Scale a per-GB standby power figure (Table II) to a module's capacity.

    Returns watts.
    """
    return milliwatts * 1e-3 * (capacity_bytes / GIB)


def watts(w_per_gb: float, capacity_bytes: int) -> float:
    """Scale a per-GB active power figure (Table II) to a module's capacity."""
    return w_per_gb * (capacity_bytes / GIB)
