"""Named, deterministic random-number streams.

The paper profiles applications on *training* inputs and evaluates on
*reference* inputs (Sec. V-A).  In this reproduction an "input" is a seed
stream; deriving independent generators from (purpose, *keys) guarantees
that, e.g., the trace generated for ``("mcf", "train")`` never aliases the
one for ``("mcf", "ref")`` while both stay bit-reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Root seed for the whole reproduction.  Changing it re-rolls every
#: synthetic workload coherently (useful for robustness studies).
ROOT_SEED = 0x4D0CA


def derive_seed(*keys: object, root: int = ROOT_SEED) -> int:
    """Derive a stable 64-bit seed from a tuple of hashable keys.

    Uses SHA-256 over the repr of the keys (stable across processes,
    unlike ``hash``) mixed with the root seed.
    """
    payload = repr((root,) + tuple(keys)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


def stream(*keys: object, root: int = ROOT_SEED) -> np.random.Generator:
    """Return an independent ``numpy.random.Generator`` for the given keys.

    >>> a = stream("mcf", "train")
    >>> b = stream("mcf", "train")
    >>> bool((a.integers(0, 1 << 30, 8) == b.integers(0, 1 << 30, 8)).all())
    True
    """
    return np.random.default_rng(derive_seed(*keys, root=root))
