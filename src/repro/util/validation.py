"""Tiny argument-validation helpers used across the package.

These raise ``ValueError`` with the offending name embedded, which keeps
constructor bodies short while giving actionable messages — important in a
simulator where a silently-wrong timing parameter corrupts every result
downstream.
"""

from __future__ import annotations

from typing import Iterable


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Require ``value`` to be a positive power of two (sizes, ways, banks)."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value


def check_in(name: str, value: object, allowed: Iterable[object]) -> object:
    """Require ``value`` to be one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
