"""Process-wide fast-path kill switch (``REPRO_FAST_PATH``).

Every replay kernel in the repo (cache filter, DRAM replay, trace
synthesis) ships as a vectorized fast path plus a scalar reference
implementation that stays the executable specification.  This module
holds the one switch that flips *all* of them back to the reference:
``REPRO_FAST_PATH=0`` re-derives a suspect result fleet-wide — sweeps,
profiling replays, migration epochs, and trace builds alike — without
editing any figure code.

Lives in ``util`` so the trace layer can consult it without importing
the cpu package (traces are built before any cache exists).
"""

from __future__ import annotations

import os

__all__ = ["fast_path_default"]


def fast_path_default() -> bool:
    """Process-wide fast-path default (``REPRO_FAST_PATH=0`` kills it)."""
    return os.environ.get("REPRO_FAST_PATH", "1") != "0"
