"""Shared utilities: deterministic RNG streams, unit helpers, validation.

Everything random in the reproduction flows through :func:`stream` so that
experiments are reproducible run-to-run and the *training* vs *reference*
input split of the paper maps onto distinct, named seed streams.
"""

from repro.util.rng import stream, derive_seed
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    ns_to_cycles,
    cycles_to_ns,
    mw_per_gb,
    watts,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_power_of_two,
    check_in,
)

__all__ = [
    "stream",
    "derive_seed",
    "KIB",
    "MIB",
    "GIB",
    "ns_to_cycles",
    "cycles_to_ns",
    "mw_per_gb",
    "watts",
    "check_positive",
    "check_non_negative",
    "check_power_of_two",
    "check_in",
]
