"""Process-level resident caches for the zero-copy data plane.

The mmap-native stores (:mod:`repro.sim.stream_store`,
:mod:`repro.trace.chunked`) map artefacts straight off disk, so the
expensive part of a warm load is no longer I/O but the *decode* around
it: rebuilding ``MissStream``/``CacheStats`` wrappers, or re-deriving
the per-access controller decode tables in
:mod:`repro.memctrl.batch`.  A sweep worker that replays 30 configs of
the same workload repeats that decode 30 times unless something holds
onto the result.

:class:`ResidentLRU` is that something: a small bounded
most-recently-used map each subsystem keys however it likes (store
entry path + mtime, content digest of decode inputs).  It is
process-local by design — the cross-process sharing happens one layer
down, in the page cache backing the mmaps.

:func:`content_digest` is the shared keying helper: a SHA-256 over raw
array bytes plus a canonical-JSON tail for scalar context, so two
identical inputs hash identically regardless of which store entry or
process they came from.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any, Hashable

import numpy as np

__all__ = ["ResidentLRU", "content_digest"]


class ResidentLRU:
    """Bounded process-level LRU keyed by arbitrary hashables.

    Args:
        capacity: Maximum resident entries; the least-recently-used
            entry is dropped when a put would exceed it.  ``0`` disables
            caching entirely (every get misses, every put is ignored) —
            the kill switch for memory-constrained runs.
    """

    def __init__(self, capacity: int = 16):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evicted = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable) -> Any | None:
        """Resident value for ``key``, or ``None`` (also bumps recency)."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evicted += 1

    def pop(self, key: Hashable) -> None:
        """Drop ``key`` if resident (used when the backing entry dies)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def stats_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "resident": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evicted": self.evicted,
        }


def content_digest(*arrays: np.ndarray, extra: Any = None) -> str:
    """SHA-256 over array bytes plus a canonical-JSON context tail.

    Array shape/dtype are folded in ahead of the raw bytes so e.g. an
    int64 column and its int32 twin never collide; ``extra`` carries
    the scalar context (geometry, bases, modes) that also determines
    the derived value.
    """
    h = hashlib.sha256()
    for arr in arrays:
        a = np.ascontiguousarray(arr)
        h.update(f"{a.dtype.str}:{a.shape}".encode())
        h.update(a.tobytes())
    if extra is not None:
        h.update(json.dumps(extra, sort_keys=True,
                            separators=(",", ":")).encode())
    return h.hexdigest()
