"""MOCA reproduction: Memory Object Classification and Allocation.

A trace-driven reproduction of Narayan et al., *MOCA: Memory Object
Classification and Allocation in Heterogeneous Memory Systems* (IPDPS
2018), built as a layered Python library:

* ``repro.memdev`` / ``repro.memctrl`` — DRAM device + controller models
  (DDR3, LPDDR2, RLDRAM3, HBM; FR-FCFS; channel groups);
* ``repro.cpu`` — cache hierarchy + interval OoO core (LLC MPKI,
  ROB-head stall accounting);
* ``repro.trace`` / ``repro.workloads`` — synthetic SPEC/SDVBS stand-ins
  with per-object access behaviour;
* ``repro.vm`` — page tables, frame pools, typed heap partitions;
* ``repro.moca`` — the paper's contribution: object naming, profiling,
  threshold classification, object-level page allocation;
* ``repro.sim`` — single-/multi-core experiment runners and metrics;
* ``repro.experiments`` — one module per paper table/figure.

Quickstart::

    from repro import (profile_app, MocaFramework, RunSpec, run,
                       HETER_CONFIG1, HOMOGEN_DDR3)

    profiled = profile_app("mcf")                 # offline profiling
    moca = MocaFramework().instrument("mcf")      # classify objects
    base = run(RunSpec("mcf", "Homogen-DDR3", "homogen", 120_000))
    best = run(RunSpec("mcf", "Heter-config1", "moca", 120_000))
    print(base.memory_edp / best.memory_edp)      # MOCA's EDP win

A :class:`~repro.sim.spec.RunSpec` fully identifies a run; the sweep
engine (:mod:`repro.experiments.engine`) schedules specs across worker
processes and caches their results on disk keyed by the spec's content
hash.  The spec's ``policy`` field names a policy from the pluggable
registry (:mod:`repro.moca.policy`) — the stock trio plus the
capacity-aware ``knapsack`` and learned ``ranker`` policies, or anything
registered via :func:`~repro.moca.policy.register_policy`.  The old
``run_single``/``run_multi`` aliases were removed after their
deprecation cycle.
"""

from repro.memdev import DDR3, HBM, LPDDR2, RLDRAM3, DeviceTiming, MemoryModule
from repro.memctrl import ChannelGroup, MemorySystem, MemRequest
from repro.cpu import CacheHierarchy, CoreParams, InOrderWindowCore, SetAssocCache
from repro.trace import AccessTrace, ObjectBehavior, TraceBuilder
from repro.vm import FramePool, ObjectType, OSPageAllocator, PageTable, TLB
from repro.moca import (
    CapacityBudget,
    ClassificationPolicy,
    HeterAppPolicy,
    HomogeneousPolicy,
    InstrumentedApp,
    MocaFramework,
    MocaPolicy,
    ObjectName,
    PolicySpec,
    ProfileLUT,
    Thresholds,
    classify_object,
    name_from_python_stack,
    name_from_site,
    plan_placement,
    policy_names,
    register_policy,
)
from repro.faults import FaultPlan
from repro.moca.profiler import profile_app
from repro.sim import (
    ALL_SYSTEMS,
    HETER_CONFIG1,
    HETER_CONFIG2,
    HETER_CONFIG3,
    HOMOGEN_DDR3,
    HOMOGEN_HBM,
    HOMOGEN_LP,
    HOMOGEN_RL,
    RunMetrics,
    RunSpec,
    SystemConfig,
    run,
)
from repro.workloads import APPS, APP_CLASSES, MIXES, build_app_trace, mix
from repro.experiments.runner import (
    Fidelity,
    FigureResult,
    config_sweep,
    multi_sweep,
    single_sweep,
)

__version__ = "1.1.0"


def __getattr__(name: str):
    # Removed pre-RunSpec entry points: surface the migration hint from
    # repro.sim (AttributeError on access, ImportError on from-import).
    if name in ("run_single", "run_multi"):
        from repro.sim import multi, single
        getattr(single if name == "run_single" else multi, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    # devices & controllers
    "DDR3", "HBM", "LPDDR2", "RLDRAM3", "DeviceTiming", "MemoryModule",
    "ChannelGroup", "MemorySystem", "MemRequest",
    # cpu
    "CacheHierarchy", "CoreParams", "InOrderWindowCore", "SetAssocCache",
    # traces & workloads
    "AccessTrace", "ObjectBehavior", "TraceBuilder",
    "APPS", "APP_CLASSES", "MIXES", "build_app_trace", "mix",
    # vm
    "FramePool", "ObjectType", "OSPageAllocator", "PageTable", "TLB",
    # faults
    "FaultPlan",
    # moca
    "CapacityBudget", "ClassificationPolicy", "HeterAppPolicy",
    "HomogeneousPolicy", "InstrumentedApp", "MocaFramework", "MocaPolicy",
    "ObjectName", "PolicySpec", "ProfileLUT", "Thresholds",
    "classify_object", "name_from_python_stack", "name_from_site",
    "plan_placement", "policy_names", "profile_app", "register_policy",
    # sim
    "ALL_SYSTEMS", "HETER_CONFIG1", "HETER_CONFIG2", "HETER_CONFIG3",
    "HOMOGEN_DDR3", "HOMOGEN_HBM", "HOMOGEN_LP", "HOMOGEN_RL",
    "RunMetrics", "RunSpec", "SystemConfig", "run",
    # experiments
    "Fidelity", "FigureResult",
    "single_sweep", "multi_sweep", "config_sweep",
    "__version__",
]
