"""Offline memory-object profiler (paper Secs. III-A, IV-A/B, Fig. 7).

Profiles one application on its *training* input: names every heap object,
runs the trace through the cache hierarchy and the interval core against a
profiling memory system (a plain DDR3 machine, like the paper's gem5
baseline), and fills a :class:`~repro.moca.lut.ProfileLUT` with each
object's size, LLC MPKI and ROB-head stall cycles per load miss.

The profiler also keeps the per-segment (stack/code/global) L2 MPKI used
by the paper's Fig. 16 argument for pinning those segments to LPDDR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.cpu.core import CoreParams, CoreResult, InOrderWindowCore
from repro.cpu.hierarchy import (
    CacheHierarchy,
    CacheStats,
    SEG_CODE,
    SEG_GLOBAL,
    SEG_STACK,
)
from repro.memctrl.system import ChannelGroup, MemorySystem
from repro.memdev.presets import DDR3
from repro.moca.allocation import HomogeneousPolicy, plan_placement
from repro.moca.lut import ObjectProfile, ProfileLUT
from repro.moca.naming import name_from_site
from repro.obs.registry import OBS
from repro.trace.events import AccessTrace
from repro.util.units import MIB
from repro.vm.allocator import OSPageAllocator
from repro.vm.physmem import FramePool
from repro.workloads.inputs import TRAIN, build_app_trace

_SEGMENT_LABELS = {SEG_STACK: "stack", SEG_CODE: "code", SEG_GLOBAL: "global"}
__all__ = ["ProfiledApp", "MemoryObjectProfiler", "profile_app",
           "default_profiling_system"]


@dataclass
class ProfiledApp:
    """Everything the offline stage learns about one application."""

    app_name: str
    input_name: str
    lut: ProfileLUT
    app_mpki: float
    app_stall_per_miss: float
    #: segment label → L2 MPKI (Fig. 16).
    segment_mpki: dict[str, float] = field(default_factory=dict)
    cache_stats: CacheStats | None = None
    core_result: CoreResult | None = None


def default_profiling_system(capacity_bytes: int = 256 * MIB) -> MemorySystem:
    """The profiling machine's memory: 4-channel homogeneous DDR3.

    Matches the paper's profiling substrate (gem5 with the Table I
    controller over DDR3) at the reproduction's 1:8 capacity scale.
    """
    return MemorySystem(
        {"main": ChannelGroup(DDR3, 4, capacity_bytes // 4, name="DDR3")},
        name="profiling-ddr3",
    )


class MemoryObjectProfiler:
    """Runs the offline profiling pass for one application input."""

    def __init__(self, core_params: CoreParams | None = None):
        self.core_params = core_params or CoreParams()

    def profile_trace(self, trace: AccessTrace, app_name: str = "",
                      input_name: str = TRAIN,
                      memsys: MemorySystem | None = None) -> ProfiledApp:
        """Profile an already-built access trace."""
        with OBS.span("moca.profile", app=app_name, input=input_name):
            return self._profile_trace(trace, app_name, input_name, memsys)

    def _profile_trace(self, trace: AccessTrace, app_name: str,
                       input_name: str,
                       memsys: MemorySystem | None) -> ProfiledApp:
        memsys = memsys or default_profiling_system()
        with OBS.span("moca.profile.cache_filter"):
            stream, cache_stats = CacheHierarchy().filter_trace(trace)

        pools = {i: FramePool(g.capacity_bytes, i, g.name)
                 for i, g in enumerate(memsys.groups)}
        allocator = OSPageAllocator(pools, roles={"main": 0})
        plan = plan_placement([stream], HomogeneousPolicy(), allocator)

        with OBS.span("moca.profile.core_replay"):
            core = InOrderWindowCore(stream, plan.groups[0], plan.gaddrs[0],
                                     self.core_params)
            result = core.run_to_completion(memsys)

        with OBS.span("moca.profile.lut_build"):
            ki = cache_stats.total_instructions / 1000.0
            # Per-object store counts straight from the raw trace (the
            # cache filter only tracks miss counters): the read/write mix
            # is a classification feature (repro.moca.policy), not a
            # timing input, so it never touches the filter kernel.
            heap_writes = trace.obj_id[trace.is_write.astype(bool)]
            heap_writes = heap_writes[heap_writes >= 0]
            write_counts = np.bincount(heap_writes) if heap_writes.size else \
                np.zeros(0, dtype=np.int64)
            lut = ProfileLUT(app_name)
            for obj in trace.layout.objects:
                acc, misses = cache_stats.per_object.get(obj.obj_id, [0, 0])
                lut.register(ObjectProfile(
                    name=name_from_site(obj.site),
                    label=f"{app_name}.{obj.name}" if app_name else obj.name,
                    size_bytes=obj.size_bytes,
                    start_vaddr=obj.vbase,
                    accesses=acc,
                    writes=(int(write_counts[obj.obj_id])
                            if obj.obj_id < write_counts.size else 0),
                    llc_misses=misses,
                    load_misses=result.load_misses_by_obj.get(obj.obj_id, 0),
                    stall_cycles=result.stall_by_obj.get(obj.obj_id, 0),
                    kilo_instructions=ki,
                ))
        OBS.add("moca.objects_profiled", len(trace.layout.objects))

        segment_mpki = {}
        for seg_id, label in _SEGMENT_LABELS.items():
            _, seg_misses = cache_stats.per_object.get(seg_id, [0, 0])
            segment_mpki[label] = seg_misses / ki if ki else 0.0

        app_mpki, app_spm = lut.totals()
        return ProfiledApp(
            app_name=app_name,
            input_name=input_name,
            lut=lut,
            app_mpki=app_mpki,
            app_stall_per_miss=app_spm,
            segment_mpki=segment_mpki,
            cache_stats=cache_stats,
            core_result=result,
        )


    def profile_windows(self, windows: list[tuple[AccessTrace, float]],
                        app_name: str = "",
                        input_name: str = TRAIN) -> ProfiledApp:
        """Weighted multi-window profiling (the paper's SimPoints).

        The paper fast-forwards to several SimPoints, profiles 100M
        instructions at each, and takes a weighted combination of the
        per-object metrics (Sec. V-A).  Each ``(trace, weight)`` pair
        here is one window; the LUTs merge with the given weights and
        the aggregate metrics are recomputed from the merged counters.
        """
        if not windows:
            raise ValueError("need at least one profiling window")
        total_w = sum(w for _, w in windows)
        if total_w <= 0:
            raise ValueError("window weights must sum to a positive value")
        merged = ProfileLUT(app_name)
        segment_mpki: dict[str, float] = {}
        for trace, weight in windows:
            part = self.profile_trace(trace, app_name, input_name)
            frac = weight / total_w
            for profile in part.lut:
                merged.register(ObjectProfile(
                    name=profile.name, label=profile.label,
                    size_bytes=profile.size_bytes,
                    start_vaddr=profile.start_vaddr,
                ), weight=1.0)  # ensure the entry exists
                merged.get(profile.name).merge(profile, weight=frac)
            for seg, mpki in part.segment_mpki.items():
                segment_mpki[seg] = segment_mpki.get(seg, 0.0) + mpki * frac
        app_mpki, app_spm = merged.totals()
        return ProfiledApp(
            app_name=app_name, input_name=input_name, lut=merged,
            app_mpki=app_mpki, app_stall_per_miss=app_spm,
            segment_mpki=segment_mpki,
        )


@lru_cache(maxsize=64)
def profile_app(app_name: str, input_name: str = TRAIN,
                n_accesses: int = 200_000) -> ProfiledApp:
    """Profile (and memoize) one named application input."""
    trace = build_app_trace(app_name, input_name, n_accesses)
    return MemoryObjectProfiler().profile_trace(trace, app_name, input_name)
