"""End-to-end MOCA pipeline (paper Fig. 7).

:class:`MocaFramework` ties the offline half together: profile an
application on its training input, classify every named object, and emit
an :class:`InstrumentedApp` — the reproduction's analogue of the paper's
instrumented binary, carrying (object name → type) metadata.  At runtime
the framework resolves those names against the reference input's objects
to give :class:`~repro.moca.allocation.MocaPolicy` its object-type maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.moca.classify import DEFAULT_THRESHOLDS, Thresholds, classify_object
from repro.moca.naming import ObjectName, name_from_site
from repro.moca.profiler import ProfiledApp, profile_app
from repro.obs.registry import OBS
from repro.trace.events import AccessTrace
from repro.vm.heap import ObjectType
from repro.workloads.inputs import TRAIN

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class InstrumentedApp:
    """Classification metadata instrumented into an application binary.

    Attributes:
        app_name: The application.
        types: Object name → profiled type (the extra ``malloc`` argument
            of paper Sec. III-C).
        thresholds: Thresholds the classification used.
    """

    app_name: str
    types: dict[ObjectName, ObjectType] = field(default_factory=dict)
    thresholds: Thresholds = DEFAULT_THRESHOLDS
    #: Profiled miss density (LLC misses per KiB of object) per name —
    #: MOCA's runtime uses it to give hot objects first claim on their
    #: preferred module (Sec. VI-B).
    heat: dict[ObjectName, float] = field(default_factory=dict)

    def type_of_site(self, site: int) -> ObjectType | None:
        """Type for an allocation site, or None if never profiled."""
        return self.types.get(name_from_site(site))

    def heat_of_site(self, site: int) -> float:
        """Profiled miss density for a site (0 if never profiled)."""
        return self.heat.get(name_from_site(site), 0.0)

    def partition_histogram(self) -> dict[ObjectType, int]:
        counts = {t: 0 for t in ObjectType}
        for t in self.types.values():
            counts[t] += 1
        return counts


class MocaFramework:
    """Profile → classify → instrument → (runtime) object-type maps.

    Args:
        faults: Optional :class:`~repro.faults.FaultPlan`.  When the plan
            carries a guidance fault, the profiling LUT is degraded
            (entries dropped or scrambled) *before* classification —
            modelling stale or mismatched training-input profiles — so
            the instrumented metadata, not the simulator, is what lies.
    """

    def __init__(self, thresholds: Thresholds = DEFAULT_THRESHOLDS,
                 profile_input: str = TRAIN,
                 profile_accesses: int = 200_000,
                 faults: "FaultPlan | None" = None):
        self.thresholds = thresholds
        self.profile_input = profile_input
        self.profile_accesses = profile_accesses
        self.faults = faults

    def _apply_faults(self, profiled: ProfiledApp) -> ProfiledApp:
        if self.faults is not None and self.faults.has_lut_fault:
            # Deferred import: repro.faults is a leaf layer, but keep the
            # dependency out of the hot path for clean runs.
            from repro.faults.inject import apply_lut_faults

            profiled = apply_lut_faults(profiled, self.faults)
        return profiled

    def profiled(self, app_name: str) -> ProfiledApp:
        """Profile one application (training input, guidance faults
        applied) — the classifier-agnostic half of the offline stage."""
        return self._apply_faults(profile_app(
            app_name, self.profile_input, self.profile_accesses))

    def _instrument_one(self, app_name: str, profiled: ProfiledApp,
                        types: "dict[ObjectName, ObjectType]",
                        ) -> InstrumentedApp:
        heat = {
            p.name: p.llc_mpki / max(1.0, p.size_bytes / 1024.0)
            for p in profiled.lut
        }
        OBS.add("moca.objects_classified", len(types))
        return InstrumentedApp(app_name=app_name, types=types,
                               thresholds=self.thresholds, heat=heat)

    def instrument(self, app_name: str,
                   profiled: ProfiledApp | None = None) -> InstrumentedApp:
        """Run the offline stage for one application (Fig. 5 thresholds).

        Classifier-pluggable variants go through :meth:`instrument_many`
        with a :class:`~repro.moca.policy.ClassificationPolicy`; this
        method is the threshold special case and produces bit-identical
        metadata to ``instrument_many`` with a ``ThresholdClassifier``.
        """
        if profiled is None:
            profiled = profile_app(
                app_name, self.profile_input, self.profile_accesses)
        profiled = self._apply_faults(profiled)
        types = {
            p.name: classify_object(p, self.thresholds)
            for p in profiled.lut
        }
        return self._instrument_one(app_name, profiled, types)

    def instrument_many(self, app_names, classifier,
                        budget=None) -> list[InstrumentedApp]:
        """Offline stage for a set of co-running applications.

        ``classifier`` follows the
        :class:`~repro.moca.policy.ClassificationPolicy` protocol and
        sees every core's LUT at once together with the shared fast-tier
        ``budget`` (:class:`~repro.moca.policy.CapacityBudget`, or
        ``None`` for unlimited) — capacity-aware policies need the
        global view to arbitrate the tier between cores.
        """
        if budget is None:
            from repro.moca.policy import UNLIMITED
            budget = UNLIMITED
        profs = [self.profiled(a) for a in app_names]
        per_app_types = classifier.classify([p.lut for p in profs], budget)
        return [self._instrument_one(a, prof, types)
                for a, prof, types in zip(app_names, profs, per_app_types)]

    def runtime_types(self, instrumented: InstrumentedApp,
                      trace: AccessTrace) -> dict[int, ObjectType]:
        """Resolve instrumented names against a runtime trace's objects.

        Objects whose allocation site was never profiled stay out of the
        map — the allocator defaults them to the power module, exactly
        like the paper's unclassified pages.
        """
        out: dict[int, ObjectType] = {}
        for obj in trace.layout.objects:
            typ = instrumented.type_of_site(obj.site)
            if typ is not None:
                out[obj.obj_id] = typ
        return out

    def runtime_heat(self, instrumented: InstrumentedApp,
                     trace: AccessTrace) -> dict[int, float]:
        """Resolve profiled miss densities against a runtime trace."""
        return {
            obj.obj_id: instrumented.heat_of_site(obj.site)
            for obj in trace.layout.objects
            if instrumented.heat_of_site(obj.site) > 0.0
        }
