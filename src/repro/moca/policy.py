"""The placement-policy API: protocol, registry, and canonical specs.

The paper's classifier is a fixed two-threshold rule (Fig. 5).  This
module makes the classification stage a first-class, pluggable policy
surface:

* :class:`ClassificationPolicy` — the protocol: profiled
  :class:`~repro.moca.lut.ProfileLUT` features (MPKI, stall/miss, size,
  read/write mix) plus a fast-tier :class:`CapacityBudget` in, per-object
  :class:`~repro.vm.heap.ObjectType` assignments out;
* the **registry** — :func:`register_policy` maps a policy name to a
  factory; :data:`~repro.sim.spec.RunSpec` validates against it and the
  runners build through it (entry-point-style registration, no central
  dispatch table to edit);
* :class:`PolicySpec` — the structured policy field of a ``RunSpec``:
  a name plus optional parameters.  Its canonical form is the *bare
  name string* when there are no parameters, so every stock-policy cache
  key is byte-identical to the pre-API era (the ``fast_path``/
  ``FaultPlan`` precedent: only non-defaults extend the canonical dict).

Stock policies (registered below): ``homogen``, ``heter-app`` and
``moca`` exactly as before, plus two capacity-aware additions —
``knapsack`` (greedy benefit-per-byte fill of the fast tier, see
:class:`KnapsackClassifier`) and ``ranker`` (a learned logistic scorer,
:mod:`repro.moca.ranker`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Protocol, \
    runtime_checkable

from repro.moca.allocation import (
    HeterAppPolicy,
    HomogeneousPolicy,
    MocaPolicy,
    PlacementPolicy,
)
from repro.moca.classify import Thresholds, class_letter_to_type, \
    classify_object
from repro.moca.framework import MocaFramework
from repro.moca.lut import ProfileLUT
from repro.moca.naming import ObjectName
from repro.trace.events import PAGE_BYTES
from repro.vm.heap import ObjectType
from repro.workloads.inputs import build_app_trace
from repro.workloads.spec import APP_CLASSES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan

__all__ = [
    "CapacityBudget",
    "ClassificationPolicy",
    "KnapsackClassifier",
    "PolicyContext",
    "PolicyInfo",
    "PolicySpec",
    "ThresholdClassifier",
    "UNLIMITED",
    "build_classifier",
    "build_policy",
    "classified_policy",
    "policy_canonical",
    "policy_info",
    "policy_names",
    "register_policy",
    "select_fast_tier",
    "stock_policy_names",
    "thresholds_from_dict",
    "thresholds_to_dict",
    "unregister_policy",
]


# ---- shared Thresholds serialization ----------------------------------------
#
# One canonical dict form, used by RunSpec.canonical() and the
# InstrumentedApp sidecar alike, so the two can never drift.

def thresholds_to_dict(thresholds: Thresholds) -> dict:
    """Canonical JSON-compatible form of a :class:`Thresholds`."""
    return {"thr_lat": thresholds.thr_lat, "thr_bw": thresholds.thr_bw}


def thresholds_from_dict(data: Mapping) -> Thresholds:
    """Inverse of :func:`thresholds_to_dict` (validates on construction)."""
    return Thresholds(thr_lat=data["thr_lat"], thr_bw=data["thr_bw"])


# ---- policy specs -----------------------------------------------------------

_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*$")
_PARAM_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def _coerce(text: str) -> bool | int | float | str:
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _check_param(key: str, value: object) -> None:
    if not _PARAM_RE.match(key):
        raise ValueError(f"bad policy parameter name {key!r}")
    if not isinstance(value, (bool, int, float, str)):
        raise ValueError(
            f"policy parameter {key}={value!r} must be a bool/int/float/str "
            f"scalar (specs are hashable cache keys)")


@dataclass(frozen=True)
class PolicySpec:
    """A policy name plus optional scalar parameters.

    Frozen and hashable, so it can sit directly in a
    :class:`~repro.sim.spec.RunSpec`.  Parameters are normalized to a
    key-sorted tuple; :meth:`canonical` collapses a parameterless spec to
    the bare name string, which keeps pre-API cache keys byte-stable.

    Text form (CLI and ``RunSpec(policy=...)`` strings):
    ``"knapsack"`` or ``"knapsack:fast_mb=128"`` or
    ``"ranker:fast_mb=64,foo=bar"``.
    """

    name: str
    params: tuple[tuple[str, bool | int | float | str], ...] = ()

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(f"bad policy name {self.name!r}")
        keys = [k for k, _ in self.params]
        if len(keys) != len(set(keys)):
            raise ValueError(f"duplicate policy parameter in {self.params!r}")
        for key, value in self.params:
            _check_param(key, value)
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    # -- constructors ---------------------------------------------------------

    @classmethod
    def of(cls, name: str, **params) -> "PolicySpec":
        return cls(name, tuple(params.items()))

    @classmethod
    def parse(cls, policy: "str | PolicySpec") -> "PolicySpec":
        """``"name"`` / ``"name:k=v,..."`` / PolicySpec → PolicySpec."""
        if isinstance(policy, PolicySpec):
            return policy
        name, sep, rest = policy.partition(":")
        if not sep:
            return cls(name)
        params = {}
        for part in rest.split(","):
            key, eq, value = part.partition("=")
            if not eq:
                raise ValueError(
                    f"bad policy parameter {part!r} in {policy!r} "
                    f"(expected name:key=value,...)")
            params[key.strip()] = _coerce(value.strip())
        return cls(name, tuple(params.items()))

    @classmethod
    def from_canonical(cls, data: "str | Mapping") -> "PolicySpec":
        """Inverse of :meth:`canonical`."""
        if isinstance(data, str):
            return cls(data)
        return cls.of(data["name"], **dict(data.get("params", {})))

    # -- views ----------------------------------------------------------------

    def params_dict(self) -> dict:
        return dict(self.params)

    def canonical(self) -> "str | dict":
        """Cache-key form: the bare name unless parameters are present."""
        if not self.params:
            return self.name
        return {"name": self.name, "params": self.params_dict()}

    def label(self) -> str:
        """Human-readable form (``meta["policy"]``, progress spans)."""
        if not self.params:
            return self.name

        def fmt(v: object) -> str:
            # Match the parse syntax: booleans as true/false.
            return str(v).lower() if isinstance(v, bool) else str(v)

        inner = ",".join(f"{k}={fmt(v)}" for k, v in self.params)
        return f"{self.name}[{inner}]"


def policy_canonical(policy: "str | PolicySpec") -> "str | dict":
    """Canonical form of a RunSpec policy field (string or spec)."""
    return policy if isinstance(policy, str) else policy.canonical()


# ---- capacity budget & build context ---------------------------------------


@dataclass(frozen=True)
class CapacityBudget:
    """How much fast-tier (latency-optimized) capacity a classifier may
    plan for, in bytes.  ``None`` means unlimited — the pre-API
    behaviour, and what capacity-oblivious policies assume."""

    fast_bytes: int | None = None

    @property
    def unlimited(self) -> bool:
        return self.fast_bytes is None


UNLIMITED = CapacityBudget()


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy factory may need to build a runtime policy.

    The sim layer (:mod:`repro.sim.single`) fills this in from the
    :class:`~repro.sim.spec.RunSpec` and the resolved system config —
    notably the fast-tier budget, which defaults to the physical
    capacity of the config's ``lat`` role.
    """

    app_names: tuple[str, ...]
    input_name: str
    n_accesses: int
    thresholds: Thresholds | None = None
    profile_accesses: int | None = None
    faults: "FaultPlan | None" = None
    budget: CapacityBudget = UNLIMITED


# ---- the classification protocol -------------------------------------------


@runtime_checkable
class ClassificationPolicy(Protocol):
    """Per-object classification under a fast-tier capacity budget.

    ``luts`` holds one profiled LUT per core; the result holds one
    ``{object name: ObjectType}`` map per core, aligned by index.
    Implementations read LUT features only — MPKI, stall cycles per
    load miss, size, read/write mix — and must be deterministic.
    """

    def classify(self, luts: list[ProfileLUT], budget: CapacityBudget,
                 ) -> list[dict[ObjectName, ObjectType]]:
        ...  # pragma: no cover - protocol


class ThresholdClassifier:
    """The paper's Fig. 5 two-threshold rule (capacity-oblivious)."""

    def __init__(self, thresholds: Thresholds | None = None):
        self.thresholds = thresholds or Thresholds()

    def classify(self, luts: list[ProfileLUT],
                 budget: CapacityBudget = UNLIMITED,
                 ) -> list[dict[ObjectName, ObjectType]]:
        return [{p.name: classify_object(p, self.thresholds) for p in lut}
                for lut in luts]


def select_fast_tier(candidates: Iterable[tuple[object, float, int]],
                     fast_bytes: int) -> set:
    """Greedy benefit-per-byte fill of the fast tier.

    ``candidates`` are ``(key, benefit, size_bytes)`` triples; returns
    the set of chosen keys.  Fractional-knapsack flavour: whole
    candidates are taken in density order and the final pick may
    straddle the budget — page-granular allocation spills its tail
    exactly like the threshold rule's own overflow does, so packing is
    never worse than ignoring the budget.  Ties break on the key for
    determinism.
    """
    chosen: set = set()
    used = 0
    ranked = sorted(candidates,
                    key=lambda c: (-c[1] / max(1, c[2]), c[0]))
    for key, _benefit, size in ranked:
        if used >= fast_bytes:
            break
        chosen.add(key)
        used += max(1, size)
    return chosen


def _page_footprint(size_bytes: int) -> int:
    """Bytes of frame capacity an object actually consumes.

    Heap layouts are page-aligned (:class:`repro.trace.events.PlacedObject`
    packs objects at page boundaries), so an object's frame demand is its
    size rounded up to whole pages.
    """
    return -(-size_bytes // PAGE_BYTES) * PAGE_BYTES


class KnapsackClassifier:
    """Capacity-aware greedy/knapsack refinement of the Fig. 5 rule.

    Starts from the threshold classification and fills whatever fast-tier
    capacity the LAT class leaves *spare* with the densest remaining
    objects (profiled LLC misses per byte, whole objects only, greedy by
    benefit-per-byte) — capacity the threshold rule leaves idle.  BW and
    POW objects compete on equal benefit-per-byte terms: the paper avoids
    parking cold objects on the premium tier because *provisioning* fast
    memory for them wastes power, but here the module exists and its
    static power is paid whether the frames idle or not, so filling
    spare frames with whatever still misses is a strict latency win.
    Objects that never miss the LLC stay put — promoting them buys
    nothing.

    Two deliberate non-moves keep the refinement weakly dominant over the
    plain threshold rule at *every* budget:

    * no **demotion** — when the LAT class overflows the budget, the
      allocator already performs the fractional-knapsack fill for us:
      :func:`~repro.moca.allocation.plan_placement` demand-pages objects
      in heat order (miss density) and spills overflow page-granularly
      down the LAT fallback chain, whose next hop is the same BW module
      a demotion would target.  Re-typing the losers forfeits the
      straddler's partial fast-tier fill and can only tie or lose (this
      is measurable: whole-object demotion regresses mcf at small
      budgets).  So under a binding budget the assignment — and the
      simulated result — is exactly the threshold rule's.
    * no **overcommit** — promotion is accounted in page-rounded bytes
      against the page-rounded budget, so promoted objects consume only
      genuinely spare frames and can never push a LAT page out of the
      fast tier.
    """

    def __init__(self, thresholds: Thresholds | None = None):
        self.thresholds = thresholds or Thresholds()

    def classify(self, luts: list[ProfileLUT],
                 budget: CapacityBudget = UNLIMITED,
                 ) -> list[dict[ObjectName, ObjectType]]:
        assignments = ThresholdClassifier(self.thresholds).classify(
            luts, budget)
        if budget.unlimited:
            return assignments
        pool = (budget.fast_bytes // PAGE_BYTES) * PAGE_BYTES
        lat_demand = sum(
            _page_footprint(p.size_bytes)
            for core, lut in enumerate(luts) for p in lut
            if assignments[core][p.name] is ObjectType.LAT)
        spare = pool - lat_demand
        if spare <= 0:
            return assignments
        # Promotion pass: whole non-LAT objects into the spare space,
        # densest first (ties broken by core then allocation site for
        # determinism).
        promotable = sorted(
            ((core, p) for core, lut in enumerate(luts) for p in lut
             if assignments[core][p.name] is not ObjectType.LAT
             and p.llc_misses > 0),
            key=lambda cp: (-cp[1].llc_misses / max(1, cp[1].size_bytes),
                            cp[0], cp[1].name.frames))
        for core, p in promotable:
            need = _page_footprint(p.size_bytes)
            if need <= spare:
                assignments[core][p.name] = ObjectType.LAT
                spare -= need
        return assignments


# ---- the registry -----------------------------------------------------------


@dataclass(frozen=True)
class PolicyInfo:
    """One registered policy: its factory plus registry metadata."""

    name: str
    factory: Callable[[PolicySpec, PolicyContext], PlacementPolicy]
    description: str = ""
    #: Stock policies are the pre-API trio whose cache keys are pinned.
    stock: bool = False
    #: Classification-based policies also expose their bare classifier
    #: (:class:`ClassificationPolicy`), which the online guidance
    #: service re-runs against live LUT slices at every epoch boundary.
    #: ``None`` for policies without one (homogen, heter-app).
    classifier_factory: "Callable[[PolicySpec, PolicyContext], ClassificationPolicy] | None" = None


_REGISTRY: dict[str, PolicyInfo] = {}


def register_policy(name: str, *, description: str = "",
                    stock: bool = False, classifier=None):
    """Register a policy factory under ``name`` (decorator).

    The factory takes ``(spec, context)`` — the parsed
    :class:`PolicySpec` (for parameters) and the :class:`PolicyContext`
    (apps, trace length, thresholds, budget) — and returns a
    :class:`~repro.moca.allocation.PlacementPolicy`.  Registration makes
    the name valid in a :class:`~repro.sim.spec.RunSpec` and therefore
    usable from both CLIs, the sweep engine, and the result cache.

    ``classifier`` optionally registers a second factory with the same
    signature returning the policy's bare :class:`ClassificationPolicy`,
    which makes the name valid for online (``RunSpec.online``) runs —
    the guidance service re-invokes it against live-updated LUTs.
    """
    if not _NAME_RE.match(name):
        raise ValueError(f"bad policy name {name!r}")

    def deco(factory):
        if name in _REGISTRY:
            raise ValueError(f"policy {name!r} is already registered")
        _REGISTRY[name] = PolicyInfo(name, factory, description, stock,
                                     classifier)
        return factory

    return deco


def unregister_policy(name: str) -> None:
    """Remove a registered policy (tests, plugin teardown)."""
    if name in _REGISTRY and _REGISTRY[name].stock:
        raise ValueError(f"cannot unregister stock policy {name!r}")
    _REGISTRY.pop(name, None)


def policy_names() -> tuple[str, ...]:
    """All registered policy names, in registration order."""
    return tuple(_REGISTRY)


def stock_policy_names() -> tuple[str, ...]:
    """The pre-API trio (the deprecated ``POLICIES`` tuple)."""
    return tuple(n for n, info in _REGISTRY.items() if info.stock)


def policy_info(name: str) -> PolicyInfo:
    """Look up one registered policy; helpful error on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r} (choose from {policy_names()}, or "
            f"register it with repro.moca.policy.register_policy)") from None


def build_policy(policy: "str | PolicySpec",
                 context: PolicyContext) -> PlacementPolicy:
    """Build the runtime placement policy a spec names."""
    spec = PolicySpec.parse(policy)
    return policy_info(spec.name).factory(spec, context)


def build_classifier(policy: "str | PolicySpec",
                     context: PolicyContext) -> ClassificationPolicy:
    """Build the bare classifier a classification-based policy uses.

    The online guidance service calls this once at registration and then
    re-runs the returned classifier against live-updated LUT slices at
    every epoch boundary.  Raises for policies that register no
    classifier (homogen, heter-app) — there is nothing to re-evaluate.
    """
    spec = PolicySpec.parse(policy)
    info = policy_info(spec.name)
    if info.classifier_factory is None:
        raise ValueError(
            f"policy {spec.name!r} registers no classifier; online "
            f"reclassification needs a classification-based policy")
    return info.classifier_factory(spec, context)


# ---- classifier → runtime policy bridge ------------------------------------


def classified_policy(context: PolicyContext,
                      classifier: ClassificationPolicy) -> MocaPolicy:
    """Run the offline pipeline with ``classifier`` and resolve the
    resulting per-name types against each core's runtime trace.

    This is the shared back half of every classification-based policy:
    profile (training input, guidance faults applied), classify under
    the context's budget, then map object names to runtime ids.  The
    heat maps (profiled miss density, the allocation priority) come from
    the profile alone, so two classifiers that agree on types produce
    bit-identical placements.
    """
    fw = MocaFramework(
        thresholds=context.thresholds or Thresholds(),
        profile_accesses=context.profile_accesses or context.n_accesses,
        faults=context.faults,
    )
    instrumented = fw.instrument_many(context.app_names, classifier,
                                      context.budget)
    per_core_types = []
    per_core_heat = []
    for app, inst in zip(context.app_names, instrumented):
        trace = build_app_trace(app, context.input_name, context.n_accesses)
        per_core_types.append(fw.runtime_types(inst, trace))
        per_core_heat.append(fw.runtime_heat(inst, trace))
    return MocaPolicy(per_core_types, per_core_heat)


# ---- stock registrations ----------------------------------------------------


@register_policy("homogen", stock=True,
                 description="everything to the single channel group")
def _homogen(spec: PolicySpec, context: PolicyContext) -> PlacementPolicy:
    return HomogeneousPolicy()


@register_policy("heter-app", stock=True,
                 description="per-application class (paper Table III)")
def _heter_app(spec: PolicySpec, context: PolicyContext) -> PlacementPolicy:
    return HeterAppPolicy(
        [class_letter_to_type(APP_CLASSES[a]) for a in context.app_names])


def _moca_classifier(spec: PolicySpec,
                     context: PolicyContext) -> ClassificationPolicy:
    return ThresholdClassifier(context.thresholds)


@register_policy("moca", stock=True,
                 description="per-object Fig. 5 threshold classification",
                 classifier=_moca_classifier)
def _moca(spec: PolicySpec, context: PolicyContext) -> PlacementPolicy:
    return classified_policy(context,
                             ThresholdClassifier(context.thresholds))


def _knapsack_classifier(spec: PolicySpec,
                         context: PolicyContext) -> ClassificationPolicy:
    return KnapsackClassifier(context.thresholds)


@register_policy("knapsack",
                 description="capacity-aware greedy benefit-per-byte "
                             "allocation over the threshold candidates",
                 classifier=_knapsack_classifier)
def _knapsack(spec: PolicySpec, context: PolicyContext) -> PlacementPolicy:
    return classified_policy(context,
                             KnapsackClassifier(context.thresholds))


def _ranker_classifier(spec: PolicySpec,
                       context: PolicyContext) -> ClassificationPolicy:
    # Deferred import: training pulls in numpy-heavy fitting that most
    # sessions never touch.
    from repro.moca.ranker import RankerClassifier

    return RankerClassifier.trained(
        thresholds=context.thresholds,
        profile_accesses=context.profile_accesses or context.n_accesses)


@register_policy("ranker",
                 description="learned logistic ranker over LUT features "
                             "(trained on the synthetic corpus)",
                 classifier=_ranker_classifier)
def _ranker(spec: PolicySpec, context: PolicyContext) -> PlacementPolicy:
    return classified_policy(context, _ranker_classifier(spec, context))
