"""Empirical classification-threshold search (paper Sec. IV-C).

The paper sets ``Thr_Lat`` to the lowest object LLC MPKI at which RLDRAM
placement still improves memory energy efficiency, and ``Thr_BW`` to the
highest ROB-stall value at which HBM placement still helps, for the
target system.  :func:`search_thresholds` reproduces that procedure: it
sweeps a candidate grid and scores each (Thr_Lat, Thr_BW) pair by the
geometric-mean memory EDP of MOCA runs over a set of applications.

This doubles as the threshold-sensitivity ablation (DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.moca.classify import Thresholds


@dataclass(frozen=True)
class ThresholdScore:
    """One grid point of the search."""

    thresholds: Thresholds
    mean_memory_edp: float
    mean_access_cycles: float


def search_thresholds(
    apps: tuple[str, ...] = ("mcf", "lbm", "gcc"),
    thr_lat_candidates: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    thr_bw_candidates: tuple[float, ...] = (10.0, 20.0, 30.0),
    n_accesses: int = 60_000,
) -> list[ThresholdScore]:
    """Sweep the threshold grid; returns scores sorted best-first.

    Scores are geometric means over ``apps`` of MOCA's memory EDP on the
    default heterogeneous system, normalized per app to the grid's first
    point so apps weigh equally.
    """
    # Imported lazily: repro.sim imports repro.moca, so a module-level
    # import here would be circular.
    from repro.experiments.runner import geomean
    from repro.sim.spec import RunSpec, run

    results: list[ThresholdScore] = []
    baselines: dict[str, float] = {}
    for thr_lat in thr_lat_candidates:
        for thr_bw in thr_bw_candidates:
            thresholds = Thresholds(thr_lat=thr_lat, thr_bw=thr_bw)
            edps = []
            times = []
            for app in apps:
                m = run(RunSpec(workload=app, config="Heter-config1",
                                policy="moca", n_accesses=n_accesses,
                                thresholds=thresholds))
                base = baselines.setdefault(app, m.memory_edp or 1.0)
                edps.append(m.memory_edp / base)
                times.append(float(m.mem_access_cycles))
            results.append(ThresholdScore(
                thresholds=thresholds,
                mean_memory_edp=geomean(edps),
                mean_access_cycles=geomean(times),
            ))
    results.sort(key=lambda s: s.mean_memory_edp)
    return results


def best_thresholds(**kwargs) -> Thresholds:
    """Convenience: the best grid point of :func:`search_thresholds`."""
    return search_thresholds(**kwargs)[0].thresholds
