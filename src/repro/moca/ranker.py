"""Learned object classification: a logistic ranker over LUT features.

A pure-numpy stand-in for the learning-to-rank line of work on object
placement (e.g. arXiv:2211.02195): instead of the paper's two fixed
thresholds, two tiny logistic models score each profiled object —

* *intensive*: is the object memory-intensive at all (vs. POW)?
* *latency*: given intensive, is it latency- (vs. bandwidth-) sensitive?

Features come straight from the :class:`~repro.moca.lut.ObjectProfile`:
log LLC MPKI, log ROB-head stall cycles per load miss, log size, and the
read/write mix.  Training labels are the Fig. 5 threshold classes over
the synthetic app corpus *minus* a held-out app per paper class; the
held-out accuracy is recorded on the model so the evaluation is part of
the artefact (and pinned by ``tests/test_policy.py``).

Under a binding :class:`~repro.moca.policy.CapacityBudget`, predicted-LAT
objects compete for the fast tier by model-confidence-weighted stall
density, through the same :func:`~repro.moca.policy.select_fast_tier`
greedy fill the knapsack policy uses.

Deterministic by construction: fixed initialization, full-batch gradient
descent, no random state.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.moca.classify import Thresholds, classify_object
from repro.moca.lut import ObjectProfile, ProfileLUT
from repro.moca.naming import ObjectName
from repro.moca.policy import CapacityBudget, UNLIMITED, select_fast_tier
from repro.moca.profiler import profile_app
from repro.vm.heap import ObjectType
from repro.workloads.spec import APPS

__all__ = ["FEATURE_NAMES", "HELD_OUT_APPS", "RankerClassifier",
           "RankerModel", "train_ranker"]

FEATURE_NAMES = ("log_mpki", "log_stall_per_miss", "log_size_kib",
                 "write_frac")

#: One held-out app per paper class (L/B/N) — never used for fitting,
#: only for the recorded generalization accuracy.
HELD_OUT_APPS = ("disparity", "tracking", "stitch")


def _features(p: ObjectProfile) -> list[float]:
    return [
        math.log1p(p.llc_mpki),
        math.log1p(p.stall_per_load_miss),
        math.log1p(p.size_bytes / 1024.0),
        p.write_frac,
    ]


def _fit_logistic(x: np.ndarray, y: np.ndarray,
                  iters: int = 400, lr: float = 0.5,
                  l2: float = 1e-3) -> np.ndarray:
    """Full-batch gradient descent on ridge-regularized logistic loss.

    ``x`` already carries the bias column.  Deterministic: zero init,
    fixed step count.
    """
    w = np.zeros(x.shape[1])
    n = max(1, len(y))
    for _ in range(iters):
        z = x @ w
        pred = 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))
        grad = x.T @ (pred - y) / n + l2 * w
        grad[0] -= l2 * w[0]  # no penalty on the bias
        w -= lr * grad
    return w


@dataclass(frozen=True)
class RankerModel:
    """Two fitted logistic heads plus their standardization and eval."""

    feature_names: tuple[str, ...]
    mean: tuple[float, ...]
    scale: tuple[float, ...]
    #: Bias-first weight vectors over the standardized features.
    w_intensive: tuple[float, ...]
    w_latency: tuple[float, ...]
    train_apps: tuple[str, ...]
    held_out_apps: tuple[str, ...]
    #: Agreement with the threshold classes on the held-out apps.
    held_out_accuracy: float

    def _standardize(self, p: ObjectProfile) -> np.ndarray:
        raw = np.asarray(_features(p))
        z = (raw - np.asarray(self.mean)) / np.asarray(self.scale)
        return np.concatenate(([1.0], z))

    def _score(self, w: tuple[float, ...], p: ObjectProfile) -> float:
        z = float(np.dot(np.asarray(w), self._standardize(p)))
        return 1.0 / (1.0 + math.exp(-max(-30.0, min(30.0, z))))

    def p_intensive(self, p: ObjectProfile) -> float:
        """P(object is memory-intensive — not POW)."""
        return self._score(self.w_intensive, p)

    def p_latency(self, p: ObjectProfile) -> float:
        """P(latency-sensitive | memory-intensive)."""
        return self._score(self.w_latency, p)

    def predict(self, p: ObjectProfile) -> ObjectType:
        if self.p_intensive(p) < 0.5:
            return ObjectType.POW
        if self.p_latency(p) >= 0.5:
            return ObjectType.LAT
        return ObjectType.BW


def _corpus(apps, thresholds: Thresholds, profile_accesses: int):
    """(features, intensive labels, latency labels, threshold classes)."""
    feats, y_int, y_lat, classes = [], [], [], []
    for app in apps:
        for p in profile_app(app, n_accesses=profile_accesses).lut:
            cls = classify_object(p, thresholds)
            feats.append(_features(p))
            y_int.append(0.0 if cls is ObjectType.POW else 1.0)
            y_lat.append(1.0 if cls is ObjectType.LAT else 0.0)
            classes.append(cls)
    return (np.asarray(feats), np.asarray(y_int), np.asarray(y_lat),
            classes)


@lru_cache(maxsize=8)
def train_ranker(thresholds: Thresholds = Thresholds(),
                 profile_accesses: int = 200_000) -> RankerModel:
    """Fit (and memoize) the two logistic heads on the app corpus.

    Labels are the threshold classes at ``thresholds`` — the learned
    model distills the rule from data it can generalize from, rather
    than needing hand-tuned cut points per system.
    """
    train_apps = tuple(a for a in APPS if a not in HELD_OUT_APPS)
    x, y_int, y_lat, _ = _corpus(train_apps, thresholds, profile_accesses)
    mean = x.mean(axis=0)
    scale = x.std(axis=0)
    scale[scale < 1e-9] = 1.0
    xs = np.hstack([np.ones((len(x), 1)), (x - mean) / scale])
    w_int = _fit_logistic(xs, y_int)
    # The latency head only ever sees intensive objects at prediction
    # time, so fit it on the intensive subset.
    intensive = y_int > 0.5
    w_lat = (_fit_logistic(xs[intensive], y_lat[intensive])
             if intensive.any() else np.zeros(xs.shape[1]))

    model = RankerModel(
        feature_names=FEATURE_NAMES,
        mean=tuple(float(v) for v in mean),
        scale=tuple(float(v) for v in scale),
        w_intensive=tuple(float(v) for v in w_int),
        w_latency=tuple(float(v) for v in w_lat),
        train_apps=train_apps,
        held_out_apps=HELD_OUT_APPS,
        held_out_accuracy=0.0,
    )
    held = [p for app in HELD_OUT_APPS
            for p in profile_app(app, n_accesses=profile_accesses).lut]
    hits = sum(1 for p in held
               if model.predict(p) is classify_object(p, thresholds))
    accuracy = hits / len(held) if held else 0.0
    return dataclasses.replace(model, held_out_accuracy=accuracy)


class RankerClassifier:
    """:class:`~repro.moca.policy.ClassificationPolicy` over a fitted
    :class:`RankerModel`."""

    def __init__(self, model: RankerModel):
        self.model = model

    @classmethod
    def trained(cls, thresholds: Thresholds | None = None,
                profile_accesses: int = 200_000) -> "RankerClassifier":
        return cls(train_ranker(thresholds or Thresholds(),
                                profile_accesses))

    def classify(self, luts: list[ProfileLUT],
                 budget: CapacityBudget = UNLIMITED,
                 ) -> list[dict[ObjectName, ObjectType]]:
        assignments = [{p.name: self.model.predict(p) for p in lut}
                       for lut in luts]
        if budget.unlimited:
            return assignments
        candidates = []
        for core, lut in enumerate(luts):
            for p in lut:
                if assignments[core][p.name] is ObjectType.LAT:
                    benefit = self.model.p_latency(p) * float(p.stall_cycles)
                    candidates.append(((core, p.name.frames), benefit,
                                       p.size_bytes))
        chosen = select_fast_tier(candidates, budget.fast_bytes)
        for core, lut in enumerate(luts):
            for p in lut:
                if (assignments[core][p.name] is ObjectType.LAT
                        and (core, p.name.frames) not in chosen):
                    assignments[core][p.name] = ObjectType.BW
        return assignments
