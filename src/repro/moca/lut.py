"""The profiling lookup table (paper Sec. IV-A).

"This LUT contains all the information of every object (call stack, size,
start address, LLC MPKI, ROB head stall cycles per load miss)."  Entries
support merging so multiple profiled windows (the paper's weighted
SimPoints) accumulate into one profile.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.moca.naming import ObjectName


@dataclass
class ObjectProfile:
    """Accumulated statistics of one named memory object."""

    name: ObjectName
    label: str = ""
    size_bytes: int = 0
    start_vaddr: int = 0
    accesses: int = 0
    #: Store accesses out of ``accesses`` (the read/write mix feature of
    #: the classification-policy API; see :mod:`repro.moca.policy`).
    writes: int = 0
    llc_misses: int = 0
    load_misses: int = 0
    stall_cycles: int = 0
    kilo_instructions: float = 0.0

    @property
    def llc_mpki(self) -> float:
        """Demand LLC misses per kilo-instruction of the profiled window."""
        if self.kilo_instructions <= 0:
            return 0.0
        return self.llc_misses / self.kilo_instructions

    @property
    def write_frac(self) -> float:
        """Fraction of the object's accesses that are stores.

        Clamped to 1.0: ``writes`` is counted over the whole trace while
        ``accesses`` excludes the cache-warmup prefix, so a tiny object
        touched mostly during warmup could otherwise exceed unity.
        """
        if self.accesses <= 0:
            return 0.0
        return min(1.0, self.writes / self.accesses)

    @property
    def stall_per_load_miss(self) -> float:
        """ROB head stall cycles per load miss."""
        if self.load_misses <= 0:
            return 0.0
        return self.stall_cycles / self.load_misses

    def merge(self, other: "ObjectProfile", weight: float = 1.0) -> None:
        """Fold another window's counters in (weighted, for SimPoints)."""
        if other.name != self.name:
            raise ValueError("cannot merge profiles of different objects")
        self.accesses += int(other.accesses * weight)
        self.writes += int(other.writes * weight)
        self.llc_misses += int(other.llc_misses * weight)
        self.load_misses += int(other.load_misses * weight)
        self.stall_cycles += int(other.stall_cycles * weight)
        self.kilo_instructions += other.kilo_instructions * weight
        self.size_bytes = max(self.size_bytes, other.size_bytes)


class ProfileLUT:
    """Object-name-keyed profile store for one application."""

    def __init__(self, app_name: str = ""):
        self.app_name = app_name
        self._entries: dict[ObjectName, ObjectProfile] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: ObjectName) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(self._entries.values())

    def get(self, name: ObjectName) -> ObjectProfile | None:
        return self._entries.get(name)

    def names(self) -> list[ObjectName]:
        """All profiled object names, in registration order."""
        return list(self._entries)

    def clone(self) -> "ProfileLUT":
        """Deep copy: entries are fresh :class:`ObjectProfile` objects.

        The fault-injection layer mutates a clone's entries (drop /
        scramble) — never the original, which :func:`profile_app`
        memoizes and shares across runs.
        """
        out = ProfileLUT(self.app_name)
        for name, p in self._entries.items():
            out._entries[name] = dataclasses.replace(p)
        return out

    def remove(self, name: ObjectName) -> None:
        """Forget an object's profile (fault injection: dropped entry)."""
        self._entries.pop(name, None)

    def register(self, profile: ObjectProfile, weight: float = 1.0) -> ObjectProfile:
        """Insert or merge a profiled window for an object."""
        existing = self._entries.get(profile.name)
        if existing is None:
            self._entries[profile.name] = profile
            return profile
        existing.merge(profile, weight)
        return existing

    def hottest(self, n: int = 10) -> list[ObjectProfile]:
        """Objects by descending LLC MPKI (Fig. 2's interesting corner)."""
        return sorted(self._entries.values(),
                      key=lambda p: p.llc_mpki, reverse=True)[:n]

    def totals(self) -> tuple[float, float]:
        """(application LLC MPKI, application stall cycles per load miss)."""
        ki = max((p.kilo_instructions for p in self._entries.values()),
                 default=0.0)
        if ki <= 0:
            return 0.0, 0.0
        misses = sum(p.llc_misses for p in self._entries.values())
        load_misses = sum(p.load_misses for p in self._entries.values())
        stalls = sum(p.stall_cycles for p in self._entries.values())
        mpki = misses / ki
        spm = stalls / load_misses if load_misses else 0.0
        return mpki, spm
