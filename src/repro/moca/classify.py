"""Threshold classification of memory objects (paper Fig. 5, Sec. III-B).

* ``LLC MPKI <= Thr_Lat``  → not memory-intensive → **POW** (LPDDR);
* else ``stall/miss > Thr_BW`` → latency-sensitive → **LAT** (RLDRAM);
* else → bandwidth-sensitive (high MLP hides latency) → **BW** (HBM).

The paper sets ``Thr_Lat = 1`` MPKI and ``Thr_BW = 20`` stall cycles per
load miss for its target system (Sec. IV-C) and notes both must be
re-tuned per system — :mod:`repro.moca.thresholds` automates that search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.moca.lut import ObjectProfile, ProfileLUT
from repro.vm.heap import ObjectType


@dataclass(frozen=True)
class Thresholds:
    """Classification thresholds.

    Attributes:
        thr_lat: LLC MPKI above which an object is memory-intensive.
        thr_bw: ROB-head stall cycles per load miss above which a
            memory-intensive object is latency- (not bandwidth-) sensitive.
    """

    thr_lat: float = 1.0
    thr_bw: float = 20.0

    def __post_init__(self) -> None:
        if self.thr_lat < 0 or self.thr_bw < 0:
            raise ValueError("thresholds must be non-negative")


DEFAULT_THRESHOLDS = Thresholds()

#: Application-level classification (for Fig. 1 / Heter-App without the
#: paper's Table III labels) uses a higher MPKI bar: a whole application
#: is "memory-intensive" only when its aggregate traffic would actually
#: stress a module.  The memory-intensive apps here sit at MPKI >= 50 and
#: the N class below 6, so the bar has wide margins on both sides.
APP_THRESHOLDS = Thresholds(thr_lat=10.0, thr_bw=20.0)


def classify_metrics(mpki: float, stall_per_miss: float,
                     thresholds: Thresholds = DEFAULT_THRESHOLDS) -> ObjectType:
    """Classify raw (MPKI, stall/miss) metrics per Fig. 5."""
    if mpki <= thresholds.thr_lat:
        return ObjectType.POW
    if stall_per_miss > thresholds.thr_bw:
        return ObjectType.LAT
    return ObjectType.BW


def classify_object(profile: ObjectProfile,
                    thresholds: Thresholds = DEFAULT_THRESHOLDS) -> ObjectType:
    """Classify one profiled object."""
    return classify_metrics(profile.llc_mpki, profile.stall_per_load_miss,
                            thresholds)


def classify_application(lut: ProfileLUT,
                         thresholds: Thresholds = APP_THRESHOLDS) -> ObjectType:
    """Application-level class from aggregate metrics (Phadke-style).

    The experiment drivers prefer the paper's published Table III labels;
    this computed variant exists for Fig. 1 and for user-supplied apps.
    """
    mpki, spm = lut.totals()
    return classify_metrics(mpki, spm, thresholds)


def type_to_class_letter(typ: ObjectType) -> str:
    """ObjectType → the paper's L/B/N letters."""
    return {ObjectType.LAT: "L", ObjectType.BW: "B", ObjectType.POW: "N"}[typ]


def class_letter_to_type(letter: str) -> ObjectType:
    """Table III letter → ObjectType."""
    mapping = {"L": ObjectType.LAT, "B": ObjectType.BW, "N": ObjectType.POW}
    if letter not in mapping:
        raise ValueError(f"class letter must be L/B/N, got {letter!r}")
    return mapping[letter]
