"""Memory-object naming (paper Sec. III-A, Fig. 3).

A heap object is named by the return address of its allocation call plus
the return addresses of up to five calling frames — enough to tell apart
objects allocated by the same ``malloc`` wrapper invoked from different
program locations ("We consider five levels of return addresses in our
call-stack for naming memory objects", Sec. V-A).

Synthetic workloads carry an integer *allocation-site id*; a deterministic
call stack is derived from it so the naming machinery round-trips exactly
as it would on real return addresses.  :func:`name_from_python_stack`
applies the same convention to live Python code, which the examples use to
demonstrate the mechanism on genuine allocations.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass

MAX_DEPTH = 5

#: Synthetic text-segment window return addresses are drawn from.
_TEXT_BASE = 0x0040_0000
_TEXT_SPAN = 0x0010_0000


@dataclass(frozen=True, order=True)
class ObjectName:
    """The unique name of a heap object: a truncated return-address stack.

    ``frames[0]`` is the allocation call's return address; subsequent
    entries walk outward through the callers (Fig. 3's ``array`` example:
    the malloc return address plus ``main``'s frame).
    """

    frames: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("an object name needs at least one frame")
        if len(self.frames) > MAX_DEPTH:
            raise ValueError(f"object names keep at most {MAX_DEPTH} frames")

    @property
    def alloc_return_address(self) -> int:
        return self.frames[0]

    def __str__(self) -> str:
        return "/".join(f"{f:#x}" for f in self.frames)


def name_from_site(site: int, depth: int = MAX_DEPTH) -> ObjectName:
    """Derive the deterministic synthetic call stack of an allocation site.

    Every distinct ``site`` id yields a distinct, stable frame tuple whose
    addresses look like text-segment return addresses.
    """
    if depth < 1 or depth > MAX_DEPTH:
        raise ValueError(f"depth must be in [1, {MAX_DEPTH}]")
    frames = []
    for level in range(depth):
        digest = hashlib.sha256(f"site:{site}:{level}".encode()).digest()
        offset = int.from_bytes(digest[:4], "little") % _TEXT_SPAN
        frames.append(_TEXT_BASE + (offset & ~0x1))  # even, call-site-like
    return ObjectName(tuple(frames))


def name_from_python_stack(depth: int = MAX_DEPTH, skip: int = 1) -> ObjectName:
    """Name the *calling* allocation site from the live Python stack.

    The (filename, line) of each frame plays the role of a return address;
    it is hashed into the same address window so the rest of the pipeline
    treats real and synthetic names identically.

    Args:
        depth: Frames to keep (≤ 5, like the paper).
        skip: Frames to drop from the top (the helper itself).
    """
    if depth < 1 or depth > MAX_DEPTH:
        raise ValueError(f"depth must be in [1, {MAX_DEPTH}]")
    frames = []
    stack = inspect.stack()[skip:skip + depth]
    try:
        for fi in stack:
            token = f"{fi.filename}:{fi.lineno}"
            digest = hashlib.sha256(token.encode()).digest()
            offset = int.from_bytes(digest[:4], "little") % _TEXT_SPAN
            frames.append(_TEXT_BASE + (offset & ~0x1))
    finally:
        del stack  # break traceback reference cycles
    if not frames:
        raise RuntimeError("no Python stack frames available")
    return ObjectName(tuple(frames))
