"""Runtime page-allocation policies (paper Secs. III-C, V-C).

A policy answers one question — *what type is this page's object?* — and
:func:`plan_placement` does the rest: it walks every virtual page of the
workload in first-touch order (demand paging across all cores), asks the
policy for the page's type, lets the OS allocator pick a frame through the
type's fallback chain, and finally translates each core's miss stream to
``(channel group, physical address)`` arrays for the core model.

Policies:

* :class:`MocaPolicy` — per-object types from offline profiling (MOCA);
* :class:`HeterAppPolicy` — one type per application (Phadke &
  Narayanasamy's application-level allocation, the paper's baseline);
* :class:`HomogeneousPolicy` — everything in the single module group.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.cpu.hierarchy import MissStream
from repro.obs.registry import OBS
from repro.trace.events import PAGE_BYTES, VirtualLayout
from repro.vm.allocator import (
    AllocationStats,
    OSPageAllocator,
    OutOfFramesError,
)
from repro.vm.heap import ObjectType

#: Per-core virtual-address-space separation for page-table keys.
CORE_STRIDE = 1 << 48


class PlacementPolicy(ABC):
    """Maps (core, object) to the ObjectType that drives frame selection.

    Policies may also impose an *allocation order* over objects via
    :meth:`object_priority`: pages are demand-paged object by object, and
    when a preferred module cannot hold everyone, earlier objects win it.
    The default (0.0 for everything) preserves instantiation order — the
    behaviour of an ordinary runtime that allocates objects as the program
    creates them, which is exactly how Heter-App ends up filling RLDRAM
    with the *first* object instead of the hottest (paper Sec. VI-A's
    disparity anecdote).
    """

    name: str = "policy"

    @abstractmethod
    def object_type(self, core_id: int, obj_id: int) -> ObjectType:
        """Type of the given object on the given core."""

    def object_priority(self, core_id: int, obj_id: int) -> float:
        """Allocation priority (lower allocates first; ties keep
        instantiation order)."""
        return 0.0


class HomogeneousPolicy(PlacementPolicy):
    """All pages to the single (or default) module group."""

    name = "homogeneous"

    def object_type(self, core_id: int, obj_id: int) -> ObjectType:
        return ObjectType.POW  # any type: all chains collapse to one group


class HeterAppPolicy(PlacementPolicy):
    """Application-level allocation: every page follows its app's class.

    Args:
        app_types: Per-core application class (Table III letters resolved
            to :class:`ObjectType` — L→LAT, B→BW, N→POW).
    """

    name = "heter-app"

    def __init__(self, app_types: list[ObjectType]):
        if not app_types:
            raise ValueError("need one application type per core")
        self.app_types = list(app_types)

    def object_type(self, core_id: int, obj_id: int) -> ObjectType:
        return self.app_types[core_id]


class MocaPolicy(PlacementPolicy):
    """Object-level allocation from profiling results.

    Args:
        object_types: Per-core mapping of runtime object id → profiled
            type.  Objects absent from the mapping (segments, unprofiled
            allocations) go to the power module, per Secs. IV-D / VI-D.
        object_heat: Per-core mapping of object id → profiled miss density
            (LLC misses per page).  MOCA knows each object's heat from the
            LUT and "prioritizes the high-L2MPKI objects to RLDRAM"
            (Sec. VI-B): when a module cannot hold every object of its
            type, the hottest objects claim it first.
    """

    name = "moca"

    def __init__(self, object_types: list[dict[int, ObjectType]],
                 object_heat: list[dict[int, float]] | None = None):
        if not object_types:
            raise ValueError("need one object-type map per core")
        if object_heat is not None and len(object_heat) != len(object_types):
            raise ValueError("object_heat must parallel object_types")
        self.object_types = object_types
        self.object_heat = object_heat or [{} for _ in object_types]

    def object_type(self, core_id: int, obj_id: int) -> ObjectType:
        return self.object_types[core_id].get(obj_id, ObjectType.POW)

    def object_priority(self, core_id: int, obj_id: int) -> float:
        return -self.object_heat[core_id].get(obj_id, 0.0)


@dataclass
class PlacementPlan:
    """Physical placement of every page a workload touches.

    Attributes:
        groups: Per-core array of channel-group ids, one per miss record.
        gaddrs: Per-core array of group-local physical line addresses.
        stats: Frame-allocation outcome (placements and spills).
    """

    groups: list[np.ndarray]
    gaddrs: list[np.ndarray]
    stats: AllocationStats


def plan_placement(streams: list[MissStream], policy: PlacementPolicy,
                   allocator: OSPageAllocator,
                   layouts: list["VirtualLayout"] | None = None) -> PlacementPlan:
    """Allocate frames for the workload's objects, then translate streams.

    Allocation is *object-granular*: objects are ordered by the policy's
    priority (ties by instantiation order — segment ids, then heap object
    ids, interleaved round-robin across cores), and each object's pages
    walk the object's fallback chain together.  Whichever object reaches
    a filling module first keeps it (paper Sec. VI-A).

    With ``layouts`` given (the default path in the experiment runners),
    each object's *full extent* is reserved — the paper's malloc-time
    allocation, where "the memory object gets the physical pages from
    this memory module" at instantiation, modelling the long-run steady
    state in which every allocated page is eventually touched.  Without
    layouts, only pages touched by the miss streams consume frames
    (pure demand paging over the simulated window).
    """
    if not streams:
        raise ValueError("need at least one miss stream")
    if layouts is not None and len(layouts) != len(streams):
        raise ValueError("need one layout per stream")
    # Per (core, object): pages to back, in allocation order.
    objects: list[tuple[float, int, int, list[int]]] = []
    if layouts is not None:
        for core, layout in enumerate(layouts):
            for region in layout.all_regions():
                prio = policy.object_priority(core, region.obj_id)
                objects.append((prio, region.obj_id, core,
                                list(region.pages())))
    else:
        for core, stream in enumerate(streams):
            if len(stream) == 0:
                continue
            vpages = stream.vline // PAGE_BYTES
            uniq, first_idx = np.unique(vpages, return_index=True)
            owners = stream.obj_id[first_idx]
            for obj in np.unique(owners):
                mask = owners == obj
                order = np.argsort(first_idx[mask], kind="stable")
                pages = uniq[mask][order]
                prio = policy.object_priority(core, int(obj))
                objects.append((prio, int(obj), core, pages.tolist()))
    # Priority first; then instantiation order (segments before heap,
    # lower allocation sites first), round-robin across cores.
    objects.sort(key=lambda t: (t[0], t[1], t[2]))
    exhausted_warned = False
    for _, obj, core, pages in objects:
        typ = policy.object_type(core, obj)
        base = core * (CORE_STRIDE // PAGE_BYTES)
        for vpage in pages:
            try:
                allocator.allocate_page(base + vpage, typ)
            except OutOfFramesError:
                # Every pool is full (offlined/shrunken modules, or a
                # working set beyond physical capacity): degrade to the
                # overcommit path instead of aborting the run.  The
                # paper's OS would swap here; we keep the page in the
                # worst acceptable module and count it.
                if not exhausted_warned:
                    exhausted_warned = True
                    OBS.warn(
                        f"placement: all frame pools exhausted placing "
                        f"{typ.name} pages; overcommitting (degraded run)")
                allocator.allocate_overcommit(base + vpage, typ)
    # Translate every stream against the finished page table.
    groups: list[np.ndarray] = []
    gaddrs: list[np.ndarray] = []
    for core, stream in enumerate(streams):
        if len(stream) == 0:
            groups.append(np.empty(0, dtype=np.int32))
            gaddrs.append(np.empty(0, dtype=np.int64))
            continue
        keyed = stream.vline + core * CORE_STRIDE
        g, a = allocator.page_table.translate_lines(keyed)
        groups.append(g)
        gaddrs.append(a)
    return PlacementPlan(groups=groups, gaddrs=gaddrs, stats=allocator.stats)
