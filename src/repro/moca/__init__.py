"""MOCA: the paper's contribution — object classification and allocation.

The pipeline (paper Figs. 4 and 7):

1. :mod:`repro.moca.naming` — unique heap-object names from the allocation
   call's return address plus up to five caller return addresses (Fig. 3);
2. :mod:`repro.moca.profiler` — offline profiling on the *training* input:
   per-object LLC MPKI and ROB-head stall cycles per load miss, collected
   into the :mod:`repro.moca.lut` lookup table;
3. :mod:`repro.moca.classify` — the Fig. 5 threshold classifier
   (``Thr_Lat = 1`` MPKI, ``Thr_BW = 20`` stall cycles/miss, Sec. IV-C);
4. :mod:`repro.moca.allocation` — runtime page-allocation policies: MOCA
   (object-level), Heter-App (application-level, Phadke & Narayanasamy),
   and the homogeneous baselines;
5. :mod:`repro.moca.framework` — the end-to-end profile→classify→allocate
   pipeline most callers want;
6. :mod:`repro.moca.policy` — the pluggable placement-policy API: the
   :class:`ClassificationPolicy` protocol, the policy registry
   (:func:`register_policy`), capacity budgets, and the stock policies —
   including the capacity-aware ``knapsack`` and the learned ``ranker``
   (:mod:`repro.moca.ranker`).
"""

from repro.moca.naming import ObjectName, name_from_site, name_from_python_stack
from repro.moca.lut import ObjectProfile, ProfileLUT
from repro.moca.profiler import MemoryObjectProfiler, ProfiledApp
from repro.moca.classify import (
    Thresholds,
    DEFAULT_THRESHOLDS,
    classify_object,
    classify_application,
)
from repro.moca.allocation import (
    PlacementPolicy,
    MocaPolicy,
    HeterAppPolicy,
    HomogeneousPolicy,
    plan_placement,
    PlacementPlan,
)
from repro.moca.framework import MocaFramework, InstrumentedApp
from repro.moca.policy import (
    CapacityBudget,
    ClassificationPolicy,
    KnapsackClassifier,
    PolicyContext,
    PolicySpec,
    ThresholdClassifier,
    build_policy,
    classified_policy,
    policy_names,
    register_policy,
    select_fast_tier,
    stock_policy_names,
    thresholds_from_dict,
    thresholds_to_dict,
    unregister_policy,
)
from repro.moca.serialize import (
    save_lut,
    load_lut,
    save_instrumented,
    load_instrumented,
)
from repro.moca.thresholds import search_thresholds, best_thresholds

__all__ = [
    "ObjectName",
    "name_from_site",
    "name_from_python_stack",
    "ObjectProfile",
    "ProfileLUT",
    "MemoryObjectProfiler",
    "ProfiledApp",
    "Thresholds",
    "DEFAULT_THRESHOLDS",
    "classify_object",
    "classify_application",
    "PlacementPolicy",
    "MocaPolicy",
    "HeterAppPolicy",
    "HomogeneousPolicy",
    "plan_placement",
    "PlacementPlan",
    "MocaFramework",
    "InstrumentedApp",
    "CapacityBudget",
    "ClassificationPolicy",
    "KnapsackClassifier",
    "PolicyContext",
    "PolicySpec",
    "ThresholdClassifier",
    "build_policy",
    "classified_policy",
    "policy_names",
    "register_policy",
    "select_fast_tier",
    "stock_policy_names",
    "thresholds_from_dict",
    "thresholds_to_dict",
    "unregister_policy",
    "save_lut",
    "load_lut",
    "save_instrumented",
    "load_instrumented",
    "search_thresholds",
    "best_thresholds",
]
