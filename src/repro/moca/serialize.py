"""Persistence for profiling results and instrumented classifications.

The paper's offline stage writes each object's type into the application
binary (Sec. III-C: "the classification is stored as part of the
application binary").  The reproduction's equivalent is a JSON sidecar:
``ProfileLUT`` (raw profiling counters) and ``InstrumentedApp`` (the
name → type map plus thresholds) both round-trip through plain dicts so
profiles can be collected once and reused across experiment campaigns —
exactly how the paper amortizes profiling over repeated runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.moca.framework import InstrumentedApp
from repro.moca.lut import ObjectProfile, ProfileLUT
from repro.moca.naming import ObjectName
from repro.vm.heap import ObjectType

FORMAT_VERSION = 1


# ---- ProfileLUT ------------------------------------------------------------------


def lut_to_dict(lut: ProfileLUT) -> dict[str, Any]:
    """Serialize a LUT to a JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "kind": "profile-lut",
        "app": lut.app_name,
        "objects": [
            {
                "frames": list(p.name.frames),
                "label": p.label,
                "size_bytes": p.size_bytes,
                "start_vaddr": p.start_vaddr,
                "accesses": p.accesses,
                "writes": p.writes,
                "llc_misses": p.llc_misses,
                "load_misses": p.load_misses,
                "stall_cycles": p.stall_cycles,
                "kilo_instructions": p.kilo_instructions,
            }
            for p in lut
        ],
    }


def lut_from_dict(data: dict[str, Any]) -> ProfileLUT:
    """Rebuild a LUT from :func:`lut_to_dict` output."""
    _check(data, "profile-lut")
    lut = ProfileLUT(data.get("app", ""))
    for obj in data["objects"]:
        lut.register(ObjectProfile(
            name=ObjectName(tuple(obj["frames"])),
            label=obj["label"],
            size_bytes=obj["size_bytes"],
            start_vaddr=obj["start_vaddr"],
            accesses=obj["accesses"],
            # Absent in pre-read/write-mix documents.
            writes=obj.get("writes", 0),
            llc_misses=obj["llc_misses"],
            load_misses=obj["load_misses"],
            stall_cycles=obj["stall_cycles"],
            kilo_instructions=obj["kilo_instructions"],
        ))
    return lut


def save_lut(lut: ProfileLUT, path: str | Path) -> None:
    Path(path).write_text(json.dumps(lut_to_dict(lut), indent=1))


def load_lut(path: str | Path) -> ProfileLUT:
    return lut_from_dict(json.loads(Path(path).read_text()))


# ---- InstrumentedApp --------------------------------------------------------------


def instrumented_to_dict(app: InstrumentedApp) -> dict[str, Any]:
    """Serialize the classification metadata of one application."""
    from repro.moca.policy import thresholds_to_dict

    return {
        "version": FORMAT_VERSION,
        "kind": "instrumented-app",
        "app": app.app_name,
        # Shared canonical form — the same helper RunSpec.canonical()
        # uses, so the sidecar and the cache key can't drift.
        "thresholds": thresholds_to_dict(app.thresholds),
        "objects": [
            {
                "frames": list(name.frames),
                "type": typ.value,
                "heat": app.heat.get(name, 0.0),
            }
            for name, typ in app.types.items()
        ],
    }


def instrumented_from_dict(data: dict[str, Any]) -> InstrumentedApp:
    """Rebuild an :class:`InstrumentedApp` from its dict form."""
    _check(data, "instrumented-app")
    types: dict[ObjectName, ObjectType] = {}
    heat: dict[ObjectName, float] = {}
    for obj in data["objects"]:
        name = ObjectName(tuple(obj["frames"]))
        types[name] = ObjectType(obj["type"])
        if obj.get("heat", 0.0) > 0.0:
            heat[name] = float(obj["heat"])
    from repro.moca.policy import thresholds_from_dict

    return InstrumentedApp(
        app_name=data["app"],
        types=types,
        thresholds=thresholds_from_dict(data["thresholds"]),
        heat=heat,
    )


def save_instrumented(app: InstrumentedApp, path: str | Path) -> None:
    Path(path).write_text(json.dumps(instrumented_to_dict(app), indent=1))


def load_instrumented(path: str | Path) -> InstrumentedApp:
    return instrumented_from_dict(json.loads(Path(path).read_text()))


def _check(data: dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise ValueError(
            f"expected a {kind!r} document, got {data.get('kind')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('version')!r} "
            f"(this library reads version {FORMAT_VERSION})")
