"""The OS frame allocator with per-type fallback chains (paper Sec. IV-D).

Given the channel-group *roles* of a memory system (which group is the
latency module, which the bandwidth module, ...), the allocator resolves
an object type's fallback chain to concrete groups and hands out frames,
spilling to the next-best module when the preferred pool is full.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.registry import OBS
from repro.vm.heap import FALLBACK_CHAINS, ObjectType
from repro.vm.pagetable import PageTable
from repro.vm.physmem import FramePool, OutOfMemory


@dataclass
class AllocationStats:
    """Placement outcome counters.

    ``placed[type][group]`` counts pages of each object type per group;
    ``spills[type]`` counts pages that missed their first-choice module.
    """

    placed: dict[ObjectType, dict[int, int]] = field(
        default_factory=lambda: {t: {} for t in ObjectType})
    spills: dict[ObjectType, int] = field(
        default_factory=lambda: {t: 0 for t in ObjectType})

    def record(self, typ: ObjectType, group: int, spilled: bool) -> None:
        by_group = self.placed[typ]
        by_group[group] = by_group.get(group, 0) + 1
        if spilled:
            self.spills[typ] += 1

    @property
    def total_pages(self) -> int:
        return sum(n for by_g in self.placed.values() for n in by_g.values())

    def spill_rate(self, typ: ObjectType) -> float:
        total = sum(self.placed[typ].values())
        return self.spills[typ] / total if total else 0.0


class OSPageAllocator:
    """Demand-paging allocator over role-named frame pools.

    Args:
        pools: group index → :class:`FramePool` (one per channel group).
        roles: role name (``"lat" | "bw" | "pow" | "main"``) → group index.
            A role may be absent (e.g. no RLDRAM in a homogeneous system);
            chains skip absent roles.
        page_table: Shared page table to record mappings into.
    """

    def __init__(self, pools: dict[int, FramePool], roles: dict[str, int],
                 page_table: PageTable | None = None):
        if not pools:
            raise ValueError("allocator needs at least one pool")
        unknown = set(roles.values()) - set(pools)
        if unknown:
            raise ValueError(f"roles reference missing groups {sorted(unknown)}")
        self.pools = pools
        self.roles = dict(roles)
        self.page_table = page_table or PageTable()
        self.stats = AllocationStats()
        # Resolve each type's role chain to concrete group indices once.
        self._chains: dict[ObjectType, list[int]] = {}
        for typ, role_chain in FALLBACK_CHAINS.items():
            groups = [roles[r] for r in role_chain if r in roles]
            # Any group not already in the chain is a last-ditch fallback,
            # in index order (never raise while memory remains anywhere).
            for g in sorted(pools):
                if g not in groups:
                    groups.append(g)
            self._chains[typ] = groups

    def chain_for(self, typ: ObjectType) -> list[int]:
        """Concrete group order this type's pages try, best-fit first."""
        return list(self._chains[typ])

    def allocate_page(self, vpage: int, typ: ObjectType) -> tuple[int, int]:
        """Map ``vpage`` with a frame of type ``typ``; returns (group, frame).

        Raises :class:`OutOfMemory` when every pool is exhausted.
        """
        chain = self._chains[typ]
        for i, group in enumerate(chain):
            frame = self.pools[group].allocate()
            if frame is not None:
                self.page_table.map_page(vpage, group, frame)
                self.stats.record(typ, group, spilled=i > 0)
                if OBS.enabled:
                    OBS.add(f"alloc.placed.{typ.name}")
                    if i > 0:
                        # Paper Sec. IV-C/D: the preferred module was
                        # full and the page fell through its chain.
                        OBS.add(f"alloc.spill.{typ.name}")
                return group, frame
        if OBS.enabled:
            OBS.add(f"alloc.oom.{typ.name}")
        raise OutOfMemory(
            f"no frames left in any of {len(chain)} pools for type {typ}")

    def free_frames(self) -> dict[int, int]:
        """Remaining frames per group."""
        return {g: p.frames_left for g, p in self.pools.items()}
