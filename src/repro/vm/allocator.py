"""The OS frame allocator with per-type fallback chains (paper Sec. IV-D).

Given the channel-group *roles* of a memory system (which group is the
latency module, which the bandwidth module, ...), the allocator resolves
an object type's fallback chain to concrete groups and hands out frames,
spilling to the next-best module when the preferred pool is full.

Exhaustion is a first-class outcome, not just an exception:
:meth:`OSPageAllocator.allocate_page` raises :class:`OutOfFramesError`
(carrying per-pool occupancy and the requested type) when every pool in
the chain is out of frames, and :meth:`OSPageAllocator.allocate_overcommit`
is the degraded path the placement planner takes instead of crashing —
it models the OS swapping past physical capacity, with every such page
tallied in :class:`AllocationStats` so a degraded run stays measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs.registry import OBS
from repro.vm.heap import FALLBACK_CHAINS, ObjectType
from repro.vm.pagetable import PageTable
from repro.vm.physmem import FramePool, OutOfMemory


class OutOfFramesError(OutOfMemory):
    """Every pool in a fallback chain is exhausted.

    Attributes:
        object_type: The :class:`ObjectType` whose chain came up empty.
        occupancy: group index → ``(allocated, total)`` frame counts at
            the moment of failure, so the failure is diagnosable without
            a debugger (which module filled first, which was offline).
    """

    def __init__(self, object_type: ObjectType,
                 occupancy: dict[int, tuple[int, int]]):
        self.object_type = object_type
        self.occupancy = dict(occupancy)
        detail = ", ".join(
            f"group {g}: {used}/{total}"
            for g, (used, total) in sorted(occupancy.items()))
        super().__init__(
            f"no frames left in any pool for type {object_type} ({detail})")


@dataclass
class AllocationStats:
    """Placement outcome counters.

    ``placed[type][group]`` counts pages of each object type per group;
    ``spills[type]`` counts pages that missed their first-choice module;
    ``exhausted[type]`` counts pages that found *every* pool full and had
    to be overcommitted (the degraded no-crash path).
    """

    placed: dict[ObjectType, dict[int, int]] = field(
        default_factory=lambda: {t: {} for t in ObjectType})
    spills: dict[ObjectType, int] = field(
        default_factory=lambda: {t: 0 for t in ObjectType})
    exhausted: dict[ObjectType, int] = field(
        default_factory=lambda: {t: 0 for t in ObjectType})

    def record(self, typ: ObjectType, group: int, spilled: bool) -> None:
        by_group = self.placed[typ]
        by_group[group] = by_group.get(group, 0) + 1
        if spilled:
            self.spills[typ] += 1

    @property
    def total_pages(self) -> int:
        return sum(n for by_g in self.placed.values() for n in by_g.values())

    @property
    def total_spills(self) -> int:
        return sum(self.spills.values())

    @property
    def total_exhausted(self) -> int:
        return sum(self.exhausted.values())

    def spill_rate(self, typ: ObjectType) -> float:
        total = sum(self.placed[typ].values())
        return self.spills[typ] / total if total else 0.0

    @property
    def overall_spill_rate(self) -> float:
        total = self.total_pages
        return self.total_spills / total if total else 0.0

    def to_dict(self) -> dict:
        """Manifest/provenance-ready summary of the placement outcome."""
        return {
            "pages": self.total_pages,
            "spills": self.total_spills,
            "exhausted": self.total_exhausted,
            "spill_rate": round(self.overall_spill_rate, 6),
            "spills_by_type": {t.name: n for t, n in self.spills.items()},
            "exhausted_by_type": {t.name: n
                                  for t, n in self.exhausted.items()},
        }


class OSPageAllocator:
    """Demand-paging allocator over role-named frame pools.

    Args:
        pools: group index → :class:`FramePool` (one per channel group).
        roles: role name (``"lat" | "bw" | "pow" | "main"``) → group index.
            A role may be absent (e.g. no RLDRAM in a homogeneous system);
            chains skip absent roles.
        page_table: Shared page table to record mappings into.

    Attributes:
        fault_hook: Optional callable invoked before every allocation —
            the fault-injection layer (:mod:`repro.faults.inject`) uses it
            to offline/shrink pools after a page-count threshold,
            modelling a module failing mid-run.
    """

    def __init__(self, pools: dict[int, FramePool], roles: dict[str, int],
                 page_table: PageTable | None = None):
        if not pools:
            raise ValueError("allocator needs at least one pool")
        unknown = set(roles.values()) - set(pools)
        if unknown:
            raise ValueError(f"roles reference missing groups {sorted(unknown)}")
        self.pools = pools
        self.roles = dict(roles)
        self.page_table = page_table or PageTable()
        self.stats = AllocationStats()
        self.fault_hook: Callable[[], None] | None = None
        # Resolve each type's role chain to concrete group indices once.
        self._chains: dict[ObjectType, list[int]] = {}
        for typ, role_chain in FALLBACK_CHAINS.items():
            groups = [roles[r] for r in role_chain if r in roles]
            # Any group not already in the chain is a last-ditch fallback,
            # in index order (never raise while memory remains anywhere).
            for g in sorted(pools):
                if g not in groups:
                    groups.append(g)
            self._chains[typ] = groups

    def chain_for(self, typ: ObjectType) -> list[int]:
        """Concrete group order this type's pages try, best-fit first."""
        return list(self._chains[typ])

    def occupancy(self) -> dict[int, tuple[int, int]]:
        """Per-group ``(allocated, total)`` frame counts right now."""
        return {g: (p.n_allocated, p.n_frames)
                for g, p in self.pools.items()}

    def allocate_page(self, vpage: int, typ: ObjectType) -> tuple[int, int]:
        """Map ``vpage`` with a frame of type ``typ``; returns (group, frame).

        Raises :class:`OutOfFramesError` (an :class:`OutOfMemory`) when
        every pool in the chain is exhausted; resilient callers degrade
        via :meth:`allocate_overcommit` instead of propagating.
        """
        if self.fault_hook is not None:
            self.fault_hook()
        chain = self._chains[typ]
        for i, group in enumerate(chain):
            frame = self.pools[group].allocate()
            if frame is not None:
                self.page_table.map_page(vpage, group, frame)
                self.stats.record(typ, group, spilled=i > 0)
                if OBS.enabled:
                    OBS.add(f"alloc.placed.{typ.name}")
                    if i > 0:
                        # Paper Sec. IV-C/D: the preferred module was
                        # full and the page fell through its chain.
                        OBS.add(f"alloc.spill.{typ.name}")
                return group, frame
        if OBS.enabled:
            OBS.add(f"alloc.oom.{typ.name}")
        raise OutOfFramesError(typ, self.occupancy())

    def allocate_overcommit(self, vpage: int, typ: ObjectType) -> tuple[int, int]:
        """Degraded allocation when the whole chain is exhausted.

        Places the page in the last online pool of the type's chain (the
        worst acceptable home) *beyond* its physical capacity — the
        reproduction's stand-in for the OS swapping — and tallies it in
        ``stats.exhausted`` so graceful degradation is visible in every
        report.
        """
        chain = self._chains[typ]
        target = next((g for g in reversed(chain)
                       if not self.pools[g].is_offline), chain[-1])
        frame = self.pools[target].allocate_overcommit()
        self.page_table.map_page(vpage, target, frame)
        self.stats.record(typ, target, spilled=True)
        self.stats.exhausted[typ] += 1
        if OBS.enabled:
            OBS.add(f"alloc.overcommit.{typ.name}")
        return target, frame

    def free_frames(self) -> dict[int, int]:
        """Remaining frames per group."""
        return {g: p.frames_left for g, p in self.pools.items()}
