"""OS memory-management substrate (paper Secs. III-C, IV-D, Fig. 6).

MOCA's runtime half is an OS page-allocation policy: the heap's virtual
space is partitioned by object type, and on each page walk the OS hands
the faulting virtual page a physical frame from the memory module that
matches the page's type, falling back to the next-best module when the
preferred one is full.

This subpackage provides those mechanisms independent of any policy:

* :mod:`repro.vm.physmem` — per-channel-group physical frame pools;
* :mod:`repro.vm.pagetable` — virtual→physical map with demand paging,
  plus a small TLB model for walk statistics;
* :mod:`repro.vm.heap` — typed heap partitions (Lat/BW/Pow, Fig. 6);
* :mod:`repro.vm.allocator` — the fallback-chain frame allocator.
"""

from repro.vm.physmem import FramePool, OutOfMemory
from repro.vm.pagetable import PageTable, TLB
from repro.vm.heap import ObjectType, TypedHeap, FALLBACK_CHAINS
from repro.vm.allocator import (
    AllocationStats,
    OSPageAllocator,
    OutOfFramesError,
)
from repro.vm.migration import HotPageMigrator, MigrationConfig, MigrationStats

__all__ = [
    "FramePool",
    "OutOfMemory",
    "PageTable",
    "TLB",
    "ObjectType",
    "TypedHeap",
    "FALLBACK_CHAINS",
    "OSPageAllocator",
    "OutOfFramesError",
    "AllocationStats",
    "HotPageMigrator",
    "MigrationConfig",
    "MigrationStats",
]
