"""Hotness-driven page migration — the runtime alternative MOCA argues
against (paper Sec. IV-E and related work [19], [33]–[36]).

Migration policies need no offline profile: they monitor per-page access
counts at runtime and periodically move the hottest pages into the
fastest module.  The price is continuous monitoring plus page-copy
traffic and TLB shootdowns on every migration — costs MOCA avoids by
deciding placement at allocation time.  This module provides the
mechanism so the trade-off can be measured (see
``repro.sim.migration`` and the migration benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memctrl.system import MemorySystem
from repro.trace.events import PAGE_BYTES
from repro.vm.allocator import OSPageAllocator


@dataclass(frozen=True)
class MigrationConfig:
    """Knobs of the interval-based migrator.

    Frozen and hashable so it can sit directly in a
    :class:`~repro.sim.spec.RunSpec`; like ``faults``/``fast_path`` it
    enters ``RunSpec.canonical()`` only when set, keeping every
    pre-existing cache key byte-stable.

    Attributes:
        epoch_misses: LLC misses between migration decisions.
        max_migrations_per_epoch: Hot-page moves per decision point.
        target_role: Module role hot pages are promoted into.
        shootdown_cycles: Fixed per-migration cost (TLB shootdown +
            kernel bookkeeping), charged to the core.
    """

    epoch_misses: int = 4_000
    max_migrations_per_epoch: int = 32
    target_role: str = "lat"
    shootdown_cycles: int = 1_000

    def __post_init__(self) -> None:
        if self.epoch_misses <= 0:
            raise ValueError("epoch_misses must be positive")
        if self.max_migrations_per_epoch <= 0:
            raise ValueError("max_migrations_per_epoch must be positive")
        if self.shootdown_cycles < 0:
            raise ValueError("shootdown_cycles must be non-negative")

    def canonical(self) -> dict:
        """Stable JSON form folded into ``RunSpec.canonical()``."""
        return {
            "epoch_misses": self.epoch_misses,
            "max_migrations_per_epoch": self.max_migrations_per_epoch,
            "target_role": self.target_role,
            "shootdown_cycles": self.shootdown_cycles,
        }

    to_dict = canonical

    @classmethod
    def from_dict(cls, data: dict) -> "MigrationConfig":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__
                      if k in data})


@dataclass
class MigrationStats:
    """What migration did and what it cost."""

    n_epochs: int = 0
    n_migrations: int = 0
    n_swaps: int = 0
    copy_cycles: int = 0
    shootdown_cycles: int = 0
    bytes_copied: int = 0

    @property
    def overhead_cycles(self) -> int:
        return self.copy_cycles + self.shootdown_cycles

    def to_dict(self) -> dict:
        """Lossless manifest/telemetry form (see the hypothesis
        round-trip test in ``tests/test_migration.py``)."""
        return {
            "n_epochs": self.n_epochs,
            "n_migrations": self.n_migrations,
            "n_swaps": self.n_swaps,
            "copy_cycles": self.copy_cycles,
            "shootdown_cycles": self.shootdown_cycles,
            "bytes_copied": self.bytes_copied,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MigrationStats":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__
                      if k in data})


def charge_page_copy(memsys: MemorySystem, stats: MigrationStats,
                     src_group: int, dst_group: int,
                     shootdown_cycles: int) -> int:
    """Account one page's migration: copy bus time both ways, the TLB
    shootdown, and both groups' bus occupancy/energy.

    Shared by :class:`HotPageMigrator` and the online guidance service
    (:mod:`repro.service`) so both charge migrations identically.
    Returns the cycles to bill the core (copy + shootdown).
    """
    src = memsys.groups[src_group].timing
    dst = memsys.groups[dst_group].timing
    cycles = src.transfer_cycles(PAGE_BYTES) + dst.transfer_cycles(PAGE_BYTES)
    stats.copy_cycles += cycles
    stats.shootdown_cycles += shootdown_cycles
    stats.bytes_copied += 2 * PAGE_BYTES
    # The copy occupies both groups' buses (power + later queueing).
    for g in (src_group, dst_group):
        mod = memsys.groups[g].modules[0]
        mod.bus_busy_cycles += memsys.groups[g].timing.transfer_cycles(
            PAGE_BYTES)
        mod.bytes_transferred += PAGE_BYTES
    return cycles + shootdown_cycles


class HotPageMigrator:
    """Promotes the hottest pages of each epoch into the target group.

    When the target module is full, the migrator *swaps*: the coldest
    currently-promoted page is demoted to make room (both copies are
    charged).  Hotness is the page's demand-miss count in the last epoch.
    """

    def __init__(self, allocator: OSPageAllocator, memsys: MemorySystem,
                 config: MigrationConfig | None = None):
        self.allocator = allocator
        self.memsys = memsys
        self.config = config or MigrationConfig()
        role = self.config.target_role
        if role not in allocator.roles:
            raise ValueError(f"system has no {role!r} module to migrate into")
        self.target_group = allocator.roles[role]
        self.stats = MigrationStats()
        #: vpage → epoch miss count for pages currently in the target group.
        self._resident_heat: dict[int, int] = {}

    def _copy_cost_cycles(self, src_group: int, dst_group: int) -> int:
        """Bus time to read a page from src and write it to dst."""
        src = self.memsys.groups[src_group].timing
        dst = self.memsys.groups[dst_group].timing
        return (src.transfer_cycles(PAGE_BYTES)
                + dst.transfer_cycles(PAGE_BYTES))

    def _charge_copy(self, src_group: int, dst_group: int) -> int:
        return charge_page_copy(self.memsys, self.stats, src_group,
                                dst_group, self.config.shootdown_cycles)

    def end_epoch(self, vpages: np.ndarray) -> int:
        """Decide migrations from one epoch's demand-miss page stream.

        Args:
            vpages: Page-table keys (core-prefixed vpage numbers) of the
                epoch's demand misses.

        Returns:
            Cycles of migration overhead to charge to the core.
        """
        self.stats.n_epochs += 1
        if len(vpages) == 0:
            return 0
        pages, counts = np.unique(vpages, return_counts=True)
        order = np.argsort(counts)[::-1]
        # Refresh heat for already-promoted pages.
        page_list = pages.tolist()
        count_list = counts.tolist()
        for vp, c in zip(page_list, count_list):
            if vp in self._resident_heat:
                self._resident_heat[vp] = c
        pt = self.allocator.page_table
        pool = self.allocator.pools[self.target_group]
        overhead = 0
        moved = 0
        for i in order.tolist():
            if moved >= self.config.max_migrations_per_epoch:
                break
            vp, heat = page_list[i], count_list[i]
            group, _ = pt.lookup(vp)
            if group == self.target_group:
                continue
            frame = pool.allocate()
            if frame is None:
                victim = self._coldest_resident()
                if victim is None or self._resident_heat[victim] >= heat:
                    break  # nothing colder to evict — stop promoting
                frame = self._demote(victim)
                overhead_cycles = self._charge_copy(self.target_group, group)
                overhead += overhead_cycles
                self.stats.n_swaps += 1
            old_group, old_frame = pt.remap(vp, self.target_group, frame)
            self.allocator.pools[old_group].free(old_frame)
            overhead += self._charge_copy(old_group, self.target_group)
            self._resident_heat[vp] = heat
            self.stats.n_migrations += 1
            moved += 1
        return overhead

    def _coldest_resident(self) -> int | None:
        if not self._resident_heat:
            return None
        return min(self._resident_heat, key=self._resident_heat.get)

    def _demote(self, vpage: int) -> int:
        """Move a promoted page back to its type's next-best pool;
        returns the freed target-group frame."""
        pt = self.allocator.page_table
        _, frame = pt.lookup(vpage)
        for group in self.allocator.pools:
            if group == self.target_group:
                continue
            new_frame = self.allocator.pools[group].allocate()
            if new_frame is not None:
                pt.remap(vpage, group, new_frame)
                del self._resident_heat[vpage]
                return frame
        raise RuntimeError("no pool has room to demote into")
