"""Page table and TLB models.

The page table maps virtual page numbers to ``(channel group, frame)``
pairs.  Mappings are created on demand (first touch) by the OS allocator;
translation of whole miss streams is vectorized with numpy afterwards,
since the mapping is immutable once an experiment's stream is planned.

The TLB model mirrors the paper's Sec. IV-D narrative (TLB hit → PTE,
miss → page walk) and is used for statistics; its latency contribution is
identical across memory systems and thus cancels in every normalized
figure, so the experiment drivers leave it disabled by default.
"""

from __future__ import annotations

import numpy as np

from repro.trace.events import PAGE_BYTES


class PageTable:
    """vpage → (group, frame) mapping with vectorized bulk translation."""

    def __init__(self):
        self._map: dict[int, tuple[int, int]] = {}
        self._frozen_keys: np.ndarray | None = None
        self._frozen_groups: np.ndarray | None = None
        self._frozen_frames: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, vpage: int) -> bool:
        return vpage in self._map

    def map_page(self, vpage: int, group: int, frame: int) -> None:
        if vpage in self._map:
            raise ValueError(f"vpage {vpage:#x} already mapped")
        self._map[vpage] = (group, frame)
        self._frozen_keys = None  # invalidate the vectorized index

    def lookup(self, vpage: int) -> tuple[int, int]:
        try:
            return self._map[vpage]
        except KeyError:
            raise KeyError(f"page fault: vpage {vpage:#x} has no mapping") from None

    def remap(self, vpage: int, group: int, frame: int) -> tuple[int, int]:
        """Move an existing mapping (page migration); returns the old
        (group, frame) so the caller can free the vacated frame."""
        old = self.lookup(vpage)
        self._map[vpage] = (group, frame)
        self._frozen_keys = None
        return old

    def _freeze(self) -> None:
        keys = np.fromiter(self._map.keys(), dtype=np.int64, count=len(self._map))
        order = np.argsort(keys)
        self._frozen_keys = keys[order]
        groups = np.fromiter((g for g, _ in self._map.values()),
                             dtype=np.int32, count=len(self._map))
        frames = np.fromiter((f for _, f in self._map.values()),
                             dtype=np.int64, count=len(self._map))
        self._frozen_groups = groups[order]
        self._frozen_frames = frames[order]

    def translate_lines(self, vlines: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Translate line addresses to (group, group-local physical address).

        Every page must already be mapped (the planner touches them first).
        """
        if self._frozen_keys is None:
            self._freeze()
        vpages = vlines // PAGE_BYTES
        idx = np.searchsorted(self._frozen_keys, vpages)
        if (idx >= len(self._frozen_keys)).any() or \
                (self._frozen_keys[np.minimum(idx, len(self._frozen_keys) - 1)]
                 != vpages).any():
            missing = vpages[(idx >= len(self._frozen_keys)) |
                             (self._frozen_keys[np.minimum(idx, len(self._frozen_keys) - 1)] != vpages)]
            raise KeyError(f"page fault on {len(missing)} pages, first "
                           f"{missing[0]:#x}")
        groups = self._frozen_groups[idx]
        gaddr = self._frozen_frames[idx] * PAGE_BYTES + (vlines % PAGE_BYTES)
        return groups, gaddr

    def pages_in_group(self, group: int) -> int:
        """How many mapped pages landed in a channel group."""
        return sum(1 for g, _ in self._map.values() if g == group)


class TLB:
    """Fully-associative LRU TLB (statistics model)."""

    def __init__(self, entries: int = 64):
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self._store: dict[int, None] = {}
        self.n_hits = 0
        self.n_misses = 0

    def access(self, vpage: int) -> bool:
        """Touch a vpage; returns hit/miss and updates LRU order."""
        if vpage in self._store:
            del self._store[vpage]
            self._store[vpage] = None
            self.n_hits += 1
            return True
        self.n_misses += 1
        if len(self._store) >= self.entries:
            del self._store[next(iter(self._store))]
        self._store[vpage] = None
        return False

    @property
    def hit_rate(self) -> float:
        n = self.n_hits + self.n_misses
        return self.n_hits / n if n else 0.0

    def simulate_stream(self, vlines: np.ndarray) -> float:
        """Hit rate over a line-address stream (bulk helper)."""
        for vp in (vlines // PAGE_BYTES).tolist():
            self.access(vp)
        return self.hit_rate
