"""Typed heap partitions and module fallback chains (paper Fig. 6).

MOCA splits the heap's virtual space into one partition per memory-module
type — latency (``LAT``), bandwidth (``BW``) and power (``POW``) — and
instruments ``malloc`` so every heap object lands in the partition of its
profiled type.  The OS then knows a page's desired module *from its
virtual address alone*.

In the reproduction, objects keep their natural layout addresses and the
partition is tracked as explicit object→type / page→type metadata — the
information content is identical (address→type is still a pure function),
without re-basing every trace address.
"""

from __future__ import annotations

from enum import Enum


class ObjectType(str, Enum):
    """Memory-object classes of the paper's Fig. 5."""

    LAT = "lat"   # latency-sensitive  → Lat_Mem (RLDRAM)
    BW = "bw"     # bandwidth-sensitive → BW_Mem (HBM)
    POW = "pow"   # non-memory-intensive → Pow_Mem (LPDDR)


#: Module-role preference per type (paper Sec. III-C: proceed to the next
#: best module when the best-fit is full; "next best for HBM is LPDDR").
#: Roles are resolved to channel groups by the system config; roles absent
#: from a system are skipped.
FALLBACK_CHAINS: dict[ObjectType, tuple[str, ...]] = {
    ObjectType.LAT: ("lat", "bw", "pow", "main"),
    ObjectType.BW: ("bw", "pow", "lat", "main"),
    ObjectType.POW: ("pow", "bw", "lat", "main"),
}


class TypedHeap:
    """Tracks the type assigned to every heap object (and thus its pages).

    ``None`` types fall back to :attr:`default_type` — the paper routes
    unclassified pages (stack, code, globals, unprofiled objects) to the
    LPDDR module (Secs. IV-D, VI-D).
    """

    def __init__(self, default_type: ObjectType = ObjectType.POW):
        self.default_type = default_type
        self._types: dict[int, ObjectType] = {}

    def set_type(self, obj_id: int, typ: ObjectType) -> None:
        self._types[obj_id] = typ

    def type_of(self, obj_id: int) -> ObjectType:
        """Type of an object; segments/unknown objects use the default."""
        return self._types.get(obj_id, self.default_type)

    def typed_objects(self) -> dict[int, ObjectType]:
        return dict(self._types)

    def partition_counts(self) -> dict[ObjectType, int]:
        """How many objects live in each virtual partition."""
        counts = {t: 0 for t in ObjectType}
        for t in self._types.values():
            counts[t] += 1
        return counts
