"""Physical frame pools, one per channel group.

The OS "maintains the starting, ending, and the next available page number
of each memory module" (paper Sec. IV-D); a :class:`FramePool` is exactly
that bump allocator, with an optional free list so long-running scenarios
can return frames.
"""

from __future__ import annotations

from repro.trace.events import PAGE_BYTES


class OutOfMemory(RuntimeError):
    """Raised when every module in a fallback chain is exhausted."""


class FramePool:
    """Frames of one channel group, allocated in ascending order."""

    def __init__(self, capacity_bytes: int, group: int, name: str = ""):
        if capacity_bytes < PAGE_BYTES:
            raise ValueError("pool smaller than one page")
        self.group = group
        self.name = name
        self.n_frames = capacity_bytes // PAGE_BYTES
        self._next = 0
        self._free: list[int] = []
        self.n_allocated = 0
        self.is_offline = False
        self.n_overcommitted = 0

    @property
    def frames_left(self) -> int:
        if self.is_offline:
            return 0
        return self.n_frames - self._next + len(self._free)

    @property
    def full(self) -> bool:
        return self.frames_left == 0

    def allocate(self) -> int | None:
        """Return the next free frame number, or ``None`` when full."""
        if self.is_offline:
            return None
        if self._free:
            frame = self._free.pop()
        elif self._next < self.n_frames:
            frame = self._next
            self._next += 1
        else:
            return None
        self.n_allocated += 1
        return frame

    def allocate_overcommit(self) -> int:
        """Hand out a frame *beyond* capacity (the OS's swap of last
        resort): never fails, but every such frame is tallied in
        ``n_overcommitted`` so degraded runs are measurable."""
        frame = self._next
        self._next += 1
        self.n_allocated += 1
        self.n_overcommitted += 1
        return frame

    # ---- fault injection -----------------------------------------------------

    def offline(self) -> None:
        """Take the pool offline: no further allocations succeed.

        Already-granted frames stay valid (their data is simply slow to
        reach), matching a module fenced off after correctable-error
        storms rather than one physically unplugged.
        """
        self.is_offline = True

    def shrink(self, fraction: float) -> int:
        """Remove ``fraction`` of the pool's frames; returns frames lost.

        Granted frames are never revoked: the pool shrinks to at most
        its currently-allocated extent.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"shrink fraction {fraction} outside [0, 1]")
        target = int(self.n_frames * (1.0 - fraction))
        # Never shrink below the high-water mark: frame numbers already
        # handed out (even ones since freed) stay addressable.
        new_frames = max(self._next, target)
        lost = max(0, self.n_frames - new_frames)
        self.n_frames = new_frames
        return lost

    def free(self, frame: int) -> None:
        """Return a frame to the pool."""
        if not 0 <= frame < self._next:
            raise ValueError(f"frame {frame} was never allocated")
        self._free.append(frame)
        self.n_allocated -= 1

    @property
    def utilization(self) -> float:
        return self.n_allocated / self.n_frames

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FramePool({self.name or self.group}, "
                f"{self.n_allocated}/{self.n_frames} frames)")
