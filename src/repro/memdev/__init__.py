"""DRAM device models for the heterogeneous memory system.

This subpackage provides cycle-approximate timing and power models of the
four memory technologies the paper evaluates (Table II):

* **DDR3** — the homogeneous baseline used by most servers.
* **LPDDR2** — low power, high latency, low bandwidth (``Pow_Mem``).
* **RLDRAM3** — SRAM-like access, lowest latency, highest power (``Lat_Mem``).
* **HBM** — 2.5D-stacked, widest interface, highest bandwidth (``BW_Mem``).

The timing model is a per-bank state machine (open row + bank-busy window)
with a shared data bus per (sub)channel; it reproduces the first-order
latency/bandwidth/queueing differences that drive the paper's results
without simulating individual DRAM commands.
"""

from repro.memdev.timing import DeviceTiming
from repro.memdev.presets import (
    DDR3,
    LPDDR2,
    RLDRAM3,
    HBM,
    PRESETS,
    preset,
)
from repro.memdev.bank import BankState
from repro.memdev.module import MemoryModule, AccessResult
from repro.memdev.power import PowerModel, EnergyBreakdown
from repro.memdev.probe import DeviceCharacter, characterize

__all__ = [
    "DeviceCharacter",
    "characterize",
    "DeviceTiming",
    "DDR3",
    "LPDDR2",
    "RLDRAM3",
    "HBM",
    "PRESETS",
    "preset",
    "BankState",
    "MemoryModule",
    "AccessResult",
    "PowerModel",
    "EnergyBreakdown",
]
