"""Device-model characterization probes (lmbench-style self-checks).

These microbenchmarks drive a single :class:`MemoryModule` with
controlled access patterns and report the latencies and bandwidths the
*model* delivers, so they can be checked against the figures Table II
implies.  They double as regression anchors: if a timing change breaks a
device's character (RLDRAM stops being the latency leader, HBM stops
being the bandwidth leader), the probe tests catch it before the
experiment stack does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memdev.module import MemoryModule
from repro.memdev.timing import DeviceTiming
from repro.util.rng import stream
from repro.util.units import MIB, cycles_to_ns


@dataclass(frozen=True)
class DeviceCharacter:
    """Measured first-order character of one device model.

    Attributes:
        name: Technology name.
        idle_hit_ns: Unloaded row-buffer-hit latency.
        idle_miss_ns: Unloaded row-miss (closed bank) latency.
        idle_conflict_ns: Unloaded row-conflict latency.
        loaded_random_ns: Mean random-access latency at closed-loop load.
        stream_gbps: Sequential streaming bandwidth (one module).
        random_gbps: Random-access bandwidth (bank-parallel, closed-loop).
    """

    name: str
    idle_hit_ns: float
    idle_miss_ns: float
    idle_conflict_ns: float
    loaded_random_ns: float
    stream_gbps: float
    random_gbps: float


def idle_latencies(timing: DeviceTiming, capacity: int = 16 * MIB,
                   ) -> tuple[float, float, float]:
    """(hit, miss, conflict) unloaded latencies in ns, measured."""
    line = 64
    row_span = timing.effective_row_bytes * timing.n_subchannels \
        * timing.n_banks
    # Probe gaps sit well inside one refresh interval: a REF between the
    # probes would close the row and turn the "hit" into a miss.
    gap = max(200, timing.tRC * 4)
    # Miss: first touch of a closed bank.
    m = MemoryModule(timing, capacity)
    miss = m.access(0, 0, nbytes=line).latency
    # Hit: same row again, after the bank frees.
    hit = m.access(line, gap, nbytes=line).latency
    # Conflict: a different row of the same bank.
    conflict = m.access(row_span, 2 * gap, nbytes=line).latency
    return (cycles_to_ns(hit), cycles_to_ns(miss), cycles_to_ns(conflict))


def stream_bandwidth(timing: DeviceTiming, capacity: int = 16 * MIB,
                     n_lines: int = 4_000, window: int = 64) -> float:
    """Streaming bandwidth in GB/s with ``window`` requests in flight."""
    m = MemoryModule(timing, capacity)
    t = 0
    done = 0
    for i in range(n_lines):
        res = m.access((i * 64) % capacity, t)
        done = max(done, res.done)
        if (i + 1) % window == 0:
            t = done  # closed loop: next window starts when this lands
    total_bytes = n_lines * 64
    return total_bytes / cycles_to_ns(max(done, 1))  # bytes/ns == GB/s


def random_bandwidth(timing: DeviceTiming, capacity: int = 16 * MIB,
                     n_lines: int = 4_000, window: int = 16,
                     seed_key: str = "probe") -> float:
    """Random-access bandwidth in GB/s with ``window`` requests in flight."""
    rng = stream("memdev-probe", timing.name, seed_key)
    addrs = (rng.integers(0, capacity // 64, n_lines) * 64).tolist()
    m = MemoryModule(timing, capacity)
    t = 0
    done = 0
    for i, a in enumerate(addrs):
        res = m.access(a, t)
        done = max(done, res.done)
        if (i + 1) % window == 0:
            t = done
    return n_lines * 64 / cycles_to_ns(max(done, 1))


def loaded_random_latency(timing: DeviceTiming, capacity: int = 16 * MIB,
                          n_lines: int = 2_000, window: int = 8) -> float:
    """Mean random-access latency (ns) under closed-loop load."""
    rng = stream("memdev-probe", timing.name, "loaded")
    addrs = (rng.integers(0, capacity // 64, n_lines) * 64).tolist()
    m = MemoryModule(timing, capacity)
    t = 0
    done = 0
    total = 0
    for i, a in enumerate(addrs):
        res = m.access(a, t)
        total += res.latency
        done = max(done, res.done)
        if (i + 1) % window == 0:
            t = done
    return cycles_to_ns(total / n_lines)


def characterize(timing: DeviceTiming, capacity: int = 16 * MIB,
                 ) -> DeviceCharacter:
    """Full probe battery for one device model."""
    hit, miss, conflict = idle_latencies(timing, capacity)
    return DeviceCharacter(
        name=timing.name,
        idle_hit_ns=hit,
        idle_miss_ns=miss,
        idle_conflict_ns=conflict,
        loaded_random_ns=loaded_random_latency(timing, capacity),
        stream_gbps=stream_bandwidth(timing, capacity),
        random_gbps=random_bandwidth(timing, capacity),
    )
