"""Device timing parameters and derived quantities.

Field names follow JEDEC / Micron datasheet conventions, values come from
the paper's Table II.  Datasheet timings are nanoseconds; the simulator
works in 1 GHz core cycles (1 cycle == 1 ns, Table I), so the derived
properties round each analog timing up to integer cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.validation import check_positive, check_power_of_two


@dataclass(frozen=True)
class DeviceTiming:
    """Timing/architecture description of one memory technology.

    Parameters mirror Table II of the paper.  ``channel_width_bits`` and
    ``n_subchannels`` model the interface: HBM exposes several independent
    (pseudo-)channels over a very wide interface, which is where its
    bandwidth advantage comes from; planar parts expose a single channel.

    The model derives CAS latency as ``tRCD`` (a standard first-order
    approximation: parts are specified with tCL ≈ tRCD ≈ tRP) and the
    precharge time as ``tRC − tRAS``.
    """

    name: str
    burst_length: int
    n_banks: int
    row_buffer_bytes: int
    n_rows: int
    device_width_bits: int
    channel_width_bits: int
    n_subchannels: int
    tCK_ns: float
    tRAS_ns: float
    tRCD_ns: float
    tRC_ns: float
    tRFC_ns: float
    #: Average refresh interval (time between REF commands), ns.
    tREFI_ns: float = 7800.0
    #: Four-activate window, ns (0 disables the constraint).  At most
    #: four ACTs may issue to one rank within this window — the current
    #: delivery limit on bank-level parallelism for row-missing traffic.
    tFAW_ns: float = 0.0
    #: Bus turnaround when the data bus switches direction
    #: (write→read tWTR / read→write tRTW folded into one figure), ns.
    turnaround_ns: float = 0.0
    #: Standby (background) power per GB, milliwatts — Table II.
    standby_mw_per_gb: float = 0.0
    #: Active power per GB at full utilization, watts — Table II.
    active_w_per_gb: float = 0.0

    def __post_init__(self) -> None:
        check_power_of_two("burst_length", self.burst_length)
        check_power_of_two("n_banks", self.n_banks)
        check_power_of_two("row_buffer_bytes", self.row_buffer_bytes)
        check_power_of_two("channel_width_bits", self.channel_width_bits)
        check_positive("tCK_ns", self.tCK_ns)
        check_positive("tRC_ns", self.tRC_ns)
        if self.tRAS_ns > self.tRC_ns:
            raise ValueError(
                f"{self.name}: tRAS ({self.tRAS_ns}) cannot exceed tRC ({self.tRC_ns})"
            )

    # ---- derived analog timings -------------------------------------------------

    @property
    def tRP_ns(self) -> float:
        """Row precharge time: the tRC budget left after tRAS."""
        return self.tRC_ns - self.tRAS_ns

    @property
    def tCL_ns(self) -> float:
        """CAS (column access) latency; first-order tCL ≈ tRCD."""
        return self.tRCD_ns

    @property
    def burst_ns(self) -> float:
        """Data-bus occupancy of one burst (double data rate: BL/2 clocks)."""
        return self.burst_length / 2 * self.tCK_ns

    @property
    def devices_per_channel(self) -> int:
        """Devices ganged to fill the channel width (a DIMM rank)."""
        return max(1, self.channel_width_bits // self.device_width_bits)

    @property
    def effective_row_bytes(self) -> int:
        """Channel-level open-row window: per-device row buffer x ganged
        devices.  Table II lists per-device row buffers; a 64-bit DDR3
        channel opens eight 128 B device rows at once (1 KiB)."""
        return self.row_buffer_bytes * self.devices_per_channel

    def transfer_ns(self, nbytes: int) -> float:
        """Bus time to move ``nbytes`` over one subchannel.

        A burst moves ``channel_width_bits/8 * burst_length`` bytes; larger
        transfers chain bursts back-to-back.
        """
        bytes_per_burst = self.channel_width_bits // 8 * self.burst_length
        bursts = max(1, math.ceil(nbytes / bytes_per_burst))
        return bursts * self.burst_ns

    # ---- derived integer-cycle timings (1 GHz core clock) -----------------------

    @property
    def tRP(self) -> int:
        return _cyc(self.tRP_ns)

    @property
    def tRCD(self) -> int:
        return _cyc(self.tRCD_ns)

    @property
    def tCL(self) -> int:
        return _cyc(self.tCL_ns)

    @property
    def tRAS(self) -> int:
        return _cyc(self.tRAS_ns)

    @property
    def tRC(self) -> int:
        return _cyc(self.tRC_ns)

    @property
    def tRFC(self) -> int:
        return _cyc(self.tRFC_ns)

    @property
    def tREFI(self) -> int:
        return _cyc(self.tREFI_ns)

    @property
    def tFAW(self) -> int:
        return _cyc(self.tFAW_ns)

    @property
    def turnaround(self) -> int:
        return _cyc(self.turnaround_ns)

    def transfer_cycles(self, nbytes: int) -> int:
        return _cyc(self.transfer_ns(nbytes))

    @property
    def tCCD(self) -> int:
        """Column-to-column command spacing: one burst worth of cycles.
        Row-buffer hits pipeline at this rate instead of serializing on
        the full CAS latency."""
        return max(1, _cyc(self.burst_ns))

    # ---- headline figures of merit ----------------------------------------------

    @property
    def row_hit_latency(self) -> int:
        """Idle-bank read latency when the row is already open (cycles)."""
        return self.tCL

    @property
    def row_miss_latency(self) -> int:
        """Idle-bank read latency when the bank is precharged (cycles)."""
        return self.tRCD + self.tCL

    @property
    def row_conflict_latency(self) -> int:
        """Idle-bank read latency when another row is open (cycles)."""
        return self.tRP + self.tRCD + self.tCL

    def peak_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth across subchannels, GB/s."""
        bytes_per_ns = self.channel_width_bits / 8 * 2 / self.tCK_ns
        return bytes_per_ns * self.n_subchannels

    # ---- fault injection ----------------------------------------------------

    def scaled(self, factor: float) -> "DeviceTiming":
        """Uniformly derated copy: every analog timing ``factor`` slower.

        Models a throttled or degraded part (fault injection, thermal
        derating).  Scaling tCK slows the data bus, so both latency and
        bandwidth degrade together; architecture parameters (banks,
        widths, row sizes) are untouched, and the tRAS <= tRC invariant
        is preserved by construction.  The refresh interval tREFI is
        deliberately *not* scaled — refresh obligations don't relax just
        because the part runs slow.
        """
        if factor < 1.0:
            raise ValueError(f"derating factor {factor} must be >= 1")
        import dataclasses

        return dataclasses.replace(
            self,
            tCK_ns=self.tCK_ns * factor,
            tRAS_ns=self.tRAS_ns * factor,
            tRCD_ns=self.tRCD_ns * factor,
            tRC_ns=self.tRC_ns * factor,
            tRFC_ns=self.tRFC_ns * factor,
            tFAW_ns=self.tFAW_ns * factor,
            turnaround_ns=self.turnaround_ns * factor,
        )


def _cyc(ns: float) -> int:
    """Round an analog timing up to whole 1 GHz cycles (>=0)."""
    return max(0, int(math.ceil(ns - 1e-9)))
