"""Memory technology presets — paper Table II, verbatim where given.

Table II of the paper:

=====================  ======  ======  =========  ========
Parameter              DDR3    HBM     RLDRAM3    LPDDR2
=====================  ======  ======  =========  ========
Burst length           8       4       8          4
# of banks             8       8       16         8
Row buffer size        128B    2kB     16B        1kB
# of rows              32K     32K     8K         8K
Device width           8       128     8          32
tCK (ns)               1.07    2       0.93       1.875
tRAS (ns)              35      33      6          42
tRCD (ns)              13.75   15      2          15
tRC (ns)               48.75   48      8          60
tRFC (ns)              160     160     110        130
Standby power (mW/GB)  256     335     30*        6.5
Active power (W/GB)    1.5     4.5     1.1*       0.4
=====================  ======  ======  =========  ========

(*) The paper's prose states RLDRAM static+dynamic power is 4–5x a
DDR3/DDR4 module; Table II as printed lists 30 mW/GB / 1.1 W/GB, which
contradicts that prose (and every RLDRAM datasheet).  We keep Table II's
RLDRAM *timing* values verbatim but set its power to 4.5x DDR3
(1152 mW/GB standby, 6.75 W/GB active) so that the energy-efficiency
results reproduce the paper's qualitative ordering (Homogen-RL fastest but
least efficient, Figs. 9/11).  This is the only deliberate deviation from
Table II and is re-documented in EXPERIMENTS.md.

Interface widths: DDR3/RLDRAM3 DIMMs gang x8 devices into a 64-bit channel;
LPDDR2 is a single x32 point-to-point channel; HBM exposes its stack as
independent 128-bit subchannels (the paper: "more channels per device") —
eight of them, per the JESD235 HBM1 organization the paper cites [15].
"""

from __future__ import annotations

from repro.memdev.timing import DeviceTiming

DDR3 = DeviceTiming(
    name="DDR3",
    burst_length=8,
    n_banks=8,
    row_buffer_bytes=128,
    n_rows=32 * 1024,
    device_width_bits=8,
    channel_width_bits=64,
    n_subchannels=1,
    tCK_ns=1.07,
    tRAS_ns=35.0,
    tRCD_ns=13.75,
    tRC_ns=48.75,
    tRFC_ns=160.0,
    tFAW_ns=30.0,
    turnaround_ns=7.5,
    standby_mw_per_gb=256.0,
    active_w_per_gb=1.5,
)

HBM = DeviceTiming(
    name="HBM",
    burst_length=4,
    n_banks=8,
    row_buffer_bytes=2048,
    n_rows=32 * 1024,
    device_width_bits=128,
    channel_width_bits=128,
    n_subchannels=8,
    tCK_ns=2.0,
    tRAS_ns=33.0,
    tRCD_ns=15.0,
    tRC_ns=48.0,
    tRFC_ns=160.0,
    tFAW_ns=16.0,
    turnaround_ns=6.0,
    standby_mw_per_gb=335.0,
    active_w_per_gb=4.5,
)

RLDRAM3 = DeviceTiming(
    name="RLDRAM3",
    burst_length=8,
    n_banks=16,
    row_buffer_bytes=16,
    n_rows=8 * 1024,
    device_width_bits=8,
    channel_width_bits=64,
    n_subchannels=1,
    tCK_ns=0.93,
    tRAS_ns=6.0,
    tRCD_ns=2.0,
    tRC_ns=8.0,
    tRFC_ns=110.0,
    # RLDRAM's SRAM-like core has no four-activate restriction.
    tFAW_ns=0.0,
    turnaround_ns=1.9,
    # See module docstring: 4.5x DDR3 per the paper's prose, not Table II.
    standby_mw_per_gb=1152.0,
    active_w_per_gb=6.75,
)

LPDDR2 = DeviceTiming(
    name="LPDDR2",
    burst_length=4,
    n_banks=8,
    row_buffer_bytes=1024,
    n_rows=8 * 1024,
    device_width_bits=32,
    channel_width_bits=32,
    n_subchannels=1,
    tCK_ns=1.875,
    tRAS_ns=42.0,
    tRCD_ns=15.0,
    tRC_ns=60.0,
    tRFC_ns=130.0,
    tFAW_ns=50.0,
    turnaround_ns=9.4,
    standby_mw_per_gb=6.5,
    active_w_per_gb=0.4,
)

PRESETS: dict[str, DeviceTiming] = {
    "DDR3": DDR3,
    "HBM": HBM,
    "RLDRAM3": RLDRAM3,
    "RLDRAM": RLDRAM3,
    "LPDDR2": LPDDR2,
    "LPDDR": LPDDR2,
}


def preset(name: str) -> DeviceTiming:
    """Look up a device preset by (case-insensitive) name."""
    key = name.upper()
    if key not in PRESETS:
        raise KeyError(
            f"unknown memory technology {name!r}; available: "
            f"{sorted(set(PRESETS))}"
        )
    return PRESETS[key]
