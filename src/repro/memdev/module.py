"""Memory module model: banks + subchannel buses + refresh + statistics.

A :class:`MemoryModule` is one physical device population behind one memory
controller channel (paper Sec. V-C uses one controller per module).  It
answers timing queries for individual line-sized accesses and accumulates
the counters the power model (``repro.memdev.power``) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memdev.bank import BankState
from repro.memdev.timing import DeviceTiming
from repro.util.validation import check_positive


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one module access.

    Attributes:
        start: Cycle the access began occupying the bank (>= issue cycle).
        done: Cycle the last data beat left the module.
        queue_cycles: Cycles spent waiting for bank/bus availability.
        service_cycles: Bank core latency + bus transfer.
        row_hit: Whether the access hit in the row buffer.
    """

    start: int
    done: int
    queue_cycles: int
    service_cycles: int
    row_hit: bool

    @property
    def latency(self) -> int:
        """Total cycles from issue to data completion."""
        return self.queue_cycles + self.service_cycles


class MemoryModule:
    """One capacity-bounded module of a single memory technology.

    The module owns ``timing.n_subchannels`` independent data buses and
    ``n_banks`` banks per subchannel.  Physical addresses local to the
    module are decoded as ``[... row | bank | subchannel | column ...]``
    so that consecutive lines stripe across subchannels then banks —
    the interleaving a real controller uses to expose parallelism.
    """

    def __init__(self, timing: DeviceTiming, capacity_bytes: int, name: str | None = None):
        check_positive("capacity_bytes", capacity_bytes)
        self.timing = timing
        self.capacity_bytes = int(capacity_bytes)
        self.name = name or timing.name
        nsub = timing.n_subchannels
        self.banks: list[list[BankState]] = [
            [BankState() for _ in range(timing.n_banks)] for _ in range(nsub)
        ]
        self.bus_free_at: list[int] = [0] * nsub
        # Per-subchannel: last bus direction (for turnaround) and the
        # times of the last four activates (for tFAW).
        self._last_was_write: list[bool | None] = [None] * nsub
        self._recent_acts: list[list[int]] = [[] for _ in range(nsub)]
        self._next_refresh = timing.tREFI
        # Statistics for the power model and experiment reports.
        self.n_accesses = 0
        self.n_row_hits = 0
        self.n_reads = 0
        self.n_writes = 0
        self.bus_busy_cycles = 0
        self.bank_busy_cycles = 0
        self.bytes_transferred = 0
        self.last_done_cycle = 0
        # Precomputed address-decode shifts (row window/banks are pow2).
        self._col_bits = (timing.effective_row_bytes - 1).bit_length()
        self._sub_mask = nsub - 1
        self._sub_bits = self._sub_mask.bit_length()
        self._bank_mask = timing.n_banks - 1
        self._bank_bits = self._bank_mask.bit_length()

    # ---- address decode ---------------------------------------------------------

    def decode(self, local_addr: int) -> tuple[int, int, int]:
        """Map a module-local physical address to (subchannel, bank, row)."""
        line = local_addr >> self._col_bits
        sub = line & self._sub_mask
        line >>= self._sub_bits
        bank = line & self._bank_mask
        row = (line >> self._bank_bits) % self.timing.n_rows
        return sub, bank, row

    # ---- timing -----------------------------------------------------------------

    def access(self, local_addr: int, issue_cycle: int, nbytes: int = 64,
               is_write: bool = False) -> AccessResult:
        """Perform one access; mutates bank/bus state and statistics."""
        t = self.timing
        if issue_cycle >= self._next_refresh:
            self._do_refresh(issue_cycle)
        sub, bank_i, row = self.decode(local_addr)
        bank = self.banks[sub][bank_i]
        row_hit = bank.is_hit(row)
        ideal = bank.access_latency(t, row)
        start = max(issue_cycle, bank.ready_at)
        # tFAW: a fifth activate must wait for the oldest of the last
        # four to leave the window (row changes only).
        if not row_hit and t.tFAW > 0:
            acts = self._recent_acts[sub]
            if len(acts) >= 4:
                start = max(start, acts[-4] + t.tFAW)
        data_ready = bank.service(t, row, start)
        if not row_hit:
            acts = self._recent_acts[sub]
            acts.append(bank.last_activate)
            if len(acts) > 4:
                del acts[:-4]
        # Bank-core occupancy (activate/column windows) drives the
        # active-power utilization (Micron-calculator-style ACT/PRE term).
        self.bank_busy_cycles += bank.ready_at - start
        # The data beat needs the subchannel bus after the bank responds,
        # plus a turnaround penalty when the bus switches direction.
        transfer = t.transfer_cycles(nbytes)
        bus_start = max(data_ready, self.bus_free_at[sub])
        prev_write = self._last_was_write[sub]
        if prev_write is not None and prev_write != is_write:
            bus_start += t.turnaround
        self._last_was_write[sub] = is_write
        done = bus_start + transfer
        self.bus_free_at[sub] = done
        service = ideal + transfer
        queue = (done - issue_cycle) - service
        if queue < 0:  # rounding guard; service definition is first-order
            queue = 0
        # Stats.
        self.n_accesses += 1
        self.n_row_hits += row_hit
        if is_write:
            self.n_writes += 1
        else:
            self.n_reads += 1
        self.bus_busy_cycles += transfer
        self.bytes_transferred += nbytes
        if done > self.last_done_cycle:
            self.last_done_cycle = done
        return AccessResult(start=start, done=done, queue_cycles=queue,
                            service_cycles=service, row_hit=row_hit)

    def _do_refresh(self, now: int) -> None:
        """Apply all elapsed refresh intervals (cheap catch-up model)."""
        t = self.timing
        while now >= self._next_refresh:
            at = self._next_refresh
            for sub_banks in self.banks:
                for b in sub_banks:
                    b.refresh(t, at)
            self._next_refresh += t.tREFI

    # ---- fault injection --------------------------------------------------------

    def derate(self, timing: DeviceTiming) -> None:
        """Swap in degraded timings mid-life (fault injection).

        Only valid for timings with identical architecture parameters
        (banks, subchannels, row sizes) — i.e. the output of
        :meth:`DeviceTiming.scaled` — because the decode geometry is
        precomputed from them.  Bank and bus state carry over: accesses
        already in flight finished at the old speed, later ones queue at
        the new one.
        """
        old = self.timing
        if (timing.n_banks != old.n_banks
                or timing.n_subchannels != old.n_subchannels
                or timing.effective_row_bytes != old.effective_row_bytes):
            raise ValueError(
                f"{self.name}: derate() cannot change device geometry")
        self.timing = timing
        # Re-anchor the refresh schedule under the (unscaled) tREFI.
        if self._next_refresh < timing.tREFI:
            self._next_refresh = timing.tREFI

    # ---- bookkeeping ------------------------------------------------------------

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row."""
        return self.n_row_hits / self.n_accesses if self.n_accesses else 0.0

    def utilization(self, elapsed_cycles: int) -> float:
        """Active-power utilization over ``elapsed_cycles``.

        The dominant DRAM active-power term is the activate/precharge
        work, so utilization is the fraction of time each subchannel's
        rank has bank cores busy (union-bounded at 1), never less than
        the raw data-bus occupancy.
        """
        if elapsed_cycles <= 0:
            return 0.0
        total = elapsed_cycles * self.timing.n_subchannels
        bus = self.bus_busy_cycles / total
        act = self.bank_busy_cycles / total
        return min(1.0, max(bus, act))

    def reset_stats(self) -> None:
        """Clear statistics without disturbing timing state."""
        self.n_accesses = 0
        self.n_row_hits = 0
        self.n_reads = 0
        self.n_writes = 0
        self.bus_busy_cycles = 0
        self.bank_busy_cycles = 0
        self.bytes_transferred = 0
        self.last_done_cycle = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryModule({self.name}, {self.capacity_bytes >> 20} MiB, "
                f"{self.n_accesses} accesses)")
