"""Per-bank state for the cycle-approximate device model.

A bank tracks which row (if any) is latched in its row buffer, when it can
accept the next activate (tRC window), and when its current access finishes.
The controller (``repro.memctrl``) owns scheduling order; the bank only
answers "when could this access start, and how long would it take?".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memdev.timing import DeviceTiming


@dataclass
class BankState:
    """Mutable state of one DRAM bank.

    Attributes:
        open_row: Row index currently latched, or ``None`` if precharged.
        ready_at: Cycle at which the bank can begin a new column access.
        last_activate: Cycle of the most recent ACT (enforces tRC).
    """

    open_row: int | None = None
    ready_at: int = 0
    last_activate: int = -(1 << 60)

    def access_latency(self, timing: DeviceTiming, row: int) -> int:
        """Array-access latency (cycles) for ``row`` given current state.

        Does not include queueing or data transfer; pure bank-core time:

        * row hit      → tCL
        * closed bank  → tRCD + tCL
        * row conflict → tRP + tRCD + tCL
        """
        if self.open_row == row:
            return timing.row_hit_latency
        if self.open_row is None:
            return timing.row_miss_latency
        return timing.row_conflict_latency

    def is_hit(self, row: int) -> bool:
        """True when the access would be a row-buffer hit."""
        return self.open_row == row

    def service(self, timing: DeviceTiming, row: int, start: int) -> int:
        """Commit an access to ``row`` beginning at cycle ``start``.

        Updates the open row and busy windows and returns the cycle at
        which the requested data is available at the bank's edge (before
        bus transfer).  ``start`` is clamped to ``ready_at``.

        Row hits pipeline: the bank is busy only one column-command slot
        (tCCD), so back-to-back hits stream at burst rate while each
        datum still takes tCL to appear.  Row changes pay precharge (if a
        row is open) + activate; the precharge may not start until tRAS
        after the row's activate, and activates honour the tRC window.
        (In analog time tRC == tRAS + tRP by construction, but the
        integer-cycle roundings of tRAS and tRP can sum to more than the
        rounding of tRC — derated or custom parts hit this — so both
        guards are enforced independently.)

        NOTE: :meth:`repro.memctrl.controller.ChannelController
        .service_soa` inlines this arithmetic on its fast path; keep the
        two in lockstep (the parity suite in ``tests/test_parity.py``
        pins the equivalence).
        """
        start = max(start, self.ready_at)
        if self.open_row == row:
            done = start + timing.tCL
            self.ready_at = start + timing.tCCD
            return done
        if self.open_row is not None:
            # Precharge may not begin until tRAS after the last activate.
            pre_start = max(start, self.last_activate + timing.tRAS)
            act = max(pre_start + timing.tRP,
                      self.last_activate + timing.tRC)
        else:
            act = max(start, self.last_activate + timing.tRC)
        self.last_activate = act
        self.open_row = row
        done = act + timing.tRCD + timing.tCL
        self.ready_at = done
        return done

    def refresh(self, timing: DeviceTiming, start: int) -> int:
        """Apply a refresh beginning at ``start``; returns completion cycle.

        Refresh closes the row buffer and blocks the bank for tRFC.
        """
        start = max(start, self.ready_at)
        self.open_row = None
        self.ready_at = start + timing.tRFC
        self.last_activate = self.ready_at
        return self.ready_at
