"""Memory power/energy model (paper Sec. V-A).

The paper feeds read/write access rates into Micron's DRAM power
calculators and reports the per-GB figures of Table II.  We use the same
two published constants directly:

* **standby** (background) power — proportional to populated capacity,
  drawn for the whole interval;
* **active** power — the incremental power at full data-bus utilization,
  scaled by the measured utilization of the interval.

``P(module) = standby_mW/GB * GB + active_W/GB * GB * utilization``

Energy over an interval is ``P * T``; the paper's "memory EDP" is the
product of memory power and total memory access time (Sec. VI-A), which we
expose alongside a conventional energy*delay for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memdev.module import MemoryModule
from repro.util.units import GIB, cycles_to_ns


@dataclass(frozen=True)
class EnergyBreakdown:
    """Power/energy accounting for one module over one interval.

    Attributes:
        standby_w: Background power, watts.
        active_w: Utilization-scaled active power, watts.
        energy_j: Total energy over the interval, joules.
        elapsed_s: Interval length, seconds.
    """

    standby_w: float
    active_w: float
    energy_j: float
    elapsed_s: float

    @property
    def total_w(self) -> float:
        return self.standby_w + self.active_w


class PowerModel:
    """Evaluates Table II power figures against module activity counters."""

    def module_power(self, module: MemoryModule, elapsed_cycles: int) -> EnergyBreakdown:
        """Power/energy of ``module`` over ``elapsed_cycles`` core cycles."""
        t = module.timing
        gb = module.capacity_bytes / GIB
        standby = t.standby_mw_per_gb * 1e-3 * gb
        util = module.utilization(elapsed_cycles)
        active = t.active_w_per_gb * gb * util
        elapsed_s = cycles_to_ns(max(elapsed_cycles, 0)) * 1e-9
        energy = (standby + active) * elapsed_s
        return EnergyBreakdown(
            standby_w=standby, active_w=active, energy_j=energy, elapsed_s=elapsed_s
        )

    def system_power(self, modules: list[MemoryModule], elapsed_cycles: int) -> float:
        """Total memory power (watts) across all modules."""
        return sum(
            self.module_power(m, elapsed_cycles).total_w for m in modules
        )

    def system_energy(self, modules: list[MemoryModule], elapsed_cycles: int) -> float:
        """Total memory energy (joules) across all modules."""
        return sum(
            self.module_power(m, elapsed_cycles).energy_j for m in modules
        )
