"""Persistent content-addressed store for filtered miss streams.

Cache filtering is the sweep front end: every worker process needs the
``(MissStream, CacheStats)`` of each ``(app, input, n_accesses)`` it
replays, and the in-process ``lru_cache`` on
:func:`repro.sim.single.filtered_stream` cannot cross the
``ProcessPoolExecutor`` boundary.  This store persists filtered results
on disk so each trace is filtered once per *machine* instead of once
per process, the same profile-once/reuse-everywhere economy MOCA's
offline profiling pass is built around.

Store format v2 is mmap-native: one entry is a set of raw aligned
``.npy`` column files plus a ``.json`` meta sidecar, all named by the
SHA-256 of the canonical key document.  Columns are loaded with
``np.load(mmap_mode="r")``, so a stream maps once per machine and the
kernel pages it lazily — workers across processes share the physical
pages through the OS page cache instead of each inflating a private
decompressed copy (the v1 ``savez_compressed`` behaviour).  Legacy v1
``.npz`` entries stay readable: a hit on one is served, rewritten in
v2, and the npz removed (read-through migration).  A process-level
:class:`~repro.util.resident.ResidentLRU` additionally keeps recently
decoded entries resident, so repeated gets within one worker skip even
the meta parse.

The key covers everything that determines the stream: application,
input, trace length, the full hierarchy geometry (sizes, ways, line
size), the warmup fraction, and the trace RNG root.  The filter
*engine* is deliberately not part of the key — kernel and reference
produce byte-identical streams (``tests/test_filter_parity.py``), so
entries written by either are interchangeable.

Robustness rules mirror :class:`repro.experiments.cache.ResultCache`:
atomic writes (temp file + ``os.replace``, meta written *last* so a
meta sidecar marks a complete entry), corrupt entries warn via
``OBS.warn`` and are deleted whole, entries from other format versions
are dropped silently, and ``refresh`` bypasses reads while still
overwriting.  Eviction (``max_entries``) removes entries as whole
file *groups* — meta first, then columns — and tolerates halves that
vanish concurrently.  Module-level wiring follows the result-cache
precedence: an explicit :func:`configure` call, else
``REPRO_STREAM_STORE_DIR`` (empty string = explicitly disabled), else
``<REPRO_CACHE_DIR>/streams``.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cpu.hierarchy import CacheHierarchy, CacheStats, MissStream
from repro.obs.registry import OBS
from repro.util.resident import ResidentLRU
from repro.util.rng import ROOT_SEED

__all__ = [
    "ENV_DIR",
    "ENV_REFRESH",
    "STREAM_STORE_VERSION",
    "StreamStore",
    "StreamStoreStats",
    "active",
    "configure",
    "filter_key",
    "key_digest",
    "reset",
    "stats_dict",
]

#: On-disk entry format; entries from other versions are ignored
#: (except v1 npz entries, which are migrated read-through).
STREAM_STORE_VERSION = 2

#: Environment selection (inherited by sweep worker processes).
ENV_DIR = "REPRO_STREAM_STORE_DIR"
ENV_REFRESH = "REPRO_STREAM_REFRESH"

_ARRAYS = (("inst", np.int64), ("vline", np.int64), ("obj_id", np.int32),
           ("dep", np.bool_), ("kind", np.int8))

#: Decoded entries kept resident per process (tentpole b); sized for a
#: sweep worker cycling through a handful of workloads.
_RESIDENT_CAPACITY = 8


def filter_key(app_name: str, input_name: str, n_accesses: int, *,
               hierarchy: CacheHierarchy | None = None,
               warmup_frac: float = 0.2) -> dict:
    """Canonical key document for one filtered stream.

    ``hierarchy=None`` keys the stock geometry (the one
    ``filtered_stream`` builds); passing a hierarchy keys its actual
    sizes so experiments with non-Table-I caches never alias.
    """
    h = hierarchy if hierarchy is not None else CacheHierarchy()
    return {
        "schema": "miss-stream",
        "app": app_name,
        "input": input_name,
        "n_accesses": int(n_accesses),
        "l1_size": h.l1.size_bytes,
        "l1_assoc": h.l1.assoc,
        "l2_size": h.l2.size_bytes,
        "l2_assoc": h.l2.assoc,
        "line_bytes": h.line_bytes,
        "warmup_frac": warmup_frac,
        "seed": ROOT_SEED,
    }


def key_digest(key: dict) -> str:
    """SHA-256 of the canonical JSON serialization of ``key``."""
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class StreamStoreStats:
    """Per-instance tallies; ``hit_ratio`` feeds the sweep manifest."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evicted: int = 0

    @property
    def hit_ratio(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "evicted": self.evicted,
            "hit_ratio": round(self.hit_ratio, 6),
        }


class StreamStore:
    """Content-addressed ``filter_key -> (MissStream, CacheStats)`` store.

    Args:
        directory: Store root; created lazily on the first store.
        refresh: When true, :meth:`get` always misses (forcing
            re-filtering) while :meth:`put` still overwrites — the
            ``--refresh`` CLI semantics extended to streams.
        max_entries: Evict least-recently-written entries past this
            count after each :meth:`put` (``None`` = unbounded).
    """

    def __init__(self, directory: str | Path, *, refresh: bool = False,
                 max_entries: int | None = None):
        self.directory = Path(directory)
        self.refresh = refresh
        self.max_entries = max_entries
        self.stats = StreamStoreStats()
        self._resident = ResidentLRU(_RESIDENT_CAPACITY)

    def path_for(self, key: dict) -> Path:
        """Meta sidecar path — presence marks a complete v2 entry."""
        return self.directory / f"{key_digest(key)}.json"

    def legacy_path_for(self, key: dict) -> Path:
        """The v1 single-file npz path for ``key`` (read-through only)."""
        return self.directory / f"{key_digest(key)}.npz"

    def column_path(self, digest: str, name: str) -> Path:
        return self.directory / f"{digest}.{name}.npy"

    # ---- read --------------------------------------------------------------

    def get(self, key: dict) -> tuple[MissStream, CacheStats] | None:
        """Stored stream for ``key``, or ``None`` (= filter the trace).

        A hit returns *shared* read-only views: column arrays are
        ``np.load(mmap_mode="r")`` maps of the entry files (or the
        process-resident decode of a recent hit), so concurrent readers
        share physical pages.  POSIX keeps an unlinked mapping valid,
        so a view survives concurrent eviction/overwrite of its entry.
        """
        digest = key_digest(key)
        meta_path = self.directory / f"{digest}.json"
        if self.refresh:
            self._miss(refresh=True)
            return None
        try:
            stat = meta_path.stat()
        except OSError:
            return self._get_legacy(key, digest)
        resident_key = (str(meta_path), stat.st_mtime_ns, stat.st_size)
        cached = self._resident.get(resident_key)
        if cached is not None:
            self.stats.hits += 1
            OBS.add("stream_store.hit")
            OBS.add("stream_store.resident_hit")
            OBS.add("data_plane.copies_avoided")
            return cached
        try:
            doc = json.loads(meta_path.read_text())
            if doc.get("version") != STREAM_STORE_VERSION:
                # Another (older/newer) format after an upgrade —
                # drop it quietly and re-filter.
                self._drop_entry(digest)
                OBS.add("stream_store.stale")
                self._miss()
                return None
            arrays = {}
            mapped_bytes = 0
            for name, _ in _ARRAYS:
                arr = np.load(self.column_path(digest, name), mmap_mode="r")
                arrays[name] = arr
                mapped_bytes += arr.nbytes
            result = self._decode(doc, arrays)
        except FileNotFoundError:
            # Meta without all its columns: a half-evicted or truncated
            # entry — treat as corrupt and clear the remains.
            OBS.warn(f"stream store: incomplete entry {meta_path.name}; "
                     "re-filtering")
            OBS.add("stream_store.corrupt")
            self.stats.corrupt += 1
            self._drop_entry(digest)
            self._miss()
            return None
        except (ValueError, KeyError, TypeError, OSError, EOFError) as exc:
            OBS.warn(f"stream store: corrupt entry {meta_path.name} "
                     f"({type(exc).__name__}: {exc}); re-filtering")
            OBS.add("stream_store.corrupt")
            self.stats.corrupt += 1
            self._drop_entry(digest)
            self._miss()
            return None
        self._resident.put(resident_key, result)
        self.stats.hits += 1
        OBS.add("stream_store.hit")
        OBS.add("stream_store.mmap_hit")
        OBS.add("data_plane.copies_avoided")
        OBS.add("data_plane.bytes_mapped", mapped_bytes)
        return result

    def _get_legacy(self, key: dict,
                    digest: str) -> tuple[MissStream, CacheStats] | None:
        """v1 npz fallback: serve the hit and migrate the entry to v2."""
        path = self.directory / f"{digest}.npz"
        try:
            with np.load(path) as data:
                doc = json.loads(bytes(data["meta"]).decode())
                if doc.get("version") != 1:
                    path.unlink(missing_ok=True)
                    OBS.add("stream_store.stale")
                    self._miss()
                    return None
                arrays = {name: data[name] for name, _ in _ARRAYS}
            result = self._decode(doc, arrays)
        except (FileNotFoundError,):
            self._miss()
            return None
        except (ValueError, KeyError, TypeError, OSError, EOFError,
                zipfile.BadZipFile) as exc:
            OBS.warn(f"stream store: corrupt entry {path.name} "
                     f"({type(exc).__name__}: {exc}); re-filtering")
            OBS.add("stream_store.corrupt")
            self.stats.corrupt += 1
            path.unlink(missing_ok=True)
            self._miss()
            return None
        # Read-through migration: rewrite in v2, drop the npz.  The
        # stores counter is deliberately not charged — no new content
        # entered the store, it just changed clothes.
        stream, stats = result
        self._write_v2(key, digest, stream, stats)
        path.unlink(missing_ok=True)
        OBS.add("stream_store.migrated")
        self.stats.hits += 1
        OBS.add("stream_store.hit")
        return result

    @staticmethod
    def _decode(doc: dict, arrays: dict) -> tuple[MissStream, CacheStats]:
        n = len(arrays["inst"])
        for name, dtype in _ARRAYS:
            arr = arrays[name]
            if arr.dtype != dtype or arr.ndim != 1 or len(arr) != n:
                raise ValueError(
                    f"column {name!r} has shape {arr.shape} dtype "
                    f"{arr.dtype} (want ({n},) {np.dtype(dtype)})")
        stats_doc = doc["stats"]
        stream = MissStream(
            inst=arrays["inst"], vline=arrays["vline"],
            obj_id=arrays["obj_id"], dep=arrays["dep"],
            kind=arrays["kind"],
            total_instructions=int(doc["total_instructions"]),
        )
        stats = CacheStats(
            total_instructions=int(stats_doc["total_instructions"]),
            l1_hits=int(stats_doc["l1_hits"]),
            l1_misses=int(stats_doc["l1_misses"]),
            l2_hits=int(stats_doc["l2_hits"]),
            l2_misses=int(stats_doc["l2_misses"]),
            n_writebacks=int(stats_doc["n_writebacks"]),
            # JSON round-trip preserves list order, so first-touch
            # iteration order survives; keys come back as ints.
            per_object={int(obj): [int(acc), int(miss)]
                        for obj, acc, miss in stats_doc["per_object"]},
        )
        return stream, stats

    def _miss(self, refresh: bool = False) -> None:
        self.stats.misses += 1
        OBS.add("stream_store.refresh_bypass" if refresh
                else "stream_store.miss")

    def _drop_entry(self, digest: str) -> None:
        """Remove every file of one entry; meta first so readers that
        race us see either a complete entry or none."""
        (self.directory / f"{digest}.json").unlink(missing_ok=True)
        for name, _ in _ARRAYS:
            self.column_path(digest, name).unlink(missing_ok=True)
        (self.directory / f"{digest}.npz").unlink(missing_ok=True)

    # ---- write -------------------------------------------------------------

    def put(self, key: dict, stream: MissStream,
            stats: CacheStats) -> Path:
        """Store one filtered result atomically; returns the meta path."""
        digest = key_digest(key)
        path = self._write_v2(key, digest, stream, stats)
        # A v2 entry supersedes any v1 leftover under the same digest.
        (self.directory / f"{digest}.npz").unlink(missing_ok=True)
        self.stats.stores += 1
        OBS.add("stream_store.store")
        if self.max_entries is not None:
            self._evict_over(self.max_entries)
        return path

    def _write_v2(self, key: dict, digest: str, stream: MissStream,
                  stats: CacheStats) -> Path:
        from repro import __version__

        self.directory.mkdir(parents=True, exist_ok=True)
        doc = {
            "version": STREAM_STORE_VERSION,
            "repro_version": __version__,
            "key": key,
            "columns": [name for name, _ in _ARRAYS],
            "total_instructions": stream.total_instructions,
            "stats": {
                "total_instructions": stats.total_instructions,
                "l1_hits": stats.l1_hits,
                "l1_misses": stats.l1_misses,
                "l2_hits": stats.l2_hits,
                "l2_misses": stats.l2_misses,
                "n_writebacks": stats.n_writebacks,
                "per_object": [[obj, acc, miss] for obj, (acc, miss)
                               in stats.per_object.items()],
            },
        }
        pid = os.getpid()
        # Columns first, meta last: the sidecar is the completeness
        # marker, so a crash mid-write leaves stray columns (cleaned by
        # eviction) but never a readable half-entry.  np.save pads its
        # header to a 64-byte boundary, so the mapped data is aligned.
        for name, _ in _ARRAYS:
            target = self.column_path(digest, name)
            tmp = target.with_name(f".{target.name}.{pid}.tmp.npy")
            np.save(tmp, np.ascontiguousarray(getattr(stream, name)))
            os.replace(tmp, target)
        path = self.directory / f"{digest}.json"
        tmp = path.with_name(f".{path.name}.{pid}.tmp")
        tmp.write_text(json.dumps(doc))
        os.replace(tmp, path)
        return path

    # ---- eviction ----------------------------------------------------------

    def _entries_by_age(self) -> list[tuple[float, str]]:
        """(mtime, digest) per complete entry, oldest first.  Files that
        vanish mid-scan (a concurrent evictor) sort as oldest."""

        def mtime(p: Path) -> float:
            try:
                return p.stat().st_mtime
            except OSError:
                return 0.0

        entries = {}
        for meta in self.directory.glob("*.json"):
            entries[meta.stem] = mtime(meta)
        for npz in self.directory.glob("*.npz"):
            entries.setdefault(npz.stem, mtime(npz))
        return sorted((when, digest) for digest, when in entries.items())

    def _evict_over(self, limit: int) -> None:
        """Drop least-recently-written entries past ``limit``.

        Entries are file *groups* (meta + columns, or a legacy npz);
        each is removed meta-first so a concurrent reader sees either
        the whole entry or a clean miss, and every unlink tolerates the
        other half vanishing under a concurrent evictor.
        """
        if not self.directory.is_dir():
            return
        aged = self._entries_by_age()
        excess = len(aged) - limit
        alive = {digest for _, digest in aged}
        for _, digest in aged[:max(0, excess)]:
            self._drop_entry(digest)
            alive.discard(digest)
            self.stats.evicted += 1
            OBS.add("stream_store.evicted")
        # Columns whose meta half vanished (a concurrent evictor, or a
        # writer that died before publishing) are unreachable — sweep
        # them, but don't charge eviction: they were never entries.
        for col in self.directory.glob("*.npy"):
            if col.name.split(".")[0] not in alive:
                col.unlink(missing_ok=True)

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return len(self._entries_by_age())


# ---- module-level wiring ---------------------------------------------------

_UNSET = object()
#: Explicit configuration: a StreamStore, None (= disabled), or _UNSET
#: (= fall back to the environment).
_override: object = _UNSET
_env_store: StreamStore | None = None


def configure(directory: str | Path | None, *, refresh: bool = False,
              max_entries: int | None = None) -> StreamStore | None:
    """Select the process-wide stream store.

    ``directory=None`` disables the store entirely (the ``--no-cache``
    semantics); otherwise a fresh :class:`StreamStore` (with fresh
    stats) is installed.  Returns the active store.
    """
    global _override
    if directory is None:
        _override = None
    else:
        _override = StreamStore(directory, refresh=refresh,
                                max_entries=max_entries)
    return _override  # type: ignore[return-value]


def reset() -> None:
    """Drop explicit configuration; the environment decides again."""
    global _override, _env_store
    _override = _UNSET
    _env_store = None


def active() -> StreamStore | None:
    """The store ``filtered_stream`` will consult, or ``None``.

    Precedence: explicit :func:`configure` call, else
    ``REPRO_STREAM_STORE_DIR`` (the empty string means *explicitly
    disabled* — how a ``--no-cache`` parent shields its workers), else
    ``<REPRO_CACHE_DIR>/streams`` so one ``--cache-dir`` flag keeps
    both caches side by side.
    """
    global _env_store
    if _override is not _UNSET:
        return _override  # type: ignore[return-value]
    env = os.environ.get(ENV_DIR)
    if env is not None:
        if env == "":
            return None
        directory = Path(env)
    else:
        base = os.environ.get("REPRO_CACHE_DIR")
        if not base:
            return None
        directory = Path(base) / "streams"
    refresh = os.environ.get(ENV_REFRESH) == "1"
    if (_env_store is None or _env_store.directory != directory
            or _env_store.refresh != refresh):
        _env_store = StreamStore(directory, refresh=refresh)
    return _env_store


def stats_dict() -> dict | None:
    """Manifest-ready stats of the active store (``None`` = no store)."""
    store = active()
    if store is None:
        return None
    return {"directory": str(store.directory), **store.stats.to_dict()}
