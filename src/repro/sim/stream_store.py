"""Persistent content-addressed store for filtered miss streams.

Cache filtering is the sweep front end: every worker process needs the
``(MissStream, CacheStats)`` of each ``(app, input, n_accesses)`` it
replays, and the in-process ``lru_cache`` on
:func:`repro.sim.single.filtered_stream` cannot cross the
``ProcessPoolExecutor`` boundary.  This store persists filtered results
on disk — one ``numpy.savez_compressed`` entry per key, named by the
SHA-256 of the canonical key document — so each trace is filtered once
per *machine* instead of once per process, the same
profile-once/reuse-everywhere economy MOCA's offline profiling pass is
built around.

The key covers everything that determines the stream: application,
input, trace length, the full hierarchy geometry (sizes, ways, line
size), the warmup fraction, and the trace RNG root.  The filter
*engine* is deliberately not part of the key — kernel and reference
produce byte-identical streams (``tests/test_filter_parity.py``), so
entries written by either are interchangeable.

Robustness rules mirror :class:`repro.experiments.cache.ResultCache`:
atomic writes (temp file + ``os.replace``), corrupt entries warn via
``OBS.warn`` and are deleted, entries from other format versions are
dropped silently, and ``refresh`` bypasses reads while still
overwriting.  Module-level wiring follows the result-cache precedence:
an explicit :func:`configure` call, else ``REPRO_STREAM_STORE_DIR``
(empty string = explicitly disabled), else ``<REPRO_CACHE_DIR>/streams``.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cpu.hierarchy import CacheHierarchy, CacheStats, MissStream
from repro.obs.registry import OBS
from repro.util.rng import ROOT_SEED

__all__ = [
    "ENV_DIR",
    "ENV_REFRESH",
    "STREAM_STORE_VERSION",
    "StreamStore",
    "StreamStoreStats",
    "active",
    "configure",
    "filter_key",
    "key_digest",
    "reset",
    "stats_dict",
]

#: On-disk entry format; entries from other versions are ignored.
STREAM_STORE_VERSION = 1

#: Environment selection (inherited by sweep worker processes).
ENV_DIR = "REPRO_STREAM_STORE_DIR"
ENV_REFRESH = "REPRO_STREAM_REFRESH"

_ARRAYS = (("inst", np.int64), ("vline", np.int64), ("obj_id", np.int32),
           ("dep", np.bool_), ("kind", np.int8))


def filter_key(app_name: str, input_name: str, n_accesses: int, *,
               hierarchy: CacheHierarchy | None = None,
               warmup_frac: float = 0.2) -> dict:
    """Canonical key document for one filtered stream.

    ``hierarchy=None`` keys the stock geometry (the one
    ``filtered_stream`` builds); passing a hierarchy keys its actual
    sizes so experiments with non-Table-I caches never alias.
    """
    h = hierarchy if hierarchy is not None else CacheHierarchy()
    return {
        "schema": "miss-stream",
        "app": app_name,
        "input": input_name,
        "n_accesses": int(n_accesses),
        "l1_size": h.l1.size_bytes,
        "l1_assoc": h.l1.assoc,
        "l2_size": h.l2.size_bytes,
        "l2_assoc": h.l2.assoc,
        "line_bytes": h.line_bytes,
        "warmup_frac": warmup_frac,
        "seed": ROOT_SEED,
    }


def key_digest(key: dict) -> str:
    """SHA-256 of the canonical JSON serialization of ``key``."""
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class StreamStoreStats:
    """Per-instance tallies; ``hit_ratio`` feeds the sweep manifest."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def hit_ratio(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hit_ratio": round(self.hit_ratio, 6),
        }


class StreamStore:
    """Content-addressed ``filter_key -> (MissStream, CacheStats)`` store.

    Args:
        directory: Store root; created lazily on the first store.
        refresh: When true, :meth:`get` always misses (forcing
            re-filtering) while :meth:`put` still overwrites — the
            ``--refresh`` CLI semantics extended to streams.
    """

    def __init__(self, directory: str | Path, *, refresh: bool = False):
        self.directory = Path(directory)
        self.refresh = refresh
        self.stats = StreamStoreStats()

    def path_for(self, key: dict) -> Path:
        return self.directory / f"{key_digest(key)}.npz"

    # ---- read --------------------------------------------------------------

    def get(self, key: dict) -> tuple[MissStream, CacheStats] | None:
        """Stored stream for ``key``, or ``None`` (= filter the trace).

        Every hit returns *fresh* arrays, so the in-process identity
        contract stays with ``filtered_stream``'s ``lru_cache`` — two
        processes sharing a store never share memory.
        """
        path = self.path_for(key)
        if self.refresh:
            self._miss(refresh=True)
            return None
        try:
            with np.load(path) as data:
                doc = json.loads(bytes(data["meta"]).decode())
                if doc.get("version") != STREAM_STORE_VERSION:
                    # Another (older/newer) format after an upgrade —
                    # drop it quietly and re-filter.
                    path.unlink(missing_ok=True)
                    OBS.add("stream_store.stale")
                    self._miss()
                    return None
                arrays = {name: data[name] for name, _ in _ARRAYS}
            result = self._decode(doc, arrays)
        except (FileNotFoundError,):
            self._miss()
            return None
        except (ValueError, KeyError, TypeError, OSError, EOFError,
                zipfile.BadZipFile) as exc:
            OBS.warn(f"stream store: corrupt entry {path.name} "
                     f"({type(exc).__name__}: {exc}); re-filtering")
            OBS.add("stream_store.corrupt")
            self.stats.corrupt += 1
            path.unlink(missing_ok=True)
            self._miss()
            return None
        self.stats.hits += 1
        OBS.add("stream_store.hit")
        return result

    @staticmethod
    def _decode(doc: dict, arrays: dict) -> tuple[MissStream, CacheStats]:
        n = len(arrays["inst"])
        for name, dtype in _ARRAYS:
            arr = arrays[name]
            if arr.dtype != dtype or arr.ndim != 1 or len(arr) != n:
                raise ValueError(
                    f"column {name!r} has shape {arr.shape} dtype "
                    f"{arr.dtype} (want ({n},) {np.dtype(dtype)})")
        stats_doc = doc["stats"]
        stream = MissStream(
            inst=arrays["inst"], vline=arrays["vline"],
            obj_id=arrays["obj_id"], dep=arrays["dep"],
            kind=arrays["kind"],
            total_instructions=int(doc["total_instructions"]),
        )
        stats = CacheStats(
            total_instructions=int(stats_doc["total_instructions"]),
            l1_hits=int(stats_doc["l1_hits"]),
            l1_misses=int(stats_doc["l1_misses"]),
            l2_hits=int(stats_doc["l2_hits"]),
            l2_misses=int(stats_doc["l2_misses"]),
            n_writebacks=int(stats_doc["n_writebacks"]),
            # JSON round-trip preserves list order, so first-touch
            # iteration order survives; keys come back as ints.
            per_object={int(obj): [int(acc), int(miss)]
                        for obj, acc, miss in stats_doc["per_object"]},
        )
        return stream, stats

    def _miss(self, refresh: bool = False) -> None:
        self.stats.misses += 1
        OBS.add("stream_store.refresh_bypass" if refresh
                else "stream_store.miss")

    # ---- write -------------------------------------------------------------

    def put(self, key: dict, stream: MissStream,
            stats: CacheStats) -> Path:
        """Store one filtered result atomically; returns the entry path."""
        from repro import __version__

        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        doc = {
            "version": STREAM_STORE_VERSION,
            "repro_version": __version__,
            "key": key,
            "total_instructions": stream.total_instructions,
            "stats": {
                "total_instructions": stats.total_instructions,
                "l1_hits": stats.l1_hits,
                "l1_misses": stats.l1_misses,
                "l2_hits": stats.l2_hits,
                "l2_misses": stats.l2_misses,
                "n_writebacks": stats.n_writebacks,
                "per_object": [[obj, acc, miss] for obj, (acc, miss)
                               in stats.per_object.items()],
            },
        }
        # savez appends ".npz" unless the name already ends with it —
        # keep the temp name an .npz so os.replace moves the real file.
        tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
        np.savez_compressed(
            tmp,
            meta=np.frombuffer(json.dumps(doc).encode(), dtype=np.uint8),
            **{name: getattr(stream, name) for name, _ in _ARRAYS})
        os.replace(tmp, path)
        self.stats.stores += 1
        OBS.add("stream_store.store")
        return path

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.npz"))


# ---- module-level wiring ---------------------------------------------------

_UNSET = object()
#: Explicit configuration: a StreamStore, None (= disabled), or _UNSET
#: (= fall back to the environment).
_override: object = _UNSET
_env_store: StreamStore | None = None


def configure(directory: str | Path | None, *,
              refresh: bool = False) -> StreamStore | None:
    """Select the process-wide stream store.

    ``directory=None`` disables the store entirely (the ``--no-cache``
    semantics); otherwise a fresh :class:`StreamStore` (with fresh
    stats) is installed.  Returns the active store.
    """
    global _override
    if directory is None:
        _override = None
    else:
        _override = StreamStore(directory, refresh=refresh)
    return _override  # type: ignore[return-value]


def reset() -> None:
    """Drop explicit configuration; the environment decides again."""
    global _override, _env_store
    _override = _UNSET
    _env_store = None


def active() -> StreamStore | None:
    """The store ``filtered_stream`` will consult, or ``None``.

    Precedence: explicit :func:`configure` call, else
    ``REPRO_STREAM_STORE_DIR`` (the empty string means *explicitly
    disabled* — how a ``--no-cache`` parent shields its workers), else
    ``<REPRO_CACHE_DIR>/streams`` so one ``--cache-dir`` flag keeps
    both caches side by side.
    """
    global _env_store
    if _override is not _UNSET:
        return _override  # type: ignore[return-value]
    env = os.environ.get(ENV_DIR)
    if env is not None:
        if env == "":
            return None
        directory = Path(env)
    else:
        base = os.environ.get("REPRO_CACHE_DIR")
        if not base:
            return None
        directory = Path(base) / "streams"
    refresh = os.environ.get(ENV_REFRESH) == "1"
    if (_env_store is None or _env_store.directory != directory
            or _env_store.refresh != refresh):
        _env_store = StreamStore(directory, refresh=refresh)
    return _env_store


def stats_dict() -> dict | None:
    """Manifest-ready stats of the active store (``None`` = no store)."""
    store = active()
    if store is None:
        return None
    return {"directory": str(store.directory), **store.stats.to_dict()}
