"""Single-core runner with runtime page migration (the MOCA alternative).

Replays the miss stream in epochs: each epoch runs with the current page
table, then the migrator promotes the epoch's hottest pages and its
overhead (page copies + TLB shootdowns) is charged to the core before
the next epoch starts.  Pages start wherever first-touch demand paging
puts them under the power-first chain (a migration system has no
profile, so everything begins in the cheap module).

Migration runs are full :class:`~repro.sim.spec.RunSpec` citizens:
``RunSpec(..., policy="homogen", migration=MigrationConfig(...))``
dispatches here through :func:`repro.sim.run`, so they get result-cache
entries, ``run_meta`` provenance, and unit telemetry like every other
run.  :func:`run_single_migration` remains as the historical entry point
and routes through the engine (cached) whenever the arguments are
spec-expressible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cpu.core import CoreParams, CoreResult, InOrderWindowCore
from repro.moca.allocation import HomogeneousPolicy, plan_placement
from repro.obs.provenance import run_meta
from repro.sim.config import ALL_SYSTEMS, SystemConfig
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.sim.single import filtered_stream
from repro.trace.events import PAGE_BYTES
from repro.vm.migration import HotPageMigrator, MigrationConfig, MigrationStats
from repro.workloads.inputs import REF, build_app_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.spec import RunSpec


def _run_migration(spec: "RunSpec",
                   core_params: CoreParams | None = None) -> RunMetrics:
    """Spec-driven migration run (the ``RunSpec.migration`` path)."""
    migration = spec.migration or MigrationConfig()
    config = spec.system_config
    app_name = spec.workload
    stream, _ = filtered_stream(app_name, spec.input_name, spec.n_accesses)
    layout = build_app_trace(app_name, spec.input_name,
                             spec.n_accesses).layout
    memsys = config.build()
    allocator = config.make_allocator(memsys)
    # No profile: everything demand-pages through the POW chain first.
    plan_placement([stream], HomogeneousPolicy(), allocator,
                   layouts=[layout])
    migrator = HotPageMigrator(allocator, memsys, migration)

    pt = allocator.page_table
    n = len(stream)
    epoch = max(1, migration.epoch_misses)
    cycle = 0
    inst_prev = 0
    results: list[CoreResult] = []
    start = 0
    while start < n:
        stop = min(n, start + epoch)
        sl = stream.slice(start, stop)
        groups, gaddrs = pt.translate_lines(sl.vline)
        core = InOrderWindowCore(sl, groups, gaddrs, core_params,
                                 start_cycle=cycle, inst_prev=inst_prev)
        res = core.run_to_completion(memsys)
        results.append(res)
        cycle = res.cycles
        inst_prev = int(sl.inst[-1])
        demand = sl.demand_mask
        cycle += migrator.end_epoch((sl.vline[demand] // PAGE_BYTES))
        start = stop

    # Compute tail after the last miss (the per-slice replays add none).
    params = core_params or CoreParams()
    cycle += params.cycles_for(stream.total_instructions - inst_prev)
    total = _merge_results(results, cycle, stream.total_instructions)
    meta = run_meta(config=config, policy="migration", workload=app_name,
                    thresholds=spec.thresholds, faults=spec.faults)
    meta["migration"] = migrator.stats.to_dict()
    meta["migration_config"] = migration.to_dict()
    meta["accesses"] = spec.n_accesses
    return collect_metrics(config.name, "migration", app_name,
                           [total], memsys, meta=meta)


def run_single_migration(app_name: str, config: SystemConfig,
                         migration: MigrationConfig | None = None,
                         input_name: str = REF, n_accesses: int = 120_000,
                         core_params: CoreParams | None = None,
                         ) -> tuple[RunMetrics, MigrationStats]:
    """Run one application under hotness-driven migration.

    Returns the usual metrics plus the migrator's cost accounting.  When
    the arguments are expressible as a :class:`~repro.sim.spec.RunSpec`
    (a registered config, default core), the run goes through the sweep
    engine — result-cached, telemetered — and the stats are rebuilt from
    the metrics' ``meta["migration"]`` block; custom core parameters
    fall back to the direct driver.
    """
    migration = migration or MigrationConfig()
    if core_params is None and ALL_SYSTEMS.get(config.name) is config:
        from repro.experiments.engine import run_cached
        from repro.sim.spec import RunSpec

        spec = RunSpec(app_name, config.name, "homogen", n_accesses,
                       input_name=input_name, migration=migration)
        metrics = run_cached(spec)
        return metrics, MigrationStats.from_dict(metrics.meta["migration"])

    # Unregistered config or custom core: run the driver directly (no
    # RunSpec identity exists for it, so no caching either).
    class _SpecView:
        """Duck-typed spec substituting the caller's config object."""

        workload = app_name
        system_config = config
        thresholds = None
        faults = None

    view = _SpecView()
    view.input_name = input_name
    view.n_accesses = n_accesses
    view.migration = migration
    metrics = _run_migration(view, core_params)
    return metrics, MigrationStats.from_dict(metrics.meta["migration"])


def _merge_results(results: list[CoreResult], final_cycle: int,
                   total_instructions: int) -> CoreResult:
    """Fold per-epoch results into one whole-run result."""
    merged = CoreResult(
        core_id=0,
        cycles=final_cycle,
        total_instructions=total_instructions,
        n_demand=sum(r.n_demand for r in results),
        n_load_misses=sum(r.n_load_misses for r in results),
        n_writebacks=sum(r.n_writebacks for r in results),
        n_prefetches=sum(r.n_prefetches for r in results),
        n_episodes=sum(r.n_episodes for r in results),
        mem_access_cycles=sum(r.mem_access_cycles for r in results),
        load_stall_cycles=sum(r.load_stall_cycles for r in results),
    )
    for r in results:
        for k, v in r.stall_by_obj.items():
            merged.stall_by_obj[k] = merged.stall_by_obj.get(k, 0) + v
        for k, v in r.load_misses_by_obj.items():
            merged.load_misses_by_obj[k] = (
                merged.load_misses_by_obj.get(k, 0) + v)
        for k, v in r.demand_by_obj.items():
            merged.demand_by_obj[k] = merged.demand_by_obj.get(k, 0) + v
    return merged
