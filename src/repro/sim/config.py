"""Memory-system configurations (paper Secs. V-B, V-C, VI-C).

Capacities are the paper's, scaled 1:8 (``CAPACITY_SCALE``) to match the
scaled synthetic working sets — see DESIGN.md §6.  The scaling preserves
every capacity *ratio* (which module fills first, who spills where), which
is what the allocation-policy comparisons depend on.

Homogeneous systems: four channels of 512 MB (paper) of one technology —
one interleaved channel group.  Heterogeneous systems name their groups by
role: ``lat`` (RLDRAM), ``bw`` (HBM), ``pow`` (LPDDR2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memctrl.system import ChannelGroup, MemorySystem
from repro.memdev.presets import preset
from repro.util.units import MIB
from repro.vm.allocator import OSPageAllocator
from repro.vm.pagetable import PageTable
from repro.vm.physmem import FramePool

#: Paper capacity → reproduction capacity divisor.
CAPACITY_SCALE = 8


@dataclass(frozen=True)
class GroupSpec:
    """One channel group of a system configuration.

    Attributes:
        role: ``"main"`` (homogeneous), ``"lat"``, ``"bw"`` or ``"pow"``.
        tech: Device preset name (``repro.memdev.presets``).
        n_channels: Channels (controllers) in the group.
        paper_mb_per_channel: The paper's per-channel capacity in MB.
    """

    role: str
    tech: str
    n_channels: int
    paper_mb_per_channel: int

    @property
    def capacity_per_channel(self) -> int:
        return self.paper_mb_per_channel * MIB // CAPACITY_SCALE


@dataclass(frozen=True)
class SystemConfig:
    """A named memory-system configuration."""

    name: str
    groups: tuple[GroupSpec, ...]

    def build(self) -> MemorySystem:
        """Instantiate a fresh (zero-state) memory system."""
        built = {
            spec.role: ChannelGroup(
                preset(spec.tech), spec.n_channels,
                spec.capacity_per_channel,
                name=f"{spec.tech}",
            )
            for spec in self.groups
        }
        return MemorySystem(built, name=self.name)

    def roles(self) -> dict[str, int]:
        return {spec.role: i for i, spec in enumerate(self.groups)}

    def make_allocator(self, memsys: MemorySystem) -> OSPageAllocator:
        """Fresh frame pools + page table for one run on ``memsys``."""
        pools = {
            i: FramePool(g.capacity_bytes, i, g.name)
            for i, g in enumerate(memsys.groups)
        }
        return OSPageAllocator(pools, self.roles(), PageTable())

    @property
    def total_paper_mb(self) -> int:
        return sum(s.paper_mb_per_channel * s.n_channels for s in self.groups)

    def fast_tier_bytes(self) -> int | None:
        """Total capacity of the latency-optimized (``lat``) groups.

        ``None`` when the config has no ``lat`` role — homogeneous
        systems have no fast tier for a capacity-aware policy to budget.
        """
        caps = [g.capacity_per_channel * g.n_channels
                for g in self.groups if g.role == "lat"]
        return sum(caps) if caps else None


def _homogeneous(tech: str, label: str) -> SystemConfig:
    return SystemConfig(
        name=f"Homogen-{label}",
        groups=(GroupSpec("main", tech, 4, 512),),
    )


HOMOGEN_DDR3 = _homogeneous("DDR3", "DDR3")
HOMOGEN_LP = _homogeneous("LPDDR2", "LP")
HOMOGEN_RL = _homogeneous("RLDRAM3", "RL")
HOMOGEN_HBM = _homogeneous("HBM", "HBM")

#: Sec. V-C / VI-C config1 (the default heterogeneous system): 256 MB
#: RLDRAM + 768 MB HBM + 2x512 MB LPDDR2 on four controllers.
HETER_CONFIG1 = SystemConfig(
    name="Heter-config1",
    groups=(
        GroupSpec("lat", "RLDRAM3", 1, 256),
        GroupSpec("bw", "HBM", 1, 768),
        GroupSpec("pow", "LPDDR2", 2, 512),
    ),
)

#: Sec. VI-C config2: 512 MB RLDRAM + 512 MB HBM + 1 GB LPDDR2.
HETER_CONFIG2 = SystemConfig(
    name="Heter-config2",
    groups=(
        GroupSpec("lat", "RLDRAM3", 1, 512),
        GroupSpec("bw", "HBM", 1, 512),
        GroupSpec("pow", "LPDDR2", 2, 512),
    ),
)

#: Sec. VI-C config3: 768 MB RLDRAM + 768 MB HBM + 512 MB LPDDR2.
HETER_CONFIG3 = SystemConfig(
    name="Heter-config3",
    groups=(
        GroupSpec("lat", "RLDRAM3", 1, 768),
        GroupSpec("bw", "HBM", 1, 768),
        GroupSpec("pow", "LPDDR2", 1, 512),
    ),
)

#: Fast-tier capacity sweep (experiments/capacity_sweep.py): config1's
#: HBM/LPDDR complement with the RLDRAM tier resized across these paper
#: capacities (MB).  Statically registered so sweep worker processes can
#: resolve the names from a RunSpec.
CAPACITY_POINTS = (32, 64, 128, 256, 512, 768)


def _capacity_variant(paper_mb: int) -> SystemConfig:
    return SystemConfig(
        name=f"Heter-cap{paper_mb}",
        groups=(
            GroupSpec("lat", "RLDRAM3", 1, paper_mb),
            GroupSpec("bw", "HBM", 1, 768),
            GroupSpec("pow", "LPDDR2", 2, 512),
        ),
    )


CAPACITY_CONFIGS = tuple(_capacity_variant(mb) for mb in CAPACITY_POINTS)

ALL_SYSTEMS: dict[str, SystemConfig] = {
    c.name: c for c in (
        HOMOGEN_DDR3, HOMOGEN_LP, HOMOGEN_RL, HOMOGEN_HBM,
        HETER_CONFIG1, HETER_CONFIG2, HETER_CONFIG3,
        *CAPACITY_CONFIGS,
    )
}

#: Allocation policies meaningful on heterogeneous systems.
HETERO_POLICIES = ("heter-app", "moca")
