"""Multicore experiment runner (paper Sec. VI-B, Figs. 10–15).

Four cores run one application each against a shared memory system.  The
driver interleaves the cores' MLP episodes in global time order (the core
with the earliest next issue goes first), so requests from different
cores contend for the same banks, buses and queues — the contention that
separates the memory systems in the paper's multicore figures.
"""

from __future__ import annotations

import heapq

from repro.cpu.core import CoreParams, InOrderWindowCore
from repro.faults.inject import apply_system_faults, arm_allocator
from repro.faults.plan import FaultPlan
from repro.moca.classify import Thresholds
from repro.moca.allocation import plan_placement
from repro.moca.policy import PolicySpec, build_policy
from repro.obs.provenance import run_meta
from repro.obs.registry import OBS
from repro.sim.config import SystemConfig
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.sim.single import filter_provenance, filtered_stream, \
    policy_context
from repro.workloads.inputs import REF, build_app_trace
from repro.workloads.mixes import WorkloadMix, mix as make_mix


def _run_multi(workload: WorkloadMix | str, config: SystemConfig,
               policy: str | PolicySpec, *, input_name: str = REF,
               n_accesses: int = 60_000,
               thresholds: Thresholds | None = None,
               profile_accesses: int | None = None,
               core_params: CoreParams | None = None,
               faults: FaultPlan | None = None,
               fast_path: bool | None = None) -> RunMetrics:
    """Run a 4-app workload set on a fresh instance of ``config``.

    Internal driver behind :func:`repro.sim.run`.

    Args:
        workload: A :class:`WorkloadMix` or its name (e.g. ``"2L1B1N"``).
        n_accesses: Trace length *per core*.
    """
    if isinstance(workload, str):
        workload = make_mix(workload)
    pspec, context = policy_context(
        policy, list(workload.apps), input_name, n_accesses, config=config,
        thresholds=thresholds, profile_accesses=profile_accesses,
        faults=faults)
    label = pspec.label()
    with OBS.span(f"run.{workload.name}.{label}", system=config.name,
                  n_cores=len(workload.apps)):
        streams = [filtered_stream(a, input_name, n_accesses, fast_path)[0]
                   for a in workload.apps]
        layouts = [build_app_trace(a, input_name, n_accesses).layout
                   for a in workload.apps]
        with OBS.span("placement", policy=label):
            memsys = config.build()
            if faults is not None:
                apply_system_faults(memsys, faults)
            allocator = config.make_allocator(memsys)
            if faults is not None:
                arm_allocator(allocator, faults)
            policy_obj = build_policy(pspec, context)
            plan = plan_placement(streams, policy_obj, allocator,
                                  layouts=layouts)
        cores = [
            InOrderWindowCore(s, plan.groups[i], plan.gaddrs[i],
                              core_params, core_id=i, fast_path=fast_path)
            for i, s in enumerate(streams)
        ]

        # Global-time interleave: always advance the core whose next episode
        # issues earliest.  Ties break on core id for determinism.
        with OBS.span("core_replay", mix=workload.name):
            heap = [(c.peek_next_issue(), i) for i, c in enumerate(cores)
                    if not c.finished]
            heapq.heapify(heap)
            while heap:
                _, i = heapq.heappop(heap)
                core = cores[i]
                core.run_episode(memsys)
                if not core.finished:
                    heapq.heappush(heap, (core.peek_next_issue(), i))

            # finalize tails (also publishes per-core obs counters)
            results = [c.run_to_completion(memsys) for c in cores]
        meta = run_meta(config=config, policy=label,
                        workload=workload.name, thresholds=thresholds,
                        faults=faults)
        meta["placement"] = plan.stats.to_dict()
        meta["fast_path"] = cores[0].fast_path if cores else True
        meta["filter"] = {
            a: filter_provenance(a, input_name, n_accesses)
            for a in workload.apps}
        meta["accesses"] = n_accesses * len(workload.apps)
        return collect_metrics(config.name, label, workload.name,
                               results, memsys, meta=meta)


_REMOVED = {
    "run_multi": "run_multi() was removed (deprecated since the RunSpec "
                 "API landed); build a spec and call repro.sim.run — "
                 "run(RunSpec('2L1B1N', 'Heter-config1', 'moca', 60_000)). "
                 "Ad-hoc SystemConfig objects can be registered in "
                 "repro.sim.config.ALL_SYSTEMS to become addressable by "
                 "name (see docs/extending.md)",
}


def __getattr__(name: str):
    if name in _REMOVED:
        raise AttributeError(_REMOVED[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
