"""Experiment drivers: system configurations, runners, and metrics.

* :mod:`repro.sim.config` — the paper's memory-system configurations
  (Homogen-DDR3/-LP/-RL/-HBM, heterogeneous config1/2/3) at the
  reproduction's 1:8 capacity scale;
* :mod:`repro.sim.metrics` — memory access time, memory/system power,
  EDP definitions (paper Sec. VI-A);
* :mod:`repro.sim.spec` — :class:`RunSpec` (the canonical identity of a
  run: API surface, scheduling unit, cache key) and the :func:`run`
  facade;
* :mod:`repro.sim.single` — single-core runs (Figs. 8–9);
* :mod:`repro.sim.multi` — 4-core multi-programmed runs (Figs. 10–15).

The pre-RunSpec ``run_single``/``run_multi`` entry points were removed
after their deprecation cycle — accessing them raises with a migration
hint.  ``POLICIES`` remains as a deprecated re-export of the stock names;
the policy registry (:mod:`repro.moca.policy`) is the source of truth.
"""

from repro.sim.config import (
    CAPACITY_SCALE,
    GroupSpec,
    SystemConfig,
    HOMOGEN_DDR3,
    HOMOGEN_LP,
    HOMOGEN_RL,
    HOMOGEN_HBM,
    HETER_CONFIG1,
    HETER_CONFIG2,
    HETER_CONFIG3,
    ALL_SYSTEMS,
    HETERO_POLICIES,
)
from repro.sim.metrics import RunMetrics
from repro.sim.spec import RunSpec, run
from repro.sim.single import filtered_stream, filter_provenance
from repro.sim.migration import run_single_migration


def __getattr__(name: str):
    # POLICIES: deprecated re-export (warns in repro.sim.spec).
    # run_single/run_multi: removed — the underlying modules raise an
    # AttributeError carrying the RunSpec migration hint.
    if name == "POLICIES":
        from repro.sim import spec
        return spec.POLICIES
    if name in ("run_single", "run_multi"):
        from repro.sim import multi, single
        getattr(single if name == "run_single" else multi, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "RunSpec",
    "run",
    "CAPACITY_SCALE",
    "GroupSpec",
    "SystemConfig",
    "HOMOGEN_DDR3",
    "HOMOGEN_LP",
    "HOMOGEN_RL",
    "HOMOGEN_HBM",
    "HETER_CONFIG1",
    "HETER_CONFIG2",
    "HETER_CONFIG3",
    "ALL_SYSTEMS",
    "HETERO_POLICIES",
    "RunMetrics",
    "filtered_stream",
    "filter_provenance",
    "run_single_migration",
]
