"""Experiment drivers: system configurations, runners, and metrics.

* :mod:`repro.sim.config` — the paper's memory-system configurations
  (Homogen-DDR3/-LP/-RL/-HBM, heterogeneous config1/2/3) at the
  reproduction's 1:8 capacity scale;
* :mod:`repro.sim.metrics` — memory access time, memory/system power,
  EDP definitions (paper Sec. VI-A);
* :mod:`repro.sim.spec` — :class:`RunSpec` (the canonical identity of a
  run: API surface, scheduling unit, cache key) and the :func:`run`
  facade;
* :mod:`repro.sim.single` — single-core runs (Figs. 8–9);
* :mod:`repro.sim.multi` — 4-core multi-programmed runs (Figs. 10–15).

:func:`run_single` and :func:`run_multi` remain as deprecated aliases of
``run(RunSpec(...))``.
"""

from repro.sim.config import (
    CAPACITY_SCALE,
    GroupSpec,
    SystemConfig,
    HOMOGEN_DDR3,
    HOMOGEN_LP,
    HOMOGEN_RL,
    HOMOGEN_HBM,
    HETER_CONFIG1,
    HETER_CONFIG2,
    HETER_CONFIG3,
    ALL_SYSTEMS,
    HETERO_POLICIES,
)
from repro.sim.metrics import RunMetrics
from repro.sim.spec import POLICIES, RunSpec, run
from repro.sim.single import run_single, filtered_stream, filter_provenance
from repro.sim.multi import run_multi
from repro.sim.migration import run_single_migration

__all__ = [
    "POLICIES",
    "RunSpec",
    "run",
    "CAPACITY_SCALE",
    "GroupSpec",
    "SystemConfig",
    "HOMOGEN_DDR3",
    "HOMOGEN_LP",
    "HOMOGEN_RL",
    "HOMOGEN_HBM",
    "HETER_CONFIG1",
    "HETER_CONFIG2",
    "HETER_CONFIG3",
    "ALL_SYSTEMS",
    "HETERO_POLICIES",
    "RunMetrics",
    "run_single",
    "filtered_stream",
    "filter_provenance",
    "run_multi",
    "run_single_migration",
]
