"""Single-core runner under the online guidance service.

``RunSpec(..., policy="moca", online=OnlineSpec(...))`` dispatches here
through :func:`repro.sim.run`.  The run starts exactly like the offline
pipeline — profile on the training input, classify, place at malloc
time — then replays the miss stream in epochs: after each epoch the
tenant reports an :class:`~repro.service.samples.EpochSample` to the
:class:`~repro.service.GuidanceService`, which may reclassify drifted
objects and migrate their pages (cost charged to the core before the
next epoch, like the hot-page migrator).

Fault semantics (``spec.faults``):

* **capacity/timing faults** fire at epoch ``online.fault_epoch``
  (0 = at boot, byte-identical to the offline driver's arming); a
  mid-run firing additionally triggers the service's forced
  re-placement of stranded pages under the normal migration budget;
* **guidance faults** (``lut_drop_fraction`` / ``lut_scramble_fraction``)
  corrupt the *telemetry channel* instead of the offline LUT: each
  epoch's sample may go missing or arrive garbled, and the service must
  reject it and hold the last good placement.  The offline profile is
  built clean — drift hardening is about what happens after launch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cpu.core import CoreParams, CoreResult, InOrderWindowCore
from repro.faults.inject import _apply_pool_faults, apply_system_faults, \
    arm_allocator
from repro.moca.allocation import MocaPolicy, plan_placement
from repro.moca.classify import Thresholds
from repro.moca.framework import MocaFramework
from repro.moca.policy import build_classifier
from repro.obs.provenance import run_meta
from repro.obs.registry import OBS
from repro.service import GuidanceService, build_epoch_sample, degrade_sample
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.sim.migration import _merge_results
from repro.sim.single import filtered_stream, policy_context
from repro.workloads.inputs import build_app_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.spec import RunSpec

__all__ = ["run_online"]


def run_online(spec: "RunSpec") -> RunMetrics:
    """Public alias of the online driver (quickstart entry point).

    Equivalent to ``repro.sim.run(spec)`` for a spec whose ``online``
    field is set; raises if it is not.
    """
    if spec.online is None:
        raise ValueError("run_online needs a spec with online=OnlineSpec(...)")
    return _run_online(spec)


def _run_online(spec: "RunSpec",
                core_params: CoreParams | None = None) -> RunMetrics:
    ospec = spec.online
    config = spec.system_config
    app_name = spec.workload
    pspec, context = policy_context(
        spec.policy, [app_name], spec.input_name, spec.n_accesses,
        config=config, thresholds=spec.thresholds, faults=None)
    label = f"online-{pspec.label()}"
    with OBS.span(f"run.{app_name}.{label}", system=config.name):
        stream, _ = filtered_stream(app_name, spec.input_name,
                                    spec.n_accesses)
        trace = build_app_trace(app_name, spec.input_name, spec.n_accesses)
        layout = trace.layout

        # ---- offline stage: profile, classify, place at malloc time ----
        classifier = build_classifier(pspec, context)
        fw = MocaFramework(
            thresholds=context.thresholds or Thresholds(),
            profile_accesses=context.profile_accesses or context.n_accesses,
            faults=None)
        instrumented = fw.instrument_many([app_name], classifier,
                                          context.budget)[0]
        types = fw.runtime_types(instrumented, trace)
        heat = fw.runtime_heat(instrumented, trace)

        memsys = config.build()
        boot_fault = spec.faults is not None and ospec.fault_epoch == 0
        if boot_fault:
            apply_system_faults(memsys, spec.faults)
        allocator = config.make_allocator(memsys)
        if boot_fault:
            arm_allocator(allocator, spec.faults)
        with OBS.span("placement", policy=label):
            plan = plan_placement([stream], MocaPolicy([types], [heat]),
                                  allocator, layouts=[layout])

        # ---- register with the guidance service ------------------------
        service = GuidanceService(ospec)
        tenant = service.register(
            app_name, allocator=allocator, memsys=memsys, layout=layout,
            lut=fw.profiled(app_name).lut, classifier=classifier,
            types=types, heat=heat, budget=context.budget)
        if boot_fault and spec.faults.has_capacity_fault:
            # Pages placed before the trigger fired may be stranded in a
            # now-offline pool; evacuate them under the epoch budget.
            service.on_capacity_fault(tenant)

        # ---- epoch replay ----------------------------------------------
        pt = allocator.page_table
        n = len(stream)
        epoch_len = max(1, ospec.epoch_misses)
        cycle = 0
        inst_prev = 0
        results: list[CoreResult] = []
        start = 0
        epoch = 0
        mid_fault_pending = (spec.faults is not None
                             and ospec.fault_epoch > 0)
        with OBS.span("online_replay", app=app_name):
            while start < n:
                if mid_fault_pending and epoch >= ospec.fault_epoch:
                    mid_fault_pending = False
                    apply_system_faults(memsys, spec.faults)
                    _apply_pool_faults(allocator, spec.faults)
                    if spec.faults.has_capacity_fault:
                        service.on_capacity_fault(tenant)
                stop = min(n, start + epoch_len)
                sl = stream.slice(start, stop)
                groups, gaddrs = pt.translate_lines(sl.vline)
                core = InOrderWindowCore(sl, groups, gaddrs, core_params,
                                         start_cycle=cycle,
                                         inst_prev=inst_prev)
                res = core.run_to_completion(memsys)
                results.append(res)
                cycle = res.cycles
                inst_now = int(sl.inst[-1])
                sample = build_epoch_sample(epoch, sl, res,
                                            instructions=inst_now - inst_prev)
                inst_prev = inst_now
                if spec.faults is not None:
                    sample = degrade_sample(sample, spec.faults, app_name)
                decision = service.end_epoch(tenant, sample)
                cycle += decision.overhead_cycles
                start = stop
                epoch += 1

        params = core_params or CoreParams()
        cycle += params.cycles_for(stream.total_instructions - inst_prev)
        total = _merge_results(results, cycle, stream.total_instructions)
        meta = run_meta(config=config, policy=label, workload=app_name,
                        thresholds=spec.thresholds, faults=spec.faults)
        meta["placement"] = plan.stats.to_dict()
        meta["accesses"] = spec.n_accesses
        meta["online"] = ospec.canonical()
        meta["service"] = tenant.stats.to_dict()
        meta["migration"] = tenant.migration.to_dict()
        return collect_metrics(config.name, label, app_name,
                               [total], memsys, meta=meta)
