"""Run metrics: memory access time, power, and EDP (paper Sec. VI-A).

Definitions, following the paper:

* **memory access time** — the sum over all demand requests of queue
  latency + bus latency + service time ("We calculate memory access time
  by adding up the queue latency, bus latency and the time required for
  the memory request to get serviced");
* **memory EDP** — memory power x memory access time ("We compute memory
  EDP by multiplying memory power and memory access latency");
* **system performance** — workload execution time (max over cores);
* **system EDP** — (core power + memory power) x execution time squared,
  i.e. conventional energy x delay, with the calibrated 21 W four-core
  power (5.25 W per active core, Sec. V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.core import CoreResult
from repro.memctrl.system import MemorySystem, SystemSummary
from repro.util.units import cycles_to_ns

#: Calibrated McPAT core power (paper Sec. V-A: 21 W for the 4-core CMP).
CORE_POWER_W = 5.25


@dataclass(frozen=True)
class RunMetrics:
    """Outcome of one (workload, memory system, policy) run."""

    system: str
    policy: str
    workload: str
    n_cores: int
    exec_cycles: int
    mem_access_cycles: int
    mem_power_w: float
    mem_energy_j: float
    total_instructions: int
    n_requests: int
    row_hit_rate: float
    load_stall_cycles: int = 0
    n_load_misses: int = 0
    #: Demand-request latency percentiles (bucket upper bounds, cycles).
    latency_p50: int = 0
    latency_p95: int = 0
    latency_p99: int = 0
    per_core: tuple = field(default_factory=tuple)
    #: Provenance block (config hash, thresholds, phase wall-times,
    #: counter snapshot — see :func:`repro.obs.provenance.run_meta`).
    #: Excluded from equality: two runs with identical numbers but
    #: different timestamps are the same result.
    meta: dict = field(default_factory=dict, compare=False, repr=False)

    # ---- derived ------------------------------------------------------------

    @property
    def exec_seconds(self) -> float:
        return cycles_to_ns(self.exec_cycles) * 1e-9

    @property
    def mem_access_seconds(self) -> float:
        return cycles_to_ns(self.mem_access_cycles) * 1e-9

    @property
    def memory_edp(self) -> float:
        """Paper's memory EDP: memory power x total memory access time."""
        return self.mem_power_w * self.mem_access_seconds

    @property
    def core_power_w(self) -> float:
        return CORE_POWER_W * self.n_cores

    @property
    def system_power_w(self) -> float:
        return self.core_power_w + self.mem_power_w

    @property
    def system_energy_j(self) -> float:
        return self.system_power_w * self.exec_seconds

    @property
    def system_edp(self) -> float:
        """Conventional energy x delay for the whole system."""
        return self.system_energy_j * self.exec_seconds

    @property
    def ipc(self) -> float:
        return (self.total_instructions / self.exec_cycles
                if self.exec_cycles else 0.0)

    @property
    def stall_per_load_miss(self) -> float:
        return (self.load_stall_cycles / self.n_load_misses
                if self.n_load_misses else 0.0)

    def to_dict(self) -> dict:
        """Lossless JSON-compatible form.

        Contains every stored field (so :meth:`from_dict` reconstructs an
        equal instance — this is what the persistent result cache
        round-trips) plus the derived headline numbers (``memory_edp``,
        ``system_edp``, ``ipc``, ``stall_per_load_miss``) for human
        readers of the JSON; ``from_dict`` ignores the derived keys.
        """
        return {
            "system": self.system,
            "policy": self.policy,
            "workload": self.workload,
            "n_cores": self.n_cores,
            "exec_cycles": self.exec_cycles,
            "mem_access_cycles": self.mem_access_cycles,
            "mem_power_w": self.mem_power_w,
            "mem_energy_j": self.mem_energy_j,
            "total_instructions": self.total_instructions,
            "memory_edp": self.memory_edp,
            "system_edp": self.system_edp,
            "ipc": self.ipc,
            "row_hit_rate": self.row_hit_rate,
            "n_requests": self.n_requests,
            "load_stall_cycles": self.load_stall_cycles,
            "n_load_misses": self.n_load_misses,
            "stall_per_load_miss": self.stall_per_load_miss,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "per_core": [r.to_dict() for r in self.per_core],
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunMetrics":
        """Inverse of :meth:`to_dict`; derived keys are recomputed, not
        read, so a hand-edited artefact cannot disagree with itself."""
        return cls(
            system=data["system"],
            policy=data["policy"],
            workload=data["workload"],
            n_cores=data["n_cores"],
            exec_cycles=data["exec_cycles"],
            mem_access_cycles=data["mem_access_cycles"],
            mem_power_w=data["mem_power_w"],
            mem_energy_j=data["mem_energy_j"],
            total_instructions=data["total_instructions"],
            n_requests=data["n_requests"],
            row_hit_rate=data["row_hit_rate"],
            load_stall_cycles=data.get("load_stall_cycles", 0),
            n_load_misses=data.get("n_load_misses", 0),
            latency_p50=data.get("latency_p50", 0),
            latency_p95=data.get("latency_p95", 0),
            latency_p99=data.get("latency_p99", 0),
            per_core=tuple(CoreResult.from_dict(d)
                           for d in data.get("per_core", ())),
            meta=dict(data.get("meta", {})),
        )


def weighted_speedup(shared: RunMetrics, alone: list[RunMetrics]) -> float:
    """Multi-programmed weighted speedup: mean of per-core IPC ratios.

    ``alone[i]`` is the same application run by itself on the same
    memory system; values near the core count mean contention-free
    scaling.  (Standard multi-programmed metric; the paper reports raw
    execution time, this is the fairness-aware companion.)
    """
    if len(alone) != shared.n_cores:
        raise ValueError("need one solo run per core")
    total = 0.0
    for core, solo in zip(shared.per_core, alone):
        solo_ipc = solo.per_core[0].ipc if solo.per_core else solo.ipc
        if solo_ipc <= 0:
            raise ValueError("solo run has zero IPC")
        total += core.ipc / solo_ipc
    return total


def fairness(shared: RunMetrics, alone: list[RunMetrics]) -> float:
    """Min/max ratio of per-core slowdowns (1.0 = perfectly fair)."""
    if len(alone) != shared.n_cores:
        raise ValueError("need one solo run per core")
    ratios = []
    for core, solo in zip(shared.per_core, alone):
        solo_ipc = solo.per_core[0].ipc if solo.per_core else solo.ipc
        ratios.append(core.ipc / solo_ipc)
    return min(ratios) / max(ratios) if max(ratios) > 0 else 0.0


def collect_metrics(system: str, policy: str, workload: str,
                    results: list[CoreResult],
                    memsys: MemorySystem,
                    meta: dict | None = None) -> RunMetrics:
    """Aggregate core results + memory-system counters into RunMetrics."""
    exec_cycles = max((r.cycles for r in results), default=0)
    summary: SystemSummary = memsys.summary(exec_cycles)
    hist = memsys.latency_histogram()
    return RunMetrics(
        system=system,
        policy=policy,
        workload=workload,
        n_cores=len(results),
        exec_cycles=exec_cycles,
        mem_access_cycles=sum(r.mem_access_cycles for r in results),
        mem_power_w=summary.power_w,
        mem_energy_j=summary.energy_j,
        total_instructions=sum(r.total_instructions for r in results),
        n_requests=summary.n_requests,
        row_hit_rate=summary.row_hit_rate,
        load_stall_cycles=sum(r.load_stall_cycles for r in results),
        n_load_misses=sum(r.n_load_misses for r in results),
        latency_p50=hist.p50,
        latency_p95=hist.p95,
        latency_p99=hist.p99,
        per_core=tuple(results),
        meta=meta or {},
    )
