"""RunSpec: the canonical identity of one simulation run, and ``run()``.

A :class:`RunSpec` names everything that determines a run's numbers —
workload, system configuration, placement policy, trace length, input,
classification thresholds, and the root seed.  It is frozen and hashable,
so it serves three roles at once:

* the **public API**: ``repro.sim.run(spec)`` is the single entry point
  for both single-core and multicore runs (the ``run_single``/
  ``run_multi`` aliases were removed after their deprecation cycle);
* the **scheduling unit** of the sweep engine
  (:mod:`repro.experiments.engine`), which fans individual specs out
  across worker processes instead of whole per-workload rows;
* the **cache key** of the persistent result cache
  (:mod:`repro.experiments.cache`): :meth:`RunSpec.key` is the SHA-256 of
  the canonical JSON form, so two processes that build the same spec
  address the same on-disk entry.

Whether a spec is single- or multicore is derived from the workload name:
application names (``"mcf"``) run one core, mix names (``"2L1B1N"``) run
one core per application in the mix.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass

from repro.faults.plan import FaultPlan
from repro.moca.classify import Thresholds
from repro.moca.policy import (
    PolicySpec,
    policy_canonical,
    policy_info,
    stock_policy_names,
    thresholds_to_dict,
)
from repro.service.spec import OnlineSpec
from repro.sim.config import ALL_SYSTEMS, SystemConfig
from repro.sim.metrics import RunMetrics
from repro.util.rng import ROOT_SEED
from repro.vm.migration import MigrationConfig
from repro.workloads.inputs import REF, is_valid_input
from repro.workloads.mixes import parse_mix_name
from repro.workloads.spec import APPS

__all__ = ["RunSpec", "run"]

#: Bumped whenever the canonical form (and therefore every cache key)
#: changes shape.
SPEC_SCHEMA = 1


def __getattr__(name: str):
    # Deprecated re-export, kept for one release: the policy registry
    # (repro.moca.policy) is the single source of truth now.
    if name == "POLICIES":
        warnings.warn(
            "repro.sim.spec.POLICIES is deprecated; use "
            "repro.moca.policy.policy_names() (all registered policies) "
            "or stock_policy_names() (the original trio)",
            DeprecationWarning, stacklevel=2)
        return stock_policy_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class RunSpec:
    """One (workload, system, policy) run, fully specified.

    Attributes:
        workload: Application name (single-core) or mix name such as
            ``"2L1B1N"`` (one core per application).
        config: System configuration name (key of
            :data:`repro.sim.config.ALL_SYSTEMS`).
        policy: A registered policy name (``"homogen"``, ``"heter-app"``,
            ``"moca"``, ``"knapsack"``, ``"ranker"``, or anything added
            via :func:`repro.moca.policy.register_policy`), a
            parameterized string (``"knapsack:fast_mb=128"``), or a
            :class:`~repro.moca.policy.PolicySpec`.  Normalized on
            construction: parameterless specs collapse to the bare name
            string, so stock-policy cache keys are byte-identical to the
            pre-API era; parameterized specs extend the canonical form
            (the ``fast_path``/``FaultPlan`` precedent).
        n_accesses: Trace length — per core for mixes.
        input_name: Runtime input (``"ref"``, a variant like ``"ref2"``,
            or ``"train"``); profiling always uses the training input.
        thresholds: MOCA classification thresholds; ``None`` means the
            paper's defaults.
        seed: Root seed the synthetic workloads derive from.  Recorded
            for provenance; only :data:`repro.util.rng.ROOT_SEED` is
            runnable in-process.
        faults: Injected-fault description (:class:`repro.faults.FaultPlan`),
            or ``None`` for a clean run.  Part of the canonical form, so
            fault runs never share cache entries with clean runs — while
            clean specs keep their pre-fault-era keys.
        fast_path: Replay engine selector.  ``True`` (the default) uses
            the kernelized SoA replay, ``False`` forces the per-record
            reference interpreter.  The two are bit-identical (pinned by
            ``tests/test_parity.py``), so the flag enters the canonical
            form only when *off* — every default spec keeps the exact
            cache key it had before the fast path existed.  The
            ``REPRO_FAST_PATH=0`` environment variable downgrades
            default-valued specs process-wide (debugging kill switch)
            without touching cache identity.
        migration: Hotness-driven page-migration knobs
            (:class:`~repro.vm.migration.MigrationConfig`).  When set,
            the run replays in epochs under the hot-page migrator
            (``policy`` must be ``"homogen"`` — migration systems carry
            no profile).  Canonical only when set, so every
            non-migration cache key is untouched.
        online: Online guidance-service knobs
            (:class:`~repro.service.spec.OnlineSpec`).  When set, the
            run replays in epochs against a
            :class:`~repro.service.GuidanceService` that reclassifies
            objects from live telemetry (``policy`` must name a
            classification-based policy, e.g. ``"moca"``).  Canonical
            only when set.
        trace_chunk_accesses: Shard size for chunked trace synthesis
            and filtering (:mod:`repro.trace.chunked`).  When set, the
            trace is generated shard-by-shard into the content-
            addressed trace store and cache-filtered window-by-window,
            bounding peak RSS at large ``n_accesses``.  Results are
            byte-identical to the monolithic pipeline (pinned by
            ``tests/test_trace_chunked.py``), so — like ``fast_path``
            — the knob enters the canonical form only when set and
            every default spec keeps its pre-chunking cache key.
            Single-core plain runs only.
    """

    workload: str
    config: str
    policy: str | PolicySpec
    n_accesses: int
    input_name: str = REF
    thresholds: Thresholds | None = None
    seed: int = ROOT_SEED
    faults: FaultPlan | None = None
    fast_path: bool = True
    migration: MigrationConfig | None = None
    online: OnlineSpec | None = None
    trace_chunk_accesses: int | None = None

    def __post_init__(self) -> None:
        if self.config not in ALL_SYSTEMS:
            raise ValueError(
                f"unknown system config {self.config!r} "
                f"(choose from {sorted(ALL_SYSTEMS)})")
        # Normalize the policy field: parse parameterized strings,
        # collapse parameterless specs back to the bare name (one
        # canonical in-memory form per cache key), validate the name
        # against the registry.
        policy = self.policy
        if isinstance(policy, str) and ":" in policy:
            policy = PolicySpec.parse(policy)
        if isinstance(policy, PolicySpec) and not policy.params:
            policy = policy.name
        policy_info(policy.name if isinstance(policy, PolicySpec)
                    else policy)  # raises ValueError on unknown names
        object.__setattr__(self, "policy", policy)
        if self.n_accesses <= 0:
            raise ValueError(f"n_accesses must be positive, "
                             f"got {self.n_accesses}")
        if not is_valid_input(self.input_name):
            raise ValueError(f"unknown input {self.input_name!r}")
        if self.workload not in APPS:
            # Raises ValueError with a helpful message on malformed names.
            parse_mix_name(self.workload)
        if self.faults is not None and self.faults.is_clean:
            # A no-op plan must not mint a second cache key for the same
            # numbers; normalize it away.
            object.__setattr__(self, "faults", None)
        if self.migration is not None and self.online is not None:
            raise ValueError(
                "a spec cannot be both a migration run and an online run")
        if self.migration is not None or self.online is not None:
            if self.is_multi:
                raise ValueError(
                    "migration/online runs are single-core "
                    f"(got mix {self.workload!r})")
        if self.migration is not None:
            if self.policy_name != "homogen":
                raise ValueError(
                    "migration runs carry no profile; use policy='homogen' "
                    f"(got {self.policy_name!r})")
            if self.migration.target_role not in self.system_config.roles():
                raise ValueError(
                    f"system {self.config!r} has no "
                    f"{self.migration.target_role!r} module to migrate into")
        if self.online is not None:
            info = policy_info(self.policy_name)
            if info.classifier_factory is None:
                raise ValueError(
                    f"online runs need a classification-based policy "
                    f"({self.policy_name!r} registers no classifier); "
                    f"use 'moca', 'knapsack', or 'ranker'")
        if self.trace_chunk_accesses is not None:
            if self.trace_chunk_accesses <= 0:
                raise ValueError(
                    f"trace_chunk_accesses must be positive, "
                    f"got {self.trace_chunk_accesses}")
            if self.is_multi:
                raise ValueError(
                    "chunked traces are single-core "
                    f"(got mix {self.workload!r})")
            if self.migration is not None or self.online is not None:
                raise ValueError(
                    "trace_chunk_accesses is not supported on "
                    "migration/online epoch-replay runs")

    # ---- derived ------------------------------------------------------------

    @property
    def is_multi(self) -> bool:
        """True when the workload is a mix name (one core per app)."""
        return self.workload not in APPS

    @property
    def policy_spec(self) -> PolicySpec:
        """The policy as a structured spec (bare names get no params)."""
        return PolicySpec.parse(self.policy)

    @property
    def policy_name(self) -> str:
        """The registered policy name, without parameters."""
        return self.policy if isinstance(self.policy, str) \
            else self.policy.name

    @property
    def policy_label(self) -> str:
        """Human-readable policy label (params included when present)."""
        return self.policy if isinstance(self.policy, str) \
            else self.policy.label()

    @property
    def system_config(self) -> SystemConfig:
        return ALL_SYSTEMS[self.config]

    # ---- identity -----------------------------------------------------------

    def canonical(self) -> dict:
        """Stable JSON-compatible form — the input to :meth:`key`.

        Includes the *hash* of the resolved system configuration, so
        editing a config's capacities or technologies invalidates cached
        results even though the name stays the same.
        """
        from repro.obs.provenance import config_hash

        doc = {
            "schema": SPEC_SCHEMA,
            "kind": "multi" if self.is_multi else "single",
            "workload": self.workload,
            "config": {"name": self.config,
                       "hash": config_hash(self.system_config)},
            # Bare string for stock/parameterless policies (byte-stable
            # pre-API keys); {"name", "params"} only when parameterized.
            "policy": policy_canonical(self.policy),
            "n_accesses": self.n_accesses,
            "input": self.input_name,
            "thresholds": (None if self.thresholds is None
                           else thresholds_to_dict(self.thresholds)),
            "seed": self.seed,
        }
        # Added only when present, so every clean spec keeps the exact
        # key it had before fault injection existed (warm caches stay
        # warm across the upgrade).
        if self.faults is not None:
            doc["faults"] = self.faults.canonical()
        # Same key-stability rule: the reference interpreter produces the
        # same bits, but a forced-reference run is a distinct request, so
        # only the non-default value is serialized.
        if not self.fast_path:
            doc["fast_path"] = False
        # Epoch-replay variants extend the form only when requested, so
        # every pre-existing key stays byte-identical.
        if self.migration is not None:
            doc["migration"] = self.migration.canonical()
        if self.online is not None:
            doc["online"] = self.online.canonical()
        # Chunked synthesis/filtering produces the same bits, but — as
        # with fast_path — a chunked run is a distinct request, and only
        # the non-default value is serialized.
        if self.trace_chunk_accesses is not None:
            doc["trace_chunk_accesses"] = self.trace_chunk_accesses
        return doc

    def key(self) -> str:
        """Content address: SHA-256 hex of the canonical JSON form."""
        doc = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label (progress spans, log lines)."""
        label = f"{self.workload}/{self.config}/{self.policy_label}"
        if self.migration is not None:
            label = f"{self.workload}/{self.config}/migration"
        if self.online is not None:
            label += f"[{self.online.describe()}]"
        if self.faults is not None:
            label += f"[{self.faults.describe()}]"
        return label


def run(spec: RunSpec) -> RunMetrics:
    """Execute one run; the single public entry point of the sim layer.

    Dispatches to the single-core or multicore driver from the spec's
    workload name.  Pure simulation — persistent caching lives one layer
    up in :mod:`repro.experiments.engine`.
    """
    # Imported here: repro.sim.single/multi are heavier than this module
    # and must stay importable without it (no cycle either way).
    from repro.sim.multi import _run_multi
    from repro.sim.single import _run_single

    if spec.seed != ROOT_SEED:
        raise ValueError(
            f"spec.seed={spec.seed:#x} differs from the process root seed "
            f"{ROOT_SEED:#x}; re-seeding requires changing "
            f"repro.util.rng.ROOT_SEED before building any traces")
    if spec.online is not None:
        from repro.sim.online import _run_online

        return _run_online(spec)
    if spec.migration is not None:
        from repro.sim.migration import _run_migration

        return _run_migration(spec)
    # True defers to the process default (REPRO_FAST_PATH kill switch);
    # False is an explicit forced-reference request.
    fast = None if spec.fast_path else False
    if spec.is_multi:
        return _run_multi(spec.workload, spec.system_config, spec.policy,
                          input_name=spec.input_name,
                          n_accesses=spec.n_accesses,
                          thresholds=spec.thresholds,
                          faults=spec.faults,
                          fast_path=fast)
    return _run_single(spec.workload, spec.system_config, spec.policy,
                       input_name=spec.input_name,
                       n_accesses=spec.n_accesses,
                       thresholds=spec.thresholds,
                       faults=spec.faults,
                       fast_path=fast,
                       trace_chunk_accesses=spec.trace_chunk_accesses)
