"""Single-core experiment runner (paper Sec. VI-A, Figs. 8–9).

One application on one core against one memory system under one
allocation policy.  Cache filtering is memoized per (app, input, length)
— the miss stream is identical across memory systems, so the expensive
pass runs once.
"""

from __future__ import annotations

import warnings
from functools import lru_cache

from repro.cpu.core import CoreParams, InOrderWindowCore
from repro.cpu.hierarchy import CacheHierarchy, CacheStats, MissStream
from repro.faults.inject import apply_system_faults, arm_allocator
from repro.faults.plan import FaultPlan
from repro.moca.allocation import (
    HeterAppPolicy,
    HomogeneousPolicy,
    MocaPolicy,
    PlacementPolicy,
    plan_placement,
)
from repro.moca.classify import Thresholds, class_letter_to_type
from repro.moca.framework import MocaFramework
from repro.obs.provenance import run_meta
from repro.obs.registry import OBS
from repro.sim import stream_store
from repro.sim.config import SystemConfig
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.workloads.inputs import REF, build_app_trace
from repro.workloads.spec import APP_CLASSES

#: (app, input, n_accesses) → how its stream was obtained; feeds
#: ``meta["filter"]`` provenance.  Keyed without ``fast_path`` because
#: engines are bit-identical — the record says what actually happened.
_filter_provenance: dict[tuple[str, str, int], dict] = {}


def filter_provenance(app_name: str, input_name: str,
                      n_accesses: int) -> dict | None:
    """How ``filtered_stream`` obtained this key's stream, or ``None``.

    ``{"engine": "kernel" | "reference" | "store", "from_store": bool}``
    — ``"store"`` means the persistent miss-stream store supplied the
    result and no filtering ran in this process.
    """
    return _filter_provenance.get((app_name, input_name, n_accesses))


@lru_cache(maxsize=128)
def filtered_stream(app_name: str, input_name: str, n_accesses: int,
                    fast_path: bool | None = None,
                    ) -> tuple[MissStream, CacheStats]:
    """Cache-filter one application input (memoized — **do not mutate**).

    Every call with the same key returns the *same*
    ``(MissStream, CacheStats)`` objects, shared by every run —
    single-core, multicore, and the profiler alike.  Mutating the
    returned stream (e.g. reordering its arrays in place) would silently
    corrupt all subsequent runs in the process.  Callers needing a
    modified stream must copy first; ``tests/test_sim.py`` pins the
    shared-identity contract.

    Beneath this in-process memo sits the persistent
    :mod:`repro.sim.stream_store` (when active): a store hit skips
    filtering entirely, and a computed result is written back so other
    worker processes can skip it too.  Store content is engine-agnostic
    — kernel and reference produce byte-identical streams — so
    ``fast_path`` only selects *how* a missing entry gets computed.
    """
    with OBS.span("cache_filter", app=app_name, input=input_name,
                  n_accesses=n_accesses):
        store = stream_store.active()
        key = None
        if store is not None:
            key = stream_store.filter_key(app_name, input_name, n_accesses)
            cached = store.get(key)
            if cached is not None:
                _filter_provenance[(app_name, input_name, n_accesses)] = {
                    "engine": "store", "from_store": True}
                OBS.add("filter.store_hits")
                return cached
        trace = build_app_trace(app_name, input_name, n_accesses)
        hierarchy = CacheHierarchy()
        result = hierarchy.filter_trace(trace, fast_path=fast_path)
        OBS.add("filter.computed")
        OBS.add("filter.accesses", n_accesses)
        _filter_provenance[(app_name, input_name, n_accesses)] = {
            "engine": hierarchy.last_engine, "from_store": False}
        if store is not None:
            store.put(key, *result)
        return result


def make_policy(policy_name: str, app_names: list[str],
                input_name: str, n_accesses: int, *,
                thresholds: Thresholds | None = None,
                profile_accesses: int | None = None,
                faults: FaultPlan | None = None) -> PlacementPolicy:
    """Construct a placement policy for the given per-core applications.

    * ``"homogen"`` — everything to the single group;
    * ``"heter-app"`` — per-application class from the paper's Table III;
    * ``"moca"`` — object types from offline profiling on the training
      input (classification is input-independent metadata; the runtime
      trace only resolves names to live objects).

    ``faults`` only affects MOCA: a plan with a guidance fault degrades
    the profiling LUT before classification (the baselines carry no
    profile to corrupt).
    """
    if policy_name == "homogen":
        return HomogeneousPolicy()
    if policy_name == "heter-app":
        return HeterAppPolicy(
            [class_letter_to_type(APP_CLASSES[a]) for a in app_names])
    if policy_name == "moca":
        fw = MocaFramework(
            thresholds=thresholds or Thresholds(),
            profile_accesses=profile_accesses or n_accesses,
            faults=faults,
        )
        per_core_types = []
        per_core_heat = []
        for a in app_names:
            instrumented = fw.instrument(a)
            trace = build_app_trace(a, input_name, n_accesses)
            per_core_types.append(fw.runtime_types(instrumented, trace))
            per_core_heat.append(fw.runtime_heat(instrumented, trace))
        return MocaPolicy(per_core_types, per_core_heat)
    raise ValueError(f"unknown policy {policy_name!r}")


def _run_single(app_name: str, config: SystemConfig, policy_name: str, *,
                input_name: str = REF, n_accesses: int = 120_000,
                thresholds: Thresholds | None = None,
                profile_accesses: int | None = None,
                core_params: CoreParams | None = None,
                faults: FaultPlan | None = None,
                fast_path: bool | None = None) -> RunMetrics:
    """Run one application on a fresh instance of ``config``.

    Internal driver behind :func:`repro.sim.run`; the deprecated
    :func:`run_single` alias forwards here.  ``fast_path`` follows the
    :class:`~repro.cpu.core.InOrderWindowCore` convention (``None`` =
    process default).
    """
    with OBS.span(f"run.{app_name}.{policy_name}", system=config.name):
        stream, _ = filtered_stream(app_name, input_name, n_accesses,
                                    fast_path)
        layout = build_app_trace(app_name, input_name, n_accesses).layout
        with OBS.span("placement", policy=policy_name):
            memsys = config.build()
            if faults is not None:
                apply_system_faults(memsys, faults)
            allocator = config.make_allocator(memsys)
            if faults is not None:
                arm_allocator(allocator, faults)
            policy = make_policy(policy_name, [app_name], input_name,
                                 n_accesses, thresholds=thresholds,
                                 profile_accesses=profile_accesses,
                                 faults=faults)
            plan = plan_placement([stream], policy, allocator,
                                  layouts=[layout])
        with OBS.span("core_replay", app=app_name):
            core = InOrderWindowCore(stream, plan.groups[0], plan.gaddrs[0],
                                     core_params, fast_path=fast_path)
            result = core.run_to_completion(memsys)
        meta = run_meta(config=config, policy=policy_name,
                        workload=app_name, thresholds=thresholds,
                        faults=faults)
        meta["placement"] = plan.stats.to_dict()
        meta["fast_path"] = core.fast_path
        meta["filter"] = filter_provenance(app_name, input_name, n_accesses)
        meta["accesses"] = n_accesses
        return collect_metrics(config.name, policy_name, app_name,
                               [result], memsys, meta=meta)


def run_single(app_name: str, config: SystemConfig, policy_name: str, *,
               input_name: str = REF, n_accesses: int = 120_000,
               thresholds: Thresholds | None = None,
               profile_accesses: int | None = None,
               core_params: CoreParams | None = None) -> RunMetrics:
    """Deprecated alias — build a :class:`repro.sim.RunSpec` and call
    :func:`repro.sim.run` instead (the spec is also the engine's
    scheduling unit and the persistent cache key)."""
    warnings.warn(
        "run_single() is deprecated; use repro.sim.run(RunSpec(...))",
        DeprecationWarning, stacklevel=2)
    return _run_single(app_name, config, policy_name,
                       input_name=input_name, n_accesses=n_accesses,
                       thresholds=thresholds,
                       profile_accesses=profile_accesses,
                       core_params=core_params)
