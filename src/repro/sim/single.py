"""Single-core experiment runner (paper Sec. VI-A, Figs. 8–9).

One application on one core against one memory system under one
allocation policy.  Cache filtering is memoized per (app, input, length)
— the miss stream is identical across memory systems, so the expensive
pass runs once.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cpu.core import CoreParams, InOrderWindowCore
from repro.cpu.hierarchy import CacheHierarchy, CacheStats, MissStream
from repro.faults.inject import apply_system_faults, arm_allocator
from repro.faults.plan import FaultPlan
from repro.moca.allocation import PlacementPolicy, plan_placement
from repro.moca.classify import Thresholds
from repro.moca.policy import (
    CapacityBudget,
    PolicyContext,
    PolicySpec,
    build_policy,
)
from repro.obs.provenance import run_meta
from repro.obs.registry import OBS
from repro.sim import stream_store
from repro.sim.config import CAPACITY_SCALE, SystemConfig
from repro.trace.chunked import CorruptTraceError
from repro.trace.events import VirtualLayout
from repro.util.units import MIB
from repro.workloads.inputs import REF, build_app_trace, build_app_trace_chunked
from repro.sim.metrics import RunMetrics, collect_metrics

#: (app, input, n_accesses) → how its stream was obtained; feeds
#: ``meta["filter"]`` provenance.  Keyed without ``fast_path`` because
#: engines are bit-identical — the record says what actually happened.
_filter_provenance: dict[tuple[str, str, int], dict] = {}


def filter_provenance(app_name: str, input_name: str,
                      n_accesses: int) -> dict | None:
    """How ``filtered_stream`` obtained this key's stream, or ``None``.

    ``{"engine": "kernel" | "reference" | "store", "from_store": bool}``
    — ``"store"`` means the persistent miss-stream store supplied the
    result and no filtering ran in this process.
    """
    return _filter_provenance.get((app_name, input_name, n_accesses))


@lru_cache(maxsize=128)
def filtered_stream(app_name: str, input_name: str, n_accesses: int,
                    fast_path: bool | None = None,
                    ) -> tuple[MissStream, CacheStats]:
    """Cache-filter one application input (memoized — **do not mutate**).

    Every call with the same key returns the *same*
    ``(MissStream, CacheStats)`` objects, shared by every run —
    single-core, multicore, and the profiler alike.  Mutating the
    returned stream (e.g. reordering its arrays in place) would silently
    corrupt all subsequent runs in the process.  Callers needing a
    modified stream must copy first; ``tests/test_sim.py`` pins the
    shared-identity contract.

    Beneath this in-process memo sits the persistent
    :mod:`repro.sim.stream_store` (when active): a store hit skips
    filtering entirely, and a computed result is written back so other
    worker processes can skip it too.  Store content is engine-agnostic
    — kernel and reference produce byte-identical streams — so
    ``fast_path`` only selects *how* a missing entry gets computed.
    """
    with OBS.span("cache_filter", app=app_name, input=input_name,
                  n_accesses=n_accesses):
        store = stream_store.active()
        key = None
        if store is not None:
            key = stream_store.filter_key(app_name, input_name, n_accesses)
            cached = store.get(key)
            if cached is not None:
                _filter_provenance[(app_name, input_name, n_accesses)] = {
                    "engine": "store", "from_store": True}
                OBS.add("filter.store_hits")
                return cached
        trace = build_app_trace(app_name, input_name, n_accesses)
        hierarchy = CacheHierarchy()
        result = hierarchy.filter_trace(trace, fast_path=fast_path)
        OBS.add("filter.computed")
        OBS.add("filter.accesses", n_accesses)
        _filter_provenance[(app_name, input_name, n_accesses)] = {
            "engine": hierarchy.last_engine, "from_store": False}
        if store is not None:
            store.put(key, *result)
        return result


@lru_cache(maxsize=32)
def filtered_stream_chunked(app_name: str, input_name: str, n_accesses: int,
                            chunk_accesses: int,
                            fast_path: bool | None = None,
                            ) -> tuple[MissStream, CacheStats, VirtualLayout]:
    """Cache-filter one application input via the chunked trace store.

    The bounded-RSS sibling of :func:`filtered_stream`: the trace is
    generated (or reopened) as :class:`~repro.trace.chunked.ChunkedTrace`
    shards and filtered window-by-window, so peak memory tracks the
    shard size, not ``n_accesses``.  Results are byte-identical to the
    monolithic path, which is why the persistent stream store is shared
    — ``stream_store.filter_key`` deliberately excludes chunking, and a
    stream computed either way satisfies both.  The trace's
    :class:`~repro.trace.events.VirtualLayout` rides along in the return
    value (rebuilt from the shard manifest) so callers never have to
    materialize the monolithic trace just to see object extents.

    A corrupt shard surfaces as one retry: the store deletes the broken
    entry when it detects it, so the second attempt regenerates from
    scratch.  Memoized like :func:`filtered_stream` — treat the returned
    objects as immutable.
    """
    with OBS.span("cache_filter", app=app_name, input=input_name,
                  n_accesses=n_accesses, chunk_accesses=chunk_accesses):
        last_error: CorruptTraceError | None = None
        for attempt in range(2):
            try:
                chunked = build_app_trace_chunked(
                    app_name, input_name, n_accesses, chunk_accesses)
            except CorruptTraceError as exc:
                last_error = exc
                continue
            layout = chunked.layout
            store = stream_store.active()
            key = None
            if store is not None:
                key = stream_store.filter_key(app_name, input_name,
                                              n_accesses)
                cached = store.get(key)
                if cached is not None:
                    _filter_provenance[(app_name, input_name, n_accesses)] = {
                        "engine": "store", "from_store": True}
                    OBS.add("filter.store_hits")
                    return (*cached, layout)
            hierarchy = CacheHierarchy()
            try:
                result = hierarchy.filter_chunked(chunked,
                                                  fast_path=fast_path)
            except CorruptTraceError as exc:
                last_error = exc
                continue
            OBS.add("filter.computed")
            OBS.add("filter.accesses", n_accesses)
            _filter_provenance[(app_name, input_name, n_accesses)] = {
                "engine": hierarchy.last_engine, "from_store": False}
            if store is not None:
                store.put(key, *result)
            return (*result, layout)
        raise last_error  # both attempts hit corrupt shards


def make_policy(policy_name: str, app_names: list[str],
                input_name: str, n_accesses: int, *,
                thresholds: Thresholds | None = None,
                profile_accesses: int | None = None,
                faults: FaultPlan | None = None) -> PlacementPolicy:
    """Legacy policy constructor — a shim over the policy registry.

    Policy construction lives in :mod:`repro.moca.policy` now: look
    names up with :func:`~repro.moca.policy.policy_info`, build with
    :func:`~repro.moca.policy.build_policy`, register new policies with
    :func:`~repro.moca.policy.register_policy` (see
    ``docs/extending.md``).  This wrapper keeps old call sites working
    with the historical unlimited fast-tier budget; budget-aware
    construction (what the runners do) also passes the system config's
    ``lat`` capacity via :func:`policy_context`.

    ``faults`` only affects profile-guided policies: a plan with a
    guidance fault degrades the profiling LUT before classification
    (the baselines carry no profile to corrupt).
    """
    context = PolicyContext(
        app_names=tuple(app_names), input_name=input_name,
        n_accesses=n_accesses, thresholds=thresholds,
        profile_accesses=profile_accesses, faults=faults)
    return build_policy(PolicySpec.parse(policy_name), context)


def policy_context(policy: str | PolicySpec, app_names: list[str],
                   input_name: str, n_accesses: int, *,
                   config: SystemConfig,
                   thresholds: Thresholds | None = None,
                   profile_accesses: int | None = None,
                   faults: FaultPlan | None = None,
                   ) -> tuple[PolicySpec, PolicyContext]:
    """Resolve a spec's policy field against a system configuration.

    The fast-tier budget a capacity-aware policy plans under comes from
    (in priority order) the policy's own ``fast_mb`` parameter — the
    paper's MB scale, divided by :data:`~repro.sim.config.CAPACITY_SCALE`
    like every ``GroupSpec`` capacity — or the physical capacity of the
    config's ``lat`` role; homogeneous systems yield an unlimited
    budget.  Budget resolution lives here (not in ``repro.moca.policy``)
    because it needs the system config, which the policy layer must not
    import.
    """
    spec = PolicySpec.parse(policy)
    fast_mb = spec.params_dict().get("fast_mb")
    if fast_mb is not None:
        fast_bytes = int(float(fast_mb) * MIB) // CAPACITY_SCALE
    else:
        fast_bytes = config.fast_tier_bytes()
    context = PolicyContext(
        app_names=tuple(app_names), input_name=input_name,
        n_accesses=n_accesses, thresholds=thresholds,
        profile_accesses=profile_accesses, faults=faults,
        budget=CapacityBudget(fast_bytes))
    return spec, context


def _run_single(app_name: str, config: SystemConfig,
                policy: str | PolicySpec, *,
                input_name: str = REF, n_accesses: int = 120_000,
                thresholds: Thresholds | None = None,
                profile_accesses: int | None = None,
                core_params: CoreParams | None = None,
                faults: FaultPlan | None = None,
                fast_path: bool | None = None,
                trace_chunk_accesses: int | None = None) -> RunMetrics:
    """Run one application on a fresh instance of ``config``.

    Internal driver behind :func:`repro.sim.run`.  ``fast_path`` follows
    the :class:`~repro.cpu.core.InOrderWindowCore` convention (``None``
    = process default).  ``trace_chunk_accesses`` switches the trace +
    filter stage to the bounded-RSS chunked pipeline; results are
    byte-identical either way.
    """
    pspec, context = policy_context(
        policy, [app_name], input_name, n_accesses, config=config,
        thresholds=thresholds, profile_accesses=profile_accesses,
        faults=faults)
    label = pspec.label()
    with OBS.span(f"run.{app_name}.{label}", system=config.name):
        if trace_chunk_accesses is not None:
            stream, _, layout = filtered_stream_chunked(
                app_name, input_name, n_accesses, trace_chunk_accesses,
                fast_path)
        else:
            stream, _ = filtered_stream(app_name, input_name, n_accesses,
                                        fast_path)
            layout = build_app_trace(app_name, input_name, n_accesses).layout
        with OBS.span("placement", policy=label):
            memsys = config.build()
            if faults is not None:
                apply_system_faults(memsys, faults)
            allocator = config.make_allocator(memsys)
            if faults is not None:
                arm_allocator(allocator, faults)
            policy_obj = build_policy(pspec, context)
            plan = plan_placement([stream], policy_obj, allocator,
                                  layouts=[layout])
        with OBS.span("core_replay", app=app_name):
            core = InOrderWindowCore(stream, plan.groups[0], plan.gaddrs[0],
                                     core_params, fast_path=fast_path)
            result = core.run_to_completion(memsys)
        meta = run_meta(config=config, policy=label,
                        workload=app_name, thresholds=thresholds,
                        faults=faults)
        meta["placement"] = plan.stats.to_dict()
        meta["fast_path"] = core.fast_path
        meta["filter"] = filter_provenance(app_name, input_name, n_accesses)
        meta["accesses"] = n_accesses
        if trace_chunk_accesses is not None:
            meta["trace_chunk_accesses"] = trace_chunk_accesses
        return collect_metrics(config.name, label, app_name,
                               [result], memsys, meta=meta)


#: Removed entry points → migration hint.  ``__getattr__`` turns an
#: attribute access into AttributeError and a ``from``-import into
#: ImportError, both carrying the replacement.
_REMOVED = {
    "run_single": "run_single() was removed (deprecated since the RunSpec "
                  "API landed); build a spec and call repro.sim.run — "
                  "run(RunSpec('mcf', 'Heter-config1', 'moca', 120_000))",
}


def __getattr__(name: str):
    if name in _REMOVED:
        raise AttributeError(_REMOVED[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
