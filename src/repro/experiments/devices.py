"""Device characterization table (model self-check, beyond the paper).

Probes each memory-technology model with idle-latency and bandwidth
microbenchmarks (``repro.memdev.probe``) and prints the measured
character next to the qualities Sec. II ascribes to each technology:
RLDRAM the latency leader, HBM the bandwidth leader, LPDDR2 the
low-power laggard, DDR3 the balanced baseline.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT, Fidelity, FigureResult
from repro.memdev.presets import DDR3, HBM, LPDDR2, RLDRAM3
from repro.memdev.probe import characterize


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    fig = FigureResult(
        figure_id="devices",
        title="Measured device-model character (Sec. II qualities)",
        columns=["device", "hit_ns", "miss_ns", "conflict_ns",
                 "loaded_rand_ns", "stream_gbps", "rand_gbps",
                 "peak_gbps"],
    )
    for dev in (DDR3, HBM, RLDRAM3, LPDDR2):
        c = characterize(dev)
        fig.add_row(
            dev.name,
            round(c.idle_hit_ns, 1), round(c.idle_miss_ns, 1),
            round(c.idle_conflict_ns, 1), round(c.loaded_random_ns, 1),
            round(c.stream_gbps, 1), round(c.random_gbps, 1),
            round(dev.peak_bandwidth_gbps(), 1),
        )
    fig.notes.append(
        "Expected character: RLDRAM3 lowest latency everywhere; HBM "
        "highest stream bandwidth; LPDDR2 slowest and narrowest; DDR3 "
        "balanced.  Bandwidths are one module with a 64-request window.")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
