"""Persistent content-addressed result cache for simulation runs.

One entry per :class:`~repro.sim.spec.RunSpec`, stored as
``<directory>/<sha256-of-canonical-spec>.json`` with the
:class:`~repro.sim.metrics.RunMetrics` round-tripped through
``to_dict``/``from_dict``.  The key covers everything that determines the
numbers (workload, config *hash*, policy, trace length, input,
thresholds, seed), so a cache directory can be shared between processes,
sweeps, and repeated campaign invocations: online/offline hybrid systems
for heterogeneous memory amortize profiling across executions the same
way, by persisting guidance keyed by provenance.

Robustness rules:

* writes are atomic (temp file + ``os.replace``), so a concurrent reader
  never sees a half-written entry;
* a corrupt entry (truncated JSON, missing fields) warns once via
  :meth:`OBS.warn`, is deleted, and falls back to re-simulation;
* entries written by a different cache format version are dropped
  silently (stale, not corrupt);
* the simulator's own version is recorded in each entry for forensics
  but is deliberately **not** part of the key — bump
  ``repro.__version__`` or pass ``--refresh`` after changing model code.

Hits/misses/stores/evictions flow through ``OBS`` counters
(``cache.hit``, ``cache.miss``, ...), and :class:`CacheStats` aggregates
them per cache instance for the sweep manifest's hit ratio.

A process-level memo fronts the disk entries: repeated lookups of the
same spec (re-executed figures, resumed campaigns, the batched warm
pass) skip the read+parse entirely.  Memo entries are validated against
the file's ``(mtime_ns, size)`` so a sibling process overwriting an
entry invalidates ours, and ``--refresh`` clears the memo outright.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.obs.registry import OBS
from repro.sim.metrics import RunMetrics
from repro.sim.spec import RunSpec
from repro.util.resident import ResidentLRU

__all__ = ["CACHE_VERSION", "CacheStats", "ResultCache", "memo_stats"]

#: On-disk entry format; entries from other versions are ignored.
CACHE_VERSION = 1

#: Process-level memo of parsed entries, keyed ``(directory, spec key)``
#: with the entry file's stat signature; bounded so an unbounded
#: campaign cannot grow it past ~256 parsed metric dicts.
_MEMO = ResidentLRU(256)


def memo_stats() -> dict:
    """Process-level memo tallies (for telemetry/debugging)."""
    return _MEMO.stats_dict()


@dataclass
class CacheStats:
    """Per-instance tallies; ``hit_ratio`` feeds the sweep manifest."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evicted: int = 0

    @property
    def hit_ratio(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "evicted": self.evicted,
            "hit_ratio": round(self.hit_ratio, 6),
        }


class ResultCache:
    """Content-addressed ``RunSpec -> RunMetrics`` store on disk.

    Args:
        directory: Cache root; created lazily on the first store so a
            cache that is never written leaves no trace on disk.
        refresh: When true, :meth:`get` always misses (forcing
            re-simulation) while :meth:`put` still overwrites — the
            ``--refresh`` CLI semantics.
        max_entries: Optional size bound; storing beyond it evicts the
            oldest entries (by mtime, i.e. least-recently-written).
    """

    def __init__(self, directory: str | Path, *, refresh: bool = False,
                 max_entries: int | None = None):
        self.directory = Path(directory)
        self.refresh = refresh
        self.max_entries = max_entries
        self.stats = CacheStats()
        if refresh:
            # --refresh means "distrust everything cached", including
            # what this process already parsed.
            _MEMO.clear()

    def path_for(self, spec: RunSpec) -> Path:
        return self.directory / f"{spec.key()}.json"

    def _memo_key(self, spec: RunSpec) -> tuple:
        return (str(self.directory), spec.key())

    @staticmethod
    def _stat_sig(path: Path) -> tuple | None:
        try:
            st = path.stat()
        except (FileNotFoundError, OSError):
            return None
        return (st.st_mtime_ns, st.st_size)

    # ---- read --------------------------------------------------------------

    def get(self, spec: RunSpec) -> RunMetrics | None:
        """Cached metrics for ``spec``, or ``None`` (= simulate)."""
        path = self.path_for(spec)
        if self.refresh:
            self._miss(refresh=True)
            return None
        sig = self._stat_sig(path)
        if sig is not None:
            memoed = _MEMO.get(self._memo_key(spec))
            if memoed is not None and memoed[0] == sig:
                self.stats.hits += 1
                OBS.add("cache.hit")
                OBS.add("cache.memo_hit")
                OBS.add("data_plane.copies_avoided")
                return RunMetrics.from_dict(memoed[1])
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError):
            self._miss()
            return None
        try:
            doc = json.loads(raw)
            if doc.get("version") != CACHE_VERSION:
                # A different (older/newer) format is expected after an
                # upgrade — drop it quietly and re-simulate.
                path.unlink(missing_ok=True)
                OBS.add("cache.stale")
                self._miss()
                return None
            metrics = RunMetrics.from_dict(doc["metrics"])
        except (ValueError, KeyError, TypeError) as exc:
            OBS.warn(f"result cache: corrupt entry {path.name} "
                     f"({type(exc).__name__}: {exc}); re-simulating")
            OBS.add("cache.corrupt")
            self.stats.corrupt += 1
            path.unlink(missing_ok=True)
            self._miss()
            return None
        self.stats.hits += 1
        OBS.add("cache.hit")
        # Re-stat after the read: the signature must describe the bytes
        # we actually parsed, not whatever was there before a concurrent
        # overwrite.
        sig = self._stat_sig(path)
        if sig is not None:
            _MEMO.put(self._memo_key(spec), (sig, doc["metrics"]))
        return metrics

    def _miss(self, refresh: bool = False) -> None:
        self.stats.misses += 1
        OBS.add("cache.refresh_bypass" if refresh else "cache.miss")

    # ---- write -------------------------------------------------------------

    def put(self, spec: RunSpec, metrics: RunMetrics) -> Path:
        """Store one result atomically; returns the entry path."""
        from repro import __version__

        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        doc = {
            "version": CACHE_VERSION,
            "repro_version": __version__,
            "spec": spec.canonical(),
            "metrics": metrics.to_dict(),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc, indent=1))
        os.replace(tmp, path)
        sig = self._stat_sig(path)
        if sig is not None:
            _MEMO.put(self._memo_key(spec), (sig, doc["metrics"]))
        self.stats.stores += 1
        OBS.add("cache.store")
        if self.max_entries is not None:
            self._evict_over(self.max_entries)
        return path

    def _evict_over(self, limit: int) -> None:
        # A sibling process sharing the directory may evict (or a reader
        # may delete a corrupt entry) between our glob and the stat —
        # treat a vanished file as oldest-possible so it sorts first and
        # the unlink below is a harmless no-op.
        def mtime(p: Path) -> float:
            try:
                return p.stat().st_mtime
            except (FileNotFoundError, OSError):
                return 0.0

        entries = sorted(self.directory.glob("*.json"), key=mtime)
        for victim in entries[:max(0, len(entries) - limit)]:
            try:
                victim.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - platform-dependent race
                continue
            self.stats.evicted += 1
            OBS.add("cache.evict")

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
