"""Fig. 12 — multicore system performance, normalized to Homogen-DDR3.

System performance is workload execution time (the slowest core's
cycles).  Expected shape: MOCA close to Homogen-HBM/RL; ~10% better
than Heter-App on average (Sec. VI-B).
"""

from __future__ import annotations

from repro.experiments.fig10 import compute as _compute
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    fig = _compute(
        fidelity, metric="exec_cycles", figure_id="fig12",
        title="Multicore execution time (normalized to Homogen-DDR3; "
              "lower is better)")
    fig.notes.append(
        "Paper: MOCA stays close to Homogen-HBM/RL performance and is "
        "~10% faster than Heter-App (Sec. VI-B).")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
