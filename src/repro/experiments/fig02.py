"""Fig. 2 — object-level memory access behaviour per application.

One row per heap memory object: LLC MPKI, ROB stall cycles per load
miss, size, and the Fig. 5 classification.  This is the paper's core
observation — objects inside one application scatter widely across both
metrics, so application-level placement wastes the heterogeneity.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT, Fidelity, FigureResult
from repro.moca.classify import classify_object, type_to_class_letter
from repro.moca.profiler import profile_app
from repro.workloads.spec import APPS


def compute(fidelity: Fidelity = DEFAULT,
            apps: tuple[str, ...] | None = None) -> FigureResult:
    """Per-object profile rows for the selected (default: all) apps."""
    fig = FigureResult(
        figure_id="fig02",
        title="Object-level LLC MPKI / ROB stall scatter",
        columns=["app", "object", "size_mib", "llc_mpki",
                 "rob_stall_per_miss", "class"],
    )
    for name in (apps or tuple(APPS)):
        p = profile_app(name, "train", fidelity.n_single)
        for prof in sorted(p.lut, key=lambda x: -x.llc_mpki):
            fig.add_row(
                name,
                prof.label.split(".", 1)[-1],
                round(prof.size_bytes / (1 << 20), 2),
                round(prof.llc_mpki, 2),
                round(prof.stall_per_load_miss, 1),
                type_to_class_letter(classify_object(prof)),
            )
    fig.notes.append(
        "Sizes are the 1:8-scaled working sets (DESIGN.md §6); circle "
        "size in the paper's plot corresponds to size_mib here.")
    return fig


def object_spread(fig: FigureResult, app: str) -> tuple[float, float]:
    """(max/min MPKI ratio, stall range) across one app's hot objects —
    a scalar summary of the within-app heterogeneity Fig. 2 shows."""
    rows = [r for r in fig.rows if r[0] == app and r[3] > 0.1]
    if len(rows) < 2:
        return 1.0, 0.0
    mpkis = [r[3] for r in rows]
    stalls = [r[4] for r in rows]
    return max(mpkis) / min(mpkis), max(stalls) - min(stalls)


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
