"""Seed-variance robustness study (beyond the paper).

The reproduction's workloads are synthetic, so a fair question is
whether the headline comparisons depend on the particular random
instance.  This experiment re-runs the MOCA-vs-Heter-App comparison on
several independently perturbed reference inputs (``ref``, ``ref2``,
``ref3``, ...) — different object sizes, weights, and access sequences —
and reports the spread.  Conclusions that hold across every variant are
properties of the *behavioural structure*, not of one dice roll.
"""

from __future__ import annotations

import math

from repro.experiments import engine
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult
from repro.sim.spec import RunSpec

APPS = ("mcf", "disparity", "lbm", "gcc")


def compute(fidelity: Fidelity = DEFAULT, n_variants: int = 3) -> FigureResult:
    """MOCA/Heter-App ratios across reference-input variants."""
    if n_variants < 2:
        raise ValueError("need at least two variants for a spread")
    variants = ["ref"] + [f"ref{i}" for i in range(2, n_variants + 1)]
    fig = FigureResult(
        figure_id="variance",
        title="MOCA vs Heter-App across independent reference inputs "
              "(memory access time ratio; <1 = MOCA wins)",
        columns=["app"] + variants + ["mean", "stdev", "always_wins"],
    )
    for app in APPS:
        ratios = []
        for variant in variants:
            moca, het = engine.execute(
                [RunSpec(workload=app, config="Heter-config1", policy=pol,
                         n_accesses=fidelity.n_single, input_name=variant)
                 for pol in ("moca", "heter-app")],
                phase="sweep.variance")
            ratios.append(moca.mem_access_cycles / het.mem_access_cycles)
        mean = sum(ratios) / len(ratios)
        var = sum((r - mean) ** 2 for r in ratios) / (len(ratios) - 1)
        fig.add_row(app, *(round(r, 3) for r in ratios),
                    round(mean, 3), round(math.sqrt(var), 3),
                    "yes" if all(r < 1.0 for r in ratios) else "no")
    fig.notes.append(
        "Each variant is an independent size/weight/sequence perturbation "
        "of the app; MOCA profiles on the shared training input.")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
