"""Threshold-sensitivity study (extends paper Sec. IV-C).

The paper sets (Thr_Lat, Thr_BW) = (1, 20) empirically for its system
and notes both "need to be customized for a given system".  This
experiment sweeps the grid around the paper's point and reports MOCA's
memory EDP and access time at each, normalized to the paper's setting —
the sensitivity analysis the paper describes but does not plot.
"""

from __future__ import annotations

from repro.experiments import engine
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult, geomean
from repro.moca.classify import Thresholds
from repro.sim.spec import RunSpec

APPS = ("mcf", "disparity", "lbm", "gcc")
LAT_GRID = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
BW_GRID = (5.0, 10.0, 20.0, 40.0, 80.0)


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    """EDP across the (Thr_Lat, Thr_BW) grid, normalized to (1, 20)."""
    fig = FigureResult(
        figure_id="thresholds",
        title="Threshold sensitivity: MOCA memory EDP vs (Thr_Lat, Thr_BW), "
              "normalized to the paper's (1, 20)",
        columns=["thr_lat"] + [f"thr_bw={b:g}" for b in BW_GRID],
    )

    def score(thr: Thresholds) -> float:
        specs = [RunSpec(workload=app, config="Heter-config1", policy="moca",
                         n_accesses=fidelity.n_single, thresholds=thr)
                 for app in APPS]
        return geomean([m.memory_edp
                        for m in engine.execute(specs,
                                                phase="sweep.thresholds")])

    base = score(Thresholds(1.0, 20.0))
    for lat in LAT_GRID:
        fig.add_row(lat, *(
            round(score(Thresholds(lat, bw)) / base, 3)
            for bw in BW_GRID
        ))
    fig.notes.append(
        f"Geomean over {APPS}; <1 means better than the paper's point. "
        "Expected: a shallow basin around (1, 20) — the setting is "
        "robust, not knife-edge (Sec. IV-C).")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
