"""Result persistence: save regenerated figures as JSON artefacts.

``python -m repro.experiments all --save results/`` writes one
``<id>.json`` per figure plus a ``manifest.json`` (fidelity, versions),
so a campaign's numbers can be diffed across commits or machines without
re-simulating.  Documents round-trip through
:meth:`~repro.experiments.runner.FigureResult.to_dict`.
"""

from __future__ import annotations

import json
import platform
from datetime import datetime, timezone
from pathlib import Path

from repro.experiments.runner import Fidelity, FigureResult

FORMAT_VERSION = 1


def save_figure(fig: FigureResult, directory: str | Path,
                meta: dict | None = None) -> Path:
    """Write one figure artefact; returns the file path.

    ``meta`` (see :func:`repro.obs.provenance.run_meta`) is merged into
    the figure's provenance block before serializing, so artefacts record
    config hash, fidelity, seed, phase wall-times, and counter snapshots
    next to their numbers.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{fig.figure_id}.json"
    if meta:
        fig.meta = {**fig.meta, **meta}
    doc = {"version": FORMAT_VERSION, **fig.to_dict()}
    path.write_text(json.dumps(doc, indent=1))
    return path


def load_figure(path: str | Path) -> FigureResult:
    """Read a figure artefact written by :func:`save_figure`.

    Malformed documents (e.g. a hand-edited row whose cell count no
    longer matches ``columns``) raise ``ValueError`` naming the file, so
    a broken artefact in a results directory is identifiable without a
    debugger.
    """
    path = Path(path)
    doc = json.loads(path.read_text())
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported figure artefact version "
            f"{doc.get('version')!r}")
    try:
        return FigureResult.from_dict(doc)
    except (ValueError, KeyError, TypeError) as exc:
        raise ValueError(f"{path}: invalid figure artefact: {exc}") from exc


def write_manifest(directory: str | Path, fidelity: Fidelity,
                   figure_ids: list[str],
                   statuses: dict[str, dict] | None = None) -> Path:
    """Record campaign provenance next to the artefacts.

    Besides versions/seed/fidelity this captures the sweep engine's
    per-phase wall times and — when a persistent result cache is active —
    its hit/miss/store tallies and hit ratio (plus, nested under
    ``cache.streams``, the miss-stream store's), so a warm campaign is
    distinguishable from a cold one after the fact.  ``statuses`` (the
    CLI's per-figure outcome map: ``ok`` / ``failed`` / ``resumed`` plus
    wall time or error) and the engine's resilience tallies (retries,
    timeouts, pool rebuilds, terminal unit failures, degraded-serial
    flag) land in the manifest too, so a campaign that survived faults
    says so instead of looking clean.  When per-unit telemetry capture
    was on (the CLI default), the campaign-wide
    :class:`~repro.obs.telemetry.CampaignTelemetry` aggregate — summed
    counters, span histograms with percentiles, per-worker utilization,
    deduplicated warnings — lands under ``telemetry`` and round-trips
    losslessly via ``CampaignTelemetry.from_dict``.
    """
    import repro
    from repro.experiments import engine
    from repro.moca.policy import policy_names
    from repro.obs.registry import OBS
    from repro.util.rng import ROOT_SEED

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "manifest.json"
    doc = {
        "version": FORMAT_VERSION,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "library_version": repro.__version__,
        "python": platform.python_version(),
        "seed": ROOT_SEED,
        "fidelity": {"name": fidelity.name,
                     "n_single": fidelity.n_single,
                     "n_multi": fidelity.n_multi},
        "figures": sorted(figure_ids),
        # The placement-policy registry at campaign time: artefacts from
        # a build with extra registered policies say so.
        "policies": sorted(policy_names()),
    }
    if statuses:
        doc["figure_status"] = {k: dict(v) for k, v in statuses.items()}
    cache = engine.cache_stats()
    if cache is not None:
        doc["cache"] = cache
    resilience = engine.resilience_stats()
    if resilience is not None:
        doc["resilience"] = resilience
    dispatch = engine.dispatch_stats()
    if dispatch is not None:
        doc["dispatch"] = dispatch
    telemetry = engine.telemetry_stats()
    if telemetry is not None:
        doc["telemetry"] = telemetry
    sweeps = engine.sweep_seconds()
    if sweeps:
        doc["sweep_seconds"] = {k: round(v, 6) for k, v in sweeps.items()}
    if OBS.enabled:
        doc["phase_seconds"] = {k: round(v, 6)
                                for k, v in OBS.phase_seconds().items()}
        doc["counters"] = dict(OBS.counters)
    path.write_text(json.dumps(doc, indent=1))
    return path


def build_report(directory: str | Path, title: str = "Experiment report",
                 ) -> str:
    """Render every artefact in ``directory`` into one markdown report.

    Pairs with ``python -m repro.experiments all --save DIR``: run a
    campaign, then turn its artefacts into a document without
    re-simulating anything.
    """
    directory = Path(directory)
    figures = sorted(directory.glob("*.json"))
    parts = [f"# {title}", ""]
    manifest = directory / "manifest.json"
    if manifest.exists():
        doc = json.loads(manifest.read_text())
        parts.append(
            f"*Generated {doc.get('generated_utc', '?')} at fidelity "
            f"`{doc.get('fidelity', {}).get('name', '?')}` with repro "
            f"{doc.get('library_version', '?')}.*")
        parts.append("")
    for path in figures:
        # Skip the manifest and hidden housekeeping files (the campaign
        # journal ``.campaign.json`` — pathlib's glob matches dotfiles).
        if path.name == "manifest.json" or path.name.startswith("."):
            continue
        parts.append(load_figure(path).render_markdown())
        parts.append("")
    return "\n".join(parts)


def diff_figures(a: FigureResult, b: FigureResult,
                 rel_tol: float = 0.02) -> list[str]:
    """Human-readable cell-level differences between two artefacts.

    Returns one line per differing cell; empty list means the figures
    agree within ``rel_tol`` on every numeric cell (and exactly on text).
    """
    out: list[str] = []
    if a.columns != b.columns:
        return [f"column mismatch: {a.columns} vs {b.columns}"]
    keys_a = [r[0] for r in a.rows]
    keys_b = [r[0] for r in b.rows]
    if keys_a != keys_b:
        return [f"row mismatch: {keys_a} vs {keys_b}"]
    for ra, rb in zip(a.rows, b.rows):
        for col, va, vb in zip(a.columns[1:], ra[1:], rb[1:]):
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                denom = max(abs(va), abs(vb), 1e-12)
                if abs(va - vb) / denom > rel_tol:
                    out.append(f"{ra[0]}/{col}: {va} vs {vb}")
            elif va != vb:
                out.append(f"{ra[0]}/{col}: {va!r} vs {vb!r}")
    return out
