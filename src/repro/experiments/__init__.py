"""Per-table/figure experiment harnesses.

Every table and figure in the paper's evaluation has a module here that
regenerates it from the simulation stack:

==========  ===============================================================
Module      Paper artefact
==========  ===============================================================
``fig01``   Fig. 1 — application-level LLC MPKI vs ROB stall scatter
``fig02``   Fig. 2 — object-level scatter per application
``table2``  Table II — memory module timing/power parameters
``table3``  Table III — application classification (L/B/N)
``fig08``   Fig. 8 — single-core normalized memory access time
``fig09``   Fig. 9 — single-core normalized memory EDP
``fig10``   Fig. 10 — multicore normalized memory access time
``fig11``   Fig. 11 — multicore normalized memory EDP
``fig12``   Fig. 12 — multicore normalized system performance
``fig13``   Fig. 13 — multicore normalized system EDP
``fig14``   Fig. 14 — memory access time across configs 1–3 (vs Heter-App)
``fig15``   Fig. 15 — memory EDP across configs 1–3 (vs Heter-App)
``fig16``   Fig. 16 — stack/code segment L2 MPKI
``overhead``Sec. IV-E — profiling overhead
``headline``Abstract / Sec. VI headline claims, recomputed
==========  ===============================================================

All modules share :mod:`repro.experiments.runner`'s memoized sweeps, so
regenerating several figures costs one simulation pass.  Run any of them
from the command line::

    python -m repro.experiments fig08
    python -m repro.experiments all --fidelity tiny
"""

from repro.experiments.runner import (
    Fidelity,
    TINY,
    DEFAULT,
    FULL,
    FigureResult,
    single_sweep,
    multi_sweep,
    config_sweep,
    SINGLE_SYSTEMS,
    MULTI_SYSTEMS,
)

__all__ = [
    "Fidelity",
    "TINY",
    "DEFAULT",
    "FULL",
    "FigureResult",
    "single_sweep",
    "multi_sweep",
    "config_sweep",
    "SINGLE_SYSTEMS",
    "MULTI_SYSTEMS",
]
