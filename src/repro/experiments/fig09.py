"""Fig. 9 — single-core memory EDP, normalized to Homogen-DDR3.

Memory EDP is the paper's metric: memory power x total memory access
time (Sec. VI-A).  Expected shape: Homogen-RL the least efficient among
the fast systems, MOCA at or below Heter-App for every application.
"""

from __future__ import annotations

from repro.experiments.runner import (
    APP_ORDER,
    DEFAULT,
    Fidelity,
    FigureResult,
    geomean,
    single_sweep,
)
from repro.experiments.fig08 import SYSTEM_LABELS


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    sweep = single_sweep(fidelity)
    fig = FigureResult(
        figure_id="fig09",
        title="Single-core memory EDP (normalized to Homogen-DDR3)",
        columns=["app"] + SYSTEM_LABELS,
    )
    for app in APP_ORDER:
        base = sweep[(app, "Homogen-DDR3")].memory_edp
        fig.add_row(app, *(
            round(sweep[(app, label)].memory_edp / base, 3)
            for label in SYSTEM_LABELS
        ))
    fig.add_row("geomean", *(
        round(geomean([r[1 + i] for r in fig.rows]), 3)
        for i in range(len(SYSTEM_LABELS))
    ))
    fig.notes.append(
        "Paper headline: MOCA reduces memory EDP by ~43% vs Homogen-DDR3 "
        "and ~15% vs Heter-App on average (Sec. VI-A).")
    fig.notes.append(
        "Known deviation: Homogen-LP scores lower than the paper shows "
        "because Table II's 6.5 mW/GB LPDDR2 standby power dominates at "
        "this scale — see EXPERIMENTS.md.")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
