"""Fig. 14 — memory access time across heterogeneous configs 1–3.

Five workload sets x three configurations, application-level vs
object-level allocation, normalized to Heter-App on the same config
(the paper normalizes these two figures to Heter-App results).

Expected shape (Sec. VI-C): with the small-RLDRAM config1, MOCA beats
Heter-App on the memory-intensive sets; as RLDRAM grows (config2/3),
Heter-App catches up or wins on raw access time — but keeps paying for
it in EDP (Fig. 15).
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT,
    Fidelity,
    FigureResult,
    SWEEP_CONFIGS,
    SWEEP_MIXES,
    config_sweep,
)


def compute(fidelity: Fidelity = DEFAULT, metric: str = "mem_access_cycles",
            figure_id: str = "fig14",
            title: str = "Memory access time across configs "
                         "(normalized to Heter-App per config)") -> FigureResult:
    sweep = config_sweep(fidelity)
    fig = FigureResult(
        figure_id=figure_id, title=title,
        columns=["mix"] + [f"moca/{c.name.split('-')[1]}"
                           for c in SWEEP_CONFIGS],
    )
    for mix in SWEEP_MIXES:
        cells = []
        for config in SWEEP_CONFIGS:
            het = getattr(sweep[(config.name, mix, "heter-app")], metric)
            moc = getattr(sweep[(config.name, mix, "moca")], metric)
            cells.append(round(moc / het, 3))
        fig.add_row(mix, *cells)
    fig.notes.append(
        "Values are MOCA normalized to Heter-App on the same config "
        "(<1 means MOCA wins). config1 = 256MB RL + 768MB HBM + 1GB LP; "
        "config2 = 512/512/1024; config3 = 768/768/512 (paper-scale MB).")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
