"""Fig. 13 — multicore system EDP, normalized to Homogen-DDR3.

System EDP = (core power + memory power) x execution time squared, with
the calibrated 21 W four-core power (Sec. V-A).  Because core power
dominates, system EDP largely tracks execution time squared; the paper
reports MOCA up to 15% better than Homogen-DDR3 and ~10% better than
Heter-App.
"""

from __future__ import annotations

from repro.experiments.fig10 import compute as _compute
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    fig = _compute(
        fidelity, metric="system_edp", figure_id="fig13",
        title="Multicore system EDP (normalized to Homogen-DDR3)")
    fig.notes.append(
        "Paper: up to 15% system energy-efficiency gain vs Homogen-DDR3, "
        "~10% vs Heter-App (Sec. VI-B).")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
