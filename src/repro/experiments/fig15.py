"""Fig. 15 — memory EDP across heterogeneous configs 1–3.

Same sweep as Fig. 14, EDP metric.  Expected shape (Sec. VI-C): MOCA's
energy-efficiency edge grows with RLDRAM capacity, because Heter-App
fills the bigger (power-hungry) RLDRAM with whole applications while
MOCA promotes only the hot objects; config1 remains the most efficient
overall, which is why the paper selects it.
"""

from __future__ import annotations

from repro.experiments.fig14 import compute as _compute
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    fig = _compute(
        fidelity, metric="memory_edp", figure_id="fig15",
        title="Memory EDP across configs (normalized to Heter-App per config)")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
