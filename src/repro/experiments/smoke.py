"""Smoke sweep: the cheapest figure that exercises the whole stack.

Six single-core homogeneous runs at a tenth of the fidelity's trace
length — trace synthesis, cache filtering, placement, the core model,
the memory system, metrics, engine scheduling, and the result cache all
participate, but the whole figure costs a few seconds.

This is the unit of choice for harness tests (worker-crash recovery,
campaign resume, CI smoke jobs): enough independent sweep units to keep
a small worker pool busy, cheap enough to run cold in a subprocess.
"""

from __future__ import annotations

from repro.experiments import engine
from repro.experiments.runner import Fidelity, FigureResult
from repro.sim.spec import RunSpec

#: Applications in the smoke set — a spread over the paper's L/B/N
#: classes so the figure is not degenerate.
SMOKE_APPS = ("mcf", "milc", "libquantum", "lbm", "gcc", "disparity")

#: Floor on the smoke trace length (the figure must stay meaningful
#: even at tiny fidelity).
MIN_ACCESSES = 2_000


def smoke_specs(fidelity: Fidelity) -> list[RunSpec]:
    """The sweep units the smoke figure runs (also used by tests)."""
    n = max(MIN_ACCESSES, fidelity.n_single // 10)
    return [RunSpec(workload=app, config="Homogen-DDR3", policy="homogen",
                    n_accesses=n)
            for app in SMOKE_APPS]


def compute(fidelity: Fidelity) -> FigureResult:
    specs = smoke_specs(fidelity)
    metrics = engine.execute(specs, phase="sweep.smoke")
    fig = FigureResult(
        figure_id="smoke",
        title="Smoke sweep: single-core DDR3 sanity numbers",
        columns=["app", "ipc", "row_hit_rate", "mem_edp_uJs"],
    )
    for m in metrics:
        fig.add_row(m.workload, round(m.ipc, 4),
                    round(m.row_hit_rate, 4),
                    round(m.memory_edp * 1e6, 4))
    fig.notes.append(
        f"{len(specs)} runs of {specs[0].n_accesses} accesses on "
        f"Homogen-DDR3; a fast end-to-end exercise of the sweep engine, "
        f"not a paper artefact")
    return fig
