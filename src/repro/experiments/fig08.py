"""Fig. 8 — single-core memory access time, normalized to Homogen-DDR3.

One row per application, one column per memory system.  The paper's
qualitative shape: Homogen-RL lowest, Homogen-LP highest, HBM slightly
under DDR3, MOCA between RL and the rest (and at or under Heter-App).
"""

from __future__ import annotations

from repro.experiments.runner import (
    APP_ORDER,
    DEFAULT,
    Fidelity,
    FigureResult,
    SINGLE_SYSTEMS,
    geomean,
    single_sweep,
)

SYSTEM_LABELS = [label for label, _, _ in SINGLE_SYSTEMS]


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    """Normalized total memory access time per (app, system)."""
    sweep = single_sweep(fidelity)
    fig = FigureResult(
        figure_id="fig08",
        title="Single-core memory access time (normalized to Homogen-DDR3)",
        columns=["app"] + SYSTEM_LABELS,
    )
    for app in APP_ORDER:
        base = sweep[(app, "Homogen-DDR3")].mem_access_cycles
        fig.add_row(app, *(
            round(sweep[(app, label)].mem_access_cycles / base, 3)
            for label in SYSTEM_LABELS
        ))
    fig.add_row("geomean", *(
        round(geomean([r[1 + i] for r in fig.rows]), 3)
        for i in range(len(SYSTEM_LABELS))
    ))
    fig.notes.append(
        "Paper headline: MOCA reduces memory access time by ~51% vs "
        "Homogen-DDR3 and ~14% vs Heter-App on average (Sec. VI-A).")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
