"""The paper's headline claims, recomputed from the sweeps.

Abstract / Sec. VI numbers:

* single-core: MOCA -51% memory access time, -43% memory EDP vs
  Homogen-DDR3; -14% / -15% vs Heter-App (averages);
* multicore: up to +63% memory energy efficiency vs Homogen-DDR3
  (best-case set), +40% vs Homogen-LP; -26% access time and -33%
  memory EDP vs Heter-App (averages);
* system level: up to +15% energy efficiency vs Homogen-DDR3,
  +10% performance and energy efficiency vs Heter-App.
"""

from __future__ import annotations

from repro.experiments.runner import (
    APP_ORDER,
    DEFAULT,
    Fidelity,
    FigureResult,
    geomean,
    multi_sweep,
    single_sweep,
)
from repro.workloads.mixes import MIX_NAMES


def _ratios(sweep, keys, metric, num_label, den_label) -> list[float]:
    return [
        getattr(sweep[(k, num_label)], metric)
        / getattr(sweep[(k, den_label)], metric)
        for k in keys
    ]


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    """Recompute each headline claim; report paper vs measured."""
    s = single_sweep(fidelity)
    m = multi_sweep(fidelity)
    fig = FigureResult(
        figure_id="headline",
        title="Headline claims: paper vs reproduction",
        columns=["claim", "paper", "measured"],
    )

    def pct_gain(ratios: list[float], best: bool = False) -> float:
        r = min(ratios) if best else geomean(ratios)
        return round((1.0 - r) * 100.0, 1)

    fig.add_row("single: mem access time vs DDR3 (avg % better)", 51.0,
                pct_gain(_ratios(s, APP_ORDER, "mem_access_cycles",
                                 "MOCA", "Homogen-DDR3")))
    fig.add_row("single: mem EDP vs DDR3 (avg % better)", 43.0,
                pct_gain(_ratios(s, APP_ORDER, "memory_edp",
                                 "MOCA", "Homogen-DDR3")))
    fig.add_row("single: mem access time vs Heter-App (avg % better)", 14.0,
                pct_gain(_ratios(s, APP_ORDER, "mem_access_cycles",
                                 "MOCA", "Heter-App")))
    fig.add_row("single: mem EDP vs Heter-App (avg % better)", 15.0,
                pct_gain(_ratios(s, APP_ORDER, "memory_edp",
                                 "MOCA", "Heter-App")))
    fig.add_row("multi: mem EDP vs DDR3 (best-case % better)", 63.0,
                pct_gain(_ratios(m, MIX_NAMES, "memory_edp",
                                 "MOCA", "Homogen-DDR3"), best=True))
    fig.add_row("multi: mem EDP vs LP (best-case % better)", 40.0,
                pct_gain(_ratios(m, MIX_NAMES, "memory_edp",
                                 "MOCA", "Homogen-LP"), best=True))
    fig.add_row("multi: mem access time vs Heter-App (avg % better)", 26.0,
                pct_gain(_ratios(m, MIX_NAMES, "mem_access_cycles",
                                 "MOCA", "Heter-App")))
    fig.add_row("multi: mem EDP vs Heter-App (avg % better)", 33.0,
                pct_gain(_ratios(m, MIX_NAMES, "memory_edp",
                                 "MOCA", "Heter-App")))
    fig.add_row("multi: exec time vs Heter-App (avg % better)", 10.0,
                pct_gain(_ratios(m, MIX_NAMES, "exec_cycles",
                                 "MOCA", "Heter-App")))
    fig.add_row("multi: system EDP vs DDR3 (best-case % better)", 15.0,
                pct_gain(_ratios(m, MIX_NAMES, "system_edp",
                                 "MOCA", "Homogen-DDR3"), best=True))
    fig.notes.append(
        "Averages are geometric means over the apps/mixes; 'best-case' "
        "takes the most favourable workload (the paper's 'up to').")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
