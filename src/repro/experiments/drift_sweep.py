"""Input-drift sweep: the online guidance service vs frozen placement.

The paper's pipeline is strictly offline — profile once on the training
input, freeze the LUT, allocate at startup — which silently degrades
when the evaluation input *drifts* from the training input.  This
experiment measures that cliff and what the online guidance service
(:mod:`repro.service`) buys back.  Rows are inputs of increasing drift:

* **ref** — the paper's evaluation input (weight jitter only); the
  service must *hold still* (hysteresis: zero net moves after warmup);
* **drift1** — heap access weights blended half-way toward their
  reversed ranking (``repro.workloads.inputs``), so the offline
  classification misplaces the objects that matter;
* **drift2** — the full hot/cold reversal;
* **drift2+fault** — drift2 plus a mid-placement capacity fault (the
  bandwidth module offlines after 2000 page allocations and its timing
  derates 4x), identical FaultPlan for every policy; the service
  additionally evacuates the stranded pages under its epoch budget.

Columns compare Heter-App (application-granular, input-independent),
offline MOCA (the paper's frozen placement), and online MOCA (same
boot placement, then epoch-driven reclassification + budgeted
migration).  Cells are memory access time normalized per app to a
clean Homogen-DDR3 run of the same input, geomean over the app set —
lower is better.  The trailing columns report the service's net object
moves and pages migrated (summed over apps): the ref row must show 0.

The app set spans the paper's three classes — milc (latency-bound),
tracking (bandwidth-bound), gcc (non-memory-bound) — so the figure
shows drift hurting through different mechanisms: milc's placement
inverts (the service migrates back), while gcc's cache-resident pools
barely miss and the service correctly leaves them alone.
"""

from __future__ import annotations

from repro.experiments import engine
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult, geomean
from repro.faults.plan import FaultPlan
from repro.service import OnlineSpec
from repro.sim.spec import RunSpec

APPS = ("milc", "tracking", "gcc")
CONFIG = "Heter-config1"

#: One (input, FaultPlan | None) pair per figure row.
ROWS = (
    ("ref", None),
    ("drift1", None),
    ("drift2", None),
    ("drift2+fault",
     FaultPlan(offline_role="bw", trigger_page=2_000,
               degrade_role="bw", degrade_factor=4.0)),
)


def _row_specs(input_name: str, faults: FaultPlan | None,
               n: int) -> list[RunSpec]:
    return (
        [RunSpec(app, CONFIG, "heter-app", n, input_name=input_name,
                 faults=faults) for app in APPS]
        + [RunSpec(app, CONFIG, "moca", n, input_name=input_name,
                   faults=faults) for app in APPS]
        + [RunSpec(app, CONFIG, "moca", n, input_name=input_name,
                   faults=faults, online=OnlineSpec()) for app in APPS]
    )


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    """Normalized memory access time vs input drift, per policy."""
    fig = FigureResult(
        figure_id="drift",
        title="Input-drift sweep: offline vs online MOCA as the "
              "evaluation input drifts from the training input "
              "(normalized to clean Homogen-DDR3, geomean over apps)",
        columns=["input", "Heter-App", "Offline-MOCA", "Online-MOCA",
                 "online_moves", "online_pages"],
    )
    n = fidelity.n_single
    inputs = sorted({name.split("+")[0] for name, _ in ROWS})
    base_specs = [RunSpec(app, "Homogen-DDR3", "homogen", n,
                          input_name=name)
                  for name in inputs for app in APPS]
    cell_specs = [spec for name, faults in ROWS
                  for spec in _row_specs(name.split("+")[0], faults, n)]
    results = engine.execute(base_specs + cell_specs, phase="sweep.drift")
    base = {(name, app): m.mem_access_cycles
            for (name, app), m in zip(
                ((name, app) for name in inputs for app in APPS),
                results[:len(base_specs)])}
    cells = iter(results[len(base_specs):])
    for name, _faults in ROWS:
        input_name = name.split("+")[0]
        row = []
        online_metrics: list = []
        for policy in ("heter-app", "moca", "online"):
            metrics = [next(cells) for _ in APPS]
            if policy == "online":
                online_metrics = metrics
            ratios = [m.mem_access_cycles / base[(input_name, app)]
                      for m, app in zip(metrics, APPS)]
            row.append(round(geomean(ratios), 3))
        moves = sum(m.meta.get("service", {}).get("moves", 0)
                    for m in online_metrics)
        pages = sum(m.meta.get("service", {}).get("pages_moved", 0)
                    for m in online_metrics)
        fig.add_row(name, *row, moves, pages)
    fig.notes.append(
        f"Geomean over {APPS}; lower is better.  Expected: the three "
        "policies tie their capacity-figure order on ref (and the "
        "service holds still: online_moves == 0); on drifted inputs "
        "offline MOCA degrades past Heter-App while online MOCA "
        "reclassifies from live telemetry and recovers most of the "
        "gap; under the capacity fault the service additionally "
        "evacuates stranded pages, beating both frozen placements.")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
