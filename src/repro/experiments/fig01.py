"""Fig. 1 — application-level memory access behaviour.

The paper's motivation scatter: L2 (LLC) MPKI on one axis, ROB head
stall cycles per load miss on the other, one point per application.
High MPKI = memory-intensive; among those, low stall/miss = high MLP.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT, Fidelity, FigureResult
from repro.moca.classify import classify_application
from repro.moca.profiler import profile_app
from repro.vm.heap import ObjectType
from repro.workloads.spec import APPS


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    """Profile every application and report its aggregate metrics."""
    fig = FigureResult(
        figure_id="fig01",
        title="Application-level LLC MPKI and ROB stall cycles per load miss",
        columns=["app", "suite", "llc_mpki", "rob_stall_per_miss",
                 "computed_class", "paper_class"],
    )
    letter = {ObjectType.LAT: "L", ObjectType.BW: "B", ObjectType.POW: "N"}
    for name, spec in APPS.items():
        p = profile_app(name, "train", fidelity.n_single)
        fig.add_row(
            name, spec.suite,
            round(p.app_mpki, 2), round(p.app_stall_per_miss, 1),
            letter[classify_application(p.lut)], spec.paper_class,
        )
    fig.notes.append(
        "paper_class is Table III; computed_class uses the app-level "
        "thresholds (Thr_Lat=10 MPKI on aggregate traffic).")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
