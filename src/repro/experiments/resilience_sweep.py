"""Resilience sweep: how each policy degrades under injected faults.

For every fault scenario in :data:`repro.faults.SCENARIOS` (plus the
clean baseline), run the paper's representative mixed workload
(``2L1B1N``) under MOCA and Heter-App on the heterogeneous config1 and
under the homogeneous DDR3 baseline, and report each system's *slowdown
against its own clean run* together with the allocator's degradation
accounting (spill rate, overcommitted pages).

The question the figure answers is the robustness claim behind MOCA's
fallback chains (paper Sec. IV-D): when a module goes away, shrinks,
slows down, or the profiling guidance is wrong, object-level allocation
should degrade *gracefully* — pages spill down their type's chain and
the run completes with measurable, bounded slowdown — rather than fall
off a cliff or crash.  Fault runs carry their own cache keys (the
:class:`~repro.faults.FaultPlan` is part of the spec's canonical form),
so this figure never contaminates, and is never contaminated by, the
clean figures' cache entries.
"""

from __future__ import annotations

from repro.experiments import engine
from repro.experiments.runner import Fidelity, FigureResult
from repro.faults import SCENARIOS, FaultPlan
from repro.sim.spec import RunSpec

#: The workload every cell of the figure runs.
MIX = "2L1B1N"

#: (label, config name, policy) columns — MOCA and its baselines.
SYSTEMS: tuple[tuple[str, str, str], ...] = (
    ("MOCA", "Heter-config1", "moca"),
    ("Heter-App", "Heter-config1", "heter-app"),
    ("Homogen-DDR3", "Homogen-DDR3", "homogen"),
)


def resilience_specs(fidelity: Fidelity
                     ) -> list[tuple[str, str, RunSpec]]:
    """(scenario, system label, spec) for every cell of the figure."""
    scenarios: list[tuple[str, FaultPlan | None]] = [("clean", None)]
    scenarios.extend(SCENARIOS.items())
    out = []
    for scenario, plan in scenarios:
        for label, config, policy in SYSTEMS:
            out.append((scenario, label,
                        RunSpec(workload=MIX, config=config, policy=policy,
                                n_accesses=fidelity.n_multi, faults=plan)))
    return out


def compute(fidelity: Fidelity) -> FigureResult:
    keyed = resilience_specs(fidelity)
    metrics = engine.execute([spec for _, _, spec in keyed],
                             phase="sweep.resilience")
    by_cell = {(scenario, label): m
               for (scenario, label, _), m in zip(keyed, metrics)}
    clean = {label: by_cell[("clean", label)] for label, _, _ in SYSTEMS}

    fig = FigureResult(
        figure_id="resilience",
        title=f"Graceful degradation under injected faults ({MIX})",
        columns=["scenario/system", "slowdown", "spill_rate",
                 "overcommitted", "ipc"],
    )
    for (scenario, label), m in by_cell.items():
        base = clean[label]
        slowdown = (m.exec_cycles / base.exec_cycles
                    if base.exec_cycles else 0.0)
        placement = m.meta.get("placement", {})
        fig.add_row(f"{scenario}/{label}",
                    round(slowdown, 4),
                    round(placement.get("spill_rate", 0.0), 4),
                    placement.get("exhausted", 0),
                    round(m.ipc, 4))
    fig.notes.append(
        "slowdown = exec time / the same system's clean run; spill_rate "
        "and overcommitted (pages placed past physical capacity) come "
        "from the allocator's degradation accounting")
    fig.notes.append(
        "faults that target a module role the system lacks (e.g. "
        "offline-lat on Homogen-DDR3) are no-ops by design: slowdown 1.0")
    return fig
