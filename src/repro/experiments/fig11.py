"""Fig. 11 — multicore memory EDP, normalized to Homogen-DDR3.

Paper headlines: MOCA improves memory energy efficiency by up to 63%
over Homogen-DDR3 and by ~33% over Heter-App across the workload sets.
"""

from __future__ import annotations

from repro.experiments.fig10 import compute as _compute
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    fig = _compute(
        fidelity, metric="memory_edp", figure_id="fig11",
        title="Multicore memory EDP (normalized to Homogen-DDR3)")
    fig.notes.append(
        "Paper: up to 63% memory-EDP improvement vs Homogen-DDR3; "
        "~33% vs Heter-App on average (Sec. VI-B).")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
