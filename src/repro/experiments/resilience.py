"""Resilient sweep execution: timeouts, retries, pool recovery, journal.

The sweep engine (:mod:`repro.experiments.engine`) hands its cache-miss
units to :func:`run_resilient`, which guarantees that one bad unit — a
worker that segfaults, a run that hangs, a transient error — cannot take
the campaign down:

* every unit gets up to :attr:`RetryPolicy.max_attempts` attempts with
  deterministic exponential backoff (:func:`backoff_delay` — jitter is
  hashed from the unit key, never from the clock, so reruns behave
  identically);
* a unit that exceeds :attr:`RetryPolicy.unit_timeout` wall-clock seconds
  is declared hung: the worker pool is killed and rebuilt, the hung unit
  is charged an attempt, and every other in-flight unit is re-enqueued;
* a ``BrokenProcessPool`` (worker crash, OOM-kill) likewise rebuilds the
  pool and re-enqueues the in-flight units;
* after :attr:`RetryPolicy.max_pool_breaks` *consecutive* rebuilds the
  engine stops trusting process isolation and degrades to in-process
  serial execution (with a one-time :meth:`OBS.warn`), where retries
  still apply but timeouts cannot preempt;
* units that exhaust their attempts become :class:`UnitFailure` records
  in the :class:`ExecutionReport` — the caller decides whether to raise
  (:class:`SweepFailure`) or carry on with the survivors.

:class:`CampaignJournal` is the campaign-level complement: a small atomic
JSON checkpoint (``<save>/.campaign.json``) recording which figures
completed at which fidelity, so an interrupted ``python -m
repro.experiments`` invocation resumes instead of recomputing.

For tests, :func:`chaos_probe` turns the worker entry point into a fault
site: when ``REPRO_CHAOS_DIR`` names a directory, marker files ``crash``
/ ``hang`` / ``error`` (content = how many units to affect) make the
next unit(s) die with ``os._exit``, sleep past any timeout, or raise
:class:`ChaosError`.  Claims are taken with ``O_EXCL`` sentinel files,
so the budget holds across worker processes and retries.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.registry import OBS
from repro.sim.metrics import RunMetrics
from repro.sim.spec import RunSpec

__all__ = [
    "CampaignJournal",
    "ChaosError",
    "ExecutionReport",
    "RetryPolicy",
    "SweepFailure",
    "UnitFailure",
    "backoff_delay",
    "chaos_probe",
    "current_batch_size",
    "run_resilient",
]


# ---- policy -----------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs governing how hard the engine fights for each unit.

    Attributes:
        unit_timeout: Wall-clock seconds one unit may run in a worker
            before being declared hung (``None`` disables — the default,
            since legitimate runtimes vary by orders of magnitude across
            fidelities).  Only enforceable with worker processes; the
            serial path cannot preempt a hung simulation.
        max_attempts: Total tries per unit (first run + retries).
        backoff_base: First retry delay, seconds; doubles per attempt.
        backoff_cap: Upper bound on any single delay, seconds.
        max_pool_breaks: Consecutive pool rebuilds (crashes or hang
            kills) tolerated before degrading to serial execution.
    """

    unit_timeout: float | None = None
    max_attempts: int = 3
    backoff_base: float = 0.1
    backoff_cap: float = 5.0
    max_pool_breaks: int = 3

    def __post_init__(self) -> None:
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ValueError(f"unit_timeout={self.unit_timeout} must be "
                             f"positive (or None to disable)")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts={self.max_attempts} must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.max_pool_breaks < 1:
            raise ValueError(
                f"max_pool_breaks={self.max_pool_breaks} must be >= 1")

    @classmethod
    def from_env(cls, env: dict | None = None) -> "RetryPolicy":
        """Policy from ``REPRO_UNIT_TIMEOUT`` / ``REPRO_MAX_ATTEMPTS``.

        Malformed values warn and fall back to the defaults, matching
        the engine's treatment of ``REPRO_WORKERS``.
        """
        env = os.environ if env is None else env
        kwargs: dict = {}
        raw = env.get("REPRO_UNIT_TIMEOUT")
        if raw:
            try:
                kwargs["unit_timeout"] = float(raw)
            except ValueError:
                OBS.warn(f"REPRO_UNIT_TIMEOUT={raw!r} is not a number; "
                         f"timeouts stay disabled")
        raw = env.get("REPRO_MAX_ATTEMPTS")
        if raw:
            try:
                kwargs["max_attempts"] = max(1, int(raw))
            except ValueError:
                OBS.warn(f"REPRO_MAX_ATTEMPTS={raw!r} is not an integer; "
                         f"keeping the default")
        return cls(**kwargs)


def backoff_delay(key: str, attempt: int, policy: RetryPolicy) -> float:
    """Deterministic exponential backoff with hashed jitter.

    ``attempt`` is the attempt that just failed (1-based).  Jitter in
    ``[0.5, 1.5)`` is derived from SHA-256 of ``key:attempt`` — never
    from the clock or a shared RNG — so a rerun of the same campaign
    waits the same amount and stays reproducible.
    """
    base = min(policy.backoff_cap,
               policy.backoff_base * (2.0 ** max(0, attempt - 1)))
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    jitter = 0.5 + int.from_bytes(digest[:4], "big") / 2 ** 32
    return min(policy.backoff_cap, base * jitter)


# ---- outcomes ---------------------------------------------------------------


@dataclass(frozen=True)
class UnitFailure:
    """One unit that exhausted its attempts (or its time)."""

    index: int
    key: str
    label: str
    attempts: int
    error: str
    timed_out: bool = False

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "unit": self.label,
            "attempts": self.attempts,
            "error": self.error,
            "timed_out": self.timed_out,
        }


@dataclass
class ExecutionReport:
    """What :func:`run_resilient` did to a batch of units.

    ``results`` parallels the input specs; a ``None`` slot marks a
    terminal failure described in ``failures``.
    """

    results: list[RunMetrics | None] = field(default_factory=list)
    failures: list[UnitFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_breaks: int = 0
    degraded_serial: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "units": len(self.results),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_breaks": self.pool_breaks,
            "degraded_serial": self.degraded_serial,
            "failed_units": [f.to_dict() for f in self.failures],
        }


class SweepFailure(RuntimeError):
    """Raised by the engine when units fail terminally.

    Carries the :class:`UnitFailure` records so the CLI can put them in
    the campaign manifest instead of a stack trace.
    """

    def __init__(self, failures: Sequence[UnitFailure],
                 phase: str | None = None):
        self.failures = list(failures)
        self.phase = phase
        units = ", ".join(f.label for f in self.failures[:4])
        more = ("" if len(self.failures) <= 4
                else f" (+{len(self.failures) - 4} more)")
        super().__init__(
            f"{len(self.failures)} sweep unit(s) failed terminally"
            f"{f' in {phase}' if phase else ''}: {units}{more}")


# ---- chaos injection (tests) ------------------------------------------------


class ChaosError(RuntimeError):
    """Deliberate failure injected by :func:`chaos_probe`."""


def chaos_probe() -> None:
    """Fault site for harness tests; no-op unless ``REPRO_CHAOS_DIR`` set.

    The directory may contain marker files named ``crash``, ``hang`` or
    ``error``.  A marker's content is its *budget* — how many units it
    affects (blank = 1); ``hang`` takes an optional second token, the
    sleep in seconds (default 3600).  Each affected unit claims an
    ``O_EXCL`` sentinel (``<kind>.claim.<i>``) first, so budgets hold
    across worker processes, retries, and pool rebuilds.
    """
    chaos_dir = os.environ.get("REPRO_CHAOS_DIR")
    if not chaos_dir:
        return
    root = Path(chaos_dir)
    for kind in ("crash", "hang", "error"):
        marker = root / kind
        try:
            tokens = marker.read_text().split()
        except (FileNotFoundError, OSError):
            continue
        budget = 1
        if tokens:
            try:
                budget = int(tokens[0])
            except ValueError:
                budget = 1
        claimed = False
        for i in range(budget):
            try:
                fd = os.open(root / f"{kind}.claim.{i}",
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                break
            os.close(fd)
            claimed = True
            break
        if not claimed:
            continue
        if kind == "crash":
            # A segfault stand-in: no exception, no cleanup, no exit
            # handlers — the pool sees a silently-dead worker.
            os._exit(1)
        if kind == "hang":
            sleep_s = 3600.0
            if len(tokens) > 1:
                try:
                    sleep_s = float(tokens[1])
                except ValueError:
                    pass
            time.sleep(sleep_s)
            return
        raise ChaosError(f"injected failure from {marker}")


# ---- resilient execution ----------------------------------------------------


#: Size of the batch the *current worker* is executing (1 outside a
#: batch).  Set by :func:`_run_batch` around its units so the worker's
#: unit capture can observe its dispatch context.
_batch_size = 1


def current_batch_size() -> int:
    """How many units share this worker's current future (>= 1)."""
    return _batch_size


def _run_batch(runner: Callable[[RunSpec], RunMetrics],
               specs: list[RunSpec]) -> list[tuple[str, object]]:
    """Worker entry for one multi-unit batch.

    Each unit is isolated with its own ``except Exception`` so one bad
    unit cannot poison its siblings' finished results — the parent
    retries only the units that actually failed, individually.  (A
    crash/``os._exit`` still kills the whole future; the parent charges
    every rider an attempt, exactly like any pool break.)
    """
    global _batch_size
    _batch_size = len(specs)
    try:
        out: list[tuple[str, object]] = []
        for spec in specs:
            try:
                out.append(("ok", runner(spec)))
            except Exception as exc:  # noqa: BLE001 - anything may come back
                out.append(("err", f"{type(exc).__name__}: {exc}"))
        return out
    finally:
        _batch_size = 1


def _default_group_key(spec) -> object:
    """Workload-major batching: units of one workload share filtered
    streams and decode tables, so co-locating them on one worker turns
    those loads into resident-cache hits."""
    return getattr(spec, "workload", None)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Best-effort kill of a pool with a wedged or dead worker."""
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - racing exit
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - interpreter-state dependent
        pass


def _run_serial(pending: "deque[tuple[int, int]]",
                specs: Sequence[RunSpec],
                runner: Callable[[RunSpec], RunMetrics],
                policy: RetryPolicy,
                report: ExecutionReport,
                on_unit: Callable[[int, RunMetrics | None], None] | None,
                ) -> None:
    """Drain ``pending`` in-process; retries apply, timeouts cannot."""
    while pending:
        index, attempt = pending.popleft()
        spec = specs[index]
        try:
            with OBS.span(f"sweep.unit.{spec.workload}.{spec.policy}",
                          system=spec.config, attempt=attempt):
                report.results[index] = runner(spec)
        except Exception as exc:  # noqa: BLE001 - anything may come back
            if attempt < policy.max_attempts:
                report.retries += 1
                OBS.add("resilience.retry")
                time.sleep(backoff_delay(spec.key(), attempt, policy))
                pending.append((index, attempt + 1))
            else:
                report.failures.append(UnitFailure(
                    index=index, key=spec.key(), label=spec.describe(),
                    attempts=attempt,
                    error=f"{type(exc).__name__}: {exc}"))
                OBS.add("resilience.unit_failed")
                if on_unit is not None:
                    on_unit(index, None)
        else:
            if on_unit is not None:
                on_unit(index, report.results[index])


def run_resilient(specs: Sequence[RunSpec], *, workers: int,
                  policy: RetryPolicy | None = None,
                  runner: Callable[[RunSpec], RunMetrics] | None = None,
                  on_unit: Callable[[int, RunMetrics | None], None]
                  | None = None,
                  batch_units: int = 1,
                  group_key: Callable[[RunSpec], object] | None = None,
                  on_batch: Callable[[int], None] | None = None,
                  ) -> ExecutionReport:
    """Execute every spec, surviving crashes, hangs, and flaky failures.

    Args:
        specs: Units to run (typically the engine's cache misses).
        workers: Worker processes; ``<= 1`` runs serially in-process.
        policy: Retry/timeout knobs (default: :meth:`RetryPolicy.from_env`).
        runner: Unit entry point; must be picklable for ``workers > 1``.
            Defaults to the engine's worker entry.
        on_unit: Parent-process callback fired once per unit on its
            *terminal* outcome — ``(index, metrics)`` on success,
            ``(index, None)`` after the last attempt fails.  Retried
            attempts do not fire.  The engine uses this to fold
            telemetry and feed the live dashboard as units land.
        batch_units: Group up to this many first-attempt units sharing
            one ``group_key`` into a single future, amortizing pickle/
            IPC and maximizing worker-resident cache hits.  ``1`` (the
            default) keeps the historical unit-per-future dispatch.
            Retried units always travel alone, so a poisonous unit
            stops taking siblings down with it.
        group_key: Batching affinity (default: the spec's ``workload``
            — units of one workload share stream/decode caches).
        on_batch: Parent-process callback fired with the batch size at
            each multi-unit submit (dispatch accounting).

    Returns:
        An :class:`ExecutionReport` whose ``results`` parallel ``specs``
        (``None`` = terminal failure, detailed in ``failures``).
    """
    if policy is None:
        policy = RetryPolicy.from_env()
    if runner is None:
        from repro.experiments.engine import _execute_spec
        runner = _execute_spec
    if group_key is None:
        group_key = _default_group_key

    report = ExecutionReport(results=[None] * len(specs))
    pending: deque[tuple[int, int]] = deque(
        (i, 1) for i in range(len(specs)))

    if workers <= 1:
        _run_serial(pending, specs, runner, policy, report, on_unit)
        return report

    def _fail(index: int, attempt: int, error: str,
              timed_out: bool = False) -> None:
        report.failures.append(UnitFailure(
            index=index, key=specs[index].key(),
            label=specs[index].describe(), attempts=attempt,
            error=error, timed_out=timed_out))
        OBS.add("resilience.unit_failed")
        if on_unit is not None:
            on_unit(index, None)

    consecutive_breaks = 0
    pool = ProcessPoolExecutor(max_workers=workers)
    # future -> (group, deadline); group is [(index, attempt), ...] —
    # a singleton for classic dispatch, longer when batched.  A batch's
    # deadline scales with its size: the units run sequentially in one
    # worker, so each still gets ``unit_timeout`` on average.
    in_flight: dict = {}
    try:
        while pending or in_flight:
            # Keep the pool saturated but bounded: two waves per worker
            # so a crash never takes down a huge queue of futures.
            while pending and len(in_flight) < workers * 2:
                index, attempt = pending.popleft()
                group = [(index, attempt)]
                if batch_units > 1 and attempt == 1:
                    # Greedily extend with consecutive first-attempt
                    # units of the same affinity (specs arrive
                    # workload-major from the engine, so "consecutive"
                    # is enough — no lookahead reordering).
                    affinity = group_key(specs[index])
                    while (pending and len(group) < batch_units
                           and pending[0][1] == 1
                           and group_key(specs[pending[0][0]]) == affinity):
                        group.append(pending.popleft())
                if len(group) == 1:
                    fut = pool.submit(runner, specs[index])
                else:
                    fut = pool.submit(
                        _run_batch, runner, [specs[i] for i, _ in group])
                    OBS.add("dispatch.batches")
                    if on_batch is not None:
                        on_batch(len(group))
                deadline = (None if policy.unit_timeout is None
                            else time.monotonic()
                            + policy.unit_timeout * len(group))
                in_flight[fut] = (group, deadline)
            done, _ = wait(list(in_flight), timeout=0.05,
                           return_when=FIRST_COMPLETED)

            broke = False
            interrupted: list[tuple[int, int]] = []
            for fut in done:
                group, _ = in_flight.pop(fut)
                exc = fut.exception()
                if exc is None:
                    consecutive_breaks = 0
                    if len(group) == 1:
                        [(index, attempt)] = group
                        outcomes = [("ok", fut.result())]
                    else:
                        outcomes = fut.result()
                    for (index, attempt), (status, payload) in zip(
                            group, outcomes):
                        if status == "ok":
                            report.results[index] = payload
                            OBS.add("sweep.runs_done")
                            if on_unit is not None:
                                on_unit(index, report.results[index])
                        elif attempt < policy.max_attempts:
                            # Failed mid-batch: re-enqueued individually
                            # (attempt > 1 units never re-batch).
                            report.retries += 1
                            OBS.add("resilience.retry")
                            time.sleep(backoff_delay(
                                specs[index].key(), attempt, policy))
                            pending.append((index, attempt + 1))
                        else:
                            _fail(index, attempt, str(payload))
                elif isinstance(exc, BrokenProcessPool):
                    # Every in-flight future gets this when any worker
                    # dies; the culprit is unknowable, so all of them
                    # are charged an attempt below.
                    interrupted.extend(group)
                    broke = True
                else:
                    # The future itself failed (a singleton unit error,
                    # or a batch that died outside per-unit isolation,
                    # e.g. an unpicklable result): charge every rider.
                    for index, attempt in group:
                        if attempt < policy.max_attempts:
                            report.retries += 1
                            OBS.add("resilience.retry")
                            time.sleep(
                                backoff_delay(specs[index].key(), attempt,
                                              policy))
                            pending.append((index, attempt + 1))
                        else:
                            _fail(index, attempt,
                                  f"{type(exc).__name__}: {exc}")

            # Hung units: anything still running past its deadline.  A
            # future still *queued* past its deadline (a sibling hogged
            # the worker) is cancelled and re-queued uncharged — only
            # actually-running units count as hangs.
            now = time.monotonic()
            hung = []
            for fut, (group, dl) in list(in_flight.items()):
                if dl is None or now <= dl:
                    continue
                if fut.cancel():
                    in_flight.pop(fut)
                    pending.extendleft(reversed(group))
                else:
                    hung.append(fut)
            if hung:
                for fut in hung:
                    group, _ = in_flight.pop(fut)
                    report.timeouts += len(group)
                    OBS.add("resilience.timeout", len(group))
                    for index, attempt in group:
                        if attempt < policy.max_attempts:
                            report.retries += 1
                            pending.append((index, attempt + 1))
                        else:
                            _fail(index, attempt,
                                  f"unit exceeded {policy.unit_timeout:g}s "
                                  f"wall-clock timeout", timed_out=True)
                broke = True

            if broke:
                # The pool has a dead or wedged worker; charge every unit
                # that was riding it an attempt and start a fresh pool.
                report.pool_breaks += 1
                consecutive_breaks += 1
                OBS.add("resilience.pool_break")
                for group, _ in in_flight.values():
                    interrupted.extend(group)
                in_flight.clear()
                for index, attempt in interrupted:
                    if attempt < policy.max_attempts:
                        pending.append((index, attempt + 1))
                        report.retries += 1
                    else:
                        _fail(index, attempt,
                              "worker pool broke repeatedly under "
                              "this unit")
                _terminate_pool(pool)
                if consecutive_breaks >= policy.max_pool_breaks:
                    OBS.warn(
                        f"sweep: worker pool broke {consecutive_breaks} "
                        f"times in a row; degrading to in-process serial "
                        f"execution (timeouts no longer enforced)")
                    OBS.add("resilience.degraded_serial")
                    report.degraded_serial = True
                    pool = None
                    _run_serial(pending, specs, runner, policy, report,
                                on_unit)
                    return report
                pool = ProcessPoolExecutor(max_workers=workers)
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    return report


# ---- campaign checkpoint journal --------------------------------------------


JOURNAL_VERSION = 1
JOURNAL_NAME = ".campaign.json"


class CampaignJournal:
    """Atomic per-figure checkpoint of one campaign invocation.

    Lives next to the saved artefacts (``<save>/.campaign.json``) and
    maps figure id → status (``done`` / ``failed``) at one fidelity, so
    a re-run of the same command skips completed figures by loading
    their artefacts.  A journal written at a different fidelity is
    discarded wholesale — mixed-fidelity resumes would silently blend
    trace lengths.  Corrupt journals warn and reset; they are an
    optimization, never a source of truth.
    """

    def __init__(self, path: str | Path, fidelity: str):
        self.path = Path(path)
        self.fidelity = fidelity
        self._doc = self._load()

    def _load(self) -> dict:
        try:
            doc = json.loads(self.path.read_text())
        except (FileNotFoundError, OSError):
            return self._fresh()
        except (ValueError, TypeError):
            OBS.warn(f"campaign journal {self.path} is corrupt; "
                     f"starting a fresh campaign")
            return self._fresh()
        if (not isinstance(doc, dict)
                or doc.get("version") != JOURNAL_VERSION
                or doc.get("fidelity") != self.fidelity
                or not isinstance(doc.get("figures"), dict)):
            return self._fresh()
        return doc

    def _fresh(self) -> dict:
        return {"version": JOURNAL_VERSION, "fidelity": self.fidelity,
                "figures": {}}

    # ---- queries -----------------------------------------------------------

    def status(self, figure_id: str) -> dict | None:
        entry = self._doc["figures"].get(figure_id)
        return dict(entry) if entry else None

    def is_done(self, figure_id: str) -> bool:
        entry = self._doc["figures"].get(figure_id)
        return bool(entry) and entry.get("status") == "done"

    def figures(self) -> dict[str, dict]:
        return {k: dict(v) for k, v in self._doc["figures"].items()}

    # ---- updates -----------------------------------------------------------

    def mark(self, figure_id: str, status: str, **info) -> None:
        """Record a figure outcome and persist atomically."""
        self._doc["figures"][figure_id] = {"status": status, **info}
        self._write()

    def clear(self) -> None:
        """Forget all progress (the ``--no-resume`` semantics)."""
        self._doc = self._fresh()
        self._write()

    def _write(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(self._doc, indent=1))
        os.replace(tmp, self.path)
