"""Run-granularity sweep scheduler backed by the persistent result cache.

The engine turns a list of :class:`~repro.sim.spec.RunSpec` units into
:class:`~repro.sim.metrics.RunMetrics`, in order, by:

1. consulting the active :class:`~repro.experiments.cache.ResultCache`
   (if any) for each spec — a hit costs one JSON read instead of a
   simulation;
2. scheduling the misses across worker processes at **run granularity**
   via :func:`repro.experiments.resilience.run_resilient`: 6 systems x N
   workloads saturate ``REPRO_WORKERS`` workers, and a crashed worker,
   hung unit, or transient error costs retries — not the campaign
   (see the resilience module for timeouts, backoff, pool rebuilds, and
   serial degradation);
3. storing every fresh result back into the cache — successes are
   persisted even when sibling units fail terminally
   (:class:`~repro.experiments.resilience.SweepFailure`), so an
   interrupted or partially-failed sweep resumes where it stopped and a
   repeated campaign after a no-op change is near-instant.

Units are submitted individually (timeout/retry granularity demands it)
but in workload order, so a worker draining the queue still sees runs of
mostly the same workload and its memoized cache-filter
(``repro.sim.single.filtered_stream``) stays warm.

Cache selection, in priority order: an explicit :func:`configure` call
(the CLIs' ``--cache-dir``/``--no-cache``/``--refresh`` flags), else the
``REPRO_CACHE_DIR`` environment variable, else no persistent cache.
:func:`configure` also wires the :mod:`repro.sim.stream_store` — the
persistent miss-stream store that lets *worker processes* skip
re-filtering traces the machine has already filtered — defaulting its
directory to ``<cache-dir>/streams`` and exporting the selection via
environment variables so spawned workers inherit it.  ``--no-cache``
disables both; ``--refresh`` invalidates both.  Per-phase wall times are
accumulated in :func:`sweep_seconds` and land in the campaign manifest
next to the cache and stream-store hit ratios.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Sequence

from repro.experiments.cache import ResultCache
from repro.experiments.resilience import (
    RetryPolicy,
    SweepFailure,
    chaos_probe,
    run_resilient,
)
from repro.obs.registry import OBS
from repro.sim import stream_store
from repro.sim.metrics import RunMetrics
from repro.sim.spec import RunSpec, run

__all__ = [
    "DEFAULT_CACHE_DIR",
    "active_cache",
    "cache_stats",
    "configure",
    "configure_resilience",
    "execute",
    "reset",
    "resilience_stats",
    "run_cached",
    "sweep_seconds",
    "sweep_workers",
]

#: Where the experiment CLIs cache results unless told otherwise.
DEFAULT_CACHE_DIR = Path("results") / ".cache"

_UNSET = object()
#: Explicit configuration: a ResultCache, None (= caching disabled), or
#: _UNSET (= fall back to the REPRO_CACHE_DIR environment variable).
_cache_override: object = _UNSET
_env_cache: ResultCache | None = None
_sweep_seconds: dict[str, float] = {}
#: Explicit retry/timeout policy (None = RetryPolicy.from_env()).
_retry_policy: RetryPolicy | None = None
#: Accumulated resilience tallies across execute() calls (manifest).
_resilience: dict = {}
#: Environment values displaced by configure()'s stream-store export,
#: keyed by variable name; reset() restores them.
_stream_env_saved: dict[str, str | None] = {}


def sweep_workers() -> int:
    """Worker processes for sweeps (``REPRO_WORKERS`` env, default 1)."""
    raw = os.environ.get("REPRO_WORKERS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        OBS.warn(f"REPRO_WORKERS={raw!r} is not an integer; "
                 f"defaulting to 1 worker")
        return 1


# ---- cache wiring ----------------------------------------------------------


def _export_env(name: str, value: str | None) -> None:
    """Set (or clear) an environment variable, remembering the original.

    Worker processes inherit the environment, so this is how the parent's
    cache flags reach ``filtered_stream`` in every worker; the first
    displaced value per name is what :func:`reset` restores.
    """
    if name not in _stream_env_saved:
        _stream_env_saved[name] = os.environ.get(name)
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = value


def configure(directory: str | Path | None, *, refresh: bool = False,
              max_entries: int | None = None) -> ResultCache | None:
    """Select the process-wide result cache (and the miss-stream store).

    ``directory=None`` disables persistent caching entirely (the
    ``--no-cache`` semantics); otherwise a fresh :class:`ResultCache`
    (with fresh stats) is installed.  Returns the active cache.

    The :mod:`repro.sim.stream_store` follows along: disabled with the
    cache, otherwise rooted at ``REPRO_STREAM_STORE_DIR`` when that is
    set (the empty string keeps it disabled) or ``<directory>/streams``,
    with ``refresh`` carrying over.  The selection is exported through
    the environment so sweep worker processes make the same choice.
    """
    global _cache_override
    if directory is None:
        _cache_override = None
        stream_store.configure(None)
        _export_env(stream_store.ENV_DIR, "")
        _export_env(stream_store.ENV_REFRESH, None)
    else:
        _cache_override = ResultCache(directory, refresh=refresh,
                                      max_entries=max_entries)
        env = os.environ.get(stream_store.ENV_DIR)
        if env == "":
            stream_store.configure(None)
        else:
            stream_dir = Path(env) if env else Path(directory) / "streams"
            stream_store.configure(stream_dir, refresh=refresh)
            _export_env(stream_store.ENV_DIR, str(stream_dir))
            _export_env(stream_store.ENV_REFRESH, "1" if refresh else None)
    return _cache_override


def configure_resilience(policy: RetryPolicy | None) -> None:
    """Select the retry/timeout policy for subsequent sweeps.

    ``None`` reverts to :meth:`RetryPolicy.from_env` (the
    ``REPRO_UNIT_TIMEOUT`` / ``REPRO_MAX_ATTEMPTS`` variables).
    """
    global _retry_policy
    _retry_policy = policy


def active_retry_policy() -> RetryPolicy:
    """The policy :func:`execute` will apply to its cache misses."""
    return _retry_policy if _retry_policy is not None \
        else RetryPolicy.from_env()


def resilience_stats() -> dict | None:
    """Manifest-ready resilience tallies (``None`` = nothing simulated)."""
    if not _resilience:
        return None
    return {
        "units": _resilience.get("units", 0),
        "retries": _resilience.get("retries", 0),
        "timeouts": _resilience.get("timeouts", 0),
        "pool_breaks": _resilience.get("pool_breaks", 0),
        "degraded_serial": _resilience.get("degraded_serial", False),
        "failed_units": list(_resilience.get("failed_units", [])),
    }


def reset() -> None:
    """Drop explicit configuration, phase timings, and resilience state.

    The next :func:`active_cache` call falls back to ``REPRO_CACHE_DIR``
    (or no cache).  The CLIs call this on exit so embedded invocations
    (tests, notebooks) don't leak one command's cache into the next.
    """
    global _cache_override, _retry_policy
    _cache_override = _UNSET
    _retry_policy = None
    _sweep_seconds.clear()
    _resilience.clear()
    for name, value in _stream_env_saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
    _stream_env_saved.clear()
    stream_store.reset()


def active_cache() -> ResultCache | None:
    """The cache the engine will consult, or ``None``."""
    global _env_cache
    if _cache_override is not _UNSET:
        return _cache_override  # type: ignore[return-value]
    env = os.environ.get("REPRO_CACHE_DIR")
    if not env:
        return None
    if _env_cache is None or Path(env) != _env_cache.directory:
        _env_cache = ResultCache(env)
    return _env_cache


def cache_stats() -> dict | None:
    """Manifest-ready stats of the active cache (``None`` = no cache).

    When the miss-stream store is also active its tallies ride along
    under the ``"streams"`` key — the manifest's cache block then
    reports the stream-store hit ratio next to the run-cache hit ratio.
    """
    cache = active_cache()
    if cache is None:
        return None
    stats = {"directory": str(cache.directory), **cache.stats.to_dict()}
    streams = stream_store.stats_dict()
    if streams is not None:
        stats["streams"] = streams
    return stats


def sweep_seconds() -> dict[str, float]:
    """Wall time per engine phase (e.g. ``sweep.single``) this process."""
    return dict(_sweep_seconds)


# ---- execution -------------------------------------------------------------


_warned_slow_path = False


def _execute_spec(spec: RunSpec) -> RunMetrics:
    """Top-level (picklable) worker entry: simulate one run unit.

    The chaos probe makes this the fault site harness tests exercise
    (worker crash / hung unit / transient error); it is a no-op unless
    ``REPRO_CHAOS_DIR`` is set.

    ``REPRO_FAST_PATH=0`` (inherited by worker processes) downgrades
    every default-valued spec to the reference replay interpreter *and*
    the reference cache-filter loop inside :func:`repro.sim.run`; the
    results are bit-identical, only slower, so cache identity is
    unaffected.  One warning per process makes the mode visible in
    campaign logs.
    """
    global _warned_slow_path
    if os.environ.get("REPRO_FAST_PATH") == "0" and not _warned_slow_path:
        _warned_slow_path = True
        OBS.warn("REPRO_FAST_PATH=0: fast paths disabled; runs use the "
                 "reference replay interpreter and cache-filter loop "
                 "(bit-identical, several times slower)")
    chaos_probe()
    return run(spec)


def _effective_workers(n_units: int) -> int:
    """Fan-out actually used: requested workers, capped by CPUs and work.

    Worker processes cannot share the in-process memoization
    (``filtered_stream``, profiling), so oversubscribing the machine
    only duplicates that work — ``REPRO_WORKERS=4`` on a single-CPU box
    must degrade to the (faster) serial path, not slow the sweep down.
    ``REPRO_OVERSUBSCRIBE=1`` lifts the CPU cap (resilience tests need
    real worker processes even on one-CPU machines).
    """
    workers = sweep_workers()
    if os.environ.get("REPRO_OVERSUBSCRIBE") == "1":
        return max(1, min(workers, n_units))
    cpus = os.cpu_count() or 1
    if workers > cpus:
        OBS.warn(f"REPRO_WORKERS={workers} exceeds the {cpus} available "
                 f"CPU(s); capping at {cpus}")
    return max(1, min(workers, cpus, n_units))


def _tally(report) -> None:
    """Fold one ExecutionReport into the process-wide manifest stats."""
    _resilience["units"] = (_resilience.get("units", 0)
                            + len(report.results))
    _resilience["retries"] = _resilience.get("retries", 0) + report.retries
    _resilience["timeouts"] = (_resilience.get("timeouts", 0)
                               + report.timeouts)
    _resilience["pool_breaks"] = (_resilience.get("pool_breaks", 0)
                                  + report.pool_breaks)
    _resilience["degraded_serial"] = (_resilience.get("degraded_serial",
                                                      False)
                                      or report.degraded_serial)
    _resilience.setdefault("failed_units", []).extend(
        f.to_dict() for f in report.failures)


def execute(specs: Sequence[RunSpec], *,
            phase: str | None = None) -> list[RunMetrics]:
    """Resolve every spec, via cache or simulation; preserves order.

    Cache misses run through :func:`repro.experiments.resilience
    .run_resilient` — per-unit retries with backoff, wall-clock
    timeouts, worker-pool rebuilds, and serial degradation after
    repeated breaks.  Every successful unit is cached *before* terminal
    failures surface, so a partially-failed sweep leaves its survivors
    behind and a retried campaign only re-simulates the losers.

    Args:
        phase: Label under which the call's wall time is accumulated
            (shows up in the campaign manifest's ``sweep_seconds``).

    Raises:
        SweepFailure: One or more units failed terminally (after all
            retries).  The exception lists them; cached siblings are
            unaffected.
    """
    t0 = time.perf_counter()
    cache = active_cache()
    results: list[RunMetrics | None] = [None] * len(specs)
    missing: list[int] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            results[i] = hit
        else:
            missing.append(i)

    if missing:
        todo = [specs[i] for i in missing]
        workers = _effective_workers(len(todo))
        report = run_resilient(todo, workers=workers,
                               policy=active_retry_policy(),
                               runner=_execute_spec)
        _tally(report)
        for i, metrics in zip(missing, report.results):
            results[i] = metrics
            if metrics is not None and cache is not None:
                cache.put(specs[i], metrics)
        if phase is not None:
            _sweep_seconds[phase] = (_sweep_seconds.get(phase, 0.0)
                                     + time.perf_counter() - t0)
        if report.failures:
            raise SweepFailure(report.failures, phase=phase)
        return results  # type: ignore[return-value]

    if phase is not None:
        _sweep_seconds[phase] = (_sweep_seconds.get(phase, 0.0)
                                 + time.perf_counter() - t0)
    return results  # type: ignore[return-value]


def run_cached(spec: RunSpec) -> RunMetrics:
    """One run through the cache — the single-run CLI's entry point."""
    return execute([spec])[0]
