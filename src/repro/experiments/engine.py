"""Run-granularity sweep scheduler backed by the persistent result cache.

The engine turns a list of :class:`~repro.sim.spec.RunSpec` units into
:class:`~repro.sim.metrics.RunMetrics`, in order, by:

1. consulting the active :class:`~repro.experiments.cache.ResultCache`
   (if any) for each spec — a hit costs one JSON read instead of a
   simulation;
2. scheduling the misses across a ``ProcessPoolExecutor`` at **run
   granularity**: 6 systems x N workloads saturate ``REPRO_WORKERS``
   workers even when there are more workers than workloads (the old
   scheduler shipped one whole per-workload row per worker, capping
   parallelism at the row count and leaving stragglers at the tail);
3. storing every fresh result back into the cache, so an interrupted
   sweep resumes where it stopped and a repeated campaign after a no-op
   change is near-instant.

Units are chunked in workload order before fan-out, so each worker still
handles contiguous specs of mostly the same workload and its memoized
cache-filter (``repro.sim.single.filtered_stream``) stays warm.

Cache selection, in priority order: an explicit :func:`configure` call
(the CLIs' ``--cache-dir``/``--no-cache``/``--refresh`` flags), else the
``REPRO_CACHE_DIR`` environment variable, else no persistent cache.
Per-phase wall times are accumulated in :func:`sweep_seconds` and land in
the campaign manifest next to the cache hit ratio.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Sequence

from repro.experiments.cache import ResultCache
from repro.obs.registry import OBS
from repro.sim.metrics import RunMetrics
from repro.sim.spec import RunSpec, run

__all__ = [
    "DEFAULT_CACHE_DIR",
    "active_cache",
    "cache_stats",
    "configure",
    "execute",
    "reset",
    "run_cached",
    "sweep_seconds",
    "sweep_workers",
]

#: Where the experiment CLIs cache results unless told otherwise.
DEFAULT_CACHE_DIR = Path("results") / ".cache"

_UNSET = object()
#: Explicit configuration: a ResultCache, None (= caching disabled), or
#: _UNSET (= fall back to the REPRO_CACHE_DIR environment variable).
_cache_override: object = _UNSET
_env_cache: ResultCache | None = None
_sweep_seconds: dict[str, float] = {}


def sweep_workers() -> int:
    """Worker processes for sweeps (``REPRO_WORKERS`` env, default 1)."""
    raw = os.environ.get("REPRO_WORKERS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        OBS.warn(f"REPRO_WORKERS={raw!r} is not an integer; "
                 f"defaulting to 1 worker")
        return 1


# ---- cache wiring ----------------------------------------------------------


def configure(directory: str | Path | None, *, refresh: bool = False,
              max_entries: int | None = None) -> ResultCache | None:
    """Select the process-wide result cache.

    ``directory=None`` disables persistent caching entirely (the
    ``--no-cache`` semantics); otherwise a fresh :class:`ResultCache`
    (with fresh stats) is installed.  Returns the active cache.
    """
    global _cache_override
    if directory is None:
        _cache_override = None
    else:
        _cache_override = ResultCache(directory, refresh=refresh,
                                      max_entries=max_entries)
    return _cache_override


def reset() -> None:
    """Drop explicit configuration and phase timings.

    The next :func:`active_cache` call falls back to ``REPRO_CACHE_DIR``
    (or no cache).  The CLIs call this on exit so embedded invocations
    (tests, notebooks) don't leak one command's cache into the next.
    """
    global _cache_override
    _cache_override = _UNSET
    _sweep_seconds.clear()


def active_cache() -> ResultCache | None:
    """The cache the engine will consult, or ``None``."""
    global _env_cache
    if _cache_override is not _UNSET:
        return _cache_override  # type: ignore[return-value]
    env = os.environ.get("REPRO_CACHE_DIR")
    if not env:
        return None
    if _env_cache is None or Path(env) != _env_cache.directory:
        _env_cache = ResultCache(env)
    return _env_cache


def cache_stats() -> dict | None:
    """Manifest-ready stats of the active cache (``None`` = no cache)."""
    cache = active_cache()
    if cache is None:
        return None
    return {"directory": str(cache.directory), **cache.stats.to_dict()}


def sweep_seconds() -> dict[str, float]:
    """Wall time per engine phase (e.g. ``sweep.single``) this process."""
    return dict(_sweep_seconds)


# ---- execution -------------------------------------------------------------


def _execute_spec(spec: RunSpec) -> RunMetrics:
    """Top-level (picklable) worker entry: simulate one run unit."""
    return run(spec)


def _effective_workers(n_units: int) -> int:
    """Fan-out actually used: requested workers, capped by CPUs and work.

    Worker processes cannot share the in-process memoization
    (``filtered_stream``, profiling), so oversubscribing the machine
    only duplicates that work — ``REPRO_WORKERS=4`` on a single-CPU box
    must degrade to the (faster) serial path, not slow the sweep down.
    """
    workers = sweep_workers()
    cpus = os.cpu_count() or 1
    if workers > cpus:
        OBS.warn(f"REPRO_WORKERS={workers} exceeds the {cpus} available "
                 f"CPU(s); capping at {cpus}")
    return max(1, min(workers, cpus, n_units))


def execute(specs: Sequence[RunSpec], *,
            phase: str | None = None) -> list[RunMetrics]:
    """Resolve every spec, via cache or simulation; preserves order.

    Args:
        phase: Label under which the call's wall time is accumulated
            (shows up in the campaign manifest's ``sweep_seconds``).
    """
    t0 = time.perf_counter()
    cache = active_cache()
    results: list[RunMetrics | None] = [None] * len(specs)
    missing: list[int] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            results[i] = hit
        else:
            missing.append(i)

    if missing:
        todo = [specs[i] for i in missing]
        workers = _effective_workers(len(todo))
        if workers > 1:
            # Chunked map: small enough chunks to load-balance across
            # workers, big enough that consecutive same-workload specs
            # stay in one process (warm filtered_stream memoization).
            chunk = max(1, -(-len(todo) // (workers * 4)))
            with ProcessPoolExecutor(max_workers=workers) as ex:
                computed = list(ex.map(_execute_spec, todo, chunksize=chunk))
            OBS.add("sweep.runs_done", len(computed))
        else:
            computed = []
            for spec in todo:
                with OBS.span(f"sweep.unit.{spec.workload}.{spec.policy}",
                              system=spec.config):
                    computed.append(run(spec))
                OBS.add("sweep.runs_done")
        for i, metrics in zip(missing, computed):
            results[i] = metrics
            if cache is not None:
                cache.put(specs[i], metrics)

    if phase is not None:
        _sweep_seconds[phase] = (_sweep_seconds.get(phase, 0.0)
                                 + time.perf_counter() - t0)
    return results  # type: ignore[return-value]


def run_cached(spec: RunSpec) -> RunMetrics:
    """One run through the cache — the single-run CLI's entry point."""
    return execute([spec])[0]
