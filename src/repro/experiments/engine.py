"""Run-granularity sweep scheduler backed by the persistent result cache.

The engine turns a list of :class:`~repro.sim.spec.RunSpec` units into
:class:`~repro.sim.metrics.RunMetrics`, in order, by:

1. consulting the active :class:`~repro.experiments.cache.ResultCache`
   (if any) for each spec — a hit costs one JSON read instead of a
   simulation;
2. scheduling the misses across worker processes at **run granularity**
   via :func:`repro.experiments.resilience.run_resilient`: 6 systems x N
   workloads saturate ``REPRO_WORKERS`` workers, and a crashed worker,
   hung unit, or transient error costs retries — not the campaign
   (see the resilience module for timeouts, backoff, pool rebuilds, and
   serial degradation);
3. storing every fresh result back into the cache — successes are
   persisted even when sibling units fail terminally
   (:class:`~repro.experiments.resilience.SweepFailure`), so an
   interrupted or partially-failed sweep resumes where it stopped and a
   repeated campaign after a no-op change is near-instant.

Units are enqueued in workload order and — when ``REPRO_BATCH_UNITS``
(or the adaptive default) says so — dispatched as workload-major
*batches*: several first-attempt units of one workload share a single
future, amortizing pickle/IPC and keeping each worker's resident
caches (``filtered_stream`` memo, mmap stream store, replay decode
tables) hot.  Retried units always travel alone, so timeout/retry
granularity is unchanged where it matters; a failed unit inside a
batch is re-enqueued individually while its siblings' results stand.

Cache selection, in priority order: an explicit :func:`configure` call
(the CLIs' ``--cache-dir``/``--no-cache``/``--refresh`` flags), else the
``REPRO_CACHE_DIR`` environment variable, else no persistent cache.
:func:`configure` also wires the :mod:`repro.sim.stream_store` — the
persistent miss-stream store that lets *worker processes* skip
re-filtering traces the machine has already filtered — defaulting its
directory to ``<cache-dir>/streams`` and exporting the selection via
environment variables so spawned workers inherit it.  ``--no-cache``
disables both; ``--refresh`` invalidates both.  Per-phase wall times are
accumulated in :func:`sweep_seconds` and land in the campaign manifest
next to the cache and stream-store hit ratios.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.experiments.cache import ResultCache
from repro.experiments.resilience import (
    RetryPolicy,
    SweepFailure,
    chaos_probe,
    current_batch_size,
    run_resilient,
)
from repro.obs import telemetry as obstel
from repro.obs.registry import ENV_QUIET, OBS
from repro.sim import stream_store
from repro.sim.metrics import RunMetrics
from repro.sim.spec import RunSpec, run

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ENV_BATCH",
    "active_cache",
    "add_observer",
    "cache_stats",
    "campaign_telemetry",
    "configure",
    "configure_dispatch",
    "configure_profile",
    "configure_resilience",
    "configure_telemetry",
    "dashboard_stats",
    "dispatch_stats",
    "execute",
    "profile_stats",
    "remove_observer",
    "reset",
    "resilience_stats",
    "run_cached",
    "sweep_seconds",
    "sweep_workers",
    "telemetry_stats",
    "unit_telemetry_records",
]

#: Where the experiment CLIs cache results unless told otherwise.
DEFAULT_CACHE_DIR = Path("results") / ".cache"

#: Batched-dispatch knob (inherited by worker processes for telemetry):
#: unset / "0" / "auto" = adaptive, "1" = unit-per-future, N = literal.
ENV_BATCH = "REPRO_BATCH_UNITS"

#: Adaptive batching aims for futures of about this much work — long
#: enough to amortize pickle/IPC and warm worker caches, short enough
#: that retry/timeout granularity stays useful.
TARGET_BATCH_SECONDS = 2.0
#: Batch size used before any telemetry exists to estimate unit cost.
DEFAULT_BATCH_UNITS = 4
#: Never batch wider than this, whatever the cost estimate says.
MAX_BATCH_UNITS = 16

_UNSET = object()
#: Explicit configuration: a ResultCache, None (= caching disabled), or
#: _UNSET (= fall back to the REPRO_CACHE_DIR environment variable).
_cache_override: object = _UNSET
_env_cache: ResultCache | None = None
_sweep_seconds: dict[str, float] = {}
#: Explicit retry/timeout policy (None = RetryPolicy.from_env()).
_retry_policy: RetryPolicy | None = None
#: Accumulated resilience tallies across execute() calls (manifest).
_resilience: dict = {}
#: Environment values displaced by configure()'s stream-store export,
#: keyed by variable name; reset() restores them.
_stream_env_saved: dict[str, str | None] = {}
#: Campaign telemetry fold (see repro.obs.telemetry); populated only
#: while REPRO_TELEMETRY=1 (configure_telemetry / the experiments CLI).
_campaign = obstel.CampaignTelemetry()
_unit_records: list[obstel.UnitTelemetry] = []
#: Merged cProfile rows: (file, line, func) -> [cc, nc, tt, ct].
_profile: dict[tuple, list] = {}
#: Live observers of execute() progress (the --dashboard reporter).
_observers: list[Callable[[dict], None]] = []
#: Accumulated dispatch tallies across execute() calls (manifest).
_dispatch: dict = {}


def sweep_workers() -> int:
    """Worker processes for sweeps (``REPRO_WORKERS`` env, default 1)."""
    raw = os.environ.get("REPRO_WORKERS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        OBS.warn(f"REPRO_WORKERS={raw!r} is not an integer; "
                 f"defaulting to 1 worker")
        return 1


# ---- cache wiring ----------------------------------------------------------


def _export_env(name: str, value: str | None) -> None:
    """Set (or clear) an environment variable, remembering the original.

    Worker processes inherit the environment, so this is how the parent's
    cache flags reach ``filtered_stream`` in every worker; the first
    displaced value per name is what :func:`reset` restores.
    """
    if name not in _stream_env_saved:
        _stream_env_saved[name] = os.environ.get(name)
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = value


def configure(directory: str | Path | None, *, refresh: bool = False,
              max_entries: int | None = None) -> ResultCache | None:
    """Select the process-wide result cache (and the miss-stream store).

    ``directory=None`` disables persistent caching entirely (the
    ``--no-cache`` semantics); otherwise a fresh :class:`ResultCache`
    (with fresh stats) is installed.  Returns the active cache.

    The :mod:`repro.sim.stream_store` follows along: disabled with the
    cache, otherwise rooted at ``REPRO_STREAM_STORE_DIR`` when that is
    set (the empty string keeps it disabled) or ``<directory>/streams``,
    with ``refresh`` carrying over.  The selection is exported through
    the environment so sweep worker processes make the same choice.
    """
    global _cache_override
    if directory is None:
        _cache_override = None
        stream_store.configure(None)
        _export_env(stream_store.ENV_DIR, "")
        _export_env(stream_store.ENV_REFRESH, None)
    else:
        _cache_override = ResultCache(directory, refresh=refresh,
                                      max_entries=max_entries)
        env = os.environ.get(stream_store.ENV_DIR)
        if env == "":
            stream_store.configure(None)
        else:
            stream_dir = Path(env) if env else Path(directory) / "streams"
            stream_store.configure(stream_dir, refresh=refresh)
            _export_env(stream_store.ENV_DIR, str(stream_dir))
            _export_env(stream_store.ENV_REFRESH, "1" if refresh else None)
    return _cache_override


def configure_resilience(policy: RetryPolicy | None) -> None:
    """Select the retry/timeout policy for subsequent sweeps.

    ``None`` reverts to :meth:`RetryPolicy.from_env` (the
    ``REPRO_UNIT_TIMEOUT`` / ``REPRO_MAX_ATTEMPTS`` variables).
    """
    global _retry_policy
    _retry_policy = policy


def active_retry_policy() -> RetryPolicy:
    """The policy :func:`execute` will apply to its cache misses."""
    return _retry_policy if _retry_policy is not None \
        else RetryPolicy.from_env()


def configure_dispatch(batch_units: int | None) -> None:
    """Select the batched-dispatch width for subsequent sweeps.

    ``None`` reverts to the environment/adaptive default; ``1`` forces
    unit-per-future; ``N > 1`` fixes the width.  Exported through
    ``REPRO_BATCH_UNITS`` so worker telemetry sees the same setting;
    :func:`reset` restores the caller's environment.
    """
    _export_env(ENV_BATCH,
                None if batch_units is None else str(int(batch_units)))


def _auto_batch_units(n_units: int, workers: int) -> int:
    """Adaptive batch width for one execute() wave.

    Serial sweeps and sweeps that cannot fill every worker twice gain
    nothing from batching.  Otherwise the width targets
    :data:`TARGET_BATCH_SECONDS` of work per future using the campaign
    telemetry's mean unit wall time when available, clamped so every
    worker still gets work and retry granularity stays sane.
    """
    if workers <= 1 or n_units <= workers:
        return 1
    size = DEFAULT_BATCH_UNITS
    if _campaign.units and _campaign.wall_s > 0:
        mean_s = _campaign.wall_s / _campaign.units
        if mean_s > 0:
            size = max(1, int(TARGET_BATCH_SECONDS / mean_s))
    fair_share = -(-n_units // workers)  # ceil: keep every worker busy
    return max(1, min(size, MAX_BATCH_UNITS, fair_share))


def batch_units_for(n_units: int, workers: int) -> int:
    """The dispatch width execute() will use (``REPRO_BATCH_UNITS``)."""
    raw = os.environ.get(ENV_BATCH)
    if raw in (None, "", "0", "auto"):
        return _auto_batch_units(n_units, workers)
    try:
        return max(1, min(int(raw), MAX_BATCH_UNITS))
    except ValueError:
        OBS.warn(f"{ENV_BATCH}={raw!r} is not an integer; "
                 f"using adaptive batching")
        return _auto_batch_units(n_units, workers)


def dispatch_stats() -> dict | None:
    """Manifest-ready dispatch tallies (``None`` = nothing batched)."""
    if not _dispatch:
        return None
    return {
        "batches": _dispatch.get("batches", 0),
        "batched_units": _dispatch.get("batched_units", 0),
        "max_batch_units": _dispatch.get("max_batch_units", 0),
    }


def resilience_stats() -> dict | None:
    """Manifest-ready resilience tallies (``None`` = nothing simulated)."""
    if not _resilience:
        return None
    return {
        "units": _resilience.get("units", 0),
        "retries": _resilience.get("retries", 0),
        "timeouts": _resilience.get("timeouts", 0),
        "pool_breaks": _resilience.get("pool_breaks", 0),
        "degraded_serial": _resilience.get("degraded_serial", False),
        "failed_units": list(_resilience.get("failed_units", [])),
    }


# ---- telemetry wiring ------------------------------------------------------


def configure_telemetry(enabled: bool) -> None:
    """Turn per-unit telemetry capture on or off for subsequent sweeps.

    Exported via ``REPRO_TELEMETRY`` so worker processes inherit the
    choice; :func:`reset` restores the caller's environment.  The
    experiments CLI enables this by default (``--no-telemetry`` opts
    out); direct library use stays zero-cost unless asked.
    """
    _export_env(obstel.ENV_TELEMETRY, "1" if enabled else None)


def configure_profile(enabled: bool) -> None:
    """Wrap each simulated unit in cProfile (the ``--profile`` flag).

    Per-unit ``pstats`` tables ship back with the telemetry and are
    merged into :func:`profile_stats`.  Exported via ``REPRO_PROFILE``
    for worker processes; restored by :func:`reset`.
    """
    _export_env(obstel.ENV_PROFILE, "1" if enabled else None)


def telemetry_stats() -> dict | None:
    """Manifest-ready campaign telemetry (``None`` = nothing captured)."""
    if _campaign.units == 0 and _campaign.cached_units == 0:
        return None
    return _campaign.to_dict()


def campaign_telemetry() -> obstel.CampaignTelemetry:
    """The live campaign aggregate (empty unless telemetry is on)."""
    return _campaign


def unit_telemetry_records() -> list[obstel.UnitTelemetry]:
    """Per-unit snapshots folded so far, in completion order."""
    return list(_unit_records)


def profile_stats(top: int = 50) -> list[dict] | None:
    """Merged cProfile hotspots across units, by cumulative time."""
    if not _profile:
        return None
    ranked = sorted(_profile.items(), key=lambda kv: -kv[1][3])[:top]
    return [
        {"file": f, "line": line, "func": func, "primcalls": cc,
         "ncalls": nc, "tottime_s": round(tt, 6), "cumtime_s": round(ct, 6)}
        for (f, line, func), (cc, nc, tt, ct) in ranked
    ]


def dashboard_stats() -> dict:
    """Live stats bundle for the ``--dashboard`` reporter."""
    return {
        "cache": cache_stats(),
        "streams": stream_store.stats_dict(),
        "resilience": resilience_stats(),
        "hot_spans": _campaign.hot_spans(3),
        "telemetry_units": _campaign.units,
        "wall_s": round(_campaign.wall_s, 3),
    }


def add_observer(fn: Callable[[dict], None]) -> None:
    """Subscribe to execute() progress events.

    Events are dicts: ``{"kind": "phase_begin", "phase", "total",
    "cached"}``, ``{"kind": "unit_done", "phase", "label", "ok"}``,
    ``{"kind": "phase_end", "phase"}``.  Observer exceptions propagate —
    they run in the campaign's parent process.
    """
    _observers.append(fn)


def remove_observer(fn: Callable[[dict], None]) -> None:
    if fn in _observers:
        _observers.remove(fn)


def _notify(event: dict) -> None:
    for fn in _observers:
        fn(event)


def _fold_unit(metrics: RunMetrics | None) -> None:
    """Parent-side fold of one terminal unit outcome.

    Pops the telemetry/profile payloads off ``metrics.meta`` *before*
    the result reaches the persistent cache, so cache artefacts stay
    clean and cache hits never contribute stale telemetry.  Warnings
    raised in (quiet) workers are reprinted here, once per distinct key
    per campaign, via the parent registry's own warn-once memory.
    """
    if metrics is None:
        _campaign.failed_units += 1
        return
    ut_doc = metrics.meta.pop("unit_telemetry", None)
    if ut_doc is not None:
        ut = obstel.UnitTelemetry.from_dict(ut_doc)
        _unit_records.append(ut)
        _campaign.add_unit(ut)
        for key, message in ut.warnings.items():
            OBS.warn(message, key=key, force=True)
    rows = metrics.meta.pop("unit_profile", None)
    if rows:
        for f, line, func, cc, nc, tt, ct in rows:
            agg = _profile.setdefault((f, line, func), [0, 0, 0.0, 0.0])
            agg[0] += cc
            agg[1] += nc
            agg[2] += tt
            agg[3] += ct


def reset() -> None:
    """Drop explicit configuration, phase timings, and resilience state.

    The next :func:`active_cache` call falls back to ``REPRO_CACHE_DIR``
    (or no cache).  The CLIs call this on exit so embedded invocations
    (tests, notebooks) don't leak one command's cache into the next.
    """
    global _cache_override, _retry_policy, _campaign
    _cache_override = _UNSET
    _retry_policy = None
    _sweep_seconds.clear()
    _resilience.clear()
    _dispatch.clear()
    _campaign = obstel.CampaignTelemetry()
    _unit_records.clear()
    _profile.clear()
    _observers.clear()
    for name, value in _stream_env_saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
    _stream_env_saved.clear()
    stream_store.reset()


def active_cache() -> ResultCache | None:
    """The cache the engine will consult, or ``None``."""
    global _env_cache
    if _cache_override is not _UNSET:
        return _cache_override  # type: ignore[return-value]
    env = os.environ.get("REPRO_CACHE_DIR")
    if not env:
        return None
    if _env_cache is None or Path(env) != _env_cache.directory:
        _env_cache = ResultCache(env)
    return _env_cache


def cache_stats() -> dict | None:
    """Manifest-ready stats of the active cache (``None`` = no cache).

    When the miss-stream store is also active its tallies ride along
    under the ``"streams"`` key — the manifest's cache block then
    reports the stream-store hit ratio next to the run-cache hit ratio.
    """
    cache = active_cache()
    if cache is None:
        return None
    stats = {"directory": str(cache.directory), **cache.stats.to_dict()}
    streams = stream_store.stats_dict()
    if streams is not None:
        stats["streams"] = streams
    return stats


def sweep_seconds() -> dict[str, float]:
    """Wall time per engine phase (e.g. ``sweep.single``) this process."""
    return dict(_sweep_seconds)


# ---- execution -------------------------------------------------------------


_warned_slow_path = False


def _execute_spec(spec: RunSpec) -> RunMetrics:
    """Top-level (picklable) worker entry: simulate one run unit.

    The chaos probe makes this the fault site harness tests exercise
    (worker crash / hung unit / transient error); it is a no-op unless
    ``REPRO_CHAOS_DIR`` is set.

    ``REPRO_FAST_PATH=0`` (inherited by worker processes) downgrades
    every default-valued spec to the reference replay interpreter *and*
    the reference cache-filter loop inside :func:`repro.sim.run`; the
    results are bit-identical, only slower, so cache identity is
    unaffected.  One warning per process makes the mode visible in
    campaign logs.
    """
    chaos_probe()
    if not obstel.capture_enabled():
        _warn_if_slow_path()
        return _run_unit(spec)
    cap = obstel.begin_unit()
    try:
        # Inside the capture on purpose: a quiet worker's warning is
        # then shipped back in UnitTelemetry and reprinted (once) by
        # the parent's _fold_unit; likewise the dispatch counters land
        # in this unit's telemetry delta and fold campaign-wide.
        bs = current_batch_size()
        if bs > 1:
            OBS.add("dispatch.batched_units")
            OBS.add("dispatch.batch_size", bs)
        _warn_if_slow_path()
        metrics = _run_unit(spec)
    except BaseException:
        obstel.abort_unit(cap)
        raise
    ut = obstel.end_unit(cap, label=spec.describe(), meta=metrics.meta)
    metrics.meta["unit_telemetry"] = ut.to_dict()
    return metrics


def _warn_if_slow_path() -> None:
    global _warned_slow_path
    if os.environ.get("REPRO_FAST_PATH") == "0" and not _warned_slow_path:
        _warned_slow_path = True
        OBS.warn("REPRO_FAST_PATH=0: fast paths disabled; runs use the "
                 "reference replay interpreter and cache-filter loop "
                 "(bit-identical, several times slower)",
                 key="slow-path")


def _run_unit(spec: RunSpec) -> RunMetrics:
    """Simulate one unit, optionally under cProfile (``REPRO_PROFILE``).

    The per-unit ``pstats`` table rides back in ``meta["unit_profile"]``
    as picklable rows trimmed to the top entries by cumulative time;
    the engine merges them across units into :func:`profile_stats`.
    """
    if os.environ.get(obstel.ENV_PROFILE) != "1":
        return run(spec)
    import cProfile
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        metrics = run(spec)
    finally:
        prof.disable()
    stats = pstats.Stats(prof).stats  # (file, line, func) -> tuple
    ranked = sorted(stats.items(), key=lambda kv: -kv[1][3])[:200]
    metrics.meta["unit_profile"] = [
        [f, line, func, cc, nc, tt, ct]
        for (f, line, func), (cc, nc, tt, ct, _callers) in ranked
    ]
    return metrics


def _effective_workers(n_units: int) -> int:
    """Fan-out actually used: requested workers, capped by CPUs and work.

    Worker processes cannot share the in-process memoization
    (``filtered_stream``, profiling), so oversubscribing the machine
    only duplicates that work — ``REPRO_WORKERS=4`` on a single-CPU box
    must degrade to the (faster) serial path, not slow the sweep down.
    ``REPRO_OVERSUBSCRIBE=1`` lifts the CPU cap (resilience tests need
    real worker processes even on one-CPU machines).
    """
    workers = sweep_workers()
    if os.environ.get("REPRO_OVERSUBSCRIBE") == "1":
        return max(1, min(workers, n_units))
    cpus = os.cpu_count() or 1
    if workers > cpus:
        OBS.warn(f"REPRO_WORKERS={workers} exceeds the {cpus} available "
                 f"CPU(s); capping at {cpus}")
    return max(1, min(workers, cpus, n_units))


def _tally(report) -> None:
    """Fold one ExecutionReport into the process-wide manifest stats."""
    _resilience["units"] = (_resilience.get("units", 0)
                            + len(report.results))
    _resilience["retries"] = _resilience.get("retries", 0) + report.retries
    _resilience["timeouts"] = (_resilience.get("timeouts", 0)
                               + report.timeouts)
    _resilience["pool_breaks"] = (_resilience.get("pool_breaks", 0)
                                  + report.pool_breaks)
    _resilience["degraded_serial"] = (_resilience.get("degraded_serial",
                                                      False)
                                      or report.degraded_serial)
    _resilience.setdefault("failed_units", []).extend(
        f.to_dict() for f in report.failures)


def execute(specs: Sequence[RunSpec], *,
            phase: str | None = None) -> list[RunMetrics]:
    """Resolve every spec, via cache or simulation; preserves order.

    Cache misses run through :func:`repro.experiments.resilience
    .run_resilient` — per-unit retries with backoff, wall-clock
    timeouts, worker-pool rebuilds, and serial degradation after
    repeated breaks.  Every successful unit is cached *before* terminal
    failures surface, so a partially-failed sweep leaves its survivors
    behind and a retried campaign only re-simulates the losers.

    Args:
        phase: Label under which the call's wall time is accumulated
            (shows up in the campaign manifest's ``sweep_seconds``).

    Raises:
        SweepFailure: One or more units failed terminally (after all
            retries).  The exception lists them; cached siblings are
            unaffected.
    """
    t0 = time.perf_counter()
    cache = active_cache()
    telemetry_on = obstel.capture_enabled()
    results: list[RunMetrics | None] = [None] * len(specs)
    missing: list[int] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            results[i] = hit
        else:
            missing.append(i)

    _notify({"kind": "phase_begin", "phase": phase, "total": len(specs),
             "cached": len(specs) - len(missing)})
    if telemetry_on:
        _campaign.cached_units += len(specs) - len(missing)

    if missing:
        todo = [specs[i] for i in missing]
        workers = _effective_workers(len(todo))
        batch_units = batch_units_for(len(todo), workers)

        def _on_unit(j: int, metrics: RunMetrics | None) -> None:
            _fold_unit(metrics)
            # Persist incrementally, as units land (telemetry has been
            # popped off meta by _fold_unit): a campaign killed
            # mid-batch resumes from its survivors, not from the last
            # fully-completed execute() call.
            if metrics is not None and cache is not None:
                cache.put(todo[j], metrics)
            _notify({"kind": "unit_done", "phase": phase,
                     "label": todo[j].describe(),
                     "ok": metrics is not None})

        def _on_batch(size: int) -> None:
            _dispatch["batches"] = _dispatch.get("batches", 0) + 1
            _dispatch["batched_units"] = (
                _dispatch.get("batched_units", 0) + size)
            _dispatch["max_batch_units"] = max(
                _dispatch.get("max_batch_units", 0), size)

        # With real worker processes, silence their stderr warnings —
        # each worker ships its warning keys back in UnitTelemetry and
        # _fold_unit reprints every distinct one exactly once.
        quiet = workers > 1 and telemetry_on
        prev_quiet = os.environ.get(ENV_QUIET)
        if quiet:
            os.environ[ENV_QUIET] = "1"
        try:
            report = run_resilient(todo, workers=workers,
                                   policy=active_retry_policy(),
                                   runner=_execute_spec,
                                   on_unit=_on_unit,
                                   batch_units=batch_units,
                                   on_batch=_on_batch)
        finally:
            if quiet:
                if prev_quiet is None:
                    os.environ.pop(ENV_QUIET, None)
                else:
                    os.environ[ENV_QUIET] = prev_quiet
        _tally(report)
        for i, metrics in zip(missing, report.results):
            results[i] = metrics
        if phase is not None:
            _sweep_seconds[phase] = (_sweep_seconds.get(phase, 0.0)
                                     + time.perf_counter() - t0)
        _notify({"kind": "phase_end", "phase": phase})
        if report.failures:
            raise SweepFailure(report.failures, phase=phase)
        return results  # type: ignore[return-value]

    if phase is not None:
        _sweep_seconds[phase] = (_sweep_seconds.get(phase, 0.0)
                                 + time.perf_counter() - t0)
    _notify({"kind": "phase_end", "phase": phase})
    return results  # type: ignore[return-value]


def run_cached(spec: RunSpec) -> RunMetrics:
    """One run through the cache — the single-run CLI's entry point."""
    return execute([spec])[0]
