"""Sec. IV-E — profiling overhead.

The paper measures a 0.59% average slowdown from running applications
with object profiling enabled.  The reproduction's analogue: time the
cache-filtering pass with and without per-object statistics collection
(the LUT updates are the profiler's only per-access work), and report
the relative slowdown.
"""

from __future__ import annotations

import time

from repro.cpu.hierarchy import CacheHierarchy
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult
from repro.workloads.inputs import build_app_trace
from repro.workloads.spec import APPS


def _filter_without_stats(trace) -> float:
    """Cache pass with object bookkeeping elided; returns seconds."""
    h = CacheHierarchy()
    l1, l2 = h.l1, h.l2
    vaddrs = trace.vaddr.tolist()
    writes = trace.is_write.tolist()
    t0 = time.perf_counter()
    for vaddr, is_write in zip(vaddrs, writes):
        hit, _ = l1.access(vaddr, is_write)
        if not hit:
            l2.access(vaddr, is_write)
    return time.perf_counter() - t0


def _filter_with_stats(trace) -> float:
    """Full profiling pass (per-object LUT updates); returns seconds."""
    h = CacheHierarchy()
    t0 = time.perf_counter()
    h.filter_trace(trace, warmup_frac=0.0)
    return time.perf_counter() - t0


def compute(fidelity: Fidelity = DEFAULT,
            apps: tuple[str, ...] = ("mcf", "lbm", "gcc"),
            repeats: int = 3) -> FigureResult:
    """Measure the profiling overhead on a few applications."""
    fig = FigureResult(
        figure_id="overhead",
        title="Profiling overhead (Sec. IV-E)",
        columns=["app", "plain_s", "profiled_s", "overhead_pct"],
    )
    for name in apps:
        trace = build_app_trace(name, "train", fidelity.n_single)
        plain = min(_filter_without_stats(trace) for _ in range(repeats))
        profiled = min(_filter_with_stats(trace) for _ in range(repeats))
        overhead = (profiled - plain) / plain * 100.0
        fig.add_row(name, round(plain, 3), round(profiled, 3),
                    round(overhead, 2))
    fig.notes.append(
        "The paper reports 0.59% average runtime slowdown on hardware "
        "counters; here the overhead is the extra Python bookkeeping of "
        "the per-object LUT relative to the bare cache pass, so absolute "
        "percentages differ while remaining small relative to simulation.")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
