"""Fig. 16 — L2 MPKI of the stack and code segments.

The paper's justification for pinning non-heap segments to LPDDR
(Sec. VI-D): stack and code traffic caches so well that their LLC MPKI
is far below the heap's, so their placement barely affects performance.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT, Fidelity, FigureResult
from repro.moca.profiler import profile_app
from repro.workloads.spec import APPS


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    fig = FigureResult(
        figure_id="fig16",
        title="L2 MPKI of stack/code/global segments vs the heap",
        columns=["app", "stack_mpki", "code_mpki", "global_mpki",
                 "heap_mpki"],
    )
    for name in APPS:
        p = profile_app(name, "train", fidelity.n_single)
        heap_mpki = sum(prof.llc_mpki for prof in p.lut)
        fig.add_row(
            name,
            round(p.segment_mpki.get("stack", 0.0), 2),
            round(p.segment_mpki.get("code", 0.0), 2),
            round(p.segment_mpki.get("global", 0.0), 2),
            round(heap_mpki, 2),
        )
    fig.notes.append(
        "Expected: segment MPKI well below heap MPKI for the memory-"
        "intensive apps (the basis for MOCA's LPDDR placement of "
        "non-heap pages).")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
