"""Shared experiment infrastructure: fidelity presets, memoized sweeps,
and a small table-rendering result type.

A *sweep* runs every (workload, memory system, policy) combination a
figure family needs and is memoized per fidelity, so e.g. Figs. 10–13
(which all read the same multicore runs) cost one simulation pass.
Sweeps decompose into individual :class:`~repro.sim.spec.RunSpec` units
and go through :mod:`repro.experiments.engine`, which schedules them at
run granularity across ``REPRO_WORKERS`` processes and consults the
persistent result cache before simulating anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.experiments import engine
from repro.experiments.engine import sweep_workers  # noqa: F401  (re-export)
from repro.obs.registry import OBS
from repro.sim.config import (
    HETER_CONFIG1,
    HETER_CONFIG2,
    HETER_CONFIG3,
    HOMOGEN_DDR3,
    HOMOGEN_HBM,
    HOMOGEN_LP,
    HOMOGEN_RL,
    SystemConfig,
)
from repro.sim.metrics import RunMetrics
from repro.sim.spec import RunSpec
from repro.workloads.mixes import MIX_NAMES
from repro.workloads.spec import APPS


@dataclass(frozen=True)
class Fidelity:
    """Trace-length preset.

    Attributes:
        name: Label used in reports.
        n_single: Accesses per trace for single-core runs.
        n_multi: Accesses per core for multicore runs.
    """

    name: str
    n_single: int
    n_multi: int


TINY = Fidelity("tiny", 30_000, 20_000)
DEFAULT = Fidelity("default", 120_000, 60_000)
FULL = Fidelity("full", 200_000, 120_000)

FIDELITIES = {f.name: f for f in (TINY, DEFAULT, FULL)}

#: (label, config, policy) columns of the single-core figures (Figs. 8–9).
SINGLE_SYSTEMS: tuple[tuple[str, SystemConfig, str], ...] = (
    ("Homogen-DDR3", HOMOGEN_DDR3, "homogen"),
    ("Homogen-RL", HOMOGEN_RL, "homogen"),
    ("Homogen-HBM", HOMOGEN_HBM, "homogen"),
    ("Homogen-LP", HOMOGEN_LP, "homogen"),
    ("Heter-App", HETER_CONFIG1, "heter-app"),
    ("MOCA", HETER_CONFIG1, "moca"),
)

#: Same for the multicore figures (Figs. 10–13).
MULTI_SYSTEMS = SINGLE_SYSTEMS

#: Heterogeneous configurations of Sec. VI-C (Figs. 14–15).
SWEEP_CONFIGS: tuple[SystemConfig, ...] = (
    HETER_CONFIG1, HETER_CONFIG2, HETER_CONFIG3,
)

#: The five workload sets shown in Figs. 14–15.
SWEEP_MIXES = ("3L1B", "1L3B", "3L1N", "2L1B1N", "2B2N")

APP_ORDER = tuple(APPS)


def _run_pairs(pairs: list[tuple[tuple, RunSpec]], phase: str) -> dict:
    """Resolve keyed specs through the engine; keys stay in order.

    Pairs are built workload-major, so the engine's chunked fan-out
    keeps same-workload units (which share memoized cache filtering)
    mostly within one worker process.
    """
    metrics = engine.execute([spec for _, spec in pairs], phase=phase)
    return {key: m for (key, _), m in zip(pairs, metrics)}


@lru_cache(maxsize=8)
def single_sweep(fidelity: Fidelity = DEFAULT
                 ) -> dict[tuple[str, str], RunMetrics]:
    """All (application, system) single-core runs → metrics."""
    with OBS.span("sweep.single", fidelity=fidelity.name):
        pairs = [
            ((app, label),
             RunSpec(workload=app, config=config.name, policy=policy,
                     n_accesses=fidelity.n_single))
            for app in APP_ORDER
            for label, config, policy in SINGLE_SYSTEMS
        ]
        return _run_pairs(pairs, "sweep.single")


@lru_cache(maxsize=8)
def multi_sweep(fidelity: Fidelity = DEFAULT
                ) -> dict[tuple[str, str], RunMetrics]:
    """All (workload set, system) 4-core runs → metrics."""
    with OBS.span("sweep.multi", fidelity=fidelity.name):
        pairs = [
            ((mix_name, label),
             RunSpec(workload=mix_name, config=config.name, policy=policy,
                     n_accesses=fidelity.n_multi))
            for mix_name in MIX_NAMES
            for label, config, policy in MULTI_SYSTEMS
        ]
        return _run_pairs(pairs, "sweep.multi")


@lru_cache(maxsize=8)
def config_sweep(fidelity: Fidelity = DEFAULT
                 ) -> dict[tuple[str, str, str], RunMetrics]:
    """(config, workload set, policy) runs for Figs. 14–15."""
    with OBS.span("sweep.config", fidelity=fidelity.name):
        pairs = [
            ((config.name, mix_name, policy),
             RunSpec(workload=mix_name, config=config.name, policy=policy,
                     n_accesses=fidelity.n_multi))
            for mix_name in SWEEP_MIXES
            for config in SWEEP_CONFIGS
            for policy in ("heter-app", "moca")
        ]
        return _run_pairs(pairs, "sweep.config")


@dataclass
class FigureResult:
    """A regenerated table/figure: header, rows, and provenance notes."""

    figure_id: str
    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Provenance block (see :func:`repro.obs.provenance.run_meta`);
    #: saved alongside the data by :mod:`repro.experiments.store`.
    meta: dict = field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.figure_id}: row has {len(values)} cells, "
                f"expected {len(self.columns)}")
        self.rows.append(list(values))

    def column(self, name: str) -> list[object]:
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows]

    def row(self, key: object) -> list[object]:
        for r in self.rows:
            if r[0] == key:
                return r
        raise KeyError(f"{self.figure_id}: no row {key!r}")

    def cell(self, row_key: object, column: str) -> object:
        return self.row(row_key)[self.columns.index(column)]

    def render(self) -> str:
        """Plain-text table (the textual equivalent of the figure)."""
        def fmt(v: object) -> str:
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        widths = [len(c) for c in self.columns]
        body = [[fmt(v) for v in row] for row in self.rows]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.figure_id}: {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_bars(self, width: int = 48) -> str:
        """ASCII bar chart of the numeric columns, one block per row.

        The textual stand-in for the paper's grouped-bar figures: each
        row (app/mix) gets one group, each numeric column one bar scaled
        to the figure-wide maximum.
        """
        numeric_cols = [
            i for i in range(1, len(self.columns))
            if all(isinstance(r[i], (int, float)) for r in self.rows)
        ]
        if not numeric_cols:
            return self.render()
        # `default=0.0` guards the all-non-positive (or no-row) figure:
        # an empty generator would raise ValueError; scale such bars to 1.
        peak = max((float(r[i]) for r in self.rows for i in numeric_cols
                    if float(r[i]) > 0), default=0.0) or 1.0
        label_w = max(len(self.columns[i]) for i in numeric_cols)
        lines = [f"== {self.figure_id}: {self.title} =="]
        for row in self.rows:
            lines.append(f"{row[0]}:")
            for i in numeric_cols:
                v = float(row[i])
                bar = "#" * max(0, round(v / peak * width))
                lines.append(f"  {self.columns[i]:<{label_w}} "
                             f"{bar} {v:.3f}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown table (for reports/EXPERIMENTS.md)."""
        def fmt(v: object) -> str:
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        lines = [f"### {self.figure_id} — {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible form (see :mod:`repro.experiments.store`)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(r) for r in self.rows],
            "notes": list(self.notes),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FigureResult":
        fig = cls(figure_id=data["figure_id"], title=data["title"],
                  columns=list(data["columns"]))
        for row in data["rows"]:
            fig.add_row(*row)
        fig.notes = list(data.get("notes", []))
        fig.meta = dict(data.get("meta", {}))
        return fig


def geomean(values: list[float]) -> float:
    """Geometric mean (the right average for normalized ratios)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))
