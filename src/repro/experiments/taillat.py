"""Tail-latency study (beyond the paper).

The paper reports total memory access time; latency-sensitive code also
cares about the *distribution*.  This experiment compares demand-request
latency percentiles (p50/p95/p99, power-of-two bucket bounds) across
memory systems: MOCA should pull the latency-sensitive applications'
tail towards Homogen-RL's while Heter-App leaves chase traffic stranded
on slower modules whenever RLDRAM filled up first.
"""

from __future__ import annotations

from repro.experiments import engine
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult
from repro.sim.spec import RunSpec

APPS = ("mcf", "disparity", "gcc", "lbm")
SYSTEMS = (
    ("DDR3", "Homogen-DDR3", "homogen"),
    ("RL", "Homogen-RL", "homogen"),
    ("Heter-App", "Heter-config1", "heter-app"),
    ("MOCA", "Heter-config1", "moca"),
)


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    fig = FigureResult(
        figure_id="taillat",
        title="Demand-request latency percentiles (cycles; bucket bounds)",
        columns=["app"] + [f"{label}_{p}" for label, _, _ in SYSTEMS
                           for p in ("p50", "p99")],
    )
    for app in APPS:
        specs = [RunSpec(workload=app, config=config, policy=policy,
                         n_accesses=fidelity.n_single)
                 for _, config, policy in SYSTEMS]
        cells = []
        for m in engine.execute(specs, phase="sweep.taillat"):
            cells.extend([m.latency_p50, m.latency_p99])
        fig.add_row(app, *cells)
    fig.notes.append(
        "Expected shape: RL's tail is the shortest everywhere; MOCA's "
        "p99 sits at or below Heter-App's for the latency-sensitive apps.")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
