"""Tail-latency study (beyond the paper).

The paper reports total memory access time; latency-sensitive code also
cares about the *distribution*.  This experiment compares demand-request
latency percentiles (p50/p95/p99, power-of-two bucket bounds) across
memory systems: MOCA should pull the latency-sensitive applications'
tail towards Homogen-RL's while Heter-App leaves chase traffic stranded
on slower modules whenever RLDRAM filled up first.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT, Fidelity, FigureResult
from repro.sim.config import HETER_CONFIG1, HOMOGEN_DDR3, HOMOGEN_RL
from repro.sim.single import run_single

APPS = ("mcf", "disparity", "gcc", "lbm")
SYSTEMS = (
    ("DDR3", HOMOGEN_DDR3, "homogen"),
    ("RL", HOMOGEN_RL, "homogen"),
    ("Heter-App", HETER_CONFIG1, "heter-app"),
    ("MOCA", HETER_CONFIG1, "moca"),
)


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    fig = FigureResult(
        figure_id="taillat",
        title="Demand-request latency percentiles (cycles; bucket bounds)",
        columns=["app"] + [f"{label}_{p}" for label, _, _ in SYSTEMS
                           for p in ("p50", "p99")],
    )
    for app in APPS:
        cells = []
        for label, config, policy in SYSTEMS:
            m = run_single(app, config, policy,
                           n_accesses=fidelity.n_single)
            cells.extend([m.latency_p50, m.latency_p99])
        fig.add_row(app, *cells)
    fig.notes.append(
        "Expected shape: RL's tail is the shortest everywhere; MOCA's "
        "p99 sits at or below Heter-App's for the latency-sensitive apps.")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
