"""Tables I–III of the paper, regenerated from the library's constants.

Table I (core microarchitecture) and Table II (device parameters) are
configuration inputs — regenerating them asserts the library actually
encodes what the paper says.  Table III (application classes) is a
*result*: the classes must re-emerge from profiling + classification.
"""

from __future__ import annotations

from repro.cpu.core import CoreParams
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult
from repro.memdev.presets import DDR3, HBM, LPDDR2, RLDRAM3
from repro.moca.classify import classify_application
from repro.moca.profiler import profile_app
from repro.vm.heap import ObjectType
from repro.workloads.spec import APPS


def table1() -> FigureResult:
    """Table I — simulated core parameters."""
    p = CoreParams()
    fig = FigureResult(
        figure_id="table1",
        title="Microarchitectural details of the simulated system",
        columns=["parameter", "value"],
    )
    fig.add_row("ROB entries", p.rob_size)
    fig.add_row("Load queue entries", p.lq_size)
    fig.add_row("L2 MSHRs", p.mshr)
    fig.add_row("Base IPC", p.ipc)
    fig.add_row("L1D", "64 KiB, 2-way, 64 B lines")
    fig.add_row("L2", "512 KiB, 16-way, 64 B lines")
    fig.add_row("Channels", "4, RoRaBaChCo, FR-FCFS")
    return fig


def table2() -> FigureResult:
    """Table II — timing and power parameters of the four technologies."""
    fig = FigureResult(
        figure_id="table2",
        title="Memory module parameters (paper Table II)",
        columns=["parameter", "DDR3", "HBM", "RLDRAM3", "LPDDR2"],
    )
    devs = (DDR3, HBM, RLDRAM3, LPDDR2)
    rows = [
        ("burst length", lambda d: d.burst_length),
        ("# banks", lambda d: d.n_banks),
        ("row buffer (B/device)", lambda d: d.row_buffer_bytes),
        ("# rows", lambda d: d.n_rows),
        ("device width (bits)", lambda d: d.device_width_bits),
        ("tCK (ns)", lambda d: d.tCK_ns),
        ("tRAS (ns)", lambda d: d.tRAS_ns),
        ("tRCD (ns)", lambda d: d.tRCD_ns),
        ("tRC (ns)", lambda d: d.tRC_ns),
        ("tRFC (ns)", lambda d: d.tRFC_ns),
        ("standby (mW/GB)", lambda d: d.standby_mw_per_gb),
        ("active (W/GB)", lambda d: d.active_w_per_gb),
    ]
    for label, get in rows:
        fig.add_row(label, *(get(d) for d in devs))
    fig.notes.append(
        "RLDRAM3 power uses the paper's prose (4-5x DDR3), not the "
        "table's 30 mW/GB — see repro.memdev.presets for the rationale.")
    return fig


def table3(fidelity: Fidelity = DEFAULT) -> FigureResult:
    """Table III — application classification, recomputed."""
    fig = FigureResult(
        figure_id="table3",
        title="Benchmark classification (L / B / N)",
        columns=["app", "paper_class", "computed_class", "match"],
    )
    letter = {ObjectType.LAT: "L", ObjectType.BW: "B", ObjectType.POW: "N"}
    for name, spec in APPS.items():
        p = profile_app(name, "train", fidelity.n_single)
        computed = letter[classify_application(p.lut)]
        fig.add_row(name, spec.paper_class, computed,
                    "yes" if computed == spec.paper_class else "NO")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(table1().render())
    print()
    print(table2().render())
    print()
    print(table3().render())
