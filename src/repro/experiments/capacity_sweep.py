"""Fast-tier capacity sweep (extends paper Secs. VI-A/VI-B).

The paper evaluates MOCA on fixed memory-system configurations; this
experiment asks how the placement policies trade off as the *latency
tier shrinks or grows*.  Each swept point is a heterogeneous system
with the RLDRAM3 tier at a different paper-scale capacity (the HBM and
LPDDR tiers held fixed — :data:`repro.sim.config.CAPACITY_CONFIGS`),
and each policy plans against that point's explicit
:class:`~repro.moca.policy.CapacityBudget`:

* **Heter-App** — application-granular (Phadke & Narayanasamy);
* **MOCA** — the paper's capacity-blind threshold rule (Fig. 5);
* **Knapsack** — threshold + greedy benefit-per-byte promotion into
  spare fast-tier capacity (:class:`~repro.moca.policy.KnapsackClassifier`);
* **Ranker** — the learned logistic scorer
  (:class:`~repro.moca.ranker.RankerClassifier`).

Cells are memory access time normalized per app to Homogen-DDR3, geomean
over the app set — lower is better.  Knapsack weakly dominates MOCA at
every point by construction: equal wherever the budget binds (the
allocator's heat-ordered page-granular spill already implements the
fractional-knapsack fill), strictly better wherever spare fast-tier
capacity exists to promote into.
"""

from __future__ import annotations

from repro.experiments import engine
from repro.experiments.runner import DEFAULT, Fidelity, FigureResult, geomean
from repro.sim.config import CAPACITY_POINTS
from repro.sim.spec import RunSpec

APPS = ("mcf", "milc", "libquantum", "disparity")

#: (column label, registered policy name) — column order of the figure.
POLICY_COLUMNS = (
    ("Heter-App", "heter-app"),
    ("MOCA", "moca"),
    ("Knapsack", "knapsack"),
    ("Ranker", "ranker"),
)


def compute(fidelity: Fidelity = DEFAULT) -> FigureResult:
    """Normalized memory access time vs fast-tier capacity, per policy."""
    fig = FigureResult(
        figure_id="capacity",
        title="Fast-tier capacity sweep: memory access time vs RLDRAM "
              "capacity (normalized to Homogen-DDR3, geomean over apps)",
        columns=["fast_mb"] + [label for label, _ in POLICY_COLUMNS],
    )
    n = fidelity.n_single
    # One flat batch — baselines plus every (capacity, policy, app) cell —
    # so the engine schedules the whole sweep across workers at once.
    base_specs = [RunSpec(app, "Homogen-DDR3", "homogen", n) for app in APPS]
    cell_specs = [RunSpec(app, f"Heter-cap{mb}", policy, n)
                  for mb in CAPACITY_POINTS
                  for _, policy in POLICY_COLUMNS
                  for app in APPS]
    results = engine.execute(base_specs + cell_specs, phase="sweep.capacity")
    base = {app: m.mem_access_cycles
            for app, m in zip(APPS, results[:len(APPS)])}
    cells = iter(results[len(APPS):])
    for mb in CAPACITY_POINTS:
        row = []
        for _, policy in POLICY_COLUMNS:
            ratios = [next(cells).mem_access_cycles / base[app]
                      for app in APPS]
            row.append(round(geomean(ratios), 3))
        fig.add_row(mb, *row)
    fig.notes.append(
        f"Geomean over {APPS}; lower is better.  Expected: Knapsack "
        "weakly dominates MOCA at every capacity — equal where the "
        "budget binds, strictly better where spare fast-tier capacity "
        "lets it promote dense BW/POW objects the threshold rule leaves "
        "in slower tiers.  Heter-App overtakes object-granular policies "
        "only once the fast tier fits whole applications (segments "
        "included).")
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
