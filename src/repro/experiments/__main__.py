"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro.experiments fig08
    python -m repro.experiments table3 headline
    python -m repro.experiments all --fidelity tiny
    python -m repro.experiments fig08 --progress --trace out.json
    python -m repro.experiments all --save results/ --cache-dir results/.cache
    python -m repro.experiments resilience --fidelity tiny --save results/

Simulation results are cached on disk (default ``results/.cache``,
override with ``--cache-dir`` or ``REPRO_CACHE_DIR``; ``--no-cache``
disables, ``--refresh`` re-simulates and overwrites), so repeating a
campaign reuses every run whose :class:`~repro.sim.spec.RunSpec` is
unchanged.  Filtered miss streams are persisted alongside in
``<cache-dir>/streams`` (see :mod:`repro.sim.stream_store`), so sweep
worker processes filter each trace once per machine; ``--no-cache`` and
``--refresh`` extend to that store too.

Campaigns are resilient by default: a figure whose sweep fails
terminally (see :mod:`repro.experiments.resilience`) is recorded as
``failed`` in the manifest and its siblings still run (``--fail-fast``
restores abort-on-first-error).  With multiple workers the engine
dispatches sweep units in workload-major batches sized from campaign
telemetry (``REPRO_BATCH_UNITS``: ``auto``/unset adapts, ``1`` disables,
``N`` pins); retried units always travel alone.  With ``--save``, a checkpoint journal
(``<save>/.campaign.json``) records per-figure completion, so an
interrupted invocation resumes where it stopped — completed figures are
reloaded from their artefacts instead of recomputed (``--no-resume``
starts over).  ``--unit-timeout`` / ``--max-attempts`` (or the
``REPRO_UNIT_TIMEOUT`` / ``REPRO_MAX_ATTEMPTS`` variables) bound how
long the engine fights for each simulation unit.

Campaign telemetry (:mod:`repro.obs.telemetry`) is on by default: each
sweep unit — including those in worker processes — ships back counters,
span histograms, and resource usage, folded into the manifest's
``telemetry`` block and, with ``--save``, a ``telemetry.jsonl`` artefact
plus a merged multi-lane Chrome ``trace.json`` (``--no-telemetry`` opts
out).  ``--dashboard`` attaches a live stderr status line and heartbeat
file; ``--profile`` wraps each unit in cProfile and writes merged
hotspots to ``profile.json``; ``--bench-history`` appends a perf-trend
record (see ``python -m repro.experiments bench-report``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.experiments import engine
from repro.experiments import runner as _runner
from repro.experiments.resilience import (
    CampaignJournal,
    JOURNAL_NAME,
    RetryPolicy,
)
from repro.obs import OBS, Dashboard, ProgressReporter, run_meta, \
    write_chrome_trace, write_jsonl
from repro.obs import telemetry as obstel
from repro.obs.dashboard import HEARTBEAT_NAME
from repro.experiments import (
    capacity_sweep, devices, drift_sweep, fig01, fig02, fig08, fig09,
    fig10, fig11,
    fig12, fig13, fig14, fig15, fig16, headline, overhead,
    resilience_sweep, smoke, tables, taillat, thresholds_sweep, variance,
)

EXPERIMENTS = {
    "fig01": fig01.compute,
    "fig02": fig02.compute,
    "table1": lambda fidelity: tables.table1(),
    "table2": lambda fidelity: tables.table2(),
    "table3": tables.table3,
    "fig08": fig08.compute,
    "fig09": fig09.compute,
    "fig10": fig10.compute,
    "fig11": fig11.compute,
    "fig12": fig12.compute,
    "fig13": fig13.compute,
    "fig14": fig14.compute,
    "fig15": fig15.compute,
    "fig16": fig16.compute,
    "overhead": overhead.compute,
    "headline": headline.compute,
    "thresholds": thresholds_sweep.compute,
    "capacity": capacity_sweep.compute,
    "drift": drift_sweep.compute,
    "devices": devices.compute,
    "variance": variance.compute,
    "taillat": taillat.compute,
    "smoke": smoke.compute,
    "resilience": resilience_sweep.compute,
}

#: The paper's own artefacts — what ``all`` regenerates.  The remaining
#: ids (thresholds, variance, resilience, smoke, ...) are extensions;
#: run them by name or via ``extras``.
PAPER_SET = (
    "fig01", "fig02", "table1", "table2", "table3",
    "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "overhead", "headline",
)
EXTRAS_SET = tuple(sorted(set(EXPERIMENTS) - set(PAPER_SET)))


def main(argv: list[str] | None = None) -> int:
    # "bench-report" is its own sub-CLI with unrelated flags; dispatch
    # before the campaign argparse sees (and rejects) them.
    argv_list = sys.argv[1:] if argv is None else list(argv)
    if argv_list and argv_list[0] == "bench-report":
        from repro.obs import bench
        return bench.report_main(argv_list[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the MOCA paper's tables and figures.")
    parser.add_argument("which", nargs="+",
                        choices=sorted(EXPERIMENTS) + ["all", "extras"],
                        help="experiment id(s), 'all' (paper artefacts) "
                             "or 'extras' (ablation studies)")
    parser.add_argument("--fidelity", default="default",
                        choices=sorted(_runner.FIDELITIES),
                        help="trace-length preset (default: default)")
    parser.add_argument("--bars", action="store_true",
                        help="render ASCII bar charts instead of tables")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write JSON artefacts into DIR")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON "
                             "(chrome://tracing / Perfetto) to PATH")
    parser.add_argument("--obs-dump", metavar="PATH", default=None,
                        help="write the structured JSONL event log to PATH")
    parser.add_argument("--progress", action="store_true",
                        help="narrate sweep/run completions on stderr")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persistent result-cache directory (default: "
                             "$REPRO_CACHE_DIR or results/.cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--refresh", action="store_true",
                        help="re-simulate every run and overwrite its "
                             "cached result")
    failure = parser.add_mutually_exclusive_group()
    failure.add_argument("--keep-going", dest="keep_going",
                         action="store_true", default=True,
                         help="record a failed figure and continue with "
                              "its siblings (default)")
    failure.add_argument("--fail-fast", dest="keep_going",
                         action="store_false",
                         help="abort the campaign on the first failed "
                              "figure")
    parser.add_argument("--unit-timeout", metavar="SECONDS", type=float,
                        default=None,
                        help="wall-clock timeout per simulation unit "
                             "(default: $REPRO_UNIT_TIMEOUT or none)")
    parser.add_argument("--max-attempts", metavar="N", type=int,
                        default=None,
                        help="attempts per simulation unit before it "
                             "fails terminally (default: "
                             "$REPRO_MAX_ATTEMPTS or 3)")
    parser.add_argument("--no-resume", action="store_true",
                        help="ignore the campaign checkpoint journal in "
                             "--save DIR and recompute every figure")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="disable per-unit campaign telemetry capture "
                             "(manifest 'telemetry' block, telemetry.jsonl, "
                             "merged trace.json)")
    parser.add_argument("--dashboard", action="store_true",
                        help="live campaign status line on stderr plus a "
                             "machine-readable <save>/.heartbeat.json")
    parser.add_argument("--profile", action="store_true",
                        help="wrap each simulation unit in cProfile and "
                             "write merged hotspots to <save>/profile.json")
    parser.add_argument("--bench-history", metavar="PATH", nargs="?",
                        const="", default=None,
                        help="append a perf-trend record for this campaign "
                             "(default path results/bench_history.jsonl or "
                             "$REPRO_BENCH_HISTORY; see bench-report)")
    args = parser.parse_args(argv_list)

    if args.trace or args.obs_dump or args.progress:
        OBS.enable()
        if args.progress:
            ProgressReporter().attach(OBS)

    if args.no_cache:
        engine.configure(None)
    else:
        engine.configure(args.cache_dir
                         or os.environ.get("REPRO_CACHE_DIR")
                         or engine.DEFAULT_CACHE_DIR,
                         refresh=args.refresh)
    if args.unit_timeout is not None or args.max_attempts is not None:
        base = RetryPolicy.from_env()
        engine.configure_resilience(RetryPolicy(
            unit_timeout=(args.unit_timeout if args.unit_timeout is not None
                          else base.unit_timeout),
            max_attempts=(args.max_attempts if args.max_attempts is not None
                          else base.max_attempts)))

    engine.configure_telemetry(not args.no_telemetry)
    if args.profile:
        engine.configure_profile(True)
    obstel.mark_campaign_start()

    fidelity = _runner.FIDELITIES[args.fidelity]
    names: list[str] = []
    for token in args.which:
        if token == "all":
            names.extend(PAPER_SET)
        elif token == "extras":
            names.extend(EXTRAS_SET)
        else:
            names.append(token)

    journal: CampaignJournal | None = None
    if args.save:
        journal = CampaignJournal(Path(args.save) / JOURNAL_NAME,
                                  fidelity=fidelity.name)
        if args.no_resume or args.refresh:
            journal.clear()

    dash: Dashboard | None = None
    if args.dashboard:
        dash = Dashboard(
            heartbeat_path=(Path(args.save) / HEARTBEAT_NAME
                            if args.save else None),
            stats_provider=engine.dashboard_stats)
        engine.add_observer(dash.on_event)
        dash.campaign_begin(names, fidelity.name)

    try:
        from repro.experiments.store import load_figure, save_figure

        saved = []
        statuses: dict[str, dict] = {}
        failed = 0
        for name in names:
            t0 = time.time()
            if dash is not None:
                dash.figure_begin(name)
            # Resume: a figure the journal marks done, whose artefact is
            # still on disk, is reloaded instead of recomputed.
            if journal is not None and journal.is_done(name):
                artefact = Path(args.save) / f"{name}.json"
                try:
                    fig = load_figure(artefact)
                except (FileNotFoundError, OSError, ValueError):
                    fig = None
                if fig is not None:
                    print(fig.render_bars() if args.bars else fig.render())
                    print(f"[{name}: resumed from checkpoint]")
                    print()
                    statuses[name] = {"status": "resumed"}
                    saved.append(fig.figure_id)
                    if dash is not None:
                        dash.figure_end(name, "resumed")
                    continue
            try:
                with OBS.span(f"experiment.{name}", fidelity=fidelity.name):
                    fig = EXPERIMENTS[name](fidelity)
            except Exception as exc:  # noqa: BLE001 - campaign boundary
                seconds = round(time.time() - t0, 3)
                statuses[name] = {"status": "failed", "seconds": seconds,
                                  "error": f"{type(exc).__name__}: {exc}"}
                if journal is not None:
                    journal.mark(name, "failed",
                                 error=statuses[name]["error"])
                failed += 1
                print(f"[{name}: FAILED after {seconds}s: "
                      f"{type(exc).__name__}: {exc}]", file=sys.stderr)
                print()
                if dash is not None:
                    dash.figure_end(name, "failed")
                if not args.keep_going:
                    break
                continue
            seconds = round(time.time() - t0, 3)
            print(fig.render_bars() if args.bars else fig.render())
            print(f"[{name}: {seconds}s]")
            print()
            statuses[name] = {"status": "ok", "seconds": seconds}
            if dash is not None:
                dash.figure_end(name, "ok")
            if args.save:
                save_figure(fig, args.save,
                            meta=run_meta(fidelity=fidelity, experiment=name))
                saved.append(fig.figure_id)
                if journal is not None:
                    journal.mark(name, "done", seconds=seconds)
        if dash is not None:
            dash.campaign_end()
        units = engine.unit_telemetry_records()
        if args.save:
            from repro.experiments.store import write_manifest
            write_manifest(args.save, fidelity, saved, statuses=statuses)
            if engine.telemetry_stats() is not None:
                obstel.write_telemetry_jsonl(
                    Path(args.save) / "telemetry.jsonl", units,
                    engine.campaign_telemetry())
                trace_doc = obstel.merged_trace_doc(OBS, units)
                (Path(args.save) / "trace.json").write_text(
                    json.dumps(trace_doc))
            prof = engine.profile_stats()
            if prof is not None:
                (Path(args.save) / "profile.json").write_text(json.dumps(
                    {"version": 1, "units": engine.campaign_telemetry().units,
                     "entries": len(prof), "top": prof}, indent=1))
                print(f"profile hotspots written to "
                      f"{Path(args.save) / 'profile.json'}", file=sys.stderr)
            print(f"artefacts written to {args.save}/")
        if args.bench_history is not None:
            from repro.obs import bench
            record = bench.campaign_record(
                fidelity.name, engine.campaign_telemetry(),
                sweep_seconds=engine.sweep_seconds(),
                cache=engine.cache_stats())
            path = bench.append_record(record,
                                       args.bench_history or None)
            print(f"bench-history record appended to {path}",
                  file=sys.stderr)
        telem = engine.telemetry_stats()
        if telem is not None and (telem["units"] or telem["cached_units"]):
            print(f"[telemetry: {telem['units']} units simulated "
                  f"({telem['cached_units']} cached) across "
                  f"{len(telem['workers'])} worker(s), "
                  f"{telem['wall_s']:.1f}s unit wall time]", file=sys.stderr)
        stats = engine.cache_stats()
        if stats is not None and (stats.get("hits") or stats.get("misses")):
            print(f"[result cache: {stats['hits']} hits, "
                  f"{stats['misses']} misses, {stats['stores']} stored "
                  f"({stats['directory']})]", file=sys.stderr)
        streams = (stats or {}).get("streams")
        if streams is not None and (streams["hits"] or streams["misses"]):
            print(f"[stream store: {streams['hits']} hits, "
                  f"{streams['misses']} misses, {streams['stores']} stored "
                  f"(hit ratio {streams['hit_ratio']:.2f})]", file=sys.stderr)
        disp = engine.dispatch_stats()
        if disp is not None:
            print(f"[dispatch: {disp['batches']} batch(es), "
                  f"{disp['batched_units']} unit(s) batched, "
                  f"max batch {disp['max_batch_units']}]", file=sys.stderr)
        res = engine.resilience_stats()
        if res is not None and (res["retries"] or res["timeouts"]
                                or res["pool_breaks"]
                                or res["failed_units"]):
            print(f"[resilience: {res['retries']} retries, "
                  f"{res['timeouts']} timeouts, {res['pool_breaks']} pool "
                  f"rebuilds, {len(res['failed_units'])} failed unit(s)"
                  f"{', degraded to serial' if res['degraded_serial'] else ''}"
                  f"]", file=sys.stderr)
        if args.trace:
            if units:
                # Campaign view: parent lane + one pid lane per worker,
                # re-based onto the campaign wall clock.
                path = Path(args.trace)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(json.dumps(
                    obstel.merged_trace_doc(OBS, units)))
            else:
                path = write_chrome_trace(OBS, args.trace)
            print(f"chrome trace written to {path}", file=sys.stderr)
        if args.obs_dump:
            path = write_jsonl(OBS, args.obs_dump)
            print(f"obs event log written to {path}", file=sys.stderr)
        return 1 if failed else 0
    finally:
        # Embedded invocations (tests) must not leak this command's cache
        # configuration into later library use in the same process.
        engine.reset()


if __name__ == "__main__":
    sys.exit(main())
