"""Fig. 10 — multicore memory access time, normalized to Homogen-DDR3.

One row per 4-app workload set.  Expected shape: RL and HBM fastest,
LP slowest, MOCA faster than Heter-App in every set (paper average:
-26%), with the largest gaps in sets that contend for RLDRAM/HBM.
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT,
    Fidelity,
    FigureResult,
    geomean,
    multi_sweep,
)
from repro.experiments.fig08 import SYSTEM_LABELS
from repro.workloads.mixes import MIX_NAMES


def compute(fidelity: Fidelity = DEFAULT, metric: str = "mem_access_cycles",
            figure_id: str = "fig10",
            title: str = "Multicore memory access time "
                         "(normalized to Homogen-DDR3)") -> FigureResult:
    """Shared implementation for the four multicore figures."""
    sweep = multi_sweep(fidelity)
    fig = FigureResult(figure_id=figure_id, title=title,
                       columns=["mix"] + SYSTEM_LABELS)
    for mix in MIX_NAMES:
        base = getattr(sweep[(mix, "Homogen-DDR3")], metric)
        fig.add_row(mix, *(
            round(getattr(sweep[(mix, label)], metric) / base, 3)
            for label in SYSTEM_LABELS
        ))
    fig.add_row("geomean", *(
        round(geomean([r[1 + i] for r in fig.rows]), 3)
        for i in range(len(SYSTEM_LABELS))
    ))
    return fig


if __name__ == "__main__":  # pragma: no cover
    print(compute().render())
