"""Top-level command-line interface.

Subcommands::

    python -m repro apps                      # list the workload suite
    python -m repro systems                   # list memory-system configs
    python -m repro profile mcf               # offline profile of one app
    python -m repro run mcf --system Heter-config1 --policy moca
    python -m repro runmix 2L1B1N --system Heter-config1 --policy moca
    python -m repro experiments fig08 ...     # forwards to repro.experiments
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import engine
from repro.moca.classify import classify_object, type_to_class_letter
from repro.moca.policy import policy_names
from repro.moca.profiler import profile_app
from repro.obs import OBS, ProgressReporter, write_chrome_trace, write_jsonl
from repro.sim.config import ALL_SYSTEMS
from repro.sim.metrics import RunMetrics
from repro.sim.spec import RunSpec
from repro.workloads.mixes import MIX_NAMES
from repro.workloads.spec import APPS


def _cmd_apps(_args) -> int:
    print(f"{'app':12s} {'suite':9s} {'class':5s} {'heap MiB':>8s}  description")
    for name, spec in APPS.items():
        print(f"{name:12s} {spec.suite:9s} {spec.paper_class:5s} "
              f"{spec.heap_footprint_bytes() >> 20:8d}  {spec.description}")
    print(f"\nmulticore mixes: {', '.join(MIX_NAMES)}")
    return 0


def _cmd_systems(_args) -> int:
    for name, cfg in ALL_SYSTEMS.items():
        print(f"{name:14s} {cfg.build().describe()}")
    return 0


def _cmd_profile(args) -> int:
    p = profile_app(args.app, args.input, args.accesses)
    print(f"{args.app} ({args.input}): LLC MPKI={p.app_mpki:.2f}, "
          f"ROB stall/load-miss={p.app_stall_per_miss:.1f}")
    print(f"{'object':26s} {'MiB':>7s} {'MPKI':>8s} {'stall/miss':>10s} class")
    for prof in sorted(p.lut, key=lambda x: -x.llc_mpki):
        cls = type_to_class_letter(classify_object(prof))
        print(f"{prof.label:26s} {prof.size_bytes / (1 << 20):7.2f} "
              f"{prof.llc_mpki:8.2f} {prof.stall_per_load_miss:10.1f} {cls}")
    print("segments:", {k: round(v, 2) for k, v in p.segment_mpki.items()})
    return 0


def _print_metrics(m: RunMetrics) -> None:
    print(f"system={m.system} policy={m.policy} workload={m.workload}")
    print(f"  execution time     {m.exec_cycles:>14,d} cycles "
          f"(IPC {m.ipc:.3f})")
    print(f"  memory access time {m.mem_access_cycles:>14,d} cycles "
          f"({m.n_requests:,} requests)")
    print(f"  memory power       {m.mem_power_w:>14.3f} W  "
          f"(row-hit rate {m.row_hit_rate:.1%})")
    print(f"  memory EDP         {m.memory_edp:>14.6g}")
    print(f"  system EDP         {m.system_edp:>14.6g}")


def _emit(m: RunMetrics, as_json: bool) -> None:
    if as_json:
        import json
        print(json.dumps(m.to_dict(), indent=1))
    else:
        _print_metrics(m)


def _run_spec(args, workload: str) -> int:
    spec = RunSpec(workload=workload, config=args.system,
                   policy=args.policy, n_accesses=args.accesses)
    if args.profile:
        # cProfile needs the telemetry shuttle to bring the per-unit
        # pstats table back through the engine's fold.
        engine.configure_telemetry(True)
        engine.configure_profile(True)
    m = engine.run_cached(spec)
    _emit(m, args.json)
    stats = engine.cache_stats()
    if stats is not None:
        print(f"[result cache: {stats['hits']} hits, "
              f"{stats['misses']} misses ({stats['directory']})]",
              file=sys.stderr)
    if args.profile:
        rows = engine.profile_stats(top=10)
        if rows is None:
            print("[profile: run served from cache — nothing profiled; "
                  "re-run with --refresh]", file=sys.stderr)
        else:
            print("[profile: top 10 by cumulative time]", file=sys.stderr)
            for r in rows:
                loc = f"{r['file']}:{r['line']}".rsplit("/", 1)[-1]
                print(f"  {r['cumtime_s']:8.3f}s  {r['ncalls']:>8} calls  "
                      f"{r['func']} ({loc})", file=sys.stderr)
    return 0


def _cmd_run(args) -> int:
    return _run_spec(args, args.app)


def _cmd_runmix(args) -> int:
    return _run_spec(args, args.mix)


def _cmd_experiments(args) -> int:
    from repro.experiments.__main__ import main as exp_main
    return exp_main(args.rest)


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persistent result-cache directory (default: "
                             "$REPRO_CACHE_DIR, else no cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--refresh", action="store_true",
                        help="re-simulate and overwrite the cached result")


def _cache_begin(args) -> None:
    """Install the result cache selected by the cache flags.

    Unlike the campaign CLI (``repro.experiments``), single runs default
    to *no* persistent cache unless ``--cache-dir`` or ``REPRO_CACHE_DIR``
    says otherwise.
    """
    if getattr(args, "no_cache", False):
        engine.configure(None)
    elif getattr(args, "cache_dir", None):
        engine.configure(args.cache_dir,
                         refresh=getattr(args, "refresh", False))
    elif getattr(args, "refresh", False):
        env = os.environ.get("REPRO_CACHE_DIR")
        if env:
            engine.configure(env, refresh=True)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON "
                             "(chrome://tracing / Perfetto) to PATH")
    parser.add_argument("--obs-dump", metavar="PATH", default=None,
                        help="write the structured JSONL event log to PATH")
    parser.add_argument("--progress", action="store_true",
                        help="narrate span completions on stderr")


def _obs_begin(args) -> None:
    """Enable the registry if any observability flag was given."""
    if (getattr(args, "trace", None) or getattr(args, "obs_dump", None)
            or getattr(args, "progress", False)):
        OBS.enable()
        if args.progress:
            ProgressReporter().attach(OBS)


def _obs_end(args) -> None:
    if getattr(args, "trace", None):
        path = write_chrome_trace(OBS, args.trace)
        print(f"chrome trace written to {path}", file=sys.stderr)
    if getattr(args, "obs_dump", None):
        path = write_jsonl(OBS, args.obs_dump)
        print(f"obs event log written to {path}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MOCA reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the workload suite").set_defaults(
        fn=_cmd_apps)
    sub.add_parser("systems", help="list system configs").set_defaults(
        fn=_cmd_systems)

    p = sub.add_parser("profile", help="offline-profile one application")
    p.add_argument("app", choices=sorted(APPS))
    p.add_argument("--input", default="train", choices=("train", "ref"))
    p.add_argument("--accesses", type=int, default=120_000)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("run", help="run one application on one system")
    p.add_argument("app", choices=sorted(APPS))
    p.add_argument("--system", default="Heter-config1",
                   choices=sorted(ALL_SYSTEMS))
    p.add_argument("--policy", default="moca", metavar="POLICY",
                   help="registered placement policy, optionally "
                        "parameterized as name:k=v,... (e.g. "
                        "'knapsack:fast_mb=128'); registered: "
                        f"{', '.join(policy_names())}")
    p.add_argument("--accesses", type=int, default=120_000)
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile and print the top hotspots")
    _add_obs_flags(p)
    _add_cache_flags(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("runmix", help="run a 4-app workload set")
    p.add_argument("mix", choices=MIX_NAMES)
    p.add_argument("--system", default="Heter-config1",
                   choices=sorted(ALL_SYSTEMS))
    p.add_argument("--policy", default="moca", metavar="POLICY",
                   help="registered placement policy, optionally "
                        "parameterized as name:k=v,... (e.g. "
                        "'knapsack:fast_mb=128'); registered: "
                        f"{', '.join(policy_names())}")
    p.add_argument("--accesses", type=int, default=60_000)
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile and print the top hotspots")
    _add_obs_flags(p)
    _add_cache_flags(p)
    p.set_defaults(fn=_cmd_runmix)

    p = sub.add_parser("experiments",
                       help="regenerate paper tables/figures")
    p.add_argument("rest", nargs=argparse.REMAINDER)
    p.set_defaults(fn=_cmd_experiments)

    args = parser.parse_args(argv)
    _obs_begin(args)
    _cache_begin(args)
    try:
        return args.fn(args)
    finally:
        _obs_end(args)
        engine.reset()


if __name__ == "__main__":
    sys.exit(main())
