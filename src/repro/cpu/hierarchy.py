"""L1 + unified L2 cache hierarchy: access trace → LLC miss stream.

Cache behaviour does not depend on the memory backend, so the expensive
filtering pass runs once per (application, input) and the resulting
:class:`MissStream` is replayed against every memory system under study —
the same economy gem5 users get from warmed checkpoints.

Table I parameters: 64 KB split L1 (we model the D-side; instruction
fetches are folded into the code segment's accesses), 512 KB 16-way
unified L2, 64 B lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cpu.cache import SetAssocCache

#: Miss-record kinds.
KIND_LOAD = 0
KIND_STORE = 1
KIND_WRITEBACK = 2
KIND_PREFETCH = 3

#: Sentinel object ids for non-heap segments (paper Sec. VI-D).
SEG_STACK = -1
SEG_CODE = -2
SEG_GLOBAL = -3


@dataclass
class MissStream:
    """LLC miss/writeback stream as parallel numpy arrays.

    Attributes:
        inst: Cumulative retired-instruction count at each record.
        vline: Line-aligned virtual address.
        obj_id: Owning memory object (>=0) or segment sentinel (<0).
        dep: True when the miss depends on the previous miss (serial
            pointer-chase step) and therefore cannot overlap with it.
        kind: KIND_LOAD / KIND_STORE / KIND_WRITEBACK.
        total_instructions: Trace length in instructions.
    """

    inst: np.ndarray
    vline: np.ndarray
    obj_id: np.ndarray
    dep: np.ndarray
    kind: np.ndarray
    total_instructions: int

    def __len__(self) -> int:
        return len(self.inst)

    def slice(self, start: int, stop: int) -> "MissStream":
        """A view of records [start, stop) sharing the parent's arrays.

        ``total_instructions`` becomes the last record's instruction
        count, so sliced replays add no compute tail except on the final
        slice (epoch-based drivers handle the tail themselves).
        """
        total = int(self.inst[stop - 1]) if stop > start else 0
        return MissStream(
            inst=self.inst[start:stop],
            vline=self.vline[start:stop],
            obj_id=self.obj_id[start:stop],
            dep=self.dep[start:stop],
            kind=self.kind[start:stop],
            total_instructions=total,
        )

    @property
    def demand_mask(self) -> np.ndarray:
        return self.kind <= KIND_STORE

    def kind_counts(self) -> tuple[int, int, int, int]:
        """``(n_loads, n_stores, n_writebacks, n_prefetches)``.

        One vectorized bincount; the replay fast path uses this for its
        deferred record-kind accounting instead of per-record increments.
        """
        counts = np.bincount(self.kind, minlength=4)
        return (int(counts[KIND_LOAD]), int(counts[KIND_STORE]),
                int(counts[KIND_WRITEBACK]), int(counts[KIND_PREFETCH]))

    def mpki(self) -> float:
        """Demand LLC misses per kilo-instruction for the whole stream."""
        if self.total_instructions == 0:
            return 0.0
        return int(self.demand_mask.sum()) * 1000.0 / self.total_instructions


@dataclass
class CacheStats:
    """Aggregate + per-object results of the filtering pass."""

    total_instructions: int
    l1_hits: int
    l1_misses: int
    l2_hits: int
    l2_misses: int
    n_writebacks: int
    #: obj_id → [accesses, l2 demand misses]
    per_object: dict[int, list[int]] = field(default_factory=dict)

    @property
    def l2_mpki(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.l2_misses * 1000.0 / self.total_instructions

    def object_mpki(self, obj_id: int) -> float:
        if self.total_instructions == 0 or obj_id not in self.per_object:
            return 0.0
        return self.per_object[obj_id][1] * 1000.0 / self.total_instructions


@dataclass
class _ReferenceFilterState:
    """Carried accumulator for the windowed reference filter loop.

    The scalar loop's cross-window state, made explicit so a chunked
    trace can stream through ``_filter_window_reference`` shard by
    shard: the instruction offset fixed at the warmup boundary,
    per-object tallies (dict insertion order = global first-touch
    order), per-window record arrays, and the prefetcher's outstanding
    runahead lines.  Tag stores and hit/miss counters live on the
    hierarchy itself, exactly as in the monolithic loop.
    """

    n_seen: int = 0
    inst_offset: int = 0
    last_inst: int = 0
    n_writebacks: int = 0
    per_object: dict[int, list[int]] = field(default_factory=dict)
    parts: list[tuple] = field(default_factory=list)
    pf_lines: set[int] = field(default_factory=set)

    def finalize(self, hierarchy: "CacheHierarchy",
                 ) -> tuple[MissStream, "CacheStats"]:
        if self.parts:
            inst, vline, obj, dep, kind = (
                np.concatenate(c) for c in zip(*self.parts))
        else:
            inst = vline = np.empty(0, dtype=np.int64)
            obj = np.empty(0, dtype=np.int32)
            dep = np.empty(0, dtype=bool)
            kind = np.empty(0, dtype=np.int8)
        total_inst = (self.last_inst - self.inst_offset) if self.n_seen else 0
        stream = MissStream(inst=inst, vline=vline, obj_id=obj, dep=dep,
                            kind=kind, total_instructions=total_inst)
        stats = CacheStats(
            total_instructions=total_inst,
            l1_hits=hierarchy.l1.n_hits,
            l1_misses=hierarchy.l1.n_misses,
            l2_hits=hierarchy.l2.n_hits,
            l2_misses=hierarchy.l2.n_misses,
            n_writebacks=self.n_writebacks,
            per_object=self.per_object,
        )
        return stream, stats


class CacheHierarchy:
    """Filters an access trace through L1D + L2, emitting the miss stream."""

    def __init__(self, l1_size: int = 64 * 1024, l1_assoc: int = 2,
                 l2_size: int = 512 * 1024, l2_assoc: int = 16,
                 line_bytes: int = 64, prefetcher=None):
        self.l1 = SetAssocCache(l1_size, l1_assoc, line_bytes, name="L1D")
        self.l2 = SetAssocCache(l2_size, l2_assoc, line_bytes, name="L2")
        self.line_bytes = line_bytes
        self.prefetcher = prefetcher
        self.n_prefetches = 0
        self._line_shift = (line_bytes - 1).bit_length()
        #: Which engine the last ``filter_trace`` call used
        #: ("kernel" / "reference"); feeds run provenance.
        self.last_engine: str | None = None

    def filter_trace(self, trace: "AccessTrace", warmup_frac: float = 0.2,
                     *, fast_path: bool | None = None,
                     ) -> tuple[MissStream, CacheStats]:
        """Run every access through the hierarchy.

        The first ``warmup_frac`` of the trace warms the caches without
        contributing statistics or miss records — the stand-in for the
        paper's fast-forward to SimPoints before measurement windows.
        Note the boundary floors: a nonzero ``warmup_frac`` on a tiny
        trace can yield ``int(len * frac) == 0`` warmup accesses, which
        is *defined* to behave exactly like ``warmup_frac=0.0`` (no
        exclusion window, instruction numbering from the trace origin).
        Writebacks of dirty L2 victims become KIND_WRITEBACK records whose
        object is resolved from the victim's address via the trace's
        object map (vectorized at the end).

        ``fast_path`` selects the engine per the
        :class:`~repro.cpu.core.InOrderWindowCore` convention: ``None``
        defers to the process default (``REPRO_FAST_PATH``), ``False``
        forces the reference loop.  Both engines are bit-identical
        (pinned by ``tests/test_filter_parity.py``); hierarchies with a
        prefetcher always use the reference loop, because runahead fills
        break the kernel's per-set batching.
        """
        if not 0.0 <= warmup_frac < 1.0:
            raise ValueError("warmup_frac must be in [0, 1)")
        warm_until = int(len(trace) * warmup_frac)
        from repro.cpu import filter_kernel

        use_kernel = (fast_path if fast_path is not None
                      else filter_kernel.fast_path_default())
        if use_kernel and self.prefetcher is None:
            self.last_engine = "kernel"
            return filter_kernel.run_filter(trace, self, warm_until)
        self.last_engine = "reference"
        return self._filter_trace_reference(trace, warm_until)

    def filter_chunked(self, chunked, warmup_frac: float = 0.2,
                       *, fast_path: bool | None = None,
                       ) -> tuple[MissStream, CacheStats]:
        """Filter a chunked trace window-by-window in bounded RSS.

        ``chunked`` is a :class:`repro.trace.chunked.ChunkedTrace` (or
        anything with ``__len__`` and a ``windows()`` iterator of
        :class:`AccessTrace` windows carrying global ``inst`` counts).
        The result — stream rows, stats, final tag-store state — is
        byte-identical to :meth:`filter_trace` on the materialized
        trace, for both engines: tag stores already live on the
        hierarchy, and the remaining cross-window state is carried in
        an explicit accumulator.  Peak RSS is one window plus the
        accumulated miss records.
        """
        if not 0.0 <= warmup_frac < 1.0:
            raise ValueError("warmup_frac must be in [0, 1)")
        warm_until = int(len(chunked) * warmup_frac)
        from repro.cpu import filter_kernel

        use_kernel = (fast_path if fast_path is not None
                      else filter_kernel.fast_path_default())
        if use_kernel and self.prefetcher is None:
            self.last_engine = "kernel"
            acc = filter_kernel.FilterAccumulator()
            for window in chunked.windows():
                filter_kernel.run_filter_window(window, self, warm_until, acc)
            return filter_kernel.finalize_filter(self, acc)
        self.last_engine = "reference"
        state = _ReferenceFilterState()
        for window in chunked.windows():
            self._filter_window_reference(window, warm_until, state)
        return state.finalize(self)

    def _filter_trace_reference(self, trace: "AccessTrace", warm_until: int,
                                ) -> tuple[MissStream, CacheStats]:
        """The retained per-access reference loop (executable spec).

        One window through the chunked machinery — the scalar loop
        itself lives in :meth:`_filter_window_reference` so monolithic
        and windowed filtering share one specification.
        """
        state = _ReferenceFilterState()
        self._filter_window_reference(trace, warm_until, state)
        return state.finalize(self)

    def _filter_window_reference(self, trace: "AccessTrace",
                                 warm_until: int,
                                 state: _ReferenceFilterState) -> None:
        """Run one trace window through the scalar loop, carrying state.

        ``warm_until`` is the *global* warmup boundary; the window's
        position comes from ``state.n_seen``.
        """
        l1, l2 = self.l1, self.l2
        shift = self._line_shift
        # tolist() turns the numpy columns into plain ints once; iterating
        # numpy scalars is ~10x slower in this dict-heavy loop.
        insts = trace.inst.tolist()
        vaddrs = trace.vaddr.tolist()
        writes = trace.is_write.tolist()
        objs = trace.obj_id.tolist()
        deps = trace.dep.tolist()

        out_inst: list[int] = []
        out_vline: list[int] = []
        out_obj: list[int] = []
        out_dep: list[bool] = []
        out_kind: list[int] = []
        wb_positions: list[int] = []  # indices into out_* needing obj resolution

        per_object = state.per_object
        n_writebacks = 0
        # Warmup boundary in window coordinates.  boundary <= 0 — whether
        # from warmup_frac == 0.0, a nonzero fraction flooring to zero on
        # a tiny trace, or a window past the boundary — means no exclusion
        # window here; boundary > n means the whole window warms.
        boundary = warm_until - state.n_seen
        # Lines brought in by the prefetcher and not yet consumed; a
        # demand hit on one advances the stream (runahead on hit).
        pf_lines = state.pf_lines

        def _issue_prefetches(obj: int, line: int, inst: int) -> None:
            for pf_addr in self.prefetcher.on_miss(obj, line):
                if pf_addr < 0 or l2.contains(pf_addr):
                    continue
                # Never run past the owning region: a prefetch into a
                # guard page or another object would touch memory the OS
                # has not mapped for this stream.
                region = trace.layout.by_id(obj)
                if not (region.vbase <= pf_addr <= region.vend - 64):
                    continue
                pf_evicted = l2.fill(pf_addr)
                pf_line = (pf_addr >> shift) << shift
                pf_lines.add(pf_line)
                self.n_prefetches += 1
                out_inst.append(inst - state.inst_offset)
                out_vline.append(pf_line)
                out_obj.append(obj)
                out_dep.append(False)
                out_kind.append(KIND_PREFETCH)
                nonlocal n_writebacks
                if pf_evicted is not None and pf_evicted.dirty:
                    n_writebacks += 1
                    out_inst.append(inst - state.inst_offset)
                    out_vline.append(pf_evicted.line_addr)
                    out_obj.append(0)
                    out_dep.append(False)
                    out_kind.append(KIND_WRITEBACK)
                    wb_positions.append(len(out_obj) - 1)

        for i, (inst, vaddr, is_write, obj, dep) in enumerate(
                zip(insts, vaddrs, writes, objs, deps)):
            if i < boundary:
                # Warm the tag stores only; no statistics, no records.
                hit, _ = l1.access(vaddr, is_write)
                if not hit:
                    l2.access(vaddr, is_write)
                if i == boundary - 1:
                    l1.reset_stats()
                    l2.reset_stats()
                    # Record instructions renumber from the boundary access.
                    state.inst_offset = int(inst)
                continue
            stats = per_object.get(obj)
            if stats is None:
                stats = per_object[obj] = [0, 0]
            stats[0] += 1
            hit, _ = l1.access(vaddr, is_write)
            if hit:
                continue
            # L1 miss: look up L2.  (L1 victims are clean towards L2 in this
            # model: stores mark dirty in L1 and the dirtiness is propagated
            # when the line is re-fetched; full L1→L2 writeback modelling
            # changes LLC MPKI by <1% at these sizes and is omitted.)
            l2_hit, evicted = l2.access(vaddr, is_write)
            if l2_hit:
                if self.prefetcher is not None:
                    line = (vaddr >> shift) << shift
                    if line in pf_lines:
                        pf_lines.discard(line)
                        _issue_prefetches(obj, line, inst)
                continue
            stats[1] += 1
            line = (vaddr >> shift) << shift
            out_inst.append(inst - state.inst_offset)
            out_vline.append(line)
            out_obj.append(obj)
            out_dep.append(dep)
            out_kind.append(KIND_STORE if is_write else KIND_LOAD)
            if self.prefetcher is not None:
                _issue_prefetches(obj, line, inst)
            if evicted is not None and evicted.dirty:
                n_writebacks += 1
                out_inst.append(inst - state.inst_offset)
                out_vline.append(evicted.line_addr)
                out_obj.append(0)  # placeholder, resolved below
                out_dep.append(False)
                out_kind.append(KIND_WRITEBACK)
                wb_positions.append(len(out_obj) - 1)

        part_inst = np.asarray(out_inst, dtype=np.int64)
        part_vline = np.asarray(out_vline, dtype=np.int64)
        part_obj = np.asarray(out_obj, dtype=np.int32)
        if wb_positions:
            pos = np.asarray(wb_positions, dtype=np.int64)
            part_obj[pos] = trace.resolve_objects(part_vline[pos])
        state.parts.append((part_inst, part_vline, part_obj,
                            np.asarray(out_dep, dtype=bool),
                            np.asarray(out_kind, dtype=np.int8)))
        state.n_writebacks += n_writebacks
        state.n_seen += len(insts)
        if insts:
            state.last_inst = int(insts[-1])
