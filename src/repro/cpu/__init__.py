"""Core-side timing models: caches, MSHR-limited MLP, ROB stall accounting.

The paper's metrics are produced by an out-of-order core (Table I:
3-wide, 84-entry ROB, 32-entry LQ, 64 KB L1, 512 KB unified L2, 20 MSHRs).
This subpackage reproduces the *memory-facing* behaviour of that core with
a trace-driven interval model:

* :mod:`repro.cpu.cache` — set-associative write-back caches;
* :mod:`repro.cpu.hierarchy` — the L1+L2 hierarchy that turns an access
  trace into an LLC-miss stream with per-object miss counts;
* :mod:`repro.cpu.core` — the interval core that replays the miss stream
  against a memory system, overlapping misses up to the MSHR/ROB/MLP
  limits and accounting ROB-head stall cycles per load miss — the paper's
  second classification metric (Mutlu et al., IEEE Micro'06).
"""

from repro.cpu.cache import SetAssocCache
from repro.cpu.hierarchy import CacheHierarchy, MissStream, CacheStats
from repro.cpu.core import CoreParams, CoreResult, InOrderWindowCore
from repro.cpu.prefetch import StridePrefetcher

__all__ = [
    "SetAssocCache",
    "CacheHierarchy",
    "MissStream",
    "CacheStats",
    "CoreParams",
    "CoreResult",
    "InOrderWindowCore",
    "StridePrefetcher",
]
