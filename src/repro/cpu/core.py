"""Trace-driven interval core model with ROB-head stall accounting.

The model replays an LLC miss stream (``repro.cpu.hierarchy``) against a
memory system.  Between misses the core retires instructions at a steady
IPC; around misses it behaves like the paper's OoO core (Table I):

* independent misses overlap while they fit in the reorder-buffer window
  and there are MSHRs left — an *episode* of memory-level parallelism;
* a dependent miss (serial pointer-chase step) cannot enter the episode
  of its producer and starts a new one;
* the ROB head blocks, in program order, on each load miss that has not
  completed — exactly the "ROB head stall cycles per load miss" metric
  the paper profiles (Sec. III-A, after Mutlu et al.).

The episode structure is what makes object-level classification
meaningful: a high-MPKI object whose misses overlap (streaming) exposes
few stall cycles per miss and wants bandwidth; a chase object exposes the
full memory latency on every miss and wants RLDRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cpu.hierarchy import (
    KIND_LOAD,
    KIND_PREFETCH,
    KIND_STORE,
    KIND_WRITEBACK,
    MissStream,
)
from repro.memctrl.request import MemRequest
from repro.memctrl.system import MemorySystem
from repro.obs.registry import OBS


@dataclass(frozen=True)
class CoreParams:
    """Interval-core parameters (defaults from paper Table I)."""

    ipc: float = 1.0
    rob_size: int = 84
    lq_size: int = 32
    mshr: int = 20
    #: Cycles of non-demand (prefetch/writeback) completion backlog the
    #: core may run ahead of — a finite prefetch/write queue.  Without
    #: the bound, background traffic would pile up in the bank timings
    #: indefinitely while the core races ahead.
    backlog: int = 256

    @property
    def max_overlap(self) -> int:
        """Maximum demand misses in flight at once."""
        return min(self.mshr, self.lq_size)


@dataclass
class CoreResult:
    """Timing outcome of one core's full trace replay."""

    core_id: int
    cycles: int
    total_instructions: int
    n_demand: int
    n_load_misses: int
    n_writebacks: int
    n_prefetches: int
    n_episodes: int
    mem_access_cycles: int
    load_stall_cycles: int
    stall_by_obj: dict[int, int] = field(default_factory=dict)
    load_misses_by_obj: dict[int, int] = field(default_factory=dict)
    demand_by_obj: dict[int, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.total_instructions / self.cycles if self.cycles else 0.0

    @property
    def stall_per_load_miss(self) -> float:
        """Whole-program ROB head stall cycles per load miss."""
        if not self.n_load_misses:
            return 0.0
        return self.load_stall_cycles / self.n_load_misses

    def object_stall_per_miss(self, obj_id: int) -> float:
        n = self.load_misses_by_obj.get(obj_id, 0)
        if not n:
            return 0.0
        return self.stall_by_obj.get(obj_id, 0) / n

    def to_dict(self) -> dict:
        """Lossless JSON-compatible form (cache/artefact round-trips).

        The per-object maps keep integer keys in memory; JSON stringifies
        them, and :meth:`from_dict` converts them back.
        """
        return {
            "core_id": self.core_id,
            "cycles": self.cycles,
            "total_instructions": self.total_instructions,
            "n_demand": self.n_demand,
            "n_load_misses": self.n_load_misses,
            "n_writebacks": self.n_writebacks,
            "n_prefetches": self.n_prefetches,
            "n_episodes": self.n_episodes,
            "mem_access_cycles": self.mem_access_cycles,
            "load_stall_cycles": self.load_stall_cycles,
            "stall_by_obj": {str(k): v for k, v in self.stall_by_obj.items()},
            "load_misses_by_obj": {str(k): v for k, v
                                   in self.load_misses_by_obj.items()},
            "demand_by_obj": {str(k): v for k, v
                              in self.demand_by_obj.items()},
            # derived, for human readers of the JSON; from_dict ignores it
            "ipc": self.ipc,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoreResult":
        """Inverse of :meth:`to_dict` (tolerates JSON's string keys)."""
        return cls(
            core_id=data["core_id"],
            cycles=data["cycles"],
            total_instructions=data["total_instructions"],
            n_demand=data["n_demand"],
            n_load_misses=data["n_load_misses"],
            n_writebacks=data["n_writebacks"],
            n_prefetches=data["n_prefetches"],
            n_episodes=data["n_episodes"],
            mem_access_cycles=data["mem_access_cycles"],
            load_stall_cycles=data["load_stall_cycles"],
            stall_by_obj={int(k): v
                          for k, v in data.get("stall_by_obj", {}).items()},
            load_misses_by_obj={
                int(k): v
                for k, v in data.get("load_misses_by_obj", {}).items()},
            demand_by_obj={
                int(k): v for k, v in data.get("demand_by_obj", {}).items()},
        )


class InOrderWindowCore:
    """Steppable per-core replay state (multicore drivers interleave cores).

    Args:
        stream: LLC miss stream for this core's application.
        groups: Per-record channel-group index (from the page mapping).
        gaddrs: Per-record group-local physical line address.
        params: Core parameters.
        core_id: Identifier stamped into requests.
        start_cycle: Initial cycle (0 unless modelling staggered starts).
        inst_prev: Instruction count already retired before this stream
            slice (used by epoch-sliced replays, e.g. page migration).
    """

    def __init__(self, stream: MissStream, groups: np.ndarray, gaddrs: np.ndarray,
                 params: CoreParams | None = None, core_id: int = 0,
                 start_cycle: int = 0, inst_prev: int = 0):
        if len(groups) != len(stream) or len(gaddrs) != len(stream):
            raise ValueError("translation arrays must match the miss stream length")
        self.params = params or CoreParams()
        self.core_id = core_id
        self.total_instructions = stream.total_instructions
        # Plain-int lists: the episode loop is dict/int-bound, numpy scalar
        # extraction would dominate (HPC guide: profile-driven choice).
        self._inst = stream.inst.tolist()
        self._dep = stream.dep.tolist()
        self._kind = stream.kind.tolist()
        self._obj = stream.obj_id.tolist()
        self._group = groups.tolist()
        self._gaddr = gaddrs.tolist()
        self._n = len(self._inst)
        self._idx = 0
        self._cycle = start_cycle
        self._inst_prev = inst_prev
        self.result = CoreResult(
            core_id=core_id, cycles=start_cycle,
            total_instructions=self.total_instructions,
            n_demand=0, n_load_misses=0, n_writebacks=0, n_prefetches=0,
            n_episodes=0, mem_access_cycles=0, load_stall_cycles=0,
        )

    # ---- stepping interface -------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._idx >= self._n

    def peek_next_issue(self) -> int:
        """Earliest cycle at which this core's next episode head issues."""
        if self.finished:
            return 1 << 62
        gap = self._inst[self._idx] - self._inst_prev
        return self._cycle + int(gap / self.params.ipc)

    def run_episode(self, memsys: MemorySystem) -> int:
        """Issue one MLP episode against ``memsys``; returns new core cycle."""
        p = self.params
        inst, dep, kind = self._inst, self._dep, self._kind
        obj, group, gaddr = self._obj, self._group, self._gaddr
        i = self._idx
        head_inst = inst[i]
        issue0 = self._cycle + int((head_inst - self._inst_prev) / p.ipc)

        # Gather the episode: head record plus every subsequent record that
        # fits the ROB window, has an MSHR, and is not a dependent miss.
        # Non-demand records (writebacks, prefetches) ride along but the
        # total batch is bounded — queues are finite and the multicore
        # driver interleaves cores at episode granularity.
        batch_cap = 4 * p.max_overlap
        j = i
        n_demand = 0
        batch: list[MemRequest] = []
        members: list[int] = []
        while j < self._n:
            if len(members) >= batch_cap:
                break
            k = kind[j]
            is_demand = k == KIND_LOAD or k == KIND_STORE
            if j > i and is_demand:
                if dep[j]:
                    break
                if inst[j] - head_inst > p.rob_size:
                    break
                if n_demand >= p.max_overlap:
                    break
            issue = issue0 + int((inst[j] - head_inst) / p.ipc)
            batch.append(MemRequest(
                group=group[j], gaddr=gaddr[j], issue_cycle=issue,
                is_write=(k == KIND_STORE or k == KIND_WRITEBACK),
                demand=is_demand,
                obj_id=obj[j], core_id=self.core_id,
            ))
            members.append(j)
            n_demand += is_demand
            j += 1

        memsys.service_batch(batch)

        # Program-order ROB-head accounting over demand loads.
        res = self.result
        t = issue0
        for req, k in zip(batch, (kind[m] for m in members)):
            if k == KIND_WRITEBACK:
                res.n_writebacks += 1
                continue
            if k == KIND_PREFETCH:
                res.n_prefetches += 1
                continue
            res.n_demand += 1
            res.mem_access_cycles += req.done_cycle - req.issue_cycle
            res.demand_by_obj[req.obj_id] = res.demand_by_obj.get(req.obj_id, 0) + 1
            if k == KIND_LOAD:
                stall = req.done_cycle - max(t, req.issue_cycle)
                if stall < 0:
                    stall = 0
                if req.done_cycle > t:
                    t = req.done_cycle
                res.n_load_misses += 1
                res.load_stall_cycles += stall
                res.stall_by_obj[req.obj_id] = res.stall_by_obj.get(req.obj_id, 0) + stall
                res.load_misses_by_obj[req.obj_id] = (
                    res.load_misses_by_obj.get(req.obj_id, 0) + 1
                )

        res.n_episodes += 1
        last = members[-1]
        tail_done = max(r.done_cycle for r in batch)
        self._cycle = max(t, issue0 + int((inst[last] - head_inst) / p.ipc),
                          tail_done - p.backlog)
        self._inst_prev = inst[last]
        self._idx = j
        if self.finished:
            tail = self.total_instructions - self._inst_prev
            self._cycle += int(tail / p.ipc)
            res.cycles = self._cycle
        return self._cycle

    def run_to_completion(self, memsys: MemorySystem) -> CoreResult:
        """Single-core convenience: drain the whole stream."""
        if self._n == 0:
            self._cycle += int(self.total_instructions / self.params.ipc)
            self.result.cycles = self._cycle
            self.publish_obs()
            return self.result
        while not self.finished:
            self.run_episode(memsys)
        self.publish_obs()
        return self.result

    def publish_obs(self) -> None:
        """Publish this core's retirement/stall counters to the registry.

        Called once per completed replay (never inside the episode loop)
        so the hot path carries no per-episode observability cost.
        """
        if not OBS.enabled:
            return
        r = self.result
        prefix = f"core{self.core_id}"
        OBS.add(f"{prefix}.instructions_retired", r.total_instructions)
        OBS.add(f"{prefix}.cycles", r.cycles)
        OBS.add(f"{prefix}.episodes", r.n_episodes)
        OBS.add(f"{prefix}.demand_requests", r.n_demand)
        OBS.add(f"{prefix}.load_misses", r.n_load_misses)
        OBS.add(f"{prefix}.stall_cycles", r.load_stall_cycles)
        OBS.add(f"{prefix}.mem_access_cycles", r.mem_access_cycles)
