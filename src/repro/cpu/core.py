"""Trace-driven interval core model with ROB-head stall accounting.

The model replays an LLC miss stream (``repro.cpu.hierarchy``) against a
memory system.  Between misses the core retires instructions at a steady
IPC; around misses it behaves like the paper's OoO core (Table I):

* independent misses overlap while they fit in the reorder-buffer window
  and there are MSHRs left — an *episode* of memory-level parallelism;
* a dependent miss (serial pointer-chase step) cannot enter the episode
  of its producer and starts a new one;
* the ROB head blocks, in program order, on each load miss that has not
  completed — exactly the "ROB head stall cycles per load miss" metric
  the paper profiles (Sec. III-A, after Mutlu et al.).

The episode structure is what makes object-level classification
meaningful: a high-MPKI object whose misses overlap (streaming) exposes
few stall cycles per miss and wants bandwidth; a chase object exposes the
full memory latency on every miss and wants RLDRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import cached_property

import numpy as np

from repro.cpu.hierarchy import (
    KIND_LOAD,
    KIND_PREFETCH,
    KIND_STORE,
    KIND_WRITEBACK,
    MissStream,
)
from repro.memctrl.request import MemRequest
from repro.memctrl.system import MemorySystem
from repro.obs.registry import OBS


@dataclass(frozen=True)
class CoreParams:
    """Interval-core parameters (defaults from paper Table I)."""

    ipc: float = 1.0
    rob_size: int = 84
    lq_size: int = 32
    mshr: int = 20
    #: Cycles of non-demand (prefetch/writeback) completion backlog the
    #: core may run ahead of — a finite prefetch/write queue.  Without
    #: the bound, background traffic would pile up in the bank timings
    #: indefinitely while the core races ahead.
    backlog: int = 256

    @property
    def max_overlap(self) -> int:
        """Maximum demand misses in flight at once."""
        return min(self.mshr, self.lq_size)

    @cached_property
    def ipc_ratio(self) -> tuple[int, int]:
        """IPC as an exact rational ``(num, den)``.

        ``ipc=0.1`` arrives as the nearest binary double, so computing
        retire gaps with ``int(gap / ipc)`` silently loses cycles through
        float error (``int(3 / 0.1) == 29``).  Recovering the intended
        rational once (1/10) makes every gap computation exact integer
        arithmetic; denominators are capped at 10**6, far beyond any
        plausible IPC setting.
        """
        frac = Fraction(self.ipc).limit_denominator(1_000_000)
        return frac.numerator, frac.denominator

    def cycles_for(self, instructions: int) -> int:
        """Cycles to retire ``instructions`` at this IPC (exact, floor)."""
        num, den = self.ipc_ratio
        return (instructions * den) // num


@dataclass
class CoreResult:
    """Timing outcome of one core's full trace replay."""

    core_id: int
    cycles: int
    total_instructions: int
    n_demand: int
    n_load_misses: int
    n_writebacks: int
    n_prefetches: int
    n_episodes: int
    mem_access_cycles: int
    load_stall_cycles: int
    stall_by_obj: dict[int, int] = field(default_factory=dict)
    load_misses_by_obj: dict[int, int] = field(default_factory=dict)
    demand_by_obj: dict[int, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.total_instructions / self.cycles if self.cycles else 0.0

    @property
    def stall_per_load_miss(self) -> float:
        """Whole-program ROB head stall cycles per load miss."""
        if not self.n_load_misses:
            return 0.0
        return self.load_stall_cycles / self.n_load_misses

    def object_stall_per_miss(self, obj_id: int) -> float:
        n = self.load_misses_by_obj.get(obj_id, 0)
        if not n:
            return 0.0
        return self.stall_by_obj.get(obj_id, 0) / n

    def to_dict(self) -> dict:
        """Lossless JSON-compatible form (cache/artefact round-trips).

        The per-object maps keep integer keys in memory; JSON stringifies
        them, and :meth:`from_dict` converts them back.
        """
        return {
            "core_id": self.core_id,
            "cycles": self.cycles,
            "total_instructions": self.total_instructions,
            "n_demand": self.n_demand,
            "n_load_misses": self.n_load_misses,
            "n_writebacks": self.n_writebacks,
            "n_prefetches": self.n_prefetches,
            "n_episodes": self.n_episodes,
            "mem_access_cycles": self.mem_access_cycles,
            "load_stall_cycles": self.load_stall_cycles,
            "stall_by_obj": {str(k): v for k, v in self.stall_by_obj.items()},
            "load_misses_by_obj": {str(k): v for k, v
                                   in self.load_misses_by_obj.items()},
            "demand_by_obj": {str(k): v for k, v
                              in self.demand_by_obj.items()},
            # derived, for human readers of the JSON; from_dict ignores it
            "ipc": self.ipc,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoreResult":
        """Inverse of :meth:`to_dict` (tolerates JSON's string keys)."""
        return cls(
            core_id=data["core_id"],
            cycles=data["cycles"],
            total_instructions=data["total_instructions"],
            n_demand=data["n_demand"],
            n_load_misses=data["n_load_misses"],
            n_writebacks=data["n_writebacks"],
            n_prefetches=data["n_prefetches"],
            n_episodes=data["n_episodes"],
            mem_access_cycles=data["mem_access_cycles"],
            load_stall_cycles=data["load_stall_cycles"],
            stall_by_obj={int(k): v
                          for k, v in data.get("stall_by_obj", {}).items()},
            load_misses_by_obj={
                int(k): v
                for k, v in data.get("load_misses_by_obj", {}).items()},
            demand_by_obj={
                int(k): v for k, v in data.get("demand_by_obj", {}).items()},
        )


def _env_fast_default() -> bool:
    """Process-wide fast-path default (``REPRO_FAST_PATH=0`` kills it).

    The kill switch exists so a suspect result can be re-derived on the
    reference implementations fleet-wide — sweeps, profiling replays,
    cache filtering, and migration epochs alike — without editing any
    figure code.  One shared switch: the cache-filter kernel
    (:mod:`repro.cpu.filter_kernel`) reads the same variable.
    """
    from repro.cpu.filter_kernel import fast_path_default

    return fast_path_default()


_NEG = -(1 << 62)


def _seg_exclusive_cummax(values: np.ndarray, seg: np.ndarray) -> np.ndarray:
    """Exclusive running max of ``values`` restarting at each segment.

    ``seg`` is non-decreasing (episode id per element).  Position ``i``
    gets ``max(values[j] for j in same segment, j < i)``, or ``_NEG`` for
    the first element of a segment.  Implemented with the offset trick:
    shift each segment's values into a disjoint band so one global
    ``maximum.accumulate`` cannot leak across segments; falls back to a
    Python loop if the band arithmetic could overflow int64.
    """
    n = len(values)
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    lo = int(values.min())
    span = int(values.max()) - lo + 1
    if int(seg[-1]) * span < (1 << 62):
        band = seg * span
        cm = np.maximum.accumulate((values - lo) + band) - band + lo
        out[0] = _NEG
        out[1:] = cm[:-1]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        np.not_equal(seg[1:], seg[:-1], out=starts[1:])
        out[starts] = _NEG
    else:
        cur = _NEG
        prev_seg = -1
        for i, (s, v) in enumerate(zip(seg.tolist(), values.tolist())):
            if s != prev_seg:
                cur = _NEG
                prev_seg = s
            out[i] = cur
            if v > cur:
                cur = v
    return out


def _sums_by_first_occurrence(objs: np.ndarray,
                              *values: np.ndarray) -> list[dict[int, int]]:
    """Per-object integer sums, dict keys in first-occurrence order.

    Matches the insertion order the reference loop's ``dict.get``
    accumulation produces.  Sums use ``np.add.at`` on int64 (exact);
    ``bincount`` with float weights would not be.
    """
    uniq, first, inv = np.unique(objs, return_index=True, return_inverse=True)
    order = np.argsort(first, kind="stable").tolist()
    out = []
    for v in values:
        sums = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(sums, inv, v)
        out.append({int(uniq[oi]): int(sums[oi]) for oi in order})
    return out


class InOrderWindowCore:
    """Steppable per-core replay state (multicore drivers interleave cores).

    Two interchangeable execution engines sit behind the same stepping
    interface:

    * the **reference path** (``fast_path=False``) — the original
      per-record Python loop, kept as the executable specification;
    * the **fast path** (default) — episode boundaries, per-record issue
      offsets, and channel routing/decode are precomputed as numpy
      arrays at construction, request batches are drained through the
      struct-of-arrays kernel (:mod:`repro.memctrl.batch`), and all
      per-object/per-episode accounting is deferred to one vectorized
      pass at completion.

    The two are **bit-identical** — same :class:`CoreResult`, same
    memory-system counters, same multicore interleave decisions — which
    ``tests/test_parity.py`` enforces over randomized traces.

    Args:
        stream: LLC miss stream for this core's application.
        groups: Per-record channel-group index (from the page mapping).
        gaddrs: Per-record group-local physical line address.
        params: Core parameters.
        core_id: Identifier stamped into requests.
        start_cycle: Initial cycle (0 unless modelling staggered starts).
        inst_prev: Instruction count already retired before this stream
            slice (used by epoch-sliced replays, e.g. page migration).
        fast_path: ``True``/``False`` select the engine; ``None`` (the
            default) defers to the ``REPRO_FAST_PATH`` environment
            variable (on unless set to ``0``).
    """

    def __init__(self, stream: MissStream, groups: np.ndarray, gaddrs: np.ndarray,
                 params: CoreParams | None = None, core_id: int = 0,
                 start_cycle: int = 0, inst_prev: int = 0,
                 fast_path: bool | None = None):
        if len(groups) != len(stream) or len(gaddrs) != len(stream):
            raise ValueError("translation arrays must match the miss stream length")
        self.params = params or CoreParams()
        self.core_id = core_id
        self.fast_path = _env_fast_default() if fast_path is None else bool(fast_path)
        self.total_instructions = stream.total_instructions
        self._n = len(stream)
        self._idx = 0
        self._cycle = start_cycle
        self._inst_prev = inst_prev
        self.result = CoreResult(
            core_id=core_id, cycles=start_cycle,
            total_instructions=self.total_instructions,
            n_demand=0, n_load_misses=0, n_writebacks=0, n_prefetches=0,
            n_episodes=0, mem_access_cycles=0, load_stall_cycles=0,
        )
        if self.fast_path:
            self._init_fast(stream, groups, gaddrs, inst_prev)
        else:
            # Plain-int lists: the episode loop is dict/int-bound, numpy
            # scalar extraction would dominate (profile-driven choice).
            self._inst = stream.inst.tolist()
            self._dep = stream.dep.tolist()
            self._kind = stream.kind.tolist()
            self._obj = stream.obj_id.tolist()
            self._group = groups.tolist()
            self._gaddr = gaddrs.tolist()

    # ---- fast-path precompute -----------------------------------------------------

    def _init_fast(self, stream: MissStream, groups: np.ndarray,
                   gaddrs: np.ndarray, inst_prev: int) -> None:
        """Vectorized episode segmentation + issue-offset precompute.

        Episode membership depends only on the stream and the core
        parameters — never on memory timing — so every boundary the
        reference loop would discover record-by-record is derivable up
        front: for each candidate head ``h`` the earliest break position
        among (a) the batch cap, (b) the next dependent demand miss,
        (c) the first demand outside the ROB window, and (d) the demand
        that would exceed the MSHR overlap, all via ``searchsorted``.
        """
        p = self.params
        num, den = p.ipc_ratio
        self._f_stream = stream
        self._f_groups = np.asarray(groups)
        self._f_gaddrs = np.asarray(gaddrs)
        self._f_tables = None
        self._f_ep = 0
        n = self._n
        if n == 0:
            self._f_nep = 0
            self._f_tail = (self.total_instructions * den) // num
            return
        inst = stream.inst
        kind = stream.kind
        demand = kind <= KIND_STORE
        dep = np.asarray(stream.dep, dtype=bool)
        mo = p.max_overlap
        cap = 4 * mo
        idx = np.arange(n, dtype=np.int64)
        break_at = np.minimum(idx + max(cap, 1), n)
        dd = np.flatnonzero(demand)
        pp = np.flatnonzero(demand & dep)
        if len(pp):
            pos = np.searchsorted(pp, idx, side="right")
            b2 = np.where(pos < len(pp), pp[np.minimum(pos, len(pp) - 1)], n)
            np.minimum(break_at, b2, out=break_at)
        if len(dd):
            inst_dd = inst[dd]
            pos = np.searchsorted(inst_dd, inst + p.rob_size, side="right")
            b3 = np.where(pos < len(dd), dd[np.minimum(pos, len(dd) - 1)], n)
            np.minimum(break_at, b3, out=break_at)
            pos4 = np.searchsorted(dd, idx, side="left") + mo
            safe = np.minimum(pos4, len(dd) - 1)
            b4 = np.where(pos4 < len(dd), dd[safe], n)
            # mo == 0 degenerates: a demand head would name itself; the
            # reference loop breaks at the *next* demand instead.
            at_head = (pos4 < len(dd)) & (b4 == idx)
            if at_head.any():
                pos4b = pos4 + 1
                safe = np.minimum(pos4b, len(dd) - 1)
                b4 = np.where(at_head,
                              np.where(pos4b < len(dd), dd[safe], n), b4)
            np.minimum(break_at, b4, out=break_at)
        break_l = break_at.tolist()
        heads = []
        h = 0
        while h < n:
            heads.append(h)
            h = break_l[h]
        ep_start = np.asarray(heads, dtype=np.int64)
        ep_end = np.append(ep_start[1:], n)
        nep = len(heads)
        ep_of = np.repeat(np.arange(nep, dtype=np.int64), ep_end - ep_start)
        head_inst = inst[ep_start].astype(np.int64)
        off = ((inst.astype(np.int64) - head_inst[ep_of]) * den) // num
        prev_inst = np.empty(nep, dtype=np.int64)
        prev_inst[0] = inst_prev
        if nep > 1:
            prev_inst[1:] = inst[ep_start[1:] - 1]
        headgap = ((head_inst - prev_inst) * den) // num
        self._f_nep = nep
        self._f_ep_of = ep_of
        self._f_off_np = off
        self._f_ep_start = ep_start.tolist()
        self._f_ep_end = ep_end.tolist()
        self._f_headgap = headgap.tolist()
        self._f_off = off.tolist()
        self._f_off_last = off[ep_end - 1].tolist()
        self._f_ep_issue0 = [0] * nep
        self._f_tail = ((self.total_instructions - int(inst[n - 1])) * den) // num

    def _tables(self, memsys: MemorySystem):
        tb = self._f_tables
        if tb is None or tb.memsys is not memsys:
            from repro.memctrl.batch import ReplayTables

            tb = ReplayTables(memsys, self._f_groups, self._f_gaddrs,
                              self._f_stream.kind)
            self._f_tables = tb
        return tb

    # ---- stepping interface -------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._idx >= self._n

    def peek_next_issue(self) -> int:
        """Earliest cycle at which this core's next episode head issues."""
        if self.finished:
            return 1 << 62
        if self.fast_path:
            return self._cycle + self._f_headgap[self._f_ep]
        gap = self._inst[self._idx] - self._inst_prev
        return self._cycle + self.params.cycles_for(gap)

    def run_episode(self, memsys: MemorySystem) -> int:
        """Issue one MLP episode against ``memsys``; returns new core cycle."""
        if self.fast_path:
            return self._run_episode_fast(memsys)
        return self._run_episode_ref(memsys)

    def _run_episode_fast(self, memsys: MemorySystem) -> int:
        """Drain one precomputed episode through the SoA batch kernel."""
        k = self._f_ep
        s = self._f_ep_start[k]
        e = self._f_ep_end[k]
        issue0 = self._cycle + self._f_headgap[k]
        self._f_ep_issue0[k] = issue0
        load_done_max, done_max = self._tables(memsys).drain_episode(
            s, e, issue0, self._f_off)
        t = load_done_max if load_done_max > issue0 else issue0
        c2 = issue0 + self._f_off_last[k]
        if c2 > t:
            t = c2
        c3 = done_max - self.params.backlog
        self._cycle = c3 if c3 > t else t
        self._f_ep = k + 1
        self._idx = e
        if self._idx >= self._n:
            self._finalize_fast()
        return self._cycle

    def _finalize_fast(self) -> None:
        """One vectorized accounting pass, bit-equal to the reference loop.

        Also flushes the deferred per-record memory-system statistics the
        SoA kernel withheld during the replay (module/controller counters,
        latency histograms) — nothing reads those mid-replay, so batching
        them here is observation-equivalent to the reference's live
        updates.
        """
        res = self.result
        self._cycle += self._f_tail
        res.cycles = self._cycle
        res.n_episodes = self._f_nep
        stream = self._f_stream
        n_load, n_store, n_wb, n_pf = stream.kind_counts()
        res.n_demand = n_load + n_store
        res.n_load_misses = n_load
        res.n_writebacks = n_wb
        res.n_prefetches = n_pf
        tb = self._f_tables
        if tb is None:
            return
        self._inst_prev = int(stream.inst[self._n - 1])
        tb.flush_stats()
        kind = stream.kind
        obj = stream.obj_id.astype(np.int64)
        done = np.asarray(tb.done_l, dtype=np.int64)
        ep_issue0 = np.asarray(self._f_ep_issue0, dtype=np.int64)
        issue = ep_issue0[self._f_ep_of] + self._f_off_np
        dsel = np.flatnonzero(kind <= KIND_STORE)
        if len(dsel):
            res.mem_access_cycles = int((done[dsel] - issue[dsel]).sum())
            res.demand_by_obj, = _sums_by_first_occurrence(
                obj[dsel], np.ones(len(dsel), dtype=np.int64))
        ld = np.flatnonzero(kind == KIND_LOAD)
        if len(ld):
            ld_done = done[ld]
            ld_seg = self._f_ep_of[ld]
            # ROB-head time just before each load: the episode's issue0,
            # raised by every earlier load completion in the episode.
            t_arr = np.maximum(ep_issue0[ld_seg],
                               _seg_exclusive_cummax(ld_done, ld_seg))
            stall = ld_done - np.maximum(t_arr, issue[ld])
            np.maximum(stall, 0, out=stall)
            res.load_stall_cycles = int(stall.sum())
            res.stall_by_obj, res.load_misses_by_obj = \
                _sums_by_first_occurrence(
                    obj[ld], stall, np.ones(len(ld), dtype=np.int64))

    def _run_episode_ref(self, memsys: MemorySystem) -> int:
        p = self.params
        num, den = p.ipc_ratio
        inst, dep, kind = self._inst, self._dep, self._kind
        obj, group, gaddr = self._obj, self._group, self._gaddr
        i = self._idx
        head_inst = inst[i]
        issue0 = self._cycle + ((head_inst - self._inst_prev) * den) // num

        # Gather the episode: head record plus every subsequent record that
        # fits the ROB window, has an MSHR, and is not a dependent miss.
        # Non-demand records (writebacks, prefetches) ride along but the
        # total batch is bounded — queues are finite and the multicore
        # driver interleaves cores at episode granularity.
        batch_cap = 4 * p.max_overlap
        j = i
        n_demand = 0
        batch: list[MemRequest] = []
        members: list[int] = []
        while j < self._n:
            if len(members) >= batch_cap:
                break
            k = kind[j]
            is_demand = k == KIND_LOAD or k == KIND_STORE
            if j > i and is_demand:
                if dep[j]:
                    break
                if inst[j] - head_inst > p.rob_size:
                    break
                if n_demand >= p.max_overlap:
                    break
            issue = issue0 + ((inst[j] - head_inst) * den) // num
            batch.append(MemRequest(
                group=group[j], gaddr=gaddr[j], issue_cycle=issue,
                is_write=(k == KIND_STORE or k == KIND_WRITEBACK),
                demand=is_demand,
                obj_id=obj[j], core_id=self.core_id,
            ))
            members.append(j)
            n_demand += is_demand
            j += 1

        memsys.service_batch(batch)

        # Program-order ROB-head accounting over demand loads.
        res = self.result
        t = issue0
        for req, k in zip(batch, (kind[m] for m in members)):
            if k == KIND_WRITEBACK:
                res.n_writebacks += 1
                continue
            if k == KIND_PREFETCH:
                res.n_prefetches += 1
                continue
            res.n_demand += 1
            res.mem_access_cycles += req.done_cycle - req.issue_cycle
            res.demand_by_obj[req.obj_id] = res.demand_by_obj.get(req.obj_id, 0) + 1
            if k == KIND_LOAD:
                stall = req.done_cycle - max(t, req.issue_cycle)
                if stall < 0:
                    stall = 0
                if req.done_cycle > t:
                    t = req.done_cycle
                res.n_load_misses += 1
                res.load_stall_cycles += stall
                res.stall_by_obj[req.obj_id] = res.stall_by_obj.get(req.obj_id, 0) + stall
                res.load_misses_by_obj[req.obj_id] = (
                    res.load_misses_by_obj.get(req.obj_id, 0) + 1
                )

        res.n_episodes += 1
        last = members[-1]
        tail_done = max(r.done_cycle for r in batch)
        self._cycle = max(t, issue0 + ((inst[last] - head_inst) * den) // num,
                          tail_done - p.backlog)
        self._inst_prev = inst[last]
        self._idx = j
        if self.finished:
            tail = self.total_instructions - self._inst_prev
            self._cycle += (tail * den) // num
            res.cycles = self._cycle
        return self._cycle

    def run_to_completion(self, memsys: MemorySystem) -> CoreResult:
        """Single-core convenience: drain the whole stream."""
        if self._n == 0:
            self._cycle += self.params.cycles_for(self.total_instructions)
            self.result.cycles = self._cycle
            self.publish_obs()
            return self.result
        while not self.finished:
            self.run_episode(memsys)
        self.publish_obs()
        return self.result

    def publish_obs(self) -> None:
        """Publish this core's retirement/stall counters to the registry.

        Called once per completed replay (never inside the episode loop)
        so the hot path carries no per-episode observability cost.
        """
        if not OBS.enabled:
            return
        r = self.result
        prefix = f"core{self.core_id}"
        OBS.add(f"{prefix}.instructions_retired", r.total_instructions)
        OBS.add(f"{prefix}.cycles", r.cycles)
        OBS.add(f"{prefix}.episodes", r.n_episodes)
        OBS.add(f"{prefix}.demand_requests", r.n_demand)
        OBS.add(f"{prefix}.load_misses", r.n_load_misses)
        OBS.add(f"{prefix}.stall_cycles", r.load_stall_cycles)
        OBS.add(f"{prefix}.mem_access_cycles", r.mem_access_cycles)
