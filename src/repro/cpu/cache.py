"""Set-associative LRU cache with write-back/write-allocate semantics.

The tag store is a list of per-set ``dict``s mapping tag → dirty flag.
Python dicts preserve insertion order, so the first key of a set is its
LRU line; an access re-inserts its tag to move it to MRU position.  This
is the fastest pure-Python LRU available (no per-access allocation beyond
the dict churn), per the HPC guide's "measure, then optimize the
bottleneck" rule — cache filtering dominates trace preparation time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_power_of_two


@dataclass(frozen=True)
class EvictedLine:
    """A victim pushed out by a fill."""

    line_addr: int
    dirty: bool


class SetAssocCache:
    """One level of set-associative cache.

    Args:
        size_bytes: Total capacity.
        assoc: Ways per set.
        line_bytes: Line size (default 64, Table I).
        name: Label for introspection.
    """

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int = 64,
                 name: str = "cache"):
        check_power_of_two("size_bytes", size_bytes)
        check_power_of_two("assoc", assoc)
        check_power_of_two("line_bytes", line_bytes)
        n_sets = size_bytes // (assoc * line_bytes)
        if n_sets < 1:
            raise ValueError("cache smaller than one set")
        check_power_of_two("derived set count", n_sets)
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.name = name
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._line_shift = (line_bytes - 1).bit_length()
        self._sets: list[dict[int, bool]] = [dict() for _ in range(n_sets)]
        self.n_hits = 0
        self.n_misses = 0

    def line_of(self, addr: int) -> int:
        """Line-aligned address containing ``addr``."""
        return (addr >> self._line_shift) << self._line_shift

    def access(self, addr: int, is_write: bool) -> tuple[bool, EvictedLine | None]:
        """Access the byte address; returns ``(hit, evicted_or_None)``.

        A miss allocates the line (write-allocate); the LRU victim, if
        any, is returned so the caller can propagate dirty writebacks.
        """
        line = addr >> self._line_shift
        s = self._sets[line & self._set_mask]
        tag = line >> 0  # full line number doubles as tag (set bits included, harmless)
        if tag in s:
            dirty = s.pop(tag)
            s[tag] = dirty or is_write
            self.n_hits += 1
            return True, None
        self.n_misses += 1
        evicted = None
        if len(s) >= self.assoc:
            victim_tag = next(iter(s))
            victim_dirty = s.pop(victim_tag)
            evicted = EvictedLine(victim_tag << self._line_shift, victim_dirty)
        s[tag] = is_write
        return False, evicted

    def fill(self, addr: int, dirty: bool = False) -> EvictedLine | None:
        """Insert a line without counting a hit/miss (e.g. L1 writeback into L2)."""
        line = addr >> self._line_shift
        s = self._sets[line & self._set_mask]
        if line in s:
            prev = s.pop(line)
            s[line] = prev or dirty
            return None
        evicted = None
        if len(s) >= self.assoc:
            victim_tag = next(iter(s))
            victim_dirty = s.pop(victim_tag)
            evicted = EvictedLine(victim_tag << self._line_shift, victim_dirty)
        s[line] = dirty
        return evicted

    def contains(self, addr: int) -> bool:
        """Presence probe without LRU side effects."""
        line = addr >> self._line_shift
        return line in self._sets[line & self._set_mask]

    @property
    def n_accesses(self) -> int:
        return self.n_hits + self.n_misses

    @property
    def miss_rate(self) -> float:
        n = self.n_accesses
        return self.n_misses / n if n else 0.0

    def reset_stats(self) -> None:
        self.n_hits = 0
        self.n_misses = 0

    def resident_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All resident lines as ``(line_addrs, dirty)`` numpy arrays.

        Set-major, LRU→MRU within each set — the tag stores' iteration
        order verbatim, so the parity harness can compare two caches'
        full state (contents, dirtiness, *and* recency order) with one
        ``array_equal`` per array instead of walking dicts.
        """
        n = sum(len(s) for s in self._sets)
        addrs = np.empty(n, dtype=np.int64)
        dirty = np.empty(n, dtype=bool)
        i = 0
        for s in self._sets:
            for tag, d in s.items():
                addrs[i] = tag << self._line_shift
                dirty[i] = d
                i += 1
        return addrs, dirty

    def contains_many(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains`: presence mask, no LRU effects.

        Line numbers are globally unique (the "tag" keeps its set bits),
        so one ``np.isin`` against the resident lines answers every
        probe at once.
        """
        resident, _ = self.resident_arrays()
        lines = np.asarray(addrs, dtype=np.int64) >> self._line_shift
        return np.isin(lines, resident >> self._line_shift)

    def install_lines(self, addrs: np.ndarray, dirty: np.ndarray) -> None:
        """Bulk :meth:`fill` in order, discarding victims (state setup).

        Replaying another cache's :meth:`resident_arrays` through this
        rebuilds identical contents *and* LRU order, because fills
        re-insert at MRU in iteration order.
        """
        for addr, d in zip(addrs.tolist(), dirty.tolist()):
            self.fill(addr, bool(d))

    def flush(self) -> list[EvictedLine]:
        """Drop all lines, returning dirty victims (used at trace end)."""
        addrs, dirty = self.resident_arrays()
        victims = [EvictedLine(int(a), True) for a in addrs[dirty]]
        for s in self._sets:
            s.clear()
        return victims
