"""Vectorized cache-filter kernel: the fast path of ``filter_trace``.

The reference loop in :meth:`~repro.cpu.hierarchy.CacheHierarchy
.filter_trace` pushes every access through dict-based LRU sets, one
Python iteration per access.  This module replays the *same* hierarchy
with numpy and produces byte-identical results (``tests/
test_filter_parity.py`` pins this over randomized traces and
geometries), following the PR 4 replay-kernel playbook: the reference
loop stays as the executable specification and ``REPRO_FAST_PATH=0`` /
``RunSpec(fast_path=False)`` switch back to it.

Algorithm — round-parallel LRU simulation across sets
-----------------------------------------------------

Cache sets are independent: the outcome of an access depends only on
the prior accesses that map to the *same* set.  So instead of walking
the trace access-by-access, group the accesses by set and process
"rounds": round *r* handles the *r*-th access of every set at once.
State is a pair of ``(n_touched_sets, assoc)`` matrices — ``stack``
holds line numbers MRU→LRU (``-1`` = empty way) and ``dirty`` the
write-back flags — and one round is a handful of whole-matrix numpy
operations: an equality scan for the hit way, a masked shift to promote
or insert at MRU, and a read of the last column for the LRU victim.
Sets are ranked by access count so the active rows of every round form
a shrinking prefix, and the per-round access indices are precomputed as
one round-major permutation of the trace.

This is exact (it *is* the LRU automaton, just batched), including
victim identity and dirty propagation — unlike closed-form
Mattson-stack-distance formulations, which yield hit/miss but not the
victim sequence, and whose exact per-access distances need dominance
counting that does not vectorize.  Cost is ``O(rounds x touched_sets x
assoc)`` vector work where ``rounds`` is the *maximum* accesses landing
in one set; for the synthetic workloads at default fidelity that is
a few hundred rounds over ~512 sets.  A trace that hammers one set
(``rounds`` ~ ``n``) would degenerate, so a scalar dict-based fallback
— the reference automaton without the record bookkeeping — kicks in on
extreme skew.

Prefetcher-enabled hierarchies always take the reference loop: runahead
fills inject state transitions between demand accesses that the
round-parallel batching cannot reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.fastpath import fast_path_default

__all__ = [
    "FilterAccumulator",
    "LevelResult",
    "fast_path_default",
    "finalize_filter",
    "run_filter",
    "run_filter_window",
    "simulate_lru",
]


#: Above this many rounds per trace access the matrix formulation loses
#: to the scalar automaton (rounds ~ n means one set ate the trace).
_SKEW_LIMIT_DIVISOR = 16
#: ...but never fall back for tiny traces where either path is instant.
_SKEW_MIN_ROUNDS = 64
#: Mid-simulation cutover: once fewer sets than this are still active,
#: the long skewed tail of rounds (each a handful of rows but a fixed
#: ~20 numpy calls) is cheaper on the scalar automaton.
_ACTIVE_CUTOVER = 48


@dataclass
class LevelResult:
    """Per-access outcome of one cache level plus its final tag state.

    ``victim_line``/``victim_dirty`` are only meaningful where
    ``victim_mask`` is true (a miss that evicted a resident line).
    ``state_sets`` / ``state_stack`` / ``state_dirty`` describe the
    final occupancy of every *simulated* set, MRU→LRU with ``-1`` for
    empty ways, so the caller can write the result back into the
    dict-based tag store bit-identically.
    """

    hit: np.ndarray
    victim_mask: np.ndarray
    victim_line: np.ndarray
    victim_dirty: np.ndarray
    state_sets: np.ndarray
    state_stack: np.ndarray
    state_dirty: np.ndarray
    engine: str


def _empty_result(assoc: int) -> LevelResult:
    return LevelResult(
        hit=np.zeros(0, dtype=bool),
        victim_mask=np.zeros(0, dtype=bool),
        victim_line=np.zeros(0, dtype=np.int64),
        victim_dirty=np.zeros(0, dtype=bool),
        state_sets=np.zeros(0, dtype=np.int64),
        state_stack=np.full((0, assoc), -1, dtype=np.int64),
        state_dirty=np.zeros((0, assoc), dtype=bool),
        engine="rounds",
    )


def _seed_enc(cache, sets: np.ndarray, assoc: int) -> np.ndarray:
    """Initial encoded stack matrix from the cache's current tag store.

    ``filter_trace`` on a warm hierarchy must continue from its state
    (the reference loop does), so the kernel starts where the dicts
    stand: dict insertion order is LRU→MRU, stack column order MRU→LRU.
    Each cell packs ``line << 1 | dirty`` (``-1`` = empty way), so one
    matrix carries both planes and the dirty bit shifts along with its
    line for free.
    """
    enc = np.full((len(sets), assoc), -1, dtype=np.int64)
    for row, set_idx in enumerate(sets.tolist()):
        resident = cache._sets[set_idx]
        for col, (tag, d) in enumerate(reversed(resident.items())):
            enc[row, col] = (tag << 1) | d
    return enc


def _automaton(sets: dict[int, dict], set_mask: int, assoc: int,
               lines: list, writes: list,
               ) -> tuple[list, list, list, list]:
    """The dict-based LRU automaton over a (sub)sequence of accesses.

    Byte-identical to :meth:`SetAssocCache.access` minus the stat
    counters; ``sets`` maps set index → tag→dirty dict and is mutated in
    place.  Returns per-access ``(hit, victim_mask, victim_line,
    victim_dirty)`` as plain lists for bulk array assignment.
    """
    hit = [False] * len(lines)
    victim_mask = [False] * len(lines)
    victim_line = [0] * len(lines)
    victim_dirty = [False] * len(lines)
    for i, (ln, wr) in enumerate(zip(lines, writes)):
        s = sets[ln & set_mask]
        if ln in s:
            prev = s.pop(ln)
            s[ln] = prev or wr
            hit[i] = True
            continue
        if len(s) >= assoc:
            victim_tag = next(iter(s))
            victim_mask[i] = True
            victim_line[i] = victim_tag
            victim_dirty[i] = s.pop(victim_tag)
        s[ln] = wr
    return hit, victim_mask, victim_line, victim_dirty


def _enc_to_dicts(enc: np.ndarray, rows: range, sets: np.ndarray,
                  assoc: int) -> dict[int, dict]:
    """Encoded matrix rows → per-set tag→dirty dicts (LRU→MRU order)."""
    out: dict[int, dict] = {}
    cells = enc.tolist()
    for row in rows:
        s: dict = {}
        enc_row = cells[row]
        for col in range(assoc - 1, -1, -1):
            v = enc_row[col]
            if v != -1:
                s[v >> 1] = bool(v & 1)
        out[int(sets[row])] = s
    return out


def _dicts_to_enc(sets_map: dict[int, dict], enc: np.ndarray, rows: range,
                  sets: np.ndarray) -> None:
    """Write per-set dicts back into their encoded rows (MRU→LRU)."""
    for row in rows:
        enc[row] = -1
        for col, (tag, d) in enumerate(reversed(sets_map[int(sets[row])]
                                                .items())):
            enc[row, col] = (tag << 1) | d


def _simulate_rounds(cache, line: np.ndarray, is_write: np.ndarray,
                     ) -> LevelResult:
    """Round-parallel LRU simulation (see module docstring)."""
    n = line.shape[0]
    assoc = cache.assoc
    set_idx = line & cache._set_mask
    counts = np.bincount(set_idx, minlength=cache.n_sets)
    nonempty = np.flatnonzero(counts)
    # Rank touched sets by descending access count: round r's active
    # rows are then the prefix of sets with more than r accesses.
    sel = nonempty[np.argsort(-counts[nonempty], kind="stable")]
    rank_of_set = np.full(cache.n_sets, -1, dtype=np.int64)
    rank_of_set[sel] = np.arange(len(sel))
    sorted_counts = counts[sel]
    n_rounds = int(sorted_counts[0])

    # Round-major permutation of the trace: first every set's access 0
    # (by rank), then every set's access 1, ...  Built from the stable
    # set-major grouping, whose within-group offset *is* the round.
    ranks = rank_of_set[set_idx]
    # Stable argsort of small integer keys: uint16 takes numpy's radix
    # path (~6x faster than the int64 merge sort) and set ranks fit
    # comfortably for any realistic set count.
    sort_key = ranks.astype(np.uint16) if len(sel) <= 0xFFFF else ranks
    set_major = np.argsort(sort_key, kind="stable")
    group_start = np.zeros(len(sel) + 1, dtype=np.int64)
    np.cumsum(sorted_counts, out=group_start[1:])
    sm_ranks = ranks[set_major]
    round_of = np.arange(n, dtype=np.int64) - group_start[sm_ranks]
    # active_per_round = #sets with more than r accesses; rows stay a
    # prefix because sel is count-descending.
    bounds = np.zeros(n_rounds + 1, dtype=np.int64)
    np.cumsum(np.bincount(round_of, minlength=n_rounds), out=bounds[1:])
    # Because round r's rows are exactly the rank prefix [0, active_r),
    # the round-major position of (rank g, round r) is in closed form
    # bounds[r] + g — no second argsort needed.
    rm = np.empty(n, dtype=np.int64)
    rm[bounds[round_of] + sm_ranks] = set_major

    # Lines arrive pre-shifted by one so cell encoding (line<<1 | dirty)
    # comparisons need no per-round decode.
    ln2_rm = line[rm] << 1
    wr_rm = is_write[rm]

    enc = _seed_enc(cache, sel, assoc)
    n_rows = len(sel)
    # Outcomes are produced round-major (cheap slice writes) and
    # scattered back to access order once at the end; victims stay
    # encoded until then.
    hit_rm = np.zeros(n, dtype=bool)
    venc_rm = np.full(n, -1, dtype=np.int64)
    last = assoc - 1
    # Round-loop scratch, allocated once and sliced to the active rows.
    scratch_i = np.empty((n_rows, assoc), dtype=np.int64)
    eq_b = np.empty((n_rows, assoc), dtype=bool)
    # eq has at most one True per row (lines are unique within a set),
    # so its running sum fits any integer dtype; int8 keeps the three
    # cumsum-derived ops on the smallest buffers.
    cs_b = np.empty((n_rows, assoc), dtype=np.int8)
    shift_b = np.empty((n_rows, assoc), dtype=bool)
    shifted_b = np.empty((n_rows, assoc), dtype=np.int64)
    newd_b = np.empty(n_rows, dtype=bool)

    for r in range(n_rounds):
        b0, b1 = int(bounds[r]), int(bounds[r + 1])
        active = b1 - b0
        if active < _ACTIVE_CUTOVER:
            # Skewed tail: few sets still have accesses left, but each
            # remaining round costs the same fixed stack of numpy calls.
            # rm[b0:] preserves per-set access order (rounds ascend),
            # and sets are independent, so the scalar automaton can
            # finish the tail from the current matrix state.
            tail_sets = _enc_to_dicts(enc, range(active), sel, assoc)
            t_hit, t_vm, t_vl, t_vd = _automaton(
                tail_sets, cache._set_mask, assoc,
                (ln2_rm[b0:] >> 1).tolist(), wr_rm[b0:].tolist())
            hit_rm[b0:] = t_hit
            vm_a = np.asarray(t_vm, dtype=bool)
            venc_rm[b0:] = np.where(
                vm_a,
                (np.asarray(t_vl, dtype=np.int64) << 1)
                | np.asarray(t_vd, dtype=bool),
                -1)
            _dicts_to_enc(tail_sets, enc, range(active), sel)
            break
        ln2 = ln2_rm[b0:b1]
        st = enc[:active]
        scr = scratch_i[:active]
        eq = eq_b[:active]
        cs = cs_b[:active]
        shift = shift_b[:active]
        shifted = shifted_b[:active]
        newd = newd_b[:active]

        np.bitwise_and(st, -2, out=scr)          # cells minus dirty bit
        np.equal(scr, ln2[:, None], out=eq)      # hit way (at most one)
        np.cumsum(eq, axis=1, out=cs)
        np.not_equal(cs[:, last], 0, out=hit_rm[b0:b1])
        venc_rm[b0:b1] = st[:, last]             # LRU way (pre-update)
        # Promote/insert = shift columns [0, pos] right by one and put
        # the line at MRU, where pos is the hit way or (on a miss) the
        # LRU column.  Both cases are "columns whose *exclusive* prefix
        # of eq is empty": up to and including the hit way, or the
        # whole row when eq is all-False.
        np.subtract(cs, eq, out=cs)
        np.equal(cs, 0, out=shift)
        # New MRU dirty bit: dirty of the hit way (all-False eq on a
        # miss contributes nothing) OR the access being a write.
        np.bitwise_and(st, 1, out=scr)
        np.logical_and(scr, eq, out=eq)
        np.any(eq, axis=1, out=newd)
        np.logical_or(newd, wr_rm[b0:b1], out=newd)
        shifted[:, 1:] = st[:, :-1]
        np.bitwise_or(ln2, newd, out=shifted[:, 0])
        np.copyto(st, shifted, where=shift)

    hit = np.empty(n, dtype=bool)
    venc = np.empty(n, dtype=np.int64)
    hit[rm] = hit_rm
    venc[rm] = venc_rm
    victim_mask = ~hit & (venc != -1)
    return LevelResult(hit=hit, victim_mask=victim_mask,
                       victim_line=venc >> 1,
                       victim_dirty=(venc & 1) != 0,
                       state_sets=sel, state_stack=enc >> 1,
                       state_dirty=(enc & 1) != 0,
                       engine="rounds")


def _simulate_scalar(cache, line: np.ndarray, is_write: np.ndarray,
                     ) -> LevelResult:
    """Dict-based LRU automaton with the kernel's output contract.

    The skew fallback, used when one set soaks up most of the trace and
    the matrix formulation would run ~n rounds of tiny rows.
    """
    n = line.shape[0]
    assoc = cache.assoc
    set_mask = cache._set_mask
    touched = np.unique(line & set_mask)
    sets = {int(s): dict(cache._sets[int(s)]) for s in touched.tolist()}

    outs = _automaton(sets, set_mask, assoc, line.tolist(),
                      is_write.tolist())
    hit = np.asarray(outs[0], dtype=bool)
    victim_mask = np.asarray(outs[1], dtype=bool)
    victim_line = np.asarray(outs[2], dtype=np.int64)
    victim_dirty = np.asarray(outs[3], dtype=bool)

    state_sets = touched.astype(np.int64)
    enc = np.full((len(touched), assoc), -1, dtype=np.int64)
    _dicts_to_enc(sets, enc, range(len(touched)), state_sets)
    return LevelResult(hit=hit, victim_mask=victim_mask,
                       victim_line=victim_line, victim_dirty=victim_dirty,
                       state_sets=state_sets, state_stack=enc >> 1,
                       state_dirty=(enc & 1) != 0, engine="scalar")


def simulate_lru(cache, line: np.ndarray, is_write: np.ndarray, *,
                 mode: str = "auto") -> LevelResult:
    """Simulate one cache level over a line-number access sequence.

    Continues from ``cache``'s current tag-store contents but does not
    mutate the cache — the caller decides whether to write the final
    state back (:func:`install_state`).  ``mode`` pins the engine for
    the parity tests; ``"auto"`` picks the matrix formulation unless the
    per-set skew makes the scalar automaton cheaper.
    """
    n = line.shape[0]
    if n == 0:
        return _empty_result(cache.assoc)
    if mode == "auto":
        max_per_set = int(np.bincount(line & cache._set_mask,
                                      minlength=1).max())
        scalar = (max_per_set > _SKEW_MIN_ROUNDS
                  and max_per_set * _SKEW_LIMIT_DIVISOR > n)
        mode = "scalar" if scalar else "rounds"
    if mode == "scalar":
        return _simulate_scalar(cache, line, is_write)
    if mode == "rounds":
        return _simulate_rounds(cache, line, is_write)
    raise ValueError(f"unknown simulate_lru mode {mode!r}")


def install_state(cache, result: LevelResult) -> None:
    """Write a level's final tag state back into its dict store.

    Only the simulated sets are rewritten (untouched sets keep their
    residents), inserting LRU→MRU so dict order matches what the
    reference loop would have left behind.
    """
    stacks = result.state_stack.tolist()
    dirties = result.state_dirty.tolist()
    for row, set_idx in enumerate(result.state_sets.tolist()):
        s = cache._sets[set_idx]
        s.clear()
        st_row = stacks[row]
        dt_row = dirties[row]
        for col in range(cache.assoc - 1, -1, -1):
            tag = st_row[col]
            if tag != -1:
                s[tag] = dt_row[col]


@dataclass
class FilterAccumulator:
    """Carried state for windowed (bounded-RSS) filtering.

    :meth:`~repro.cpu.hierarchy.CacheHierarchy.filter_chunked` feeds
    trace windows through :func:`run_filter_window` in order; the tag
    stores live in the hierarchy itself, and everything the monolithic
    filter kept in locals — the instruction offset fixed at the warmup
    boundary, per-object tallies in global first-touch order, and the
    per-window record arrays — is carried here until
    :func:`finalize_filter` assembles the stream.  ``run_filter`` is
    the single-window special case.
    """

    n_seen: int = 0
    inst_offset: int = 0
    last_inst: int = 0
    n_writebacks: int = 0
    per_object: dict = field(default_factory=dict)
    parts: list = field(default_factory=list)


def run_filter_window(trace, hierarchy, warm_until: int,
                      acc: FilterAccumulator) -> None:
    """Filter one trace window, continuing from carried state.

    ``warm_until`` is the *global* warmup boundary (an access index
    into the full trace); the window's position comes from
    ``acc.n_seen``.  Windowing is invisible in the result: splitting a
    trace at any point and carrying the hierarchy + accumulator state
    yields the same records, counters, and tallies as one call.
    """
    from repro.cpu.hierarchy import KIND_LOAD, KIND_STORE, KIND_WRITEBACK

    l1, l2 = hierarchy.l1, hierarchy.l2
    n = len(trace)
    vaddr = trace.vaddr
    is_write = trace.is_write
    # Warmup boundary in window coordinates; the boundary access itself
    # lies in this window iff 0 < boundary <= n.
    boundary = warm_until - acc.n_seen
    wl = min(max(boundary, 0), n)

    # L1 sees every access; L2 sees the L1-miss subsequence.  Both runs
    # cover the warmup region too — exclusion is a bookkeeping concern,
    # the tag-store state must flow through.
    r1 = simulate_lru(l1, vaddr >> l1._line_shift, is_write)
    idx2 = np.flatnonzero(~r1.hit)
    r2 = simulate_lru(l2, vaddr[idx2] >> l2._line_shift, is_write[idx2])
    install_state(l1, r1)
    install_state(l2, r2)

    # Stat counters: the reference resets them at the warmup boundary,
    # so with a warmup window the final values are the measured-region
    # tallies; without one they accumulate on whatever the hierarchy
    # already held.  Windows wholly inside warmup add nothing and skip
    # the reset — the boundary window's reset clears their state.
    measured = n - wl
    l1_hits = int(r1.hit[wl:].sum())
    meas2 = idx2 >= wl
    n_meas2 = int(meas2.sum())
    l2_hits = int(r2.hit[meas2].sum())
    if 0 < boundary <= n:
        l1.n_hits, l1.n_misses = 0, 0
        l2.n_hits, l2.n_misses = 0, 0
        # Record instructions are renumbered from the boundary access.
        acc.inst_offset = int(trace.inst[wl - 1])
    l1.n_hits += l1_hits
    l1.n_misses += measured - l1_hits
    l2.n_hits += l2_hits
    l2.n_misses += n_meas2 - l2_hits

    # Demand records: measured L2 misses, in trace order; each is
    # followed immediately by a writeback record when it evicted a
    # dirty line (positions interleaved via an exclusive cumsum).
    dm_pos2 = np.flatnonzero(meas2 & ~r2.hit)
    dm = idx2[dm_pos2]
    wb = r2.victim_mask[dm_pos2] & r2.victim_dirty[dm_pos2]
    n_dm = dm.size
    n_writebacks = int(wb.sum())
    n_rec = n_dm + n_writebacks

    out_inst = np.empty(n_rec, dtype=np.int64)
    out_vline = np.empty(n_rec, dtype=np.int64)
    out_obj = np.empty(n_rec, dtype=np.int32)
    out_dep = np.empty(n_rec, dtype=bool)
    out_kind = np.empty(n_rec, dtype=np.int8)
    shift = hierarchy._line_shift
    base = np.arange(n_dm, dtype=np.int64) + (np.cumsum(wb) - wb)
    dm_inst = trace.inst[dm] - acc.inst_offset
    out_inst[base] = dm_inst
    out_vline[base] = (vaddr[dm] >> shift) << shift
    out_obj[base] = trace.obj_id[dm]
    out_dep[base] = trace.dep[dm]
    out_kind[base] = np.where(is_write[dm], KIND_STORE, KIND_LOAD)
    wb_slots = base[wb] + 1
    out_inst[wb_slots] = dm_inst[wb]
    out_vline[wb_slots] = r2.victim_line[dm_pos2][wb] << l2._line_shift
    out_dep[wb_slots] = False
    out_kind[wb_slots] = KIND_WRITEBACK
    if n_writebacks:
        out_obj[wb_slots] = trace.resolve_objects(out_vline[wb_slots])

    # Per-object tallies in first-touch order (dict-iteration parity
    # with the reference's setdefault-style bookkeeping).  Object ids
    # are small non-negative ints after shifting out the segment
    # sentinels (>= -3), so bincount beats sorting; first-touch order
    # comes from a reversed scatter (last write = first occurrence).
    # Merging into the carried dict preserves *global* first-touch
    # order: dict insertion order appends new objects as windows
    # arrive.
    obj_meas = trace.obj_id[wl:]
    if obj_meas.size:
        obj_shift = obj_meas.astype(np.int64) + 3
        acc_counts = np.bincount(obj_shift)
        miss_counts = np.bincount(trace.obj_id[dm].astype(np.int64) + 3,
                                  minlength=len(acc_counts))
        first_pos = np.zeros(len(acc_counts), dtype=np.int64)
        first_pos[obj_shift[::-1]] = np.arange(len(obj_shift) - 1, -1, -1,
                                               dtype=np.int64)
        present = np.flatnonzero(acc_counts)
        for v in present[np.argsort(first_pos[present],
                                    kind="stable")].tolist():
            tallies = acc.per_object.get(v - 3)
            if tallies is None:
                acc.per_object[v - 3] = [int(acc_counts[v]),
                                         int(miss_counts[v])]
            else:
                tallies[0] += int(acc_counts[v])
                tallies[1] += int(miss_counts[v])

    acc.parts.append((out_inst, out_vline, out_obj, out_dep, out_kind))
    acc.n_writebacks += n_writebacks
    acc.n_seen += n
    if n:
        acc.last_inst = int(trace.inst[-1])


def finalize_filter(hierarchy, acc: FilterAccumulator):
    """Assemble ``(MissStream, CacheStats)`` from carried window state."""
    from repro.cpu.hierarchy import CacheStats, MissStream

    l1, l2 = hierarchy.l1, hierarchy.l2
    if acc.parts:
        inst, vline, obj, dep, kind = (
            np.concatenate(c) for c in zip(*acc.parts))
    else:
        inst = vline = np.empty(0, dtype=np.int64)
        obj = np.empty(0, dtype=np.int32)
        dep = np.empty(0, dtype=bool)
        kind = np.empty(0, dtype=np.int8)
    total_inst = (acc.last_inst - acc.inst_offset) if acc.n_seen else 0
    stream = MissStream(inst=inst, vline=vline, obj_id=obj,
                        dep=dep, kind=kind,
                        total_instructions=total_inst)
    stats = CacheStats(
        total_instructions=total_inst,
        l1_hits=l1.n_hits,
        l1_misses=l1.n_misses,
        l2_hits=l2.n_hits,
        l2_misses=l2.n_misses,
        n_writebacks=acc.n_writebacks,
        per_object=acc.per_object,
    )
    return stream, stats


def run_filter(trace, hierarchy, warm_until: int):
    """Kernelized :meth:`CacheHierarchy.filter_trace` body.

    Returns ``(MissStream, CacheStats)`` byte-identical to the reference
    loop and leaves ``hierarchy``'s tag stores and hit/miss counters in
    the identical final state.  ``hierarchy.prefetcher`` must be None
    (the dispatcher guarantees it).  One window through the chunked
    machinery: ``filter_chunked`` runs the same code per shard.
    """
    acc = FilterAccumulator()
    run_filter_window(trace, hierarchy, warm_until, acc)
    return finalize_filter(hierarchy, acc)
