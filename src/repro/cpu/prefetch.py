"""Stride prefetcher for the L2 (extension beyond the paper).

The paper's core has no prefetcher (Table I); bandwidth-sensitive
objects earn their class purely through MLP.  Real machines add a stride
prefetcher, which converts predictable demand misses into background
fills — making streaming objects *more* bandwidth-bound and leaving
pointer chases untouched.  This module provides that mechanism as an
opt-in for the cache hierarchy, with an ablation benchmark showing its
effect on the classification landscape.

The design is the classic per-stream table: track the last miss address
and stride per allocation stream (we key on the memory object, the
trace-level analogue of a PC-indexed table); two consecutive equal
strides arm the stream, and each further miss prefetches ``degree``
lines ahead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _StreamEntry:
    last_line: int
    stride: int = 0
    confirmed: bool = False


class StridePrefetcher:
    """Per-object stride detector issuing ``degree`` prefetches per miss.

    Args:
        degree: Lines fetched ahead once a stream is armed.
        table_size: Maximum tracked streams (LRU-evicted).
        line_bytes: Cache-line size.
    """

    def __init__(self, degree: int = 2, table_size: int = 64,
                 line_bytes: int = 64):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        if table_size < 1:
            raise ValueError("table_size must be >= 1")
        self.degree = degree
        self.table_size = table_size
        self.line_bytes = line_bytes
        self._table: dict[int, _StreamEntry] = {}
        self.n_issued = 0
        self.n_streams_armed = 0

    def on_miss(self, stream_id: int, line_addr: int) -> list[int]:
        """Observe a demand L2 miss; returns line addresses to prefetch."""
        line = line_addr // self.line_bytes
        entry = self._table.get(stream_id)
        if entry is None:
            if len(self._table) >= self.table_size:
                del self._table[next(iter(self._table))]
            self._table[stream_id] = _StreamEntry(last_line=line)
            return []
        # LRU refresh.
        del self._table[stream_id]
        self._table[stream_id] = entry
        stride = line - entry.last_line
        out: list[int] = []
        if stride != 0 and stride == entry.stride:
            if not entry.confirmed:
                entry.confirmed = True
                self.n_streams_armed += 1
            out = [(line + stride * (i + 1)) * self.line_bytes
                   for i in range(self.degree)]
            self.n_issued += len(out)
        else:
            entry.confirmed = False
        entry.stride = stride
        entry.last_line = line
        return out

    def reset(self) -> None:
        self._table.clear()
        self.n_issued = 0
        self.n_streams_armed = 0
