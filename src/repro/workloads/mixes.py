"""Multi-program workload sets (paper Sec. V-D / VI-B).

A mix name like ``2L1B1N`` means two latency-sensitive, one
bandwidth-sensitive, and one non-memory-intensive application on the
4-core system.  Applications are drawn round-robin from the Table III
class lists so every mix is deterministic and documented.

The paper plots ten multicore sets without naming all of them; we use the
ten below and note in EXPERIMENTS.md that the five N-containing sets play
the role of the paper's "last five workload sets" (Sec. VI-B).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.workloads.spec import apps_in_class

_MIX_RE = re.compile(r"(\d+)([LBN])")


def parse_mix_name(name: str) -> dict[str, int]:
    """``"2L1B1N"`` → ``{"L": 2, "B": 1, "N": 1}`` (missing classes → 0)."""
    counts = {"L": 0, "B": 0, "N": 0}
    consumed = 0
    for m in _MIX_RE.finditer(name):
        counts[m.group(2)] += int(m.group(1))
        consumed += len(m.group(0))
    if consumed != len(name) or sum(counts.values()) == 0:
        raise ValueError(f"malformed mix name {name!r} (expected e.g. '2L1B1N')")
    return counts


@dataclass(frozen=True)
class WorkloadMix:
    """A named set of applications for the multicore system."""

    name: str
    apps: tuple[str, ...]

    @property
    def n_cores(self) -> int:
        return len(self.apps)


def mix(name: str) -> WorkloadMix:
    """Build the canonical mix for a name like ``3L1B``.

    Apps are taken round-robin from each class's canonical order, so
    ``3L1B`` = (mcf, milc, libquantum, mser) and ``4L`` wraps back to
    mcf's class list as needed.
    """
    counts = parse_mix_name(name)
    chosen: list[str] = []
    for cls in ("L", "B", "N"):
        pool = apps_in_class(cls)
        for i in range(counts[cls]):
            chosen.append(pool[i % len(pool)])
    return WorkloadMix(name=name, apps=tuple(chosen))


#: The ten multicore workload sets used by Figs. 10–13.  The first five
#: stress RLDRAM/HBM contention; the last five include N apps (the paper's
#: "last five workload sets also consist of non-memory-intensive
#: applications").
MIX_NAMES = (
    "4L", "3L1B", "2L2B", "1L3B", "4B",
    "3L1N", "2L1B1N", "1L1B2N", "2B2N", "1B3N",
)

MIXES: dict[str, WorkloadMix] = {n: mix(n) for n in MIX_NAMES}
