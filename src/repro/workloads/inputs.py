"""Training vs reference input instantiation (paper Sec. V-A).

The paper profiles on *training* inputs and evaluates on *reference*
inputs (SPEC's train/ref sets; two different MIT-Adobe images for SDVBS).
Here an input is a deterministic perturbation of the application spec:

* the **train** input uses the spec verbatim;
* the **ref** input scales object sizes by ~1.1–1.25x and jitters access
  weights by ±10%, with an independent RNG stream for the trace itself.

Behaviour is input-stable by construction — the premise MOCA relies on
("applications with fairly similar behaviour across different input
sets") — while addresses, interleavings, and footprints all change.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.trace.builder import ObjectBehavior, TraceBuilder
from repro.trace.events import AccessTrace
from repro.util.rng import stream
from repro.workloads.spec import AppSpec, app

import re

TRAIN = "train"
REF = "ref"
DRIFT = "drift1"
_INPUTS = (TRAIN, REF)
#: Accepted input names: ``train``, ``ref``, numbered reference variants
#: ``ref2``, ``ref3``, ... (independent perturbations used by the
#: seed-variance robustness study, ``repro.experiments.variance``), and
#: drifted inputs ``drift1``, ``drift2``, ... whose access-weight
#: *ranking* departs from the training input (the scenario the online
#: guidance service exists for — offline profiles misplace on them).
_INPUT_RE = re.compile(r"^(train|ref\d*|drift\d*)$")
_DRIFT_RE = re.compile(r"^drift(\d*)$")


def input_names() -> tuple[str, ...]:
    return _INPUTS


def is_valid_input(name: str) -> bool:
    return bool(_INPUT_RE.match(name))


def _drift_level(input_name: str) -> float | None:
    """Drift intensity of an input name, or ``None`` for non-drift inputs.

    ``drift``/``drift1`` → 1.0 (half-blended reversal), ``drift2`` → 2.0
    (full hot↔cold reversal), higher numbers saturate.
    """
    m = _DRIFT_RE.match(input_name)
    if m is None:
        return None
    return float(m.group(1) or 1)


def _perturbed(spec: AppSpec, input_name: str) -> tuple[ObjectBehavior, ...]:
    """Deterministically perturb the spec's behaviours for an input."""
    if input_name == TRAIN:
        return spec.behaviors
    rng = stream("input-perturb", spec.name, input_name)
    out = []
    for b in spec.behaviors:
        size_f = 1.0 + float(rng.uniform(0.02, 0.08))
        weight_f = 1.0 + float(rng.uniform(-0.10, 0.10))
        if b.segment is not None:
            # Segments keep their size (the OS fixes them); jitter weight only.
            out.append(replace(b, weight=b.weight * weight_f))
        else:
            out.append(replace(
                b,
                size_bytes=max(4096, int(b.size_bytes * size_f)),
                weight=b.weight * weight_f,
            ))
    level = _drift_level(input_name)
    if level is not None:
        out = _drifted(out, level)
    return tuple(out)


def _drifted(behaviors: list[ObjectBehavior],
             level: float) -> list[ObjectBehavior]:
    """Blend the heap objects' access weights toward their *reversed*
    ranking.

    The training profile orders objects by traffic; a drifted input
    hands the training input's cold objects the hot objects' weights
    (and vice versa), so offline classification — frozen at profile
    time — systematically misplaces exactly the objects that matter.
    ``level`` controls the blend: 1.0 mixes half-way toward the full
    reversal, >= 2.0 is the complete hot↔cold swap.  Sizes, patterns,
    and segments are untouched: the *program* is the same, only its
    input-dependent intensity per object changes (the paper's premise —
    behaviour similarity across inputs — deliberately broken).
    """
    beta = min(1.0, 0.5 * level)
    heap = [b for b in behaviors if b.segment is None]
    if len(heap) < 2:
        return behaviors
    order = sorted(range(len(heap)), key=lambda i: heap[i].weight)
    mirrored = {}
    for rank, idx in enumerate(order):
        partner = heap[order[len(order) - 1 - rank]]
        mirrored[idx] = partner.weight
    drifted = {}
    for idx, b in enumerate(heap):
        new_weight = (1.0 - beta) * b.weight + beta * mirrored[idx]
        drifted[id(b)] = replace(b, weight=new_weight)
    return [drifted.get(id(b), b) for b in behaviors]


@lru_cache(maxsize=64)
def build_app_trace(app_name: str, input_name: str = TRAIN,
                    n_accesses: int = 200_000) -> AccessTrace:
    """Build (and memoize) the access trace of one application input.

    The returned trace is shared across callers — treat it as immutable.
    """
    if not is_valid_input(input_name):
        raise ValueError(
            f"input must be 'train', 'ref'/'refN', or 'driftN', "
            f"got {input_name!r}")
    spec = app(app_name)
    behaviors = _perturbed(spec, input_name)
    builder = TraceBuilder(list(behaviors))
    rng = stream("trace", app_name, input_name, n_accesses)
    return builder.build(n_accesses, rng)


def build_app_trace_chunked(app_name: str, input_name: str,
                            n_accesses: int, chunk_accesses: int):
    """Build (or reopen) one application input as a chunked trace.

    The bounded-RSS sibling of :func:`build_app_trace`: identical RNG
    stream and behaviours, but the columns land as shards in the
    active :mod:`repro.trace.chunked` store instead of in memory, so
    shard *content* is byte-identical to the monolithic trace.  The
    store is content-addressed, so repeated calls (and other
    processes sharing the store directory) reuse the generated shards.
    """
    from repro.trace import chunked

    if not is_valid_input(input_name):
        raise ValueError(
            f"input must be 'train', 'ref'/'refN', or 'driftN', "
            f"got {input_name!r}")
    store = chunked.active()
    key = chunked.trace_key(app_name, input_name, n_accesses,
                            chunk_accesses)
    cached = store.get(key)
    if cached is not None:
        return cached
    spec = app(app_name)
    behaviors = _perturbed(spec, input_name)
    builder = TraceBuilder(list(behaviors))
    rng = stream("trace", app_name, input_name, n_accesses)
    return store.build(key, builder, n_accesses, rng)
