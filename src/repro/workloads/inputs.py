"""Training vs reference input instantiation (paper Sec. V-A).

The paper profiles on *training* inputs and evaluates on *reference*
inputs (SPEC's train/ref sets; two different MIT-Adobe images for SDVBS).
Here an input is a deterministic perturbation of the application spec:

* the **train** input uses the spec verbatim;
* the **ref** input scales object sizes by ~1.1–1.25x and jitters access
  weights by ±10%, with an independent RNG stream for the trace itself.

Behaviour is input-stable by construction — the premise MOCA relies on
("applications with fairly similar behaviour across different input
sets") — while addresses, interleavings, and footprints all change.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.trace.builder import ObjectBehavior, TraceBuilder
from repro.trace.events import AccessTrace
from repro.util.rng import stream
from repro.workloads.spec import AppSpec, app

import re

TRAIN = "train"
REF = "ref"
_INPUTS = (TRAIN, REF)
#: Accepted input names: ``train``, ``ref``, and numbered reference
#: variants ``ref2``, ``ref3``, ... (independent perturbations used by
#: the seed-variance robustness study, ``repro.experiments.variance``).
_INPUT_RE = re.compile(r"^(train|ref\d*)$")


def input_names() -> tuple[str, ...]:
    return _INPUTS


def is_valid_input(name: str) -> bool:
    return bool(_INPUT_RE.match(name))


def _perturbed(spec: AppSpec, input_name: str) -> tuple[ObjectBehavior, ...]:
    """Deterministically perturb the spec's behaviours for an input."""
    if input_name == TRAIN:
        return spec.behaviors
    rng = stream("input-perturb", spec.name, input_name)
    out = []
    for b in spec.behaviors:
        size_f = 1.0 + float(rng.uniform(0.02, 0.08))
        weight_f = 1.0 + float(rng.uniform(-0.10, 0.10))
        if b.segment is not None:
            # Segments keep their size (the OS fixes them); jitter weight only.
            out.append(replace(b, weight=b.weight * weight_f))
        else:
            out.append(replace(
                b,
                size_bytes=max(4096, int(b.size_bytes * size_f)),
                weight=b.weight * weight_f,
            ))
    return tuple(out)


@lru_cache(maxsize=64)
def build_app_trace(app_name: str, input_name: str = TRAIN,
                    n_accesses: int = 200_000) -> AccessTrace:
    """Build (and memoize) the access trace of one application input.

    The returned trace is shared across callers — treat it as immutable.
    """
    if not is_valid_input(input_name):
        raise ValueError(
            f"input must be 'train', 'ref', or 'refN', got {input_name!r}")
    spec = app(app_name)
    behaviors = _perturbed(spec, input_name)
    builder = TraceBuilder(list(behaviors))
    rng = stream("trace", app_name, input_name, n_accesses)
    return builder.build(n_accesses, rng)
