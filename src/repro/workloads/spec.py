"""Application specifications: ten synthetic SPEC CPU2006 / SDVBS models.

Each :class:`AppSpec` lists the heap objects of the application with the
access behaviour that gives the paper's Fig. 2 object scatter.  Object
names echo the real programs' dominant data structures; sizes are the
paper's working sets scaled 1:8 (see package docstring).

Behaviour → classification mechanics refresher:

* ``chase`` + large size → high MPKI, serial misses → latency-sensitive;
* ``seq``/``strided`` + small ``gap_mean`` + large size → high MPKI, many
  misses per ROB window → bandwidth-sensitive;
* ``hotspot`` with a cache-resident hot set → sub-threshold MPKI → neither.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.hierarchy import SEG_CODE, SEG_GLOBAL, SEG_STACK
from repro.trace.builder import ObjectBehavior
from repro.util.units import KIB, MIB


@dataclass(frozen=True)
class AppSpec:
    """One application model.

    Attributes:
        name: Application name (lower case, matches the paper).
        suite: ``"spec2006"`` or ``"sdvbs"``.
        paper_class: Table III class — ``"L"``, ``"B"`` or ``"N"``.
        behaviors: Heap + segment behaviours, *in allocation order* (the
            order a run instantiates the objects — Heter-App and
            first-touch allocation are order-sensitive, Sec. VI-A).
        description: One-line gloss of what the real program does.
    """

    name: str
    suite: str
    paper_class: str
    behaviors: tuple[ObjectBehavior, ...]
    description: str = ""

    def heap_behaviors(self) -> tuple[ObjectBehavior, ...]:
        return tuple(b for b in self.behaviors if b.segment is None)

    def heap_footprint_bytes(self) -> int:
        return sum(b.size_bytes for b in self.heap_behaviors())


def _segments(stack_w: float = 0.12, code_w: float = 0.05, glob_w: float = 0.03,
              ) -> tuple[ObjectBehavior, ...]:
    """Default stack/code/global behaviours: small, hot, cache-resident.

    Their near-zero L2 MPKI is the observation behind the paper's Fig. 16
    (and the reason MOCA routes these segments to LPDDR, Sec. VI-D).
    """
    return (
        ObjectBehavior("[stack]", 48 * KIB, stack_w, pattern="hotspot",
                       hot_fraction=0.25, hot_weight=0.95, write_frac=0.45,
                       gap_mean=4, burst_mean=8, segment=SEG_STACK),
        ObjectBehavior("[code]", 192 * KIB, code_w, pattern="hotspot",
                       hot_fraction=0.2, hot_weight=0.92, write_frac=0.0,
                       gap_mean=6, burst_mean=6, segment=SEG_CODE),
        ObjectBehavior("[global]", 96 * KIB, glob_w, pattern="hotspot",
                       hot_fraction=0.3, hot_weight=0.9, write_frac=0.3,
                       gap_mean=6, burst_mean=6, segment=SEG_GLOBAL),
    )


def _B(name: str, size: int, weight: float, site: int, **kw) -> ObjectBehavior:
    return ObjectBehavior(name, size, weight, site=site, **kw)


# --------------------------------------------------------------------------------
# Latency-sensitive applications (Table III, class L)
# --------------------------------------------------------------------------------

MCF = AppSpec(
    name="mcf", suite="spec2006", paper_class="L",
    description="network-simplex min-cost flow: pointer-chasing over nodes/arcs",
    # graph_blob/init_buf are setup allocations: large, touched broadly,
    # rarely re-accessed.  They are instantiated first, so Heter-App
    # squanders RLDRAM on them while MOCA sends them to LPDDR (the Fig. 2
    # "many cold objects inside a hot application" structure).
    behaviors=(
        _B("graph_blob", 10 * MIB, 0.008, site=100, pattern="strided",
           stride=4096, gap_mean=25, burst_mean=8),
        _B("init_buf", 10 * MIB, 0.008, site=106, pattern="strided",
           stride=4096, gap_mean=25, burst_mean=8, write_frac=0.6),
        _B("nodes", 18 * MIB, 0.26, site=101, pattern="chase",
           gap_mean=18, burst_mean=24, write_frac=0.15),
        _B("arcs", 34 * MIB, 0.30, site=102, pattern="chase",
           gap_mean=14, burst_mean=32, write_frac=0.10),
        _B("dual_costs", 3 * MIB, 0.06, site=103, pattern="rand",
           dep_prob=0.3, gap_mean=10, burst_mean=16, write_frac=0.25),
        _B("basket", 192 * KIB, 0.08, site=104, pattern="seq",
           gap_mean=6, burst_mean=12, write_frac=0.4),
        _B("perm", 96 * KIB, 0.05, site=105, pattern="hotspot",
           gap_mean=8, burst_mean=8),
    ) + _segments(),
)

MILC = AppSpec(
    name="milc", suite="spec2006", paper_class="L",
    description="lattice QCD: gather/scatter over SU(3) link matrices",
    behaviors=(
        _B("lattice_backup", 12 * MIB, 0.005, site=200, pattern="strided",
           stride=4096, gap_mean=30, burst_mean=8, write_frac=0.5),
        _B("su3_links", 28 * MIB, 0.30, site=201, pattern="rand",
           dep_prob=0.55, gap_mean=10, burst_mean=24, write_frac=0.2),
        _B("fatlinks", 12 * MIB, 0.12, site=202, pattern="rand",
           dep_prob=0.5, gap_mean=12, burst_mean=16, write_frac=0.15),
        _B("mom", 640 * KIB, 0.08, site=203, pattern="seq",
           gap_mean=4, burst_mean=24, write_frac=0.5),
        _B("staples", 384 * KIB, 0.06, site=204, pattern="hotspot",
           gap_mean=8, burst_mean=8),
        _B("tmp_vecs", 1536 * KIB, 0.10, site=205, pattern="seq",
           gap_mean=3, burst_mean=32, write_frac=0.4),
    ) + _segments(),
)

LIBQUANTUM = AppSpec(
    name="libquantum", suite="spec2006", paper_class="L",
    description="quantum gate simulation: strided walks over the amplitude register",
    behaviors=(
        _B("scratch_reg", 8 * MIB, 0.005, site=300, pattern="strided",
           stride=4096, gap_mean=30, burst_mean=8, write_frac=0.5),
        _B("qureg_amps", 26 * MIB, 0.42, site=301, pattern="strided",
           stride=160, dep_prob=0.65, gap_mean=12, burst_mean=48,
           write_frac=0.3),
        _B("gate_cache", 256 * KIB, 0.12, site=302, pattern="hotspot",
           gap_mean=5, burst_mean=12),
        _B("workspace", 1 * MIB, 0.08, site=303, pattern="seq",
           gap_mean=4, burst_mean=24, write_frac=0.35),
    ) + _segments(stack_w=0.2),
)

DISPARITY = AppSpec(
    name="disparity", suite="sdvbs", paper_class="L",
    description="stereo disparity: SAD cost volume chase + image pyramid stream",
    # NOTE: img_pyramid (the lower-MPKI major object) is allocated FIRST —
    # Sec. VI-A's anecdote: Heter-App fills RLDRAM with it and the hotter
    # sad_cost object spills to HBM, while MOCA swaps them.
    behaviors=(
        _B("params", 64 * KIB, 0.06, site=404, pattern="hotspot",
           gap_mean=8, burst_mean=6),
        _B("img_pyramid", 24 * MIB, 0.22, site=401, pattern="strided",
           stride=1024, gap_mean=4, burst_mean=96, write_frac=0.2),
        _B("sad_cost", 28 * MIB, 0.34, site=402, pattern="chase",
           gap_mean=16, burst_mean=24, write_frac=0.25),
        _B("ret_disp", 6 * MIB, 0.08, site=403, pattern="strided",
           stride=512, gap_mean=4, burst_mean=32, write_frac=0.5),
    ) + _segments(),
)

# --------------------------------------------------------------------------------
# Bandwidth-sensitive applications (Table III, class B)
# --------------------------------------------------------------------------------

MSER = AppSpec(
    name="mser", suite="sdvbs", paper_class="B",
    description="maximally-stable extremal regions: flood-fill sweeps over label maps",
    behaviors=(
        _B("region_stack", 28 * MIB, 0.28, site=501, pattern="strided",
           stride=512, gap_mean=8, burst_mean=96, write_frac=0.35),
        _B("pixel_labels", 10 * MIB, 0.14, site=502, pattern="rand",
           dep_prob=0.1, gap_mean=6, burst_mean=16, write_frac=0.3),
        _B("hist", 128 * KIB, 0.08, site=503, pattern="hotspot",
           gap_mean=5, burst_mean=8, write_frac=0.5),
        _B("comp_tree", 768 * KIB, 0.10, site=504, pattern="hotspot",
           hot_fraction=0.08, gap_mean=8, burst_mean=8),
    ) + _segments(),
)

LBM = AppSpec(
    name="lbm", suite="spec2006", paper_class="B",
    description="lattice-Boltzmann: double-buffered 3D stencil streaming",
    behaviors=(
        _B("grid_src", 30 * MIB, 0.26, site=601, pattern="strided",
           stride=256, gap_mean=10, burst_mean=128, write_frac=0.1),
        _B("grid_dst", 30 * MIB, 0.22, site=602, pattern="strided",
           stride=256, gap_mean=10, burst_mean=192, write_frac=0.35),
        _B("obstacle", 2 * MIB, 0.05, site=603, pattern="strided",
           stride=256, gap_mean=6, burst_mean=48),
    ) + _segments(),
)

TRACKING = AppSpec(
    name="tracking", suite="sdvbs", paper_class="B",
    description="KLT feature tracking: pyramid + gradient sweeps",
    behaviors=(
        _B("img_pyr", 18 * MIB, 0.22, site=701, pattern="strided",
           stride=256, gap_mean=6, burst_mean=96, write_frac=0.15),
        _B("grad_xy", 14 * MIB, 0.18, site=702, pattern="strided",
           stride=512, dep_prob=0.05, gap_mean=8, burst_mean=48,
           write_frac=0.3),
        _B("features", 1228 * KIB, 0.12, site=703, pattern="hotspot",
           hot_fraction=0.1, gap_mean=6, burst_mean=12, write_frac=0.4),
    ) + _segments(stack_w=0.15),
)

# --------------------------------------------------------------------------------
# Non-memory-intensive applications (Table III, class N)
# --------------------------------------------------------------------------------

GCC = AppSpec(
    name="gcc", suite="spec2006", paper_class="N",
    description="compiler: cache-resident IR pools; one warm RTL pool "
                "(the object MOCA promotes to RLDRAM, Sec. VI-A)",
    behaviors=(
        _B("rtl_pool", 7 * MIB, 0.22, site=801, pattern="hotspot",
           hot_fraction=0.015, hot_weight=0.90, dep_prob=0.7,
           gap_mean=20, burst_mean=12, write_frac=0.3),
        _B("symtab", 3 * MIB, 0.20, site=802, pattern="hotspot",
           hot_fraction=0.02, hot_weight=0.97, gap_mean=12, burst_mean=10,
           write_frac=0.3),
        _B("tree_nodes", 1536 * KIB, 0.15, site=803, pattern="hotspot",
           hot_fraction=0.04, hot_weight=0.97, gap_mean=10, burst_mean=10,
           write_frac=0.35),
        _B("strings", 96 * KIB, 0.10, site=804, pattern="hotspot",
           gap_mean=8, burst_mean=8),
    ) + _segments(stack_w=0.18, code_w=0.1),
)

SIFT = AppSpec(
    name="sift", suite="sdvbs", paper_class="N",
    description="SIFT keypoints: small pyramids, cache-friendly",
    behaviors=(
        _B("dog_pyr", 2560 * KIB, 0.25, site=901, pattern="hotspot",
           hot_fraction=0.06, hot_weight=0.98, gap_mean=8, burst_mean=24,
           write_frac=0.25),
        _B("keypoints", 256 * KIB, 0.15, site=902, pattern="hotspot",
           hot_fraction=0.2, hot_weight=0.97, gap_mean=8, burst_mean=8,
           write_frac=0.4),
        _B("img_buf", 448 * KIB, 0.12, site=903, pattern="hotspot",
           hot_fraction=0.25, hot_weight=0.97, gap_mean=5, burst_mean=32,
           write_frac=0.2),
        _B("descriptors", 128 * KIB, 0.10, site=904, pattern="hotspot",
           hot_fraction=0.3, hot_weight=0.97, gap_mean=8, burst_mean=8,
           write_frac=0.5),
    ) + _segments(stack_w=0.2, code_w=0.08),
)

STITCH = AppSpec(
    name="stitch", suite="sdvbs", paper_class="N",
    description="image stitching: small tiles, cache-friendly",
    behaviors=(
        _B("img_a", 256 * KIB, 0.18, site=1001, pattern="hotspot",
           hot_fraction=0.3, hot_weight=0.96, gap_mean=5, burst_mean=32,
           write_frac=0.1),
        _B("img_b", 256 * KIB, 0.14, site=1002, pattern="hotspot",
           hot_fraction=0.3, hot_weight=0.96, gap_mean=5, burst_mean=32,
           write_frac=0.1),
        _B("warp_buf", 1536 * KIB, 0.20, site=1003, pattern="hotspot",
           hot_fraction=0.08, hot_weight=0.97, gap_mean=8, burst_mean=16,
           write_frac=0.4),
        _B("blend_acc", 128 * KIB, 0.10, site=1004, pattern="seq",
           gap_mean=6, burst_mean=24, write_frac=0.5),
    ) + _segments(stack_w=0.2, code_w=0.08),
)


APPS: dict[str, AppSpec] = {
    a.name: a
    for a in (MCF, MILC, LIBQUANTUM, DISPARITY, MSER, LBM, TRACKING,
              GCC, SIFT, STITCH)
}

#: Table III of the paper.
APP_CLASSES: dict[str, str] = {name: a.paper_class for name, a in APPS.items()}


def app(name: str) -> AppSpec:
    """Look up an application spec by name."""
    if name not in APPS:
        raise KeyError(f"unknown application {name!r}; have {sorted(APPS)}")
    return APPS[name]


def apps_in_class(cls: str) -> list[str]:
    """Applications of one Table III class, in canonical order."""
    if cls not in ("L", "B", "N"):
        raise ValueError(f"class must be L/B/N, got {cls!r}")
    return [n for n, a in APPS.items() if a.paper_class == cls]
