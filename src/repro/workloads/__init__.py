"""Synthetic stand-ins for the paper's SPEC CPU2006 / SDVBS applications.

Real SPEC/SDVBS binaries (and gem5 to run them) are unavailable offline,
so each application is modelled as a set of heap-object behaviours whose
cache/MLP signatures reproduce the paper's published characterization:

* Table III classes — L: mcf, milc, libquantum, disparity;
  B: mser, lbm, tracking; N: gcc, sift, stitch;
* Fig. 2 object scatter — a few hot objects per app, wide MPKI/MLP spread,
  e.g. disparity's two major objects (the lower-MPKI one allocated first,
  which is what trips up Heter-App in Sec. VI-A);
* Fig. 16 — stack/code/global segments with near-zero L2 MPKI.

Object *sizes* are scaled 1:8 against the paper (as are module capacities
in ``repro.sim.config``) so that laptop-scale traces exercise the same
capacity-pressure regimes: an application's hot footprint still exceeds
the RLDRAM module, forcing the fallback chains of Sec. III-C.
"""

from repro.workloads.spec import (
    AppSpec,
    APPS,
    APP_CLASSES,
    app,
    apps_in_class,
)
from repro.workloads.inputs import TRAIN, REF, build_app_trace, input_names
from repro.workloads.mixes import WorkloadMix, MIXES, mix, parse_mix_name

__all__ = [
    "AppSpec",
    "APPS",
    "APP_CLASSES",
    "app",
    "apps_in_class",
    "TRAIN",
    "REF",
    "build_app_trace",
    "input_names",
    "WorkloadMix",
    "MIXES",
    "mix",
    "parse_mix_name",
]
