"""Human progress reporting for long sweeps.

A :class:`ProgressReporter` is a registry listener: it narrates closed
spans at or above a configurable depth, so a FULL-fidelity
``single_sweep()`` reports ``run.mcf.moca (4.2s)`` instead of grinding
silently for minutes.  Attach with ``reporter.attach(OBS)`` (the
``--progress`` CLI flag does exactly this).

The reporter is tty-aware via :func:`supports_repaint` (shared with the
campaign dashboard): on an interactive terminal each update repaints a
single status line in place with a carriage return; on a pipe or file it
falls back to one plain line per update, so redirected logs stay clean
of control characters.

Note: sweeps run with ``REPRO_WORKERS > 1`` execute rows in worker
processes whose registries are separate; progress lines then cover only
the parent process's own spans (campaign-wide visibility is the job of
:mod:`repro.obs.telemetry` and the ``--dashboard`` reporter).
"""

from __future__ import annotations

import os
import sys
import time
from typing import TextIO

from repro.obs.registry import Registry, SpanEvent

__all__ = ["ProgressReporter", "supports_repaint"]

#: Erase-to-end-of-line after a carriage return, so shorter repaints
#: don't leave stale tail characters.
_CLEAR_EOL = "\x1b[K"


def supports_repaint(stream: TextIO) -> bool:
    """Whether in-place carriage-return repaints are safe on ``stream``.

    True only for a real tty whose ``TERM`` is not ``dumb``; pipes,
    files, and ``StringIO`` buffers get plain line-per-update output.
    """
    try:
        if not stream.isatty():
            return False
    except (AttributeError, ValueError, OSError):
        return False
    return os.environ.get("TERM", "") != "dumb"


class ProgressReporter:
    """Narrate closed spans (depth-filtered) to a stream.

    ``repaint=None`` (the default) auto-detects via
    :func:`supports_repaint`; pass ``True``/``False`` to force a mode.
    In repaint mode call :meth:`close` (or detach) when done so the last
    status line is terminated with a newline.
    """

    def __init__(self, stream: TextIO | None = None, max_depth: int = 1,
                 repaint: bool | None = None):
        self.stream = stream if stream is not None else sys.stderr
        self.max_depth = max_depth
        self.repaint = (supports_repaint(self.stream)
                        if repaint is None else repaint)
        self.n_reported = 0
        self._t0 = time.perf_counter()
        self._open_line = False

    def __call__(self, event: SpanEvent) -> None:
        if event.kind != "span" or event.depth > self.max_depth:
            return
        self.n_reported += 1
        elapsed = time.perf_counter() - self._t0
        indent = "  " * event.depth
        line = (f"[{elapsed:8.1f}s] {indent}{event.name} "
                f"({event.duration_s:.2f}s)")
        if self.repaint:
            print(f"\r{line}{_CLEAR_EOL}", file=self.stream,
                  flush=True, end="")
            self._open_line = True
        else:
            print(line, file=self.stream, flush=True)

    def close(self) -> None:
        """Terminate a pending repaint line (no-op in line mode)."""
        if self._open_line:
            print(file=self.stream, flush=True)
            self._open_line = False

    def attach(self, registry: Registry) -> "ProgressReporter":
        registry.add_listener(self)
        return self

    def detach(self, registry: Registry) -> None:
        registry.remove_listener(self)
        self.close()
