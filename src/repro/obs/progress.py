"""Human progress reporting for long sweeps.

A :class:`ProgressReporter` is a registry listener: it prints one stderr
line per closed span at or above a configurable depth, so a FULL-fidelity
``single_sweep()`` narrates ``run.mcf.moca (4.2s)`` instead of grinding
silently for minutes.  Attach with ``reporter.attach(OBS)`` (the
``--progress`` CLI flag does exactly this).

Note: sweeps run with ``REPRO_WORKERS > 1`` execute rows in worker
processes whose registries are separate; progress lines then cover only
the parent process's own spans.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.obs.registry import Registry, SpanEvent

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Print one line per closed span (depth-filtered) to a stream."""

    def __init__(self, stream: TextIO | None = None, max_depth: int = 1):
        self.stream = stream if stream is not None else sys.stderr
        self.max_depth = max_depth
        self.n_reported = 0
        self._t0 = time.perf_counter()

    def __call__(self, event: SpanEvent) -> None:
        if event.kind != "span" or event.depth > self.max_depth:
            return
        self.n_reported += 1
        elapsed = time.perf_counter() - self._t0
        indent = "  " * event.depth
        print(f"[{elapsed:8.1f}s] {indent}{event.name} "
              f"({event.duration_s:.2f}s)",
              file=self.stream, flush=True)

    def attach(self, registry: Registry) -> "ProgressReporter":
        registry.add_listener(self)
        return self

    def detach(self, registry: Registry) -> None:
        registry.remove_listener(self)
