"""Observability: structured tracing, counters, and run provenance.

Public surface:

* :data:`OBS` — the process-wide :class:`Registry` the stack's
  instrumentation hooks publish to (disabled by default; enabling it is
  what ``--trace``/``--progress``/``--obs-dump`` do);
* :mod:`repro.obs.sinks` — JSONL and Chrome ``trace_event`` exporters;
* :class:`ProgressReporter` — stderr narration of long sweeps
  (tty-aware: repaints in place on a terminal, plain lines on a pipe);
* :mod:`repro.obs.telemetry` — campaign-wide telemetry: per-unit
  :class:`UnitTelemetry` snapshots captured in sweep workers, folded
  into a mergeable :class:`CampaignTelemetry` (log2 histograms,
  per-worker utilization, cross-process warning dedup) and a merged
  multi-lane Chrome trace;
* :class:`Dashboard` — the ``--dashboard`` live campaign reporter and
  its machine-readable heartbeat file;
* :mod:`repro.obs.bench` — append-only perf-trend history and the
  ``bench-report`` regression CLI;
* :func:`run_meta` / :func:`config_hash` — provenance ``meta`` blocks.
"""

from repro.obs.dashboard import Dashboard
from repro.obs.progress import ProgressReporter, supports_repaint
from repro.obs.provenance import config_hash, run_meta
from repro.obs.registry import OBS, Registry, SpanEvent
from repro.obs.sinks import (
    chrome_trace_doc,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.telemetry import (
    CampaignTelemetry,
    LogHistogram,
    UnitTelemetry,
    merged_trace_doc,
    write_telemetry_jsonl,
)

__all__ = [
    "OBS", "Registry", "SpanEvent", "ProgressReporter", "supports_repaint",
    "config_hash", "run_meta",
    "chrome_trace_doc", "read_jsonl", "write_chrome_trace", "write_jsonl",
    "CampaignTelemetry", "LogHistogram", "UnitTelemetry",
    "merged_trace_doc", "write_telemetry_jsonl", "Dashboard",
]
