"""Observability: structured tracing, counters, and run provenance.

Public surface:

* :data:`OBS` — the process-wide :class:`Registry` the stack's
  instrumentation hooks publish to (disabled by default; enabling it is
  what ``--trace``/``--progress``/``--obs-dump`` do);
* :mod:`repro.obs.sinks` — JSONL and Chrome ``trace_event`` exporters;
* :class:`ProgressReporter` — stderr narration of long sweeps;
* :func:`run_meta` / :func:`config_hash` — provenance ``meta`` blocks.
"""

from repro.obs.progress import ProgressReporter
from repro.obs.provenance import config_hash, run_meta
from repro.obs.registry import OBS, Registry, SpanEvent
from repro.obs.sinks import (
    chrome_trace_doc,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "OBS", "Registry", "SpanEvent", "ProgressReporter",
    "config_hash", "run_meta",
    "chrome_trace_doc", "read_jsonl", "write_chrome_trace", "write_jsonl",
]
