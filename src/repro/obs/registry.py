"""Process-local observability registry: counters, gauges, timed spans.

The registry is the single collection point for runtime telemetry across
the simulation stack (core replay, memory controllers, the OS allocator,
the MOCA profiler, experiment sweeps).  Design constraints, in order:

1. **Near-zero cost when disabled.**  Every hot-path hook is guarded by
   one attribute check (``if OBS.enabled:``) or goes through
   :meth:`Registry.span`, which returns a shared no-op context manager
   when disabled.  Hot inner loops (the episode loop in
   ``repro.cpu.core``) never call into the registry at all — cores
   publish their accumulated counters once per run.
2. **Process-local.**  Sweep workers (``REPRO_WORKERS > 1``) each carry
   their own registry; telemetry is not merged across processes.  This
   mirrors the low-overhead, per-process collectors of online-guidance
   systems for heterogeneous memory (arXiv:2110.02150).
3. **Structured.**  Spans are hierarchical (``sweep.single`` →
   ``run.mcf.moca`` → ``cache_filter``) and carry attributes; sinks
   (``repro.obs.sinks``) serialize the same event list to JSONL or the
   Chrome ``trace_event`` format without re-interpretation.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["ENV_QUIET", "SpanEvent", "Registry", "OBS"]

#: ``"1"`` suppresses the stderr print of :meth:`Registry.warn` while
#: still recording the warning.  The sweep engine sets this in worker
#: processes so campaign warnings are shipped back via telemetry and
#: reprinted once by the parent instead of once per worker.
ENV_QUIET = "REPRO_OBS_QUIET"


@dataclass
class SpanEvent:
    """One recorded event: a timed span or an instant (warning) marker."""

    span_id: int
    parent_id: int  #: 0 for root spans.
    name: str
    depth: int  #: Nesting depth; root spans are at depth 0.
    start_ns: int
    end_ns: int | None = None  #: ``None`` while the span is still open.
    args: dict = field(default_factory=dict)
    kind: str = "span"  #: ``"span"`` or ``"instant"``.

    @property
    def duration_ns(self) -> int:
        return 0 if self.end_ns is None else self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> dict:
        """JSONL-ready form (see :func:`repro.obs.sinks.write_jsonl`)."""
        return {
            "type": self.kind,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "args": dict(self.args),
        }


class _NullSpan:
    """Shared do-nothing span handed out while the registry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    """Live span context manager; closing records the end time."""

    __slots__ = ("_registry", "event")

    def __init__(self, registry: "Registry", event: SpanEvent):
        self._registry = registry
        self.event = event

    def set(self, **args) -> "_Span":
        """Attach attributes to the span (merged into ``event.args``)."""
        self.event.args.update(args)
        return self

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc) -> bool:
        self._registry._close_span(self.event)
        return False


class Registry:
    """Named counters, gauges and hierarchical spans for one process.

    Disabled by default; the module-level :data:`OBS` singleton is what
    the instrumentation hooks talk to.  ``add``/``gauge``/``span`` are
    silent no-ops while disabled.
    """

    def __init__(self, enabled: bool = False,
                 clock: Callable[[], int] = time.perf_counter_ns):
        self.enabled = enabled
        self.clock = clock
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.events: list[SpanEvent] = []
        self._stack: list[SpanEvent] = []
        self._listeners: list[Callable[[SpanEvent], None]] = []
        self._warned: dict[str, str] = {}  #: dedup key -> message
        self._next_id = 1

    # ---- lifecycle ---------------------------------------------------------------

    def enable(self) -> "Registry":
        self.enabled = True
        return self

    def disable(self) -> "Registry":
        self.enabled = False
        return self

    def reset(self) -> "Registry":
        """Drop all recorded telemetry (listeners and warn-once state too)."""
        self.counters.clear()
        self.gauges.clear()
        self.events.clear()
        self._stack.clear()
        self._listeners.clear()
        self._warned.clear()
        self._next_id = 1
        return self

    # ---- counters & gauges -------------------------------------------------------

    def add(self, name: str, delta: float = 1) -> None:
        """Increment a counter (no-op while disabled)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest observed value (no-op while disabled)."""
        if not self.enabled:
            return
        self.gauges[name] = value

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter and gauge."""
        return {"counters": dict(self.counters), "gauges": dict(self.gauges)}

    # ---- spans -------------------------------------------------------------------

    def span(self, name: str, **args):
        """Open a timed span; use as a context manager.

        Returns the shared :data:`NULL_SPAN` while disabled, so callers
        pay one attribute check and no allocation.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        event = SpanEvent(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else 0,
            name=name,
            depth=len(self._stack),
            start_ns=self.clock(),
            args=dict(args),
        )
        self._next_id += 1
        self.events.append(event)
        self._stack.append(event)
        return _Span(self, event)

    def _close_span(self, event: SpanEvent) -> None:
        event.end_ns = self.clock()
        # Tolerate out-of-order closes (generators, exceptions): pop
        # everything above the closing span as well.
        while self._stack and self._stack[-1] is not event:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        for listener in self._listeners:
            listener(event)

    def spans(self, name: str | None = None) -> list[SpanEvent]:
        """Closed spans, optionally filtered by exact name."""
        return [e for e in self.events
                if e.kind == "span" and e.end_ns is not None
                and (name is None or e.name == name)]

    @property
    def max_depth(self) -> int:
        """Deepest nesting level recorded so far (-1 when no spans)."""
        return max((e.depth for e in self.events if e.kind == "span"),
                   default=-1)

    def phase_seconds(self) -> dict[str, float]:
        """Wall-time per span name, summed over closed spans.

        The provenance ``meta`` block records this as "where did the run
        spend its time" (profiling vs. placement vs. core replay).
        """
        out: dict[str, float] = {}
        for e in self.spans():
            out[e.name] = out.get(e.name, 0.0) + e.duration_s
        return out

    # ---- warnings ----------------------------------------------------------------

    def warn(self, message: str, *, key: str | None = None,
             force: bool = False) -> None:
        """One-shot warning: stderr always, plus an instant event if enabled.

        Unlike the other hooks this is *not* silenced when the registry
        is disabled — a warning the user never sees defeats its purpose —
        but each distinct warning prints at most once per process.

        ``key`` is the dedup identity (defaults to the message itself).
        A stable key lets callers vary the message text — e.g. embed a
        count — without re-printing, and lets campaign telemetry
        deduplicate the same warning across worker processes.  With
        :data:`ENV_QUIET` set to ``"1"`` the stderr print is suppressed
        (the warning is still recorded and still shipped in telemetry)
        unless ``force`` is true — the sweep engine uses ``force`` when
        reprinting a warning shipped back from a quieted worker, since
        the quiet env is still set in the parent at fold time.
        """
        key = message if key is None else key
        if key not in self._warned:
            self._warned[key] = message
            if force or os.environ.get(ENV_QUIET) != "1":
                print(f"[repro.obs] warning: {message}", file=sys.stderr)
        if self.enabled:
            parent = self._stack[-1] if self._stack else None
            self.events.append(SpanEvent(
                span_id=self._next_id,
                parent_id=parent.span_id if parent else 0,
                name="warning",
                depth=len(self._stack),
                start_ns=self.clock(),
                end_ns=None,
                args={"message": message},
                kind="instant",
            ))
            self._next_id += 1
            self.counters["obs.warnings"] = (
                self.counters.get("obs.warnings", 0) + 1)

    # ---- listeners ---------------------------------------------------------------

    def add_listener(self, fn: Callable[[SpanEvent], None]) -> None:
        """Register a callback fired on every span close (progress sinks)."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[SpanEvent], None]) -> None:
        if fn in self._listeners:
            self._listeners.remove(fn)


#: The process-wide registry every instrumentation hook publishes to.
OBS = Registry()
