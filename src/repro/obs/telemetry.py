"""Campaign telemetry: cross-process aggregation of the per-run registry.

The PR 1 :mod:`repro.obs.registry` is deliberately process-local, which
means everything a sweep worker records — counters, spans, resource
usage — used to die with the worker.  This module closes that gap with
three mergeable value types:

* :class:`LogHistogram` — a fixed-bin log2 histogram of durations.
  Bins are ``value.bit_length()`` (64 bins cover 0 ns .. ~584 years),
  so merging is element-wise addition and any percentile estimate is
  off by at most one bin width (< 2x, pinned by property tests).
* :class:`UnitTelemetry` — one sweep unit's snapshot: the registry
  *delta* accrued while the unit ran (counters, per-span stats, raw
  span events for trace merging, newly-raised warning keys) plus
  resource facts from :func:`resource.getrusage` (peak RSS, user/sys
  CPU time), GC collections, the replay engine used, and the
  cache-filter source (kernel / reference / store / memo).  Captured in
  the worker by :func:`begin_unit`/:func:`end_unit`, shipped back to
  the parent inside ``RunMetrics.meta["unit_telemetry"]``, and popped
  off by the engine before the result reaches the persistent cache.
* :class:`CampaignTelemetry` — the campaign-wide fold: summed counters,
  merged span histograms, per-worker (pid) busy time and peak RSS,
  deduplicated warnings, engine/filter-source tallies.  ``merge`` is
  associative and order-independent (integer sums, maxes, element-wise
  histogram addition — pinned by hypothesis tests), and
  ``to_dict``/``from_dict`` round-trip losslessly through the campaign
  manifest's ``telemetry`` block.

Capture is off unless the ``REPRO_TELEMETRY`` environment variable is
``"1"`` (the experiments CLI exports it; worker processes inherit it),
so library users and the disabled-overhead guarantee of PR 1 are
untouched.  :func:`merged_trace_doc` re-bases every unit's span events
onto the campaign wall clock and emits one Chrome-trace pid lane per
worker process next to the parent's own lane.
"""

from __future__ import annotations

import gc
import os
import resource
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.registry import OBS, Registry
from repro.obs.sinks import chrome_trace_doc

__all__ = [
    "ENV_PROFILE",
    "ENV_TELEMETRY",
    "TELEMETRY_VERSION",
    "CampaignTelemetry",
    "LogHistogram",
    "SpanStats",
    "UnitTelemetry",
    "abort_unit",
    "begin_unit",
    "capture_enabled",
    "end_unit",
    "mark_campaign_start",
    "merged_trace_doc",
    "write_telemetry_jsonl",
]

#: Schema version of ``telemetry.jsonl`` and the manifest block.
TELEMETRY_VERSION = 1

#: ``"1"`` turns per-unit capture on (exported by the campaign CLI,
#: inherited by sweep worker processes).
ENV_TELEMETRY = "REPRO_TELEMETRY"

#: ``"1"`` wraps each unit in cProfile (the ``--profile`` flag).
ENV_PROFILE = "REPRO_PROFILE"

#: log2 bins: index = bit_length of the integer nanosecond value,
#: clamped — bin 63 holds everything >= 2**62 ns (~146 years).
N_BINS = 64


def capture_enabled() -> bool:
    """Whether :func:`begin_unit` captures are requested in this process."""
    return os.environ.get(ENV_TELEMETRY) == "1"


# ---- mergeable histogram ----------------------------------------------------


class LogHistogram:
    """Fixed-bin log2 histogram of non-negative integer values (ns).

    Sparse storage (``{bin: count}``); merging two histograms is
    element-wise addition, so any fold order yields the same object.
    Percentiles return the *upper bound* of the target bin — at most 2x
    the true value (one bin width), never below it.
    """

    __slots__ = ("bins", "n")

    def __init__(self, bins: dict[int, int] | None = None):
        self.bins: dict[int, int] = dict(bins) if bins else {}
        self.n = sum(self.bins.values())

    @staticmethod
    def bin_of(value: int) -> int:
        v = int(value)
        return 0 if v <= 0 else min(v.bit_length(), N_BINS - 1)

    @staticmethod
    def bin_upper(b: int) -> int:
        """Largest value the bin can hold (0 for the zero bin)."""
        return 0 if b <= 0 else (1 << b) - 1

    def record(self, value: int) -> None:
        b = self.bin_of(value)
        self.bins[b] = self.bins.get(b, 0) + 1
        self.n += 1

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Element-wise sum; returns a new histogram, mutates neither."""
        out = LogHistogram(self.bins)
        for b, c in other.bins.items():
            out.bins[b] = out.bins.get(b, 0) + c
        out.n = self.n + other.n
        return out

    def percentile(self, q: float) -> int:
        """Upper bound of the bin holding the q-quantile (0 if empty)."""
        if self.n == 0:
            return 0
        target = max(1, -(-int(q * 1e9) * self.n // int(1e9)))  # ceil(q*n)
        seen = 0
        for b in sorted(self.bins):
            seen += self.bins[b]
            if seen >= target:
                return self.bin_upper(b)
        return self.bin_upper(max(self.bins))

    def to_dict(self) -> dict:
        return {"n": self.n,
                "bins": {str(b): c for b, c in sorted(self.bins.items())}}

    @classmethod
    def from_dict(cls, data: dict) -> "LogHistogram":
        return cls({int(b): int(c) for b, c in data.get("bins", {}).items()})

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, LogHistogram)
                and self.bins == other.bins and self.n == other.n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogHistogram(n={self.n}, bins={self.bins})"


@dataclass
class SpanStats:
    """Mergeable aggregate of one span name's closed durations."""

    count: int = 0
    total_ns: int = 0
    max_ns: int = 0
    hist: LogHistogram = field(default_factory=LogHistogram)

    def record(self, duration_ns: int) -> None:
        d = max(0, int(duration_ns))
        self.count += 1
        self.total_ns += d
        self.max_ns = max(self.max_ns, d)
        self.hist.record(d)

    def merge(self, other: "SpanStats") -> "SpanStats":
        return SpanStats(
            count=self.count + other.count,
            total_ns=self.total_ns + other.total_ns,
            max_ns=max(self.max_ns, other.max_ns),
            hist=self.hist.merge(other.hist),
        )

    @property
    def total_s(self) -> float:
        return self.total_ns / 1e9

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "max_ns": self.max_ns,
            "hist": self.hist.to_dict(),
            # Derived, for human readers; from_dict recomputes them.
            "p50_ns": self.hist.percentile(0.50),
            "p95_ns": self.hist.percentile(0.95),
            "p99_ns": self.hist.percentile(0.99),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanStats":
        return cls(count=int(data["count"]), total_ns=int(data["total_ns"]),
                   max_ns=int(data["max_ns"]),
                   hist=LogHistogram.from_dict(data.get("hist", {})))


# ---- per-unit snapshot ------------------------------------------------------


@dataclass
class UnitTelemetry:
    """One sweep unit's registry delta + resource facts (picklable/JSON)."""

    pid: int = 0
    label: str = ""
    wall_start: float = 0.0  #: Epoch seconds (comparable across processes).
    wall_ns: int = 0
    utime_us: int = 0
    stime_us: int = 0
    peak_rss_kb: int = 0
    gc_collections: int = 0
    accesses: int = 0  #: Trace accesses replayed (n_accesses x cores).
    filter_accesses: int = 0  #: Accesses actually cache-filtered here.
    engine: str | None = None  #: Replay engine: ``"kernel"``/``"reference"``.
    filter_sources: dict[str, int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    spans: dict[str, SpanStats] = field(default_factory=dict)
    warnings: dict[str, str] = field(default_factory=dict)  #: key -> message
    events: list[dict] = field(default_factory=list)  #: raw span dicts

    def to_dict(self) -> dict:
        return {
            "pid": self.pid,
            "label": self.label,
            "wall_start": self.wall_start,
            "wall_ns": self.wall_ns,
            "utime_us": self.utime_us,
            "stime_us": self.stime_us,
            "peak_rss_kb": self.peak_rss_kb,
            "gc_collections": self.gc_collections,
            "accesses": self.accesses,
            "filter_accesses": self.filter_accesses,
            "engine": self.engine,
            "filter_sources": dict(self.filter_sources),
            "counters": dict(self.counters),
            "spans": {k: v.to_dict() for k, v in self.spans.items()},
            "warnings": dict(self.warnings),
            "events": [dict(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UnitTelemetry":
        return cls(
            pid=int(data.get("pid", 0)),
            label=data.get("label", ""),
            wall_start=float(data.get("wall_start", 0.0)),
            wall_ns=int(data.get("wall_ns", 0)),
            utime_us=int(data.get("utime_us", 0)),
            stime_us=int(data.get("stime_us", 0)),
            peak_rss_kb=int(data.get("peak_rss_kb", 0)),
            gc_collections=int(data.get("gc_collections", 0)),
            accesses=int(data.get("accesses", 0)),
            filter_accesses=int(data.get("filter_accesses", 0)),
            engine=data.get("engine"),
            filter_sources=dict(data.get("filter_sources", {})),
            counters=dict(data.get("counters", {})),
            spans={k: SpanStats.from_dict(v)
                   for k, v in data.get("spans", {}).items()},
            warnings=dict(data.get("warnings", {})),
            events=[dict(e) for e in data.get("events", [])],
        )


# ---- capture ----------------------------------------------------------------


def _gc_collections() -> int:
    return sum(int(s.get("collections", 0)) for s in gc.get_stats())


def _peak_rss_kb(ru: resource.struct_rusage) -> int:
    # ru_maxrss is KiB on Linux, bytes on macOS.
    rss = int(ru.ru_maxrss)
    return rss // 1024 if sys.platform == "darwin" else rss


def peak_rss_kb() -> int:
    """This process's lifetime peak resident set size, in KiB.

    A high-water mark, not a gauge: it never decreases, so bounding a
    workload's footprint with it requires a process that does nothing
    big *before* the workload (see ``benchmarks/trace_scale.py``).
    """
    return _peak_rss_kb(resource.getrusage(resource.RUSAGE_SELF))


class _UnitCapture:
    """Open capture handle; see :func:`begin_unit`/:func:`end_unit`."""

    __slots__ = ("registry", "owned", "wall_start", "t0_ns", "ru0", "gc0",
                 "counters0", "events0", "warned0")

    def __init__(self, registry: Registry):
        self.registry = registry
        #: True when *we* enabled the registry for this capture — the
        #: events we add are trimmed and the registry re-disabled on
        #: end, so pure-telemetry workers stay bounded and the PR 1
        #: disabled-by-default contract holds outside the unit.
        self.owned = not registry.enabled
        if self.owned:
            registry.enable()
        self.wall_start = time.time()
        self.ru0 = resource.getrusage(resource.RUSAGE_SELF)
        self.gc0 = _gc_collections()
        self.counters0 = dict(registry.counters)
        self.events0 = len(registry.events)
        self.warned0 = set(registry._warned)
        self.t0_ns = time.perf_counter_ns()


def begin_unit(registry: Registry | None = None) -> _UnitCapture:
    """Start capturing one unit's registry delta (enables if needed)."""
    return _UnitCapture(OBS if registry is None else registry)


def abort_unit(cap: _UnitCapture) -> None:
    """Restore registry state after a failed unit; no telemetry emitted."""
    reg = cap.registry
    if cap.owned:
        del reg.events[cap.events0:]
        reg._stack.clear()
        reg.disable()


def _filter_source_counts(meta: dict) -> tuple[dict[str, int], int]:
    """(source -> count, memoized-hit count is folded in as ``"memo"``).

    ``meta["filter"]`` is one provenance dict (single-core), a mapping
    app -> provenance (multicore), or ``None`` when the in-process memo
    served the stream without re-filtering.
    """
    out: dict[str, int] = {}

    def one(prov: dict | None) -> None:
        src = prov["engine"] if prov else "memo"
        out[src] = out.get(src, 0) + 1

    if "filter" not in meta:
        return out, 0
    f = meta["filter"]
    if f is None or "engine" in f:
        one(f)
    else:
        for prov in f.values():
            one(prov)
    return out, 0


def end_unit(cap: _UnitCapture, *, label: str = "",
             meta: dict | None = None) -> UnitTelemetry:
    """Close a capture; returns the unit's telemetry snapshot.

    ``meta`` is the finished run's ``RunMetrics.meta`` — the engine
    used, cache-filter provenance, and access counts are lifted from it.
    """
    reg = cap.registry
    wall_ns = time.perf_counter_ns() - cap.t0_ns
    ru1 = resource.getrusage(resource.RUSAGE_SELF)
    events = reg.events[cap.events0:]

    spans: dict[str, SpanStats] = {}
    event_docs: list[dict] = []
    for e in events:
        if e.kind == "span" and e.end_ns is not None:
            spans.setdefault(e.name, SpanStats()).record(e.duration_ns)
        event_docs.append(e.to_dict())

    counters = {
        k: v - cap.counters0.get(k, 0)
        for k, v in reg.counters.items()
        if v != cap.counters0.get(k, 0)
    }
    warnings = {k: m for k, m in reg._warned.items()
                if k not in cap.warned0}

    meta = meta or {}
    fast = meta.get("fast_path")
    sources, _ = _filter_source_counts(meta)
    ut = UnitTelemetry(
        pid=os.getpid(),
        label=label,
        wall_start=cap.wall_start,
        wall_ns=wall_ns,
        utime_us=round((ru1.ru_utime - cap.ru0.ru_utime) * 1e6),
        stime_us=round((ru1.ru_stime - cap.ru0.ru_stime) * 1e6),
        peak_rss_kb=_peak_rss_kb(ru1),
        gc_collections=_gc_collections() - cap.gc0,
        accesses=int(meta.get("accesses", 0)),
        filter_accesses=int(counters.get("filter.accesses", 0)),
        engine=None if fast is None else ("kernel" if fast else "reference"),
        filter_sources=sources,
        counters=counters,
        spans=spans,
        warnings=warnings,
        events=event_docs,
    )
    if cap.owned:
        del reg.events[cap.events0:]
        reg._stack.clear()
        reg.disable()
    return ut


# ---- campaign aggregation ---------------------------------------------------


def _merge_counts(a: dict, b: dict) -> dict:
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0) + v
    return out


@dataclass
class CampaignTelemetry:
    """Order-independent fold of :class:`UnitTelemetry` snapshots.

    All sums are over integers (nanoseconds / microseconds / counts), so
    ``merge`` is exactly associative and commutative; ``workers`` maxes
    peak RSS per pid; ``warnings`` keeps the lexicographically-smallest
    message per key for determinism.
    """

    units: int = 0
    cached_units: int = 0  #: Units served by the result cache (engine-side).
    failed_units: int = 0
    wall_ns: int = 0  #: Summed unit wall time.
    utime_us: int = 0
    stime_us: int = 0
    gc_collections: int = 0
    accesses: int = 0
    filter_accesses: int = 0
    counters: dict[str, float] = field(default_factory=dict)
    spans: dict[str, SpanStats] = field(default_factory=dict)
    workers: dict[str, dict] = field(default_factory=dict)  #: pid -> facts
    warnings: dict[str, dict] = field(default_factory=dict)  #: key -> info
    engines: dict[str, int] = field(default_factory=dict)
    filter_sources: dict[str, int] = field(default_factory=dict)

    # ---- folding -----------------------------------------------------------

    def add_unit(self, ut: UnitTelemetry) -> None:
        self.units += 1
        self.wall_ns += ut.wall_ns
        self.utime_us += ut.utime_us
        self.stime_us += ut.stime_us
        self.gc_collections += ut.gc_collections
        self.accesses += ut.accesses
        self.filter_accesses += ut.filter_accesses
        self.counters = _merge_counts(self.counters, ut.counters)
        for name, stats in ut.spans.items():
            prev = self.spans.get(name)
            self.spans[name] = stats if prev is None else prev.merge(stats)
        w = self.workers.setdefault(str(ut.pid), {
            "units": 0, "busy_ns": 0, "peak_rss_kb": 0,
            "utime_us": 0, "stime_us": 0, "gc_collections": 0,
        })
        w["units"] += 1
        w["busy_ns"] += ut.wall_ns
        w["peak_rss_kb"] = max(w["peak_rss_kb"], ut.peak_rss_kb)
        w["utime_us"] += ut.utime_us
        w["stime_us"] += ut.stime_us
        w["gc_collections"] += ut.gc_collections
        for key, message in ut.warnings.items():
            entry = self.warnings.setdefault(key,
                                             {"count": 0, "message": message})
            entry["count"] += 1
            entry["message"] = min(entry["message"], message)
        if ut.engine is not None:
            self.engines[ut.engine] = self.engines.get(ut.engine, 0) + 1
        self.filter_sources = _merge_counts(self.filter_sources,
                                            ut.filter_sources)

    def merge(self, other: "CampaignTelemetry") -> "CampaignTelemetry":
        """Combine two aggregates; returns a new one, mutates neither."""
        out = CampaignTelemetry(
            units=self.units + other.units,
            cached_units=self.cached_units + other.cached_units,
            failed_units=self.failed_units + other.failed_units,
            wall_ns=self.wall_ns + other.wall_ns,
            utime_us=self.utime_us + other.utime_us,
            stime_us=self.stime_us + other.stime_us,
            gc_collections=self.gc_collections + other.gc_collections,
            accesses=self.accesses + other.accesses,
            filter_accesses=self.filter_accesses + other.filter_accesses,
            counters=_merge_counts(self.counters, other.counters),
            engines=_merge_counts(self.engines, other.engines),
            filter_sources=_merge_counts(self.filter_sources,
                                         other.filter_sources),
        )
        out.spans = {k: v for k, v in self.spans.items()}
        for name, stats in other.spans.items():
            prev = out.spans.get(name)
            out.spans[name] = stats if prev is None else prev.merge(stats)
        out.workers = {pid: dict(w) for pid, w in self.workers.items()}
        for pid, w in other.workers.items():
            prev = out.workers.get(pid)
            if prev is None:
                out.workers[pid] = dict(w)
            else:
                for k in ("units", "busy_ns", "utime_us", "stime_us",
                          "gc_collections"):
                    prev[k] += w[k]
                prev["peak_rss_kb"] = max(prev["peak_rss_kb"],
                                          w["peak_rss_kb"])
        out.warnings = {k: dict(v) for k, v in self.warnings.items()}
        for key, info in other.warnings.items():
            prev = out.warnings.get(key)
            if prev is None:
                out.warnings[key] = dict(info)
            else:
                prev["count"] += info["count"]
                prev["message"] = min(prev["message"], info["message"])
        return out

    # ---- queries -----------------------------------------------------------

    def hot_spans(self, n: int = 3) -> list[tuple[str, float]]:
        """Top-n span names by summed wall time, as (name, seconds)."""
        ranked = sorted(self.spans.items(),
                        key=lambda kv: (-kv[1].total_ns, kv[0]))
        return [(name, stats.total_s) for name, stats in ranked[:n]]

    @property
    def wall_s(self) -> float:
        return self.wall_ns / 1e9

    def replay_acc_per_s(self) -> float:
        """Replayed accesses per second of ``core_replay`` span time."""
        replay = self.spans.get("core_replay")
        if replay is None or replay.total_ns == 0:
            return 0.0
        return self.accesses / (replay.total_ns / 1e9)

    def filter_acc_per_s(self) -> float:
        """Filtered accesses per second of ``cache_filter`` span time."""
        filt = self.spans.get("cache_filter")
        if filt is None or filt.total_ns == 0 or self.filter_accesses == 0:
            return 0.0
        return self.filter_accesses / (filt.total_ns / 1e9)

    # ---- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": TELEMETRY_VERSION,
            "units": self.units,
            "cached_units": self.cached_units,
            "failed_units": self.failed_units,
            "wall_ns": self.wall_ns,
            "utime_us": self.utime_us,
            "stime_us": self.stime_us,
            "gc_collections": self.gc_collections,
            "accesses": self.accesses,
            "filter_accesses": self.filter_accesses,
            "counters": dict(self.counters),
            "spans": {k: v.to_dict() for k, v in sorted(self.spans.items())},
            "workers": {pid: dict(w)
                        for pid, w in sorted(self.workers.items())},
            "warnings": {k: dict(v)
                         for k, v in sorted(self.warnings.items())},
            "engines": dict(self.engines),
            "filter_sources": dict(self.filter_sources),
            # Derived, for human readers; from_dict recomputes them.
            "wall_s": round(self.wall_s, 6),
            "replay_acc_per_s": round(self.replay_acc_per_s(), 3),
            "filter_acc_per_s": round(self.filter_acc_per_s(), 3),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignTelemetry":
        out = cls(
            units=int(data.get("units", 0)),
            cached_units=int(data.get("cached_units", 0)),
            failed_units=int(data.get("failed_units", 0)),
            wall_ns=int(data.get("wall_ns", 0)),
            utime_us=int(data.get("utime_us", 0)),
            stime_us=int(data.get("stime_us", 0)),
            gc_collections=int(data.get("gc_collections", 0)),
            accesses=int(data.get("accesses", 0)),
            filter_accesses=int(data.get("filter_accesses", 0)),
            counters=dict(data.get("counters", {})),
            engines=dict(data.get("engines", {})),
            filter_sources=dict(data.get("filter_sources", {})),
        )
        out.spans = {k: SpanStats.from_dict(v)
                     for k, v in data.get("spans", {}).items()}
        out.workers = {pid: dict(w)
                       for pid, w in data.get("workers", {}).items()}
        out.warnings = {k: dict(v)
                        for k, v in data.get("warnings", {}).items()}
        return out

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, CampaignTelemetry)
                and self.to_dict() == other.to_dict())


# ---- artefacts --------------------------------------------------------------


def write_telemetry_jsonl(path: str | Path, units: list[UnitTelemetry],
                          campaign: CampaignTelemetry) -> Path:
    """One JSON line per unit plus the final campaign aggregate."""
    import json

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as f:
        f.write(json.dumps({"type": "header", "version": TELEMETRY_VERSION,
                            "kind": "telemetry", "pid": os.getpid()}) + "\n")
        for ut in units:
            f.write(json.dumps({"type": "unit", **ut.to_dict()}) + "\n")
        f.write(json.dumps({"type": "campaign",
                            **campaign.to_dict()}) + "\n")
    return path


#: (epoch seconds, perf_counter_ns) at campaign start — the common time
#: base :func:`merged_trace_doc` re-bases every lane onto.
_anchor: tuple[float, int] | None = None


def mark_campaign_start() -> None:
    """Pin the campaign's epoch/monotonic origin (CLI calls this once)."""
    global _anchor
    _anchor = (time.time(), time.perf_counter_ns())


def merged_trace_doc(registry: Registry, units: list[UnitTelemetry],
                     process_name: str = "repro-campaign") -> dict:
    """One Chrome-trace document: parent lane + one pid lane per worker.

    Worker clocks (``perf_counter_ns``) are not comparable across
    processes, so each unit's events are re-based onto the campaign
    wall clock: the unit's first event lands at ``wall_start`` relative
    to the campaign origin (:func:`mark_campaign_start`, else the
    earliest unit).  Units that ran *in the parent process* while its
    registry was enabled are skipped — their spans are already in the
    parent lane.
    """
    parent_pid = os.getpid()
    if _anchor is not None:
        epoch0, mono0 = _anchor
    else:
        epoch0 = min((u.wall_start for u in units), default=time.time())
        mono0 = min((e.start_ns for e in registry.events), default=0)

    doc = chrome_trace_doc(registry, process_name)
    events = doc["traceEvents"]
    starts = [e.start_ns for e in registry.events]
    if starts:
        # chrome_trace_doc re-based the parent lane to its own earliest
        # event; shift it onto the campaign origin instead.
        shift_us = max(0.0, (min(starts) - mono0) / 1000.0)
        for ev in events:
            if "ts" in ev:
                ev["ts"] += shift_us

    seen_pids = {parent_pid}
    for ut in units:
        if ut.pid == parent_pid and registry.enabled:
            continue
        if ut.pid not in seen_pids:
            seen_pids.add(ut.pid)
            events.append({
                "ph": "M", "pid": ut.pid, "tid": 0, "name": "process_name",
                "args": {"name": f"worker {ut.pid}"},
            })
        if not ut.events:
            continue
        base_us = max(0.0, (ut.wall_start - epoch0) * 1e6)
        first = min(e["start_ns"] for e in ut.events)
        for e in ut.events:
            ts = base_us + (e["start_ns"] - first) / 1000.0
            if e["type"] == "span" and e.get("end_ns") is not None:
                events.append({
                    "ph": "X", "pid": ut.pid, "tid": 0, "cat": "sim",
                    "name": e["name"], "ts": ts,
                    "dur": (e["end_ns"] - e["start_ns"]) / 1000.0,
                    "args": {**e["args"], "depth": e["depth"],
                             "unit": ut.label},
                })
            elif e["type"] == "instant":
                events.append({
                    "ph": "i", "pid": ut.pid, "tid": 0, "cat": "sim",
                    "s": "p", "name": e["name"], "ts": ts,
                    "args": dict(e["args"]),
                })
    return doc
