"""Perf-trend tracking: append-only bench history + regression report.

Every telemetry-enabled campaign (and every hotpath benchmark run fed
through ``--record-hotpath``) can append one JSON record to
``results/bench_history.jsonl``: a host fingerprint, the git sha,
fidelity, per-phase wall times, and the two headline throughputs —
replayed accesses/s (``core_replay``) and filtered accesses/s
(``cache_filter``).  The history turns the committed CI floors of
``benchmarks/*_baseline.json`` from a coarse tripwire into a trend: a
silent 30% regression that still clears the floor shows up as a falling
line here.

``python -m repro.experiments bench-report`` renders the trend (last N
records, unicode sparklines per metric) and flags regressions two ways:

* **floor check** — the latest hotpath record's speedups against the
  committed baselines (same 15%-below-baseline / absolute-floor rule as
  the benchmarks themselves);
* **trend check** — the latest campaign record against the median of
  earlier records from the *same host and fidelity* (cross-host numbers
  are not comparable); a drop below half the median is flagged.

Exit status 1 when anything is flagged, so CI can gate on it.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from statistics import median

from repro.obs.telemetry import CampaignTelemetry

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_HISTORY",
    "ENV_HISTORY",
    "append_record",
    "campaign_record",
    "check_regressions",
    "git_sha",
    "host_fingerprint",
    "hotpath_record",
    "read_history",
    "render_report",
    "report_main",
]

#: Schema version stamped into every history record.
BENCH_SCHEMA = 1

#: Overrides the default history path (used by the campaign CLI too).
ENV_HISTORY = "REPRO_BENCH_HISTORY"

DEFAULT_HISTORY = Path("results") / "bench_history.jsonl"

#: Regression thresholds.
TREND_FLOOR = 0.5  #: latest < this fraction of same-host median -> flag
BASELINE_SLACK = 0.85  #: benchmarks' own 15%-below-baseline rule
REPLAY_ABS_FLOOR = 5.0
FILTER_ABS_FLOOR = 4.0
#: Campaign throughput is absolute (units/s), not a self-relative
#: speedup, so the committed baseline only transfers loosely across
#: machines — gate with generous slack.
CAMPAIGN_SLACK = 0.25


def host_fingerprint() -> dict:
    """Stable identity of the measuring machine (trend grouping key)."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def git_sha(cwd: str | Path | None = None) -> str | None:
    """Current commit sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _base_record(kind: str) -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "kind": kind,
        "ts_epoch": round(time.time(), 3),
        "host": host_fingerprint(),
        "git": git_sha(),
    }


def campaign_record(fidelity: str, campaign: CampaignTelemetry,
                    sweep_seconds: dict | None = None,
                    cache: dict | None = None) -> dict:
    """One history record summarizing a finished campaign."""
    rec = _base_record("campaign")
    rec.update({
        "fidelity": fidelity,
        "units": campaign.units,
        "cached_units": campaign.cached_units,
        "failed_units": campaign.failed_units,
        "wall_s": round(campaign.wall_s, 3),
        "phase_seconds": {
            name: round(stats.total_s, 3)
            for name, stats in sorted(campaign.spans.items())
        },
        "replay_acc_per_s": round(campaign.replay_acc_per_s(), 1),
        "filter_acc_per_s": round(campaign.filter_acc_per_s(), 1),
    })
    if sweep_seconds:
        rec["sweep_seconds"] = {k: round(v, 3)
                                for k, v in sweep_seconds.items()}
    if cache:
        rec["cache_hit_ratio"] = cache.get("hit_ratio")
    return rec


def hotpath_record(bench_dir: str | Path) -> dict:
    """One history record from ``BENCH_hotpath.json``/``BENCH_filter.json``.

    Raises ``FileNotFoundError`` if neither result file exists (the
    benchmarks haven't been run in ``bench_dir``).
    """
    bench_dir = Path(bench_dir)
    rec = _base_record("hotpath")
    found = False
    hot = bench_dir / "BENCH_hotpath.json"
    if hot.exists():
        doc = json.loads(hot.read_text())
        rec["replay_speedup"] = doc.get("speedup")
        rec["replay_acc_per_s"] = doc.get("fast_records_per_sec")
        found = True
    filt = bench_dir / "BENCH_filter.json"
    if filt.exists():
        doc = json.loads(filt.read_text())
        rec["filter_speedup"] = doc.get("speedup")
        rec["filter_acc_per_s"] = doc.get("fast_accesses_per_sec")
        found = True
    camp = bench_dir / "BENCH_campaign.json"
    if camp.exists():
        doc = json.loads(camp.read_text())
        rec["campaign_units_per_s"] = doc.get("units_per_sec")
        rec["campaign_speedup"] = doc.get("speedup")
        rec["campaign_copies_avoided"] = doc.get("copies_avoided")
        found = True
    if not found:
        raise FileNotFoundError(
            f"no BENCH_hotpath.json / BENCH_filter.json / "
            f"BENCH_campaign.json under {bench_dir} "
            "— run the hotpath benchmarks first")
    return rec


def history_path(path: str | Path | None = None) -> Path:
    """Resolve the history file: explicit > env > default."""
    if path is not None:
        return Path(path)
    env = os.environ.get(ENV_HISTORY)
    return Path(env) if env else DEFAULT_HISTORY


def append_record(record: dict, path: str | Path | None = None) -> Path:
    """Append one record (filled with schema/host/git if missing)."""
    rec = _base_record(record.get("kind", "campaign"))
    rec.update(record)
    path = history_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as f:
        f.write(json.dumps(rec) + "\n")
    return path


def read_history(path: str | Path | None = None) -> list[dict]:
    path = history_path(path)
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


# ---- regression checks ------------------------------------------------------


def _load_baseline(baseline_dir: Path, name: str) -> dict | None:
    path = baseline_dir / name
    return json.loads(path.read_text()) if path.exists() else None


def check_regressions(history: list[dict],
                      baseline_dir: str | Path = Path("benchmarks"),
                      ) -> list[str]:
    """Flag latest-record regressions; empty list means all clear."""
    baseline_dir = Path(baseline_dir)
    flags: list[str] = []

    hot = [r for r in history if r.get("kind") == "hotpath"]
    if hot:
        latest = hot[-1]
        for metric, baseline_name, abs_floor in (
                ("replay_speedup", "hotpath_baseline.json",
                 REPLAY_ABS_FLOOR),
                ("filter_speedup", "filter_baseline.json",
                 FILTER_ABS_FLOOR)):
            value = latest.get(metric)
            baseline = _load_baseline(baseline_dir, baseline_name)
            if value is None or baseline is None:
                continue
            floor = max(abs_floor, BASELINE_SLACK * baseline["speedup"])
            if value < floor:
                flags.append(
                    f"{metric} {value:.2f}x below floor {floor:.2f}x "
                    f"(baseline {baseline['speedup']}x)")
        value = latest.get("campaign_units_per_s")
        baseline = _load_baseline(baseline_dir, "campaign_baseline.json")
        if value is not None and baseline is not None:
            floor = CAMPAIGN_SLACK * baseline["units_per_sec"]
            if value < floor:
                flags.append(
                    f"campaign_units_per_s {value:.2f}/s below floor "
                    f"{floor:.2f}/s (baseline "
                    f"{baseline['units_per_sec']}/s at {CAMPAIGN_SLACK:g}x "
                    f"slack)")

    camp = [r for r in history if r.get("kind") == "campaign"]
    if len(camp) >= 2:
        latest = camp[-1]
        same = [r for r in camp[:-1]
                if r.get("host") == latest.get("host")
                and r.get("fidelity") == latest.get("fidelity")]
        for metric in ("replay_acc_per_s", "filter_acc_per_s"):
            value = latest.get(metric) or 0
            prior = [r[metric] for r in same if r.get(metric)]
            if not prior or not value:
                continue
            ref = median(prior)
            if value < TREND_FLOOR * ref:
                flags.append(
                    f"{metric} trend regression: latest {value:.0f}/s vs "
                    f"median {ref:.0f}/s over {len(prior)} same-host "
                    f"{latest.get('fidelity')} runs")
    return flags


# ---- rendering --------------------------------------------------------------

_SPARK = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float]) -> str:
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[3] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((v - lo) / (hi - lo) * (len(_SPARK) - 1)))]
        for v in values)


def _fmt_ts(epoch: float | None) -> str:
    if not epoch:
        return "-"
    return time.strftime("%m-%d %H:%M", time.gmtime(epoch))


def render_report(history: list[dict], last: int = 12) -> str:
    """Human-readable trend table + sparklines over the last N records."""
    if not history:
        return "bench history is empty — nothing to report\n"
    recent = history[-last:]
    lines = [f"bench history: {len(history)} records "
             f"(showing last {len(recent)})"]
    header = (f"{'when (utc)':>12}  {'kind':>8}  {'sha':>7}  {'fid':>7}  "
              f"{'replay/s':>10}  {'filter/s':>10}  {'speedups':>12}")
    lines += [header, "-" * len(header)]
    for r in recent:
        sha = (r.get("git") or "-")[:7]
        speed = "-"
        if r.get("replay_speedup") or r.get("filter_speedup"):
            speed = (f"{r.get('replay_speedup', 0):.1f}x/"
                     f"{r.get('filter_speedup', 0):.1f}x")
        lines.append(
            f"{_fmt_ts(r.get('ts_epoch')):>12}  {r.get('kind', '-'):>8}  "
            f"{sha:>7}  {r.get('fidelity', '-') or '-':>7}  "
            f"{r.get('replay_acc_per_s') or '-':>10}  "
            f"{r.get('filter_acc_per_s') or '-':>10}  {speed:>12}")
    for metric in ("replay_acc_per_s", "filter_acc_per_s",
                   "campaign_units_per_s"):
        vals = [float(r[metric]) for r in recent if r.get(metric)]
        if len(vals) >= 2:
            lines.append(f"{metric:>20}: {_sparkline(vals)} "
                         f"(min {min(vals):.0f}, max {max(vals):.0f})")
    return "\n".join(lines) + "\n"


# ---- CLI --------------------------------------------------------------------


def report_main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments bench-report`` entry point."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments bench-report",
        description="Render the bench-history trend and flag regressions")
    parser.add_argument("--history", default=None,
                        help="history file (default results/"
                             "bench_history.jsonl or $REPRO_BENCH_HISTORY)")
    parser.add_argument("--last", type=int, default=12,
                        help="records to show (default 12)")
    parser.add_argument("--record-hotpath", metavar="DIR", default=None,
                        help="append a hotpath record from DIR's "
                             "BENCH_hotpath.json/BENCH_filter.json first")
    parser.add_argument("--baseline-dir", default="benchmarks",
                        help="directory with *_baseline.json floors")
    parser.add_argument("--out", default=None,
                        help="also write a JSON summary (e.g. "
                             "benchmarks/BENCH_pr6.json)")
    args = parser.parse_args(argv)

    if args.record_hotpath:
        try:
            rec = hotpath_record(args.record_hotpath)
        except FileNotFoundError as exc:
            print(f"bench-report: {exc}", file=sys.stderr)
            return 2
        append_record(rec, args.history)

    history = read_history(args.history)
    print(render_report(history, last=args.last), end="")
    flags = check_regressions(history, baseline_dir=args.baseline_dir)
    for flag in flags:
        print(f"REGRESSION: {flag}", file=sys.stderr)
    if not flags and history:
        print("no regressions flagged", file=sys.stderr)

    if args.out:
        latest_hot = next((r for r in reversed(history)
                           if r.get("kind") == "hotpath"), None)
        latest_camp = next((r for r in reversed(history)
                            if r.get("kind") == "campaign"), None)
        summary = {
            "schema": BENCH_SCHEMA,
            "generated_ts": round(time.time(), 3),
            "host": host_fingerprint(),
            "git": git_sha(),
            "history_records": len(history),
            "latest_hotpath": latest_hot,
            "latest_campaign": latest_camp,
            "regressions": flags,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(summary, indent=2) + "\n")
    return 1 if flags else 0
