"""Run provenance: the ``meta`` block stamped on metrics and artefacts.

Every :class:`~repro.sim.metrics.RunMetrics` and every saved figure
artefact carries a ``meta`` dict recording *how* its numbers were
produced — config hash, thresholds, fidelity, root seed, wall-time per
phase, and a counter snapshot — so a drifting figure can be diffed
against a known-good artefact without re-simulating (was it the config?
the thresholds? a slow phase?).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
from datetime import datetime, timezone

from repro.obs.registry import OBS, Registry
from repro.util.rng import ROOT_SEED

__all__ = ["META_SCHEMA", "config_hash", "run_meta"]

META_SCHEMA = 1


def _jsonable(obj: object) -> object:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    return obj


def config_hash(config: object) -> str:
    """Stable short hash of any (dataclass) configuration object.

    SHA-256 over the sorted-key JSON form, truncated to 16 hex chars —
    enough to tell two configs apart in a manifest, short enough to eyeball.
    """
    doc = json.dumps(_jsonable(config), sort_keys=True, default=repr)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


def run_meta(*, config: object | None = None, policy: str | None = None,
             workload: str | None = None, thresholds: object | None = None,
             fidelity: object | None = None, seed: int = ROOT_SEED,
             faults: object | None = None,
             registry: Registry | None = None, **extra) -> dict:
    """Assemble a provenance ``meta`` block for one run or artefact.

    Phase wall-times and the counter snapshot are included only when the
    registry is enabled (they are empty otherwise, and collecting them
    is the whole point of ``--trace``/``--obs-dump`` runs).
    """
    from repro import __version__  # deferred: repro imports the sim layers

    registry = OBS if registry is None else registry
    meta: dict = {
        "schema": META_SCHEMA,
        "created_utc": datetime.now(timezone.utc).isoformat(),
        "repro_version": __version__,
        "python": platform.python_version(),
        "seed": seed,
    }
    if config is not None:
        meta["config"] = {"name": getattr(config, "name", str(config)),
                          "hash": config_hash(config)}
    if policy is not None:
        meta["policy"] = policy
    if workload is not None:
        meta["workload"] = workload
    if thresholds is not None:
        meta["thresholds"] = _jsonable(thresholds)
    if faults is not None:
        # FaultPlan has a canonical() form; fall back to asdict for
        # anything else dataclass-shaped.
        canon = getattr(faults, "canonical", None)
        meta["faults"] = canon() if callable(canon) else _jsonable(faults)
        if hasattr(faults, "describe"):
            meta["faults"]["label"] = faults.describe()
    if fidelity is not None:
        if isinstance(fidelity, str):
            meta["fidelity"] = {"name": fidelity}
        else:
            meta["fidelity"] = {
                "name": getattr(fidelity, "name", repr(fidelity)),
                "n_single": getattr(fidelity, "n_single", None),
                "n_multi": getattr(fidelity, "n_multi", None),
            }
    if registry.enabled:
        meta["phase_seconds"] = {
            k: round(v, 6) for k, v in registry.phase_seconds().items()}
        meta["counters"] = dict(registry.counters)
    meta.update(extra)
    return meta
