"""Telemetry sinks: JSONL event logs and Chrome ``trace_event`` exports.

Both sinks serialize the same :class:`~repro.obs.registry.Registry`
event list:

* :func:`write_jsonl` — one JSON object per line (spans, instants, and a
  final counter/gauge snapshot); greppable and machine-mergeable.
* :func:`write_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev: complete (``"X"``)
  events for spans, counter (``"C"``) samples from the snapshot.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.registry import Registry

__all__ = ["write_jsonl", "read_jsonl", "chrome_trace_doc",
           "write_chrome_trace"]

JSONL_VERSION = 1


def write_jsonl(registry: Registry, path: str | Path) -> Path:
    """Write the registry's events + final snapshot as JSON Lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as f:
        f.write(json.dumps({"type": "header", "version": JSONL_VERSION,
                            "pid": os.getpid()}) + "\n")
        for event in registry.events:
            f.write(json.dumps(event.to_dict()) + "\n")
        f.write(json.dumps({"type": "snapshot",
                            **registry.snapshot()}) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a :func:`write_jsonl` file back into a list of records."""
    records = []
    with Path(path).open() as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def chrome_trace_doc(registry: Registry,
                     process_name: str = "repro-sim") -> dict:
    """Build a Chrome Trace Event Format document from the registry.

    Spans become complete (``ph="X"``) events with microsecond
    timestamps relative to the earliest span; counters become one
    ``ph="C"`` sample each at the trace end, so Perfetto renders the
    final per-module totals as counter tracks.
    """
    pid = os.getpid()
    trace_events: list[dict] = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": process_name},
    }]
    starts = [e.start_ns for e in registry.events]
    t0 = min(starts) if starts else 0
    t_end = 0.0
    for event in registry.events:
        ts = (event.start_ns - t0) / 1000.0
        if event.kind == "span" and event.end_ns is not None:
            dur = event.duration_ns / 1000.0
            t_end = max(t_end, ts + dur)
            trace_events.append({
                "ph": "X", "pid": pid, "tid": 0, "cat": "sim",
                "name": event.name, "ts": ts, "dur": dur,
                "args": {**event.args, "depth": event.depth},
            })
        elif event.kind == "instant":
            t_end = max(t_end, ts)
            trace_events.append({
                "ph": "i", "pid": pid, "tid": 0, "cat": "sim", "s": "p",
                "name": event.name, "ts": ts, "args": dict(event.args),
            })
    for name, value in sorted(registry.counters.items()):
        trace_events.append({
            "ph": "C", "pid": pid, "tid": 0, "name": name,
            "ts": t_end, "args": {"value": value},
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(registry: Registry, path: str | Path,
                       process_name: str = "repro-sim") -> Path:
    """Write a ``chrome://tracing``/Perfetto-loadable JSON trace file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace_doc(registry, process_name)))
    return path
