"""Live campaign dashboard: one stderr status line + heartbeat file.

The ``--dashboard`` flag of ``python -m repro.experiments`` attaches a
:class:`Dashboard` to the sweep engine's observer hook.  It renders a
single status line — figure progress, units done/total, throughput, ETA,
cache and stream-store hit ratios, resilience counts, and the top-3
hottest spans so far — using the same tty detection as the progress
reporter: in-place repaints on a terminal, throttled plain lines on a
pipe.  No dependencies beyond the standard library.

Alongside the human view, the dashboard maintains a machine-readable
heartbeat file (``<save>/.heartbeat.json``, atomic tmp-then-replace)
so external tooling can tail a running campaign without parsing stderr.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import deque
from pathlib import Path
from typing import Callable, TextIO

from repro.obs.progress import _CLEAR_EOL, supports_repaint

__all__ = ["Dashboard", "HEARTBEAT_NAME"]

#: File name of the machine-readable heartbeat inside ``--save`` dirs.
HEARTBEAT_NAME = ".heartbeat.json"

#: Heartbeat schema version.
HEARTBEAT_VERSION = 1


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    s = int(seconds)
    if s >= 3600:
        return f"{s // 3600}h{(s % 3600) // 60:02d}m"
    if s >= 60:
        return f"{s // 60}m{s % 60:02d}s"
    return f"{s}s"


class Dashboard:
    """Render campaign progress from engine observer events.

    Feed it the engine's events via :meth:`on_event` (shape
    ``{"kind": "phase_begin" | "unit_done" | "phase_end", ...}``) and
    the figure lifecycle via :meth:`figure_begin`/:meth:`figure_end`.
    ``stats_provider`` is an optional zero-arg callable returning the
    engine's live stats dict (cache/resilience/telemetry) — injected by
    the CLI so this module needs no import of the experiments layer.
    """

    def __init__(self, stream: TextIO | None = None,
                 heartbeat_path: str | Path | None = None,
                 stats_provider: Callable[[], dict] | None = None,
                 min_interval: float | None = None,
                 clock: Callable[[], float] = time.monotonic):
        self.stream = stream if stream is not None else sys.stderr
        self.repaint = supports_repaint(self.stream)
        # Repaints are cheap; plain lines on a pipe are kept sparse.
        self.min_interval = (0.25 if self.repaint else 2.0
                             ) if min_interval is None else min_interval
        self.heartbeat_path = (Path(heartbeat_path)
                               if heartbeat_path is not None else None)
        self.stats_provider = stats_provider
        self.clock = clock
        self.figures: list[str] = []
        self.fidelity = ""
        self.figure = ""
        self.figures_done = 0
        self.units_done = 0
        self.units_total = 0
        self.cached_units = 0
        self.failed_units = 0
        self._t0 = clock()
        self._last_render = -1e9
        self._last_heartbeat = -1e9
        self._window: deque[tuple[float, int]] = deque(maxlen=32)
        self._open_line = False

    # ---- lifecycle ---------------------------------------------------------

    def campaign_begin(self, figures: list[str], fidelity: str) -> None:
        self.figures = list(figures)
        self.fidelity = fidelity
        self._t0 = self.clock()
        self._window.append((self._t0, 0))
        self._render(force=True)

    def figure_begin(self, name: str) -> None:
        self.figure = name
        self._render(force=True)

    def figure_end(self, name: str, status: str) -> None:
        self.figures_done += 1
        # Persist one line per finished figure even in repaint mode, so
        # scrollback keeps a campaign ledger.
        self._render(force=True, persist=True,
                     suffix=f" | {name}: {status}")
        self._heartbeat(force=True)

    def campaign_end(self) -> None:
        self._render(force=True, persist=True, suffix=" | done")
        self._heartbeat(force=True)

    # ---- engine events -----------------------------------------------------

    def on_event(self, event: dict) -> None:
        kind = event.get("kind")
        if kind == "phase_begin":
            self.units_total += int(event.get("total", 0))
            cached = int(event.get("cached", 0))
            self.cached_units += cached
            self.units_done += cached
        elif kind == "unit_done":
            self.units_done += 1
            if not event.get("ok", True):
                self.failed_units += 1
        elif kind != "phase_end":
            return
        self._window.append((self.clock(), self.units_done))
        self._render(force=(kind == "phase_end"))
        self._heartbeat()

    # ---- rates -------------------------------------------------------------

    def throughput(self) -> float:
        """Units per second over the recent window (campaign-wide fallback)."""
        if len(self._window) >= 2:
            (t0, d0), (t1, d1) = self._window[0], self._window[-1]
            if t1 > t0 and d1 > d0:
                return (d1 - d0) / (t1 - t0)
        elapsed = self.clock() - self._t0
        return self.units_done / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self) -> float | None:
        rate = self.throughput()
        remaining = self.units_total - self.units_done
        if rate <= 0 or remaining <= 0:
            return None
        return remaining / rate

    # ---- rendering ---------------------------------------------------------

    def _stats(self) -> dict:
        if self.stats_provider is None:
            return {}
        try:
            return self.stats_provider() or {}
        except Exception:  # stats must never kill a campaign
            return {}

    def _line(self, stats: dict) -> str:
        parts = [
            f"fig {min(self.figures_done + 1, len(self.figures) or 1)}"
            f"/{len(self.figures) or 1} {self.figure or '-'}",
            f"units {self.units_done}/{self.units_total}"
            + (f" ({self.cached_units} cached)" if self.cached_units else ""),
            f"{self.throughput():.1f}/s",
            f"eta {_fmt_eta(self.eta_seconds())}",
        ]
        cache = stats.get("cache")
        if cache:
            parts.append(f"cache {cache.get('hit_ratio', 0.0):.2f}")
        streams = stats.get("streams")
        if streams:
            parts.append(f"streams {streams.get('hit_ratio', 0.0):.2f}")
        res = stats.get("resilience")
        if res and (res.get("retries") or res.get("timeouts")
                    or res.get("pool_breaks")):
            parts.append(f"retries {res.get('retries', 0)}"
                         f" timeouts {res.get('timeouts', 0)}"
                         f" breaks {res.get('pool_breaks', 0)}")
        if self.failed_units:
            parts.append(f"FAILED {self.failed_units}")
        hot = stats.get("hot_spans")
        if hot:
            parts.append("hot " + " ".join(
                f"{name}:{secs:.1f}s" for name, secs in hot[:3]))
        return f"[dash {self.fidelity}] " + " | ".join(parts)

    def _render(self, force: bool = False, persist: bool = False,
                suffix: str = "") -> None:
        now = self.clock()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        line = self._line(self._stats()) + suffix
        if self.repaint and not persist:
            print(f"\r{line}{_CLEAR_EOL}", file=self.stream,
                  flush=True, end="")
            self._open_line = True
        else:
            end = "\n"
            prefix = "\r" + _CLEAR_EOL if self._open_line else ""
            print(f"{prefix}{line}", file=self.stream, flush=True, end=end)
            self._open_line = False

    # ---- heartbeat ---------------------------------------------------------

    def heartbeat_doc(self) -> dict:
        stats = self._stats()
        eta = self.eta_seconds()
        return {
            "version": HEARTBEAT_VERSION,
            "ts_epoch": time.time(),
            "pid": os.getpid(),
            "fidelity": self.fidelity,
            "figure": self.figure,
            "figures_done": self.figures_done,
            "figures_total": len(self.figures),
            "units_done": self.units_done,
            "units_total": self.units_total,
            "cached_units": self.cached_units,
            "failed_units": self.failed_units,
            "throughput_per_s": round(self.throughput(), 3),
            "eta_s": None if eta is None else round(eta, 1),
            "stats": stats or None,
        }

    def _heartbeat(self, force: bool = False) -> None:
        if self.heartbeat_path is None:
            return
        now = self.clock()
        if not force and now - self._last_heartbeat < 1.0:
            return
        self._last_heartbeat = now
        path = self.heartbeat_path
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.heartbeat_doc(), indent=2))
        os.replace(tmp, path)  # atomic: readers never see a partial file
