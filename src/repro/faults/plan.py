"""FaultPlan: the seeded, deterministic identity of injected faults.

A :class:`FaultPlan` describes *what goes wrong* in a simulated run the
same way a :class:`~repro.sim.spec.RunSpec` describes what runs: it is
frozen, hashable, and serializes into the spec's canonical form, so a
fault run gets its own content-addressed cache key and can never collide
with a clean run (specs without faults keep their pre-existing keys —
``canonical()`` only adds a ``"faults"`` entry when a plan is present).

Three fault families, mirroring how heterogeneous memory systems degrade
in practice (Sec. III-C's fallback narrative; online-guidance systems
tolerate exactly these at runtime):

* **capacity faults** — a module is taken offline or its frame pool
  shrinks, either at boot (``trigger_page=0``) or after ``trigger_page``
  pages have been handed out (mid-run pressure).  The OS allocator
  degrades through the type's fallback chain instead of raising.
* **timing faults** — a module's device timings are uniformly derated
  (thermal throttling, a failing rank running at reduced clocks).
* **guidance faults** — profiling-LUT entries are dropped or their
  statistics scrambled, emulating stale or mismatched training-input
  guidance; unprofiled objects fall back to the paper's N-type (power)
  partition.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultPlan", "SCENARIOS"]

#: Role names a plan may target (see ``repro.sim.config.GroupSpec.role``).
KNOWN_ROLES = ("lat", "bw", "pow", "main")


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic combination of injected faults.

    Attributes:
        seed: Extra seed mixed into every stochastic choice the plan
            makes (LUT entry selection), so two plans that differ only by
            seed are distinct cache keys with distinct corruptions.
        offline_role: Take this module role's frame pool offline — it
            accepts no further allocations; roles absent from the target
            system are skipped (a homogeneous machine has no ``"lat"``).
        shrink_role: Shrink this role's frame pool instead of removing it.
        shrink_fraction: Share of the pool's frames to remove, in
            ``[0, 1]``.  Already-granted frames are never revoked.
        trigger_page: Apply the capacity faults after this many pages
            have been allocated (0 = before the first allocation).
        degrade_role: Uniformly derate this role's device timings.
        degrade_factor: Timing multiplier (>= 1); 4.0 means every analog
            timing parameter (tCK, tRCD, tRC, ...) is 4x slower.
        lut_drop_fraction: Share of profiled LUT entries to forget; the
            affected objects become unknown at runtime and default to the
            power partition.
        lut_scramble_fraction: Share of LUT entries whose statistics are
            swapped among themselves (guidance attached to the wrong
            objects), so classification runs on mismatched numbers.
    """

    seed: int = 0
    offline_role: str | None = None
    shrink_role: str | None = None
    shrink_fraction: float = 0.0
    trigger_page: int = 0
    degrade_role: str | None = None
    degrade_factor: float = 1.0
    lut_drop_fraction: float = 0.0
    lut_scramble_fraction: float = 0.0

    def __post_init__(self) -> None:
        for role, what in ((self.offline_role, "offline_role"),
                           (self.shrink_role, "shrink_role"),
                           (self.degrade_role, "degrade_role")):
            if role is not None and role not in KNOWN_ROLES:
                raise ValueError(f"{what}={role!r} is not one of "
                                 f"{KNOWN_ROLES}")
        for frac, what in ((self.shrink_fraction, "shrink_fraction"),
                           (self.lut_drop_fraction, "lut_drop_fraction"),
                           (self.lut_scramble_fraction,
                            "lut_scramble_fraction")):
            if not 0.0 <= frac <= 1.0:
                raise ValueError(f"{what}={frac} outside [0, 1]")
        if self.degrade_factor < 1.0:
            raise ValueError(
                f"degrade_factor={self.degrade_factor} must be >= 1 "
                f"(a faster-than-spec device is not a fault)")
        if self.trigger_page < 0:
            raise ValueError(f"trigger_page={self.trigger_page} negative")
        if self.shrink_role is not None and self.shrink_fraction == 0.0:
            raise ValueError("shrink_role set but shrink_fraction is 0")

    # ---- classification ------------------------------------------------------

    @property
    def is_clean(self) -> bool:
        """True when the plan injects nothing at all."""
        return (self.offline_role is None and self.shrink_role is None
                and self.degrade_role is None
                and self.lut_drop_fraction == 0.0
                and self.lut_scramble_fraction == 0.0)

    @property
    def has_capacity_fault(self) -> bool:
        return self.offline_role is not None or self.shrink_role is not None

    @property
    def has_timing_fault(self) -> bool:
        return self.degrade_role is not None and self.degrade_factor > 1.0

    @property
    def has_lut_fault(self) -> bool:
        return (self.lut_drop_fraction > 0.0
                or self.lut_scramble_fraction > 0.0)

    # ---- identity ------------------------------------------------------------

    def canonical(self) -> dict:
        """Stable JSON form folded into ``RunSpec.canonical()``."""
        return {
            "seed": self.seed,
            "offline_role": self.offline_role,
            "shrink_role": self.shrink_role,
            "shrink_fraction": self.shrink_fraction,
            "trigger_page": self.trigger_page,
            "degrade_role": self.degrade_role,
            "degrade_factor": self.degrade_factor,
            "lut_drop_fraction": self.lut_drop_fraction,
            "lut_scramble_fraction": self.lut_scramble_fraction,
        }

    to_dict = canonical

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__
                      if k in data})

    def describe(self) -> str:
        """Short label for log lines and figure rows."""
        parts = []
        if self.offline_role:
            parts.append(f"offline-{self.offline_role}")
        if self.shrink_role:
            parts.append(f"shrink-{self.shrink_role}"
                         f"-{self.shrink_fraction:g}")
        if self.trigger_page:
            parts.append(f"@page{self.trigger_page}")
        if self.has_timing_fault:
            parts.append(f"derate-{self.degrade_role}"
                         f"-x{self.degrade_factor:g}")
        if self.lut_drop_fraction:
            parts.append(f"lut-drop-{self.lut_drop_fraction:g}")
        if self.lut_scramble_fraction:
            parts.append(f"lut-scramble-{self.lut_scramble_fraction:g}")
        return "+".join(parts) or "clean"


#: Named fault classes the resilience sweep quantifies
#: (``python -m repro.experiments resilience``).
SCENARIOS: dict[str, FaultPlan] = {
    "offline-lat": FaultPlan(offline_role="lat"),
    "offline-bw": FaultPlan(offline_role="bw"),
    "shrink-pow": FaultPlan(shrink_role="pow", shrink_fraction=0.75),
    "degrade-bw": FaultPlan(degrade_role="bw", degrade_factor=4.0),
    "lut-drop": FaultPlan(lut_drop_fraction=0.5),
    "lut-scramble": FaultPlan(lut_scramble_fraction=0.5),
}
