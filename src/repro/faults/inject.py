"""Fault injection: apply a :class:`FaultPlan` to live simulation state.

Three entry points, one per layer the plan can touch:

* :func:`apply_system_faults` — derate a channel group's device timings
  on an already-built :class:`~repro.memctrl.system.MemorySystem`;
* :func:`arm_allocator` — offline/shrink frame pools on an
  :class:`~repro.vm.allocator.OSPageAllocator`, immediately or after
  ``trigger_page`` allocations (mid-run pressure);
* :func:`apply_lut_faults` — drop or scramble entries of a
  :class:`~repro.moca.profiler.ProfiledApp`'s LUT before classification.

All three are deterministic: the only randomness comes from named
:func:`repro.util.rng.stream` generators keyed by the plan's seed, so a
faulted :class:`~repro.sim.spec.RunSpec` reproduces bit-identically.
Roles absent from the target system are skipped silently — degrading a
module a machine does not have is a no-op, not an error.
"""

from __future__ import annotations

import dataclasses

from repro.faults.plan import FaultPlan
from repro.obs.registry import OBS
from repro.util.rng import stream

__all__ = ["apply_system_faults", "arm_allocator", "apply_lut_faults"]


# ---- timing faults ----------------------------------------------------------


def apply_system_faults(memsys, plan: FaultPlan) -> None:
    """Derate the targeted group's modules in place.

    Channel groups are keyed by role name (``config.build()`` builds them
    that way), so ``plan.degrade_role`` addresses the group directly.
    """
    if not plan.has_timing_fault:
        return
    idx = memsys.group_index.get(plan.degrade_role)
    if idx is None:
        return
    group = memsys.groups[idx]
    derated = group.timing.scaled(plan.degrade_factor)
    group.timing = derated
    for module in group.modules:
        module.derate(derated)
    if OBS.enabled:
        OBS.add(f"fault.derate.{plan.degrade_role}")


# ---- capacity faults --------------------------------------------------------


def _apply_pool_faults(allocator, plan: FaultPlan) -> None:
    roles = allocator.roles
    if plan.offline_role is not None and plan.offline_role in roles:
        allocator.pools[roles[plan.offline_role]].offline()
        if OBS.enabled:
            OBS.add(f"fault.offline.{plan.offline_role}")
    if plan.shrink_role is not None and plan.shrink_role in roles:
        allocator.pools[roles[plan.shrink_role]].shrink(plan.shrink_fraction)
        if OBS.enabled:
            OBS.add(f"fault.shrink.{plan.shrink_role}")


def arm_allocator(allocator, plan: FaultPlan) -> None:
    """Install the plan's capacity faults on an allocator.

    ``trigger_page == 0`` applies them before the first allocation;
    otherwise a hook counts allocations and trips once the threshold is
    crossed, modelling a module that fails *while* the workload is
    being placed.
    """
    if not plan.has_capacity_fault:
        return
    if plan.trigger_page <= 0:
        _apply_pool_faults(allocator, plan)
        return

    state = {"pages": 0, "tripped": False}

    def hook() -> None:
        state["pages"] += 1
        if not state["tripped"] and state["pages"] > plan.trigger_page:
            state["tripped"] = True
            _apply_pool_faults(allocator, plan)

    allocator.fault_hook = hook


# ---- guidance (LUT) faults --------------------------------------------------


def apply_lut_faults(profiled, plan: FaultPlan):
    """Return a copy of ``profiled`` with its LUT degraded per the plan.

    * *drop*: the selected entries vanish — their objects are unknown at
      runtime and default to the power (N-type) partition, exactly like
      the paper's unprofiled pages;
    * *scramble*: the selected entries swap their accumulated statistics
      among themselves (cyclically), emulating guidance collected on a
      mismatched training input.  Names stay put, so the wrong numbers
      classify the right objects.

    Selection and the swap permutation are deterministic in
    ``(app, plan.seed)``.
    """
    from repro.moca.lut import ProfileLUT

    if not plan.has_lut_fault:
        return profiled
    lut: ProfileLUT = profiled.lut
    names = sorted(lut.names(), key=str)
    kept = lut.clone()

    if plan.lut_drop_fraction > 0.0:
        rng = stream("faults", "lut-drop", profiled.app_name, plan.seed)
        dropped = 0
        for name in names:
            if rng.random() < plan.lut_drop_fraction:
                kept.remove(name)
                dropped += 1
        if OBS.enabled:
            OBS.add("fault.lut_dropped", dropped)

    if plan.lut_scramble_fraction > 0.0:
        rng = stream("faults", "lut-scramble", profiled.app_name, plan.seed)
        victims = [n for n in names
                   if n in kept and rng.random() < plan.lut_scramble_fraction]
        if len(victims) >= 2:
            profiles = [kept.get(n) for n in victims]
            stats = [(p.size_bytes, p.accesses, p.llc_misses, p.load_misses,
                      p.stall_cycles, p.kilo_instructions) for p in profiles]
            # Cyclic shift: every victim receives a different victim's
            # numbers, so the scramble is never a silent identity.
            stats = stats[1:] + stats[:1]
            for p, (size, acc, llc, load, stall, ki) in zip(profiles, stats):
                p.size_bytes = size
                p.accesses = acc
                p.llc_misses = llc
                p.load_misses = load
                p.stall_cycles = stall
                p.kilo_instructions = ki
            if OBS.enabled:
                OBS.add("fault.lut_scrambled", len(victims))

    return dataclasses.replace(profiled, lut=kept)
