"""Simulated-system fault injection (see ``docs/architecture.md``).

:class:`FaultPlan` describes a deterministic set of injected faults —
offlined/shrunken memory modules, derated device timings, dropped or
scrambled profiling-LUT entries.  Plans serialize into
:class:`~repro.sim.spec.RunSpec`, so fault runs are first-class citizens
of the sweep engine and the persistent result cache.  The injection
helpers in :mod:`repro.faults.inject` apply a plan to live simulation
state; the run drivers (:mod:`repro.sim.single` / :mod:`repro.sim.multi`)
call them when a spec carries a plan.
"""

from repro.faults.inject import (
    apply_lut_faults,
    apply_system_faults,
    arm_allocator,
)
from repro.faults.plan import SCENARIOS, FaultPlan

__all__ = [
    "FaultPlan",
    "SCENARIOS",
    "apply_lut_faults",
    "apply_system_faults",
    "arm_allocator",
]
