"""Memory-controller layer: address mapping, scheduling, channel routing.

The simulated machine (paper Table I) has four memory channels with one
controller each, ``RoRaBaChCo`` address interleaving and FR-FCFS
scheduling.  A :class:`~repro.memctrl.system.MemorySystem` groups channels
of the same technology into *channel groups*: a homogeneous system is one
four-channel group; the paper's heterogeneous system is three groups
(1×RLDRAM, 1×HBM, 2×LPDDR2).  Lines stripe across the channels of a group,
which is how RoRaBaChCo exposes channel-level parallelism.
"""

from repro.memctrl.request import MemRequest
from repro.memctrl.addrmap import GroupAddressMap
from repro.memctrl.scheduler import frfcfs_order, fcfs_order
from repro.memctrl.controller import ChannelController
from repro.memctrl.stats import LatencyHistogram
from repro.memctrl.system import ChannelGroup, MemorySystem

__all__ = [
    "MemRequest",
    "GroupAddressMap",
    "frfcfs_order",
    "fcfs_order",
    "ChannelController",
    "LatencyHistogram",
    "ChannelGroup",
    "MemorySystem",
]
