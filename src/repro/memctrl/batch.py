"""Struct-of-arrays replay tables for the kernelized fast path.

The reference replay builds a :class:`~repro.memctrl.request.MemRequest`
object per record, routes it through ``MemorySystem.service_batch`` →
``ChannelGroup.service_batch`` → ``ChannelController.service_batch``, and
re-decodes its address at every layer.  For a trace replayed start to
finish all of that is static: the channel a record lands on, its
module-local address, its (subchannel, bank, row) decode, and its
FR-FCFS criticality class depend only on the page mapping — never on
timing.  :class:`ReplayTables` computes them once, vectorized, and the
per-episode work shrinks to: snapshot row-hit bits, one stable sort of
plain tuples, and the inlined device-timing kernel
(:meth:`~repro.memctrl.controller.ChannelController.service_soa`).

Bit-identity contract (pinned by ``tests/test_parity.py``):

* The reference drains per (group, channel) sub-batch, but channels are
  fully independent — only the *within-channel* order is semantically
  meaningful.  A single sort keyed ``(channel, scheduler key, record
  index)`` therefore reproduces the reference order exactly; the final
  record index mirrors ``sorted()``'s stability.
* Row-hit bits for the FR-FCFS key are snapshotted against bank state at
  episode entry, exactly when the reference scheduler sorts (before any
  access of the episode drains, and before any refresh those accesses
  may trigger).
* Mutable device state (bank rows/windows, bus direction and occupancy,
  tFAW activate history, refresh horizon) is updated live — multicore
  replays interleave cores through the same devices.  Pure counters
  (module/controller totals, latency histograms) are deferred to
  :meth:`ReplayTables.flush_stats` at end of replay; nothing reads them
  mid-replay, so the deferral is observation-equivalent.

The routing/decode arithmetic below intentionally mirrors
``GroupAddressMap.route`` and ``MemoryModule.decode`` — keep them in
lockstep.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.hierarchy import KIND_STORE, KIND_WRITEBACK
from repro.memctrl.addrmap import LINE_BITS, LINE_BYTES
from repro.memctrl.scheduler import fcfs_order, frfcfs_order
from repro.memctrl.system import MemorySystem
from repro.obs.registry import OBS
from repro.util.resident import ResidentLRU, content_digest

#: Process-level memo of decoded routing columns, keyed by content hash
#: of (groups, gaddrs, kind) + addressing geometry.  The decode is a
#: pure function of those inputs and the columns are read-only during
#: replay (``service_soa`` only writes the per-replay output lists), so
#: a worker replaying the same placement against interchangeable
#: systems — or re-running a unit — skips the vectorized decode and the
#: eight ``tolist()`` materializations entirely.
_DECODE_CACHE = ResidentLRU(16)


def decode_cache_stats() -> dict:
    return _DECODE_CACHE.stats_dict()


def _geometry_doc(memsys: MemorySystem, bases) -> list:
    """Everything besides (groups, gaddrs, kind) the decode depends on."""
    doc = [list(int(b) for b in bases)]
    for g in memsys.groups:
        amap = g.addrmap
        mod = g.modules[0]
        doc.append([amap.n_channels, bool(amap._pow2), int(amap._k),
                    int(mod._col_bits), int(mod._sub_mask),
                    int(mod._sub_bits), int(mod._bank_mask),
                    int(mod._bank_bits), int(g.timing.n_banks),
                    int(g.timing.n_rows)])
    return doc


class ReplayTables:
    """Precomputed per-record routing/decode columns for one replay.

    Built lazily by :class:`~repro.cpu.core.InOrderWindowCore` on the
    first episode (the memory system is not known at construction) and
    keyed on the system's identity, one instance per (core, memsys).
    """

    def __init__(self, memsys: MemorySystem, groups: np.ndarray,
                 gaddrs: np.ndarray, kind: np.ndarray):
        self.memsys = memsys
        self.controllers, bases = memsys.controller_layout()
        self._group_names = memsys.group_names
        self._ctrl_mode: list[int] = []
        self._banks_by_ctrl = []
        for ctrl in self.controllers:
            if ctrl.scheduler is frfcfs_order:
                self._ctrl_mode.append(0)
            elif ctrl.scheduler is fcfs_order:
                self._ctrl_mode.append(1)
            else:
                raise ValueError(
                    f"fast path does not support custom scheduler "
                    f"{ctrl.scheduler!r}; run with fast_path=False")
            self._banks_by_ctrl.append(
                [b for sub in ctrl.module.banks for b in sub])

        n = len(gaddrs)
        groups = np.asarray(groups, dtype=np.int64)
        gaddrs = np.asarray(gaddrs, dtype=np.int64)
        kind = np.asarray(kind, dtype=np.int64)
        digest = content_digest(groups, gaddrs, kind,
                                extra=_geometry_doc(memsys, bases))
        shared = _DECODE_CACHE.get(digest)
        if shared is None:
            shared = self._decode(memsys, bases, groups, gaddrs, kind)
            _DECODE_CACHE.put(digest, shared)
        else:
            OBS.add("replay.decode_reuse")
            OBS.add("data_plane.copies_avoided")
        (self._ctrl_np, self._demand_np, self._write_np,
         self.ctrl_l, self.grp_l, self.sub_l, self.fbank_l, self.row_l,
         self.gaddr_l, self.write_l, self.klass_l) = shared
        # Per-record outputs, filled by service_soa, read at finalize.
        self.done_l = [0] * n
        self.queue_l = [0] * n
        self.service_l = [0] * n
        self.hit_l = [False] * n
        self.bb_l = [0] * n
        self._flushed = False

    @staticmethod
    def _decode(memsys: MemorySystem, bases, groups: np.ndarray,
                gaddrs: np.ndarray, kind: np.ndarray) -> tuple:
        """Vectorized routing/decode; pure in its arguments (memoized)."""
        n = len(gaddrs)
        ctrl = np.zeros(n, dtype=np.int64)
        sub = np.zeros(n, dtype=np.int64)
        fbank = np.zeros(n, dtype=np.int64)
        row = np.zeros(n, dtype=np.int64)
        for gi, g in enumerate(memsys.groups):
            sel = np.flatnonzero(groups == gi)
            if not len(sel):
                continue
            ga = gaddrs[sel]
            line = ga >> LINE_BITS
            offset = ga & (LINE_BYTES - 1)
            amap = g.addrmap
            nch = amap.n_channels
            if amap._pow2 and nch > 1:
                upper = line >> amap._k
                ch = (line & (nch - 1)) ^ ((upper ^ (upper >> 3)
                                            ^ (upper >> 6)) & (nch - 1))
                local = (upper << LINE_BITS) | offset
            else:
                ch = line % nch
                local = ((line // nch) << LINE_BITS) | offset
            mod = g.modules[0]
            dline = local >> mod._col_bits
            sb = dline & mod._sub_mask
            dline2 = dline >> mod._sub_bits
            bk = dline2 & mod._bank_mask
            ctrl[sel] = bases[gi] + ch
            sub[sel] = sb
            fbank[sel] = sb * g.timing.n_banks + bk
            row[sel] = (dline2 >> mod._bank_bits) % g.timing.n_rows
        demand = kind <= KIND_STORE
        write = (kind == KIND_STORE) | (kind == KIND_WRITEBACK)
        # FR-FCFS criticality: demand read 0, demand write 1, background 2.
        klass = np.where(demand, np.where(write, 1, 0), 2)
        # Hot-loop columns as plain-int lists (one tolist() each; list
        # indexing beats numpy scalar extraction ~10x in the kernel).
        return (ctrl, demand, write,
                ctrl.tolist(), groups.tolist(), sub.tolist(),
                fbank.tolist(), row.tolist(), gaddrs.tolist(),
                write.tolist(), klass.tolist())

    # ---- episode drain ----------------------------------------------------------

    def drain_episode(self, s: int, e: int, issue0: int,
                      off: list[int]) -> tuple[int, int]:
        """Serve records [s, e) issued at ``issue0 + off[j]``.

        Returns ``(max done over demand loads, max done over all
        records)`` — the two quantities the core's cycle update needs.
        """
        ctrl_l = self.ctrl_l
        controllers = self.controllers
        if e - s == 1:
            # Singleton episodes skip the sort, like the reference skips
            # the scheduler for len-1 batches.
            j = s
            lmax, dmax = controllers[ctrl_l[j]].service_soa(
                self, ((issue0 + off[j], j),))
        else:
            klass_l = self.klass_l
            row_l = self.row_l
            fbank_l = self.fbank_l
            gaddr_l = self.gaddr_l
            mode = self._ctrl_mode
            banks_by = self._banks_by_ctrl
            keyed = []
            ap = keyed.append
            for j in range(s, e):
                c = ctrl_l[j]
                issue = issue0 + off[j]
                if mode[c] == 0:
                    bank = banks_by[c][fbank_l[j]]
                    ap((c, klass_l[j],
                        0 if bank.open_row == row_l[j] else 1,
                        issue, gaddr_l[j], issue, j))
                else:
                    ap((c, issue, gaddr_l[j], 0, 0, issue, j))
            keyed.sort()
            lmax = dmax = -(1 << 62)
            lo = 0
            n = len(keyed)
            while lo < n:
                c = keyed[lo][0]
                hi = lo + 1
                while hi < n and keyed[hi][0] == c:
                    hi += 1
                l2, d2 = controllers[c].service_soa(self, keyed[lo:hi])
                if l2 > lmax:
                    lmax = l2
                if d2 > dmax:
                    dmax = d2
                lo = hi
        if OBS.enabled:
            OBS.add("memsys.batches")
            OBS.add("memsys.requests", e - s)
            grp_l = self.grp_l
            gcounts: dict[int, int] = {}
            for j in range(s, e):
                g = grp_l[j]
                gcounts[g] = gcounts.get(g, 0) + 1
            for g, cnt in gcounts.items():
                OBS.add(f"memsys.group.{self._group_names[g]}.requests", cnt)
        return lmax, dmax

    # ---- deferred statistics ----------------------------------------------------

    def flush_stats(self) -> None:
        """Fold the per-record outputs into module/controller counters.

        Called once, at end of replay, per (core, memsys) table.  Exact
        integer aggregation throughout (int64 sums, no float weights).
        Assumes device timing did not change mid-replay (fault derating
        happens before replay starts).
        """
        if self._flushed:
            return
        self._flushed = True
        done = np.asarray(self.done_l, dtype=np.int64)
        queue = np.asarray(self.queue_l, dtype=np.int64)
        service = np.asarray(self.service_l, dtype=np.int64)
        hit = np.asarray(self.hit_l, dtype=bool)
        bb = np.asarray(self.bb_l, dtype=np.int64)
        ctrl = self._ctrl_np
        write = self._write_np
        demand = self._demand_np
        for ci, c in enumerate(self.controllers):
            sel = np.flatnonzero(ctrl == ci)
            cnt = len(sel)
            if not cnt:
                continue
            m = c.module
            n_writes = int(write[sel].sum())
            m.n_accesses += cnt
            m.n_row_hits += int(hit[sel].sum())
            m.n_writes += n_writes
            m.n_reads += cnt - n_writes
            m.bus_busy_cycles += m.timing.transfer_cycles(c.line_bytes) * cnt
            m.bank_busy_cycles += int(bb[sel].sum())
            m.bytes_transferred += c.line_bytes * cnt
            done_max = int(done[sel].max())
            if done_max > m.last_done_cycle:
                m.last_done_cycle = done_max
            c.n_served += cnt
            c.total_queue_cycles += int(queue[sel].sum())
            c.total_service_cycles += int(service[sel].sum())
            dsel = sel[demand[sel]]
            if len(dsel):
                c.latency_hist.record_many(queue[dsel] + service[dsel])
