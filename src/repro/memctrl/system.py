"""The multi-channel (possibly heterogeneous) memory system.

A :class:`MemorySystem` is an ordered collection of :class:`ChannelGroup`
objects.  Each group is a set of identical channels over which lines
stripe (``repro.memctrl.addrmap``); different groups hold different memory
technologies.  The OS layer (``repro.vm``) allocates physical frames in
group-local space, so a request is addressed by ``(group, gaddr)``.

Examples:
    * Homogen-DDR3 (paper Sec. V-B): one group, 4 channels x 512 MB DDR3.
    * Heterogeneous config1 (Sec. V-C): three groups — 1x256 MB RLDRAM3,
      1x768 MB HBM, 2x512 MB LPDDR2.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.memctrl.addrmap import GroupAddressMap
from repro.memctrl.controller import ChannelController, SchedulerFn
from repro.memctrl.request import MemRequest
from repro.memctrl.scheduler import frfcfs_order
from repro.memdev.module import MemoryModule
from repro.memdev.power import PowerModel
from repro.memdev.timing import DeviceTiming
from repro.obs.registry import OBS


class ChannelGroup:
    """A set of identical channels acting as one allocation region."""

    def __init__(self, timing: DeviceTiming, n_channels: int,
                 capacity_per_channel: int, name: str | None = None,
                 scheduler: SchedulerFn = frfcfs_order):
        if n_channels < 1:
            raise ValueError("a channel group needs at least one channel")
        self.timing = timing
        self.name = name or timing.name
        self.addrmap = GroupAddressMap(n_channels)
        self.modules = [
            MemoryModule(timing, capacity_per_channel, f"{self.name}/ch{i}")
            for i in range(n_channels)
        ]
        self.controllers = [ChannelController(m, scheduler) for m in self.modules]

    @property
    def n_channels(self) -> int:
        return len(self.modules)

    @property
    def capacity_bytes(self) -> int:
        return sum(m.capacity_bytes for m in self.modules)

    def service_batch(self, batch: Sequence[MemRequest]) -> None:
        """Route a batch across channels and drain each channel's share."""
        per_channel: dict[int, list[MemRequest]] = defaultdict(list)
        for req in batch:
            ch, local = self.addrmap.route(req.gaddr)
            req.local_addr = local
            per_channel[ch].append(req)
        for ch, reqs in per_channel.items():
            self.controllers[ch].service_batch(reqs)


@dataclass(frozen=True)
class SystemSummary:
    """Aggregate counters of one simulated interval."""

    n_requests: int
    total_latency_cycles: int
    total_queue_cycles: int
    row_hit_rate: float
    power_w: float
    energy_j: float


class MemorySystem:
    """Named channel groups + routing + power accounting."""

    def __init__(self, groups: dict[str, ChannelGroup], name: str = "memsys"):
        if not groups:
            raise ValueError("memory system needs at least one channel group")
        self.name = name
        self.group_names = list(groups)
        self.groups = list(groups.values())
        self.group_index = {n: i for i, n in enumerate(self.group_names)}
        self.power_model = PowerModel()

    # ---- structure ---------------------------------------------------------------

    def group(self, name: str) -> ChannelGroup:
        return self.groups[self.group_index[name]]

    @property
    def modules(self) -> list[MemoryModule]:
        return [m for g in self.groups for m in g.modules]

    @property
    def capacity_bytes(self) -> int:
        return sum(g.capacity_bytes for g in self.groups)

    def controller_layout(self) -> tuple[list[ChannelController], list[int]]:
        """Flat controller list + per-group base offsets.

        The SoA replay kernel (``repro.memctrl.batch``) addresses every
        channel in the system by one flat index ``bases[group] +
        channel``; bases follow group declaration order, matching
        :attr:`groups`.
        """
        flat: list[ChannelController] = []
        bases: list[int] = []
        for g in self.groups:
            bases.append(len(flat))
            flat.extend(g.controllers)
        return flat, bases

    def describe(self) -> str:
        parts = [
            f"{g.name}: {g.n_channels}x{g.modules[0].capacity_bytes >> 20} MiB "
            f"{g.timing.name}"
            for g in self.groups
        ]
        return f"{self.name} [{'; '.join(parts)}]"

    # ---- servicing ---------------------------------------------------------------

    def service_batch(self, batch: Sequence[MemRequest]) -> None:
        """Serve a batch of concurrently-outstanding requests."""
        if not batch:
            return
        per_group: dict[int, list[MemRequest]] = defaultdict(list)
        for req in batch:
            per_group[req.group].append(req)
        for gi, reqs in per_group.items():
            self.groups[gi].service_batch(reqs)
        if OBS.enabled:
            OBS.add("memsys.batches")
            OBS.add("memsys.requests", len(batch))
            for gi, reqs in per_group.items():
                OBS.add(f"memsys.group.{self.group_names[gi]}.requests",
                        len(reqs))

    def service_one(self, req: MemRequest) -> MemRequest:
        """Serve a single request (convenience for tests/examples)."""
        self.service_batch([req])
        return req

    # ---- accounting ---------------------------------------------------------------

    def latency_histogram(self, group: str | None = None) -> "LatencyHistogram":
        """Merged demand-latency histogram (optionally one group's)."""
        from repro.memctrl.stats import LatencyHistogram

        merged = LatencyHistogram()
        groups = [self.group(group)] if group is not None else self.groups
        for g in groups:
            for c in g.controllers:
                merged.merge(c.latency_hist)
        return merged

    def reset_stats(self) -> None:
        from repro.memctrl.stats import LatencyHistogram

        for g in self.groups:
            for m in g.modules:
                m.reset_stats()
            for c in g.controllers:
                c.n_served = 0
                c.total_queue_cycles = 0
                c.total_service_cycles = 0
                c.latency_hist = LatencyHistogram()

    def summary(self, elapsed_cycles: int) -> SystemSummary:
        """Aggregate served-request statistics over ``elapsed_cycles``."""
        n = 0
        lat = 0
        queue = 0
        hits = 0
        accesses = 0
        for g in self.groups:
            for c in g.controllers:
                n += c.n_served
                lat += c.total_queue_cycles + c.total_service_cycles
                queue += c.total_queue_cycles
            for m in g.modules:
                hits += m.n_row_hits
                accesses += m.n_accesses
        power = self.power_model.system_power(self.modules, elapsed_cycles)
        energy = self.power_model.system_energy(self.modules, elapsed_cycles)
        return SystemSummary(
            n_requests=n,
            total_latency_cycles=lat,
            total_queue_cycles=queue,
            row_hit_rate=hits / accesses if accesses else 0.0,
            power_w=power,
            energy_j=energy,
        )
