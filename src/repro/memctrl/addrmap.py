"""Group-local address mapping (RoRaBaChCo-style channel interleaving).

Within a channel group, consecutive cache lines stripe round-robin across
the group's channels — the ``Ch`` field of Table I's RoRaBaChCo sits just
above the line offset.  The remaining upper bits become the channel-local
address whose column/bank/row split the device model decodes.
"""

from __future__ import annotations

from repro.util.validation import check_power_of_two

#: Cache-line size of the simulated hierarchy (Table I: 64 B lines).
LINE_BYTES = 64
LINE_BITS = 6


class GroupAddressMap:
    """Maps a group-local physical address to (channel, channel-local addr).

    For power-of-two group sizes, the channel bits are XOR-hashed with a
    fold of the upper line bits — the lightweight address hash real
    controllers apply so power-of-two strides (every 4th line, every 8th
    line, ...) don't camp on a single channel.  The hash is a per-group
    permutation of the channel index, so the mapping stays exactly
    invertible.  Odd group sizes fall back to plain modulo interleaving.
    """

    def __init__(self, n_channels: int):
        if n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {n_channels}")
        self.n_channels = n_channels
        self._pow2 = (n_channels & (n_channels - 1)) == 0
        self._k = n_channels.bit_length() - 1  # log2(n) when pow2

    def _hash(self, upper: int) -> int:
        """Fold upper line bits into a channel-index perturbation."""
        return (upper ^ (upper >> 3) ^ (upper >> 6)) & (self.n_channels - 1)

    def route(self, gaddr: int) -> tuple[int, int]:
        """Return ``(channel_index, channel_local_address)`` for a line."""
        line = gaddr >> LINE_BITS
        offset = gaddr & (LINE_BYTES - 1)
        if self._pow2 and self.n_channels > 1:
            upper = line >> self._k
            ch = (line & (self.n_channels - 1)) ^ self._hash(upper)
            local_line = upper
        else:
            ch = line % self.n_channels
            local_line = line // self.n_channels
        return ch, (local_line << LINE_BITS) | offset

    def inverse(self, channel: int, local_addr: int) -> int:
        """Reconstruct the group-local address (exact round-trip)."""
        if not 0 <= channel < self.n_channels:
            raise ValueError(f"channel {channel} out of range")
        local_line = local_addr >> LINE_BITS
        offset = local_addr & (LINE_BYTES - 1)
        if self._pow2 and self.n_channels > 1:
            j = channel ^ self._hash(local_line)
            line = (local_line << self._k) | j
        else:
            line = local_line * self.n_channels + channel
        return (line << LINE_BITS) | offset
