"""Per-channel memory controller.

One controller fronts one :class:`~repro.memdev.module.MemoryModule`
(paper Sec. V-C: "a dedicated memory controller for each memory channel as
the device timing parameters differ").  The controller applies the
scheduling policy to each batch of concurrently-outstanding requests and
drives the device model, recording per-request latency breakdowns.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.memctrl.request import MemRequest
from repro.memctrl.scheduler import frfcfs_order
from repro.memctrl.stats import LatencyHistogram
from repro.memdev.module import MemoryModule
from repro.obs.registry import OBS

SchedulerFn = Callable[[MemoryModule, Sequence[MemRequest]], list[MemRequest]]


class ChannelController:
    """Schedules request batches onto one memory module."""

    def __init__(self, module: MemoryModule,
                 scheduler: SchedulerFn = frfcfs_order,
                 line_bytes: int = 64):
        self.module = module
        self.scheduler = scheduler
        self.line_bytes = line_bytes
        self.n_served = 0
        self.total_queue_cycles = 0
        self.total_service_cycles = 0
        #: Demand-request latency distribution (loads + stores).
        self.latency_hist = LatencyHistogram()

    def service_batch(self, batch: Sequence[MemRequest]) -> None:
        """Serve a batch of requests, mutating each request in place.

        Requests in the batch are outstanding simultaneously; the scheduler
        picks the drain order (FR-FCFS by default) and the device model
        accounts bank/bus contention between them.
        """
        if not batch:
            return
        ordered = self.scheduler(self.module, batch) if len(batch) > 1 else list(batch)
        for req in ordered:
            res = self.module.access(
                req.local_addr, req.issue_cycle,
                nbytes=self.line_bytes, is_write=req.is_write,
            )
            req.done_cycle = res.done
            req.queue_cycles = res.queue_cycles
            req.service_cycles = res.service_cycles
            req.row_hit = res.row_hit
            self.n_served += 1
            self.total_queue_cycles += res.queue_cycles
            self.total_service_cycles += res.service_cycles
            if req.demand:
                self.latency_hist.record(res.queue_cycles
                                         + res.service_cycles)
        if OBS.enabled:
            # One registry touch per batch (not per request): per-channel
            # request/row-hit counters and the batch's queue occupancy.
            name = self.module.name
            OBS.add(f"mem.{name}.requests", len(ordered))
            OBS.add(f"mem.{name}.row_hits",
                    sum(1 for r in ordered if r.row_hit))
            OBS.add(f"mem.{name}.queue_cycles",
                    sum(r.queue_cycles for r in ordered))
            OBS.gauge(f"mem.{name}.queue_occupancy", len(ordered))

    @property
    def mean_latency(self) -> float:
        """Average request latency (queue + service), cycles."""
        if not self.n_served:
            return 0.0
        return (self.total_queue_cycles + self.total_service_cycles) / self.n_served
