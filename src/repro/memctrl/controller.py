"""Per-channel memory controller.

One controller fronts one :class:`~repro.memdev.module.MemoryModule`
(paper Sec. V-C: "a dedicated memory controller for each memory channel as
the device timing parameters differ").  The controller applies the
scheduling policy to each batch of concurrently-outstanding requests and
drives the device model, recording per-request latency breakdowns.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.memctrl.request import MemRequest
from repro.memctrl.scheduler import frfcfs_order
from repro.memctrl.stats import LatencyHistogram
from repro.memdev.module import MemoryModule
from repro.obs.registry import OBS

SchedulerFn = Callable[[MemoryModule, Sequence[MemRequest]], list[MemRequest]]


class ChannelController:
    """Schedules request batches onto one memory module."""

    def __init__(self, module: MemoryModule,
                 scheduler: SchedulerFn = frfcfs_order,
                 line_bytes: int = 64):
        self.module = module
        self.scheduler = scheduler
        self.line_bytes = line_bytes
        self.n_served = 0
        self.total_queue_cycles = 0
        self.total_service_cycles = 0
        #: Demand-request latency distribution (loads + stores).
        self.latency_hist = LatencyHistogram()
        #: Cached timing constants for service_soa, keyed on the timing
        #: object so a pre-replay derate() invalidates it.
        self._soa_cache = None

    def service_batch(self, batch: Sequence[MemRequest]) -> None:
        """Serve a batch of requests, mutating each request in place.

        Requests in the batch are outstanding simultaneously; the scheduler
        picks the drain order (FR-FCFS by default) and the device model
        accounts bank/bus contention between them.
        """
        if not batch:
            return
        ordered = self.scheduler(self.module, batch) if len(batch) > 1 else list(batch)
        for req in ordered:
            res = self.module.access(
                req.local_addr, req.issue_cycle,
                nbytes=self.line_bytes, is_write=req.is_write,
            )
            req.done_cycle = res.done
            req.queue_cycles = res.queue_cycles
            req.service_cycles = res.service_cycles
            req.row_hit = res.row_hit
            self.n_served += 1
            self.total_queue_cycles += res.queue_cycles
            self.total_service_cycles += res.service_cycles
            if req.demand:
                self.latency_hist.record(res.queue_cycles
                                         + res.service_cycles)
        if OBS.enabled:
            # One registry touch per batch (not per request): per-channel
            # request/row-hit counters and the batch's queue occupancy.
            name = self.module.name
            OBS.add(f"mem.{name}.requests", len(ordered))
            OBS.add(f"mem.{name}.row_hits",
                    sum(1 for r in ordered if r.row_hit))
            OBS.add(f"mem.{name}.queue_cycles",
                    sum(r.queue_cycles for r in ordered))
            OBS.gauge(f"mem.{name}.queue_occupancy", len(ordered))

    def service_soa(self, tb, recs) -> tuple[int, int]:
        """Fast-path drain: pre-ordered records against inlined timing.

        ``tb`` is a :class:`~repro.memctrl.batch.ReplayTables`; ``recs``
        is this channel's slice of the episode, already in scheduler
        order, each record a tuple whose last two fields are ``(...,
        issue_cycle, record_index)``.  Device *state* (banks, buses,
        activate history, refresh) mutates live exactly as
        :meth:`~repro.memdev.module.MemoryModule.access` +
        :meth:`~repro.memdev.bank.BankState.service` would — the
        arithmetic below is a manual inline of those two methods and must
        stay in lockstep with them (``tests/test_parity.py`` pins the
        equivalence).  Pure counters go to ``tb``'s per-record columns
        and reach the module/controller via
        :meth:`~repro.memctrl.batch.ReplayTables.flush_stats`.

        Returns ``(max done over demand loads, max done over all recs)``.
        """
        m = self.module
        t = m.timing
        cache = self._soa_cache
        if cache is None or cache[0] is not t:
            cache = (
                t, [b for sub in m.banks for b in sub],
                t.tCL, t.tCCD, t.tRP, t.tRAS, t.tRC, t.tRCD, t.tFAW,
                t.turnaround, t.transfer_cycles(self.line_bytes),
                t.row_miss_latency, t.row_conflict_latency,
            )
            self._soa_cache = cache
        (_, flat_banks, tCL, tCCD, tRP, tRAS, tRC, tRCD, tFAW,
         turnaround, transfer, miss_lat, conflict_lat) = cache
        hit_service = tCL + transfer
        miss_service = miss_lat + transfer
        conflict_service = conflict_lat + transfer
        fbank_l = tb.fbank_l
        row_l = tb.row_l
        sub_l = tb.sub_l
        write_l = tb.write_l
        klass_l = tb.klass_l
        done_l = tb.done_l
        queue_l = tb.queue_l
        service_l = tb.service_l
        hit_l = tb.hit_l
        bb_l = tb.bb_l
        bus_free = m.bus_free_at
        last_w = m._last_was_write
        recents = m._recent_acts
        load_done_max = done_max = -(1 << 62)
        for rec in recs:
            issue = rec[-2]
            j = rec[-1]
            if issue >= m._next_refresh:
                m._do_refresh(issue)
            bank = flat_banks[fbank_l[j]]
            row = row_l[j]
            sub = sub_l[j]
            ready = bank.ready_at
            start = issue if issue > ready else ready
            open_row = bank.open_row
            if open_row == row:
                hit_l[j] = True
                data_ready = start + tCL
                bank.ready_at = start + tCCD
                bb_l[j] = tCCD
                service = hit_service
            else:
                if tFAW > 0:
                    acts = recents[sub]
                    if len(acts) >= 4:
                        faw = acts[-4] + tFAW
                        if faw > start:
                            start = faw
                la = bank.last_activate
                if open_row is not None:
                    pre = la + tRAS
                    if start > pre:
                        pre = start
                    act = pre + tRP
                    if la + tRC > act:
                        act = la + tRC
                    service = conflict_service
                else:
                    act = la + tRC
                    if start > act:
                        act = start
                    service = miss_service
                bank.last_activate = act
                bank.open_row = row
                data_ready = act + tRCD + tCL
                bank.ready_at = data_ready
                bb_l[j] = data_ready - start
                acts = recents[sub]
                acts.append(act)
                if len(acts) > 4:
                    del acts[:-4]
            bus_start = bus_free[sub]
            if data_ready > bus_start:
                bus_start = data_ready
            is_write = write_l[j]
            prev_write = last_w[sub]
            if prev_write is not None and prev_write != is_write:
                bus_start += turnaround
            last_w[sub] = is_write
            done = bus_start + transfer
            bus_free[sub] = done
            queue = done - issue - service
            if queue < 0:
                queue = 0
            done_l[j] = done
            queue_l[j] = queue
            service_l[j] = service
            if done > done_max:
                done_max = done
            if klass_l[j] == 0 and done > load_done_max:
                load_done_max = done
        if OBS.enabled:
            name = m.name
            n_hits = 0
            queue_sum = 0
            for rec in recs:
                j = rec[-1]
                n_hits += hit_l[j]
                queue_sum += queue_l[j]
            OBS.add(f"mem.{name}.requests", len(recs))
            OBS.add(f"mem.{name}.row_hits", n_hits)
            OBS.add(f"mem.{name}.queue_cycles", queue_sum)
            OBS.gauge(f"mem.{name}.queue_occupancy", len(recs))
        return load_done_max, done_max

    @property
    def mean_latency(self) -> float:
        """Average request latency (queue + service), cycles."""
        if not self.n_served:
            return 0.0
        return (self.total_queue_cycles + self.total_service_cycles) / self.n_served
