"""Request-ordering policies for a channel controller.

The paper's controller uses FR-FCFS (Table I): among queued requests,
row-buffer hits are served before older row misses, which maximizes
row-buffer locality.  The trace-driven core model hands the controller
small *batches* of concurrently-outstanding requests (an MLP episode or
overlapping requests from several cores); the scheduler decides the order
in which the batch drains into the device model.
"""

from __future__ import annotations

from typing import Sequence

from repro.memctrl.request import MemRequest
from repro.memdev.module import MemoryModule


def fcfs_order(module: MemoryModule, batch: Sequence[MemRequest]) -> list[MemRequest]:
    """First-come first-served: issue order (stable by issue cycle)."""
    return sorted(batch, key=lambda r: (r.issue_cycle, r.gaddr))


def frfcfs_order(module: MemoryModule, batch: Sequence[MemRequest]) -> list[MemRequest]:
    """First-ready FCFS with read priority.

    Criticality classes: demand loads (the core is waiting), then demand
    stores (buffered but MSHR-held), then writebacks (pure background
    drain).  Within each class, open-row hits jump ahead of older row
    misses.  Ties keep issue order, so the policy degrades to FCFS on a
    pattern with no locality.

    Row-hit status is a deliberate *snapshot* policy: every request in
    the batch is classified against the bank state as it stands when the
    batch arrives, before any request drains.  A later request that
    targets the row a preceding request in the same batch is about to
    open still sorts as a miss (and vice versa: a "hit" may find its row
    closed by an intervening conflict by the time it is served).  Real
    FR-FCFS re-evaluates per scheduling slot; the batch model pays the
    sort once.  The SoA fast path snapshots at the same instant —
    ``tests/test_memctrl.py`` pins the semantics so the kernelized
    drain cannot silently change it.
    """
    def key(req: MemRequest) -> tuple[int, int, int, int]:
        sub, bank_i, row = module.decode(req.local_addr)
        hit = module.banks[sub][bank_i].is_hit(row)
        if req.demand:
            klass = 0 if not req.is_write else 1
        else:
            klass = 2
        return (klass, 0 if hit else 1, req.issue_cycle, req.gaddr)

    return sorted(batch, key=key)


SCHEDULERS = {
    "frfcfs": frfcfs_order,
    "fcfs": fcfs_order,
}
