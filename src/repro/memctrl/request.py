"""Memory request record passed from the core model to the memory system."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class MemRequest:
    """One line-sized main-memory request (an LLC miss or writeback).

    Attributes:
        group: Channel-group id the physical frame lives in.
        gaddr: Group-local physical address of the line.
        issue_cycle: Cycle at which the request reaches the controller.
        is_write: Write (demand store or writeback) vs read.
        demand: Demand access (load/store miss) vs background writeback —
            controllers buffer writebacks behind demand traffic.
        obj_id: Memory-object id the access belongs to (-1 = non-heap).
        core_id: Issuing core (0 on single-core runs).
        local_addr: Channel-local address (filled by the routing layer).
        done_cycle: Filled by the memory system on completion.
        queue_cycles: Cycles spent queueing (bank/bus contention).
        service_cycles: Bank + bus service time.
        row_hit: Whether the access hit in an open row.
    """

    group: int
    gaddr: int
    issue_cycle: int
    is_write: bool = False
    demand: bool = True
    obj_id: int = -1
    core_id: int = 0
    local_addr: int = 0
    done_cycle: int = 0
    queue_cycles: int = 0
    service_cycles: int = 0
    row_hit: bool = False

    @property
    def latency(self) -> int:
        """Total request latency in cycles (valid after service)."""
        return self.done_cycle - self.issue_cycle
