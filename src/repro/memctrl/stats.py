"""Request-latency histograms (power-of-two buckets).

Mean memory access time hides the tail; latency-sensitive applications
feel p95/p99.  Controllers feed every served request into a
:class:`LatencyHistogram`, so experiments can report percentile
latencies per channel, per group, or per system — e.g. to show MOCA
shortening the tail of chase-object misses, not just the mean.

Buckets are powers of two (cycle counts), so recording is two integer
ops per request and memory is ~64 counters regardless of run length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

N_BUCKETS = 40  # covers latencies up to 2^39 cycles — effectively all

#: Powers of two for exact vectorized bucketing: ``searchsorted(_POW2,
#: v, "right") == v.bit_length()`` for any int64 v >= 0.
_POW2 = np.array([1 << i for i in range(63)], dtype=np.int64)


@dataclass
class LatencyHistogram:
    """Power-of-two-bucketed latency distribution."""

    counts: list[int] = field(default_factory=lambda: [0] * N_BUCKETS)
    total: int = 0
    sum_cycles: int = 0
    max_cycles: int = 0

    def record(self, latency: int) -> None:
        if latency < 0:
            raise ValueError("latency cannot be negative")
        self.counts[min(latency.bit_length(), N_BUCKETS - 1)] += 1
        self.total += 1
        self.sum_cycles += latency
        if latency > self.max_cycles:
            self.max_cycles = latency

    def record_many(self, latencies) -> None:
        """Vectorized :meth:`record` over an integer array.

        Bucketing must be *exactly* ``bit_length()`` — a float ``log2``
        would mis-bucket values adjacent to powers of two — so buckets
        come from ``searchsorted`` against the power-of-two table.
        """
        arr = np.asarray(latencies, dtype=np.int64)
        if arr.size == 0:
            return
        if int(arr.min()) < 0:
            raise ValueError("latency cannot be negative")
        buckets = np.minimum(np.searchsorted(_POW2, arr, side="right"),
                             N_BUCKETS - 1)
        counts = self.counts
        for b, c in zip(*np.unique(buckets, return_counts=True)):
            counts[int(b)] += int(c)
        self.total += int(arr.size)
        self.sum_cycles += int(arr.sum())
        top = int(arr.max())
        if top > self.max_cycles:
            self.max_cycles = top

    def merge(self, other: "LatencyHistogram") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.sum_cycles += other.sum_cycles
        self.max_cycles = max(self.max_cycles, other.max_cycles)

    @property
    def mean(self) -> float:
        return self.sum_cycles / self.total if self.total else 0.0

    def percentile(self, p: float) -> int:
        """Upper bound of the bucket containing the p-th percentile.

        Args:
            p: Percentile in (0, 100].
        """
        if not 0.0 < p <= 100.0:
            raise ValueError("p must be in (0, 100]")
        if self.total == 0:
            return 0
        target = self.total * p / 100.0
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return (1 << i) - 1  # bucket upper bound
        return self.max_cycles

    @property
    def p50(self) -> int:
        return self.percentile(50.0)

    @property
    def p95(self) -> int:
        return self.percentile(95.0)

    @property
    def p99(self) -> int:
        return self.percentile(99.0)

    def summary(self) -> str:
        return (f"n={self.total} mean={self.mean:.1f} p50≤{self.p50} "
                f"p95≤{self.p95} p99≤{self.p99} max={self.max_cycles}")
