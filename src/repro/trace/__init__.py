"""Synthetic memory-access traces.

An :class:`~repro.trace.events.AccessTrace` is the unit of work the rest
of the pipeline consumes: a time-ordered stream of virtual-address
accesses annotated with the owning memory object, plus the virtual-memory
layout of those objects.  Traces are generated (``repro.trace.builder``)
from per-object behavioural specs (``repro.workloads``) using vectorized
numpy pattern generators (``repro.trace.patterns``) — the paper's stand-in
for running SPEC CPU2006 / SDVBS binaries under gem5.
"""

from repro.trace.events import AccessTrace, PlacedObject, VirtualLayout
from repro.trace.patterns import (
    sequential_offsets,
    strided_offsets,
    random_offsets,
    chase_offsets,
    hotspot_offsets,
)
from repro.trace.builder import TraceBuilder, ObjectBehavior
from repro.trace.io import save_trace, load_trace

__all__ = [
    "save_trace",
    "load_trace",
    "AccessTrace",
    "PlacedObject",
    "VirtualLayout",
    "sequential_offsets",
    "strided_offsets",
    "random_offsets",
    "chase_offsets",
    "hotspot_offsets",
    "TraceBuilder",
    "ObjectBehavior",
]
