"""Bit-exact vectorized trace-synthesis fast path.

Replays :meth:`repro.trace.builder.TraceBuilder.build`'s chunk loop —
including every ``numpy.random.Generator`` draw it makes — directly
from the underlying PCG64 *raw word stream*, so the synthesized columns
and the caller's final RNG state are byte-identical to the reference
loop (``tests/test_trace_parity.py`` pins this).  The reference stays
the executable specification per the repo's replay-kernel playbook;
``REPRO_FAST_PATH=0`` / ``TraceBuilder.build(fast_path=False)`` switch
back to it.

Why this is possible
--------------------

Every Generator method the reference consumes has a fixed decode rule
over raw 64-bit words ``w``:

* ``random(n)`` — one word per double: ``(w >> 11) * 2**-53``;
* ``choice(k, size, p)`` — ``size`` doubles pushed through the
  normalized-cumsum ``searchsorted(..., side="right")``;
* ``integers(0, L)`` with ``L < 2**32`` — 32-bit Lemire rejection over
  a *half-word* stream (low half first, then high), with the spare half
  parked in the bit generator's persistent ``uinteger`` buffer where it
  survives intervening 64-bit draws;
* ``geometric(p)`` with ``p >= 1/3`` — the search method: exactly one
  double per variate, inverted with a precomputed partial-sum table;
* ``geometric(p)`` with ``p < 1/3`` — inversion via the exponential
  ziggurat (tables in :mod:`repro.trace.zigtables`): one word per
  variate on the ~98.9% fast path, extra words on rejection/tail.

Only two constructs consume a *data-dependent* number of words: Lemire
rejections and ziggurat slow paths.  The kernel therefore lays the
whole stream out speculatively (zero rare events), detects violations
vectorized, and repairs from the first violation forward — processing
ops in small blocks so each repair re-examines a bounded window.  All
bulk decoding (burst schedule, offsets, write/dep flags, gaps) is
whole-array numpy.

The kernel never touches the caller's Generator until the very end:
words are drawn from a cloned bit generator, and the caller's state is
committed once via ``PCG64.advance`` (plus the replayed u32 buffer).
This makes structural fallback to the reference loop safe at any point
before the commit, and gives chunked/streamed generation random access
to the word stream at bounded RSS.
"""

from __future__ import annotations

import math

import numpy as np

from repro.trace.zigtables import FE, KE, WE, ZIGGURAT_EXP_R

__all__ = ["supported", "iter_kernel_blocks"]

_DBL = 2.0 ** -53
#: numpy's geometric() method cutover: search below, ziggurat inversion
#: at and above (the C constant rounds to the same double as 1/3).
_SEARCH_P_MIN = 1.0 / 3.0
#: Target accesses per walk block: small enough that an event repair's
#: re-scan window (and the shift-chain's 2-D fail enumeration, quadratic
#: in the block) stays cheap, large enough to amortize numpy call
#: overhead.  The chunk count per block is derived from the schedule's
#: mean burst so blocks have comparable size across workloads.
_BLOCK_ACCESSES = 2048

# Op kinds, in the per-chunk stream order the reference emits them.
_K_LEM = 0   # integers(0, L, n)            -- rand/chase offsets
_K_HOT = 1   # random(n) + hot/cold integers -- hotspot offsets
_K_WR = 2    # random(n)                    -- write flags
_K_DEP = 3   # random(n)                    -- dep flags (0 < dp < 1)
_K_GS = 4    # geometric(p >= 1/3, n)       -- gaps, search method
_K_GZ = 5    # geometric(p < 1/3, n)        -- gaps, ziggurat inversion


def _excl_cumsum(a: np.ndarray) -> np.ndarray:
    out = np.empty(len(a) + 1, dtype=np.int64)
    out[0] = 0
    np.cumsum(a, out=out[1:])
    return out[:-1]


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the loop."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = _excl_cumsum(counts)
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _doubles(words: np.ndarray) -> np.ndarray:
    return (words >> np.uint64(11)) * _DBL


def _geom_search_table(p: float) -> np.ndarray:
    """Partial sums of the geometric pmf, exactly as the search method
    accumulates them; ``X = 1 + table.searchsorted(U, side="left")``."""
    q = 1.0 - p
    s = prod = p
    out = [s]
    while True:
        prod *= q
        s2 = s + prod
        if s2 == s:
            return np.asarray(out)
        s = s2
        out.append(s)


class _WordTape:
    """The raw PCG64 word stream, materialized lazily in a sliding window."""

    __slots__ = ("_bg", "_buf", "_lo", "_hi")

    def __init__(self, state: dict):
        bg = np.random.PCG64()
        bg.state = {**state, "has_uint32": 0, "uinteger": 0}
        self._bg = bg
        self._buf = np.empty(0, dtype=np.uint64)
        self._lo = 0
        self._hi = 0

    def need(self, hi: int) -> None:
        if hi > self._hi:
            grow = max(hi - self._hi, 1 << 15)
            self._buf = np.concatenate([self._buf, self._bg.random_raw(grow)])
            self._hi += grow

    def release(self, lo: int) -> None:
        """Forget words below ``lo`` (they can never be re-read)."""
        if lo > self._lo:
            self._buf = self._buf[lo - self._lo:]
            self._lo = lo

    def aslice(self, lo: int, hi: int) -> np.ndarray:
        self.need(hi)
        return self._buf[lo - self._lo: hi - self._lo]

    def take(self, idx: np.ndarray) -> np.ndarray:
        if idx.size == 0:
            return np.empty(0, dtype=np.uint64)
        self.need(int(idx.max()) + 1)
        return self._buf[idx - self._lo]

    def word(self, i: int) -> int:
        self.need(i + 1)
        return int(self._buf[i - self._lo])


def supported(builder, rng: np.random.Generator) -> bool:
    """Whether the kernel can replay this build bit-exactly.

    Structural conditions only; anything else falls back to the
    reference loop (which also owns raising the reference's errors for
    invalid behaviours, at the exact chunk it would raise them).
    """
    if not isinstance(rng.bit_generator, np.random.PCG64):
        return False
    ab = builder.access_bytes
    for b in builder.behaviors:
        if b.weight <= 0:
            continue  # never scheduled; reference never evaluates it
        if b.pattern == "seq" and b.size_bytes < ab:
            return False  # reference raises mid-build
        if b.pattern == "strided" and b.stride <= 0:
            return False
        if b.pattern == "hotspot" and not (
                0.0 < b.hot_fraction <= 1.0 and 0.0 <= b.hot_weight <= 1.0):
            return False
        if b.size_bytes - ab + 1 >= 2 ** 32:
            return False  # 64-bit Lemire path not replayed
    return True


class _Plans:
    """Per-behaviour constants, precomputed once per build."""

    def __init__(self, builder, bases, ids):
        bs = builder.behaviors
        ab = builder.access_bytes
        nb = len(bs)
        self.ab = ab
        self.base = np.asarray(bases, dtype=np.int64)
        self.ids = np.asarray(ids, dtype=np.int32)

        # Chunk schedule constants — same formulas/dtypes as the reference.
        weights = np.asarray([b.weight for b in bs], dtype=float)
        bursts = np.asarray([b.burst_mean for b in bs], dtype=float)
        chunk_w = weights / bursts
        self.probs = chunk_w / chunk_w.sum()
        self.cdf = self.probs.cumsum()
        self.cdf /= self.cdf[-1]
        self.mean_burst = float(np.dot(self.probs, bursts))
        self.default_gap = max(1.0, 1000.0 / builder.mem_per_ki)

        self.p_burst = np.asarray([1.0 / b.burst_mean for b in bs])
        self.log1mp = np.asarray(
            [np.log(1.0 - p) if p < 1.0 else -1.0 for p in self.p_burst])
        self.percap = np.asarray(
            [4 * int(b.burst_mean) + 8 for b in bs], dtype=np.int64)

        pat = {"seq": 0, "strided": 1, "rand": 2, "chase": 3, "hotspot": 4}
        self.patk = np.asarray([pat[b.pattern] for b in bs], dtype=np.int8)
        self.size = np.asarray([b.size_bytes for b in bs], dtype=np.int64)
        self.step = np.asarray(
            [b.stride if b.pattern == "strided" else ab for b in bs],
            dtype=np.int64)
        span = []
        for b in bs:
            if b.pattern == "strided":
                span.append(max(b.stride, (b.size_bytes // b.stride) * b.stride))
            else:
                span.append(max(1, (b.size_bytes // ab) * ab))
        self.span = np.asarray(span, dtype=np.int64)
        self.clamp = np.maximum(0, self.size - ab)

        # Lemire parameters (values below 2**32 guaranteed by supported()).
        self.lem_L = np.asarray(
            [max(1, b.size_bytes - ab + 1) for b in bs], dtype=np.uint64)
        hot_size = [max(ab, int(b.size_bytes * b.hot_fraction)) for b in bs]
        self.hot_L = np.asarray(
            [max(1, hs - ab + 1) for hs in hot_size], dtype=np.uint64)
        self.lem_thr = np.asarray(
            [(2 ** 32 - int(v)) % int(v) for v in self.lem_L], dtype=np.uint64)
        self.hot_thr = np.asarray(
            [(2 ** 32 - int(v)) % int(v) for v in self.hot_L], dtype=np.uint64)
        self.hot_w = np.asarray([b.hot_weight for b in bs])

        self.wf = np.asarray([b.write_frac for b in bs])
        self.dp = np.asarray([b.effective_dep_prob for b in bs])
        self.dep_one = self.dp >= 1.0

        # Gap draw plan.
        self.gap_p = np.asarray(
            [1.0 / (b.gap_mean if b.gap_mean is not None else self.default_gap)
             for b in bs])
        self.gap_denom = np.asarray(
            [-math.log1p(-p) if p < _SEARCH_P_MIN else 1.0 for p in self.gap_p])
        self.gap_tbl = [
            _geom_search_table(p) if p >= _SEARCH_P_MIN else None
            for p in self.gap_p]

        # Per-behaviour op templates (stream order inside one chunk).
        self.hot_nohalf = np.zeros(nb, dtype=bool)
        self.hot_aev = np.zeros(nb, dtype=bool)
        self.lem_nohalf = np.zeros(nb, dtype=bool)
        tbl = np.full((nb, 4), -1, dtype=np.int8)
        cnt = np.zeros(nb, dtype=np.int64)
        for i, b in enumerate(bs):
            ops = []
            if b.pattern in ("rand", "chase"):
                ops.append(_K_LEM)
                self.lem_nohalf[i] = int(self.lem_L[i]) == 1
            elif b.pattern == "hotspot":
                ops.append(_K_HOT)
                hd, cd = int(self.hot_L[i]) == 1, int(self.lem_L[i]) == 1
                self.hot_nohalf[i] = hd and cd
                self.hot_aev[i] = hd != cd
            ops.append(_K_WR)
            if 0.0 < self.dp[i] < 1.0:
                ops.append(_K_DEP)
            ops.append(_K_GS if self.gap_p[i] >= _SEARCH_P_MIN else _K_GZ)
            tbl[i, :len(ops)] = ops
            cnt[i] = len(ops)
        self.op_tbl = tbl
        self.op_cnt = cnt
        # Speculative half-words per access of an op (0 when the Lemire
        # span is 1: numpy returns the offset without consuming).
        halfmul = np.zeros((nb, 6), dtype=np.int64)
        halfmul[:, _K_LEM] = (~self.lem_nohalf).astype(np.int64)
        halfmul[:, _K_HOT] = (~self.hot_nohalf).astype(np.int64)
        self.halfmul = halfmul
        # Words consumed per access in addition to half fetches.
        wordmul = np.zeros(6, dtype=np.int64)
        wordmul[[_K_HOT, _K_WR, _K_DEP, _K_GS, _K_GZ]] = 1
        self.wordmul = wordmul


class _Kernel:
    """One build replay: schedule per batch, walk blocks, repair events."""

    def __init__(self, builder, n_accesses, rng, bases, ids):
        self.P = _Plans(builder, bases, ids)
        self.n_accesses = n_accesses
        self.rng = rng
        st = rng.bit_generator.state
        self._state0 = st
        self.tape = _WordTape(st)
        self.c = 0                       # word cursor into the raw stream
        self.b = int(st["has_uint32"])   # one stale u32 half buffered?
        self.v = int(st["uinteger"])     # ... its value
        self.seq_cursor = [0] * len(builder.behaviors)
        self.est_chunks = max(
            16, int(n_accesses / self.P.mean_burst * 1.6) + 8)
        self.block_chunks = max(
            32, int(_BLOCK_ACCESSES / self.P.mean_burst))
        # EMA of ops between true events; sizes the post-event re-scan
        # window so event-heavy workloads don't pay for layouts that an
        # imminent next event will invalidate.
        self.ev_ema = 1e9
        self.since_ev = 0

    # ---------------------------------------------------------------- stream

    def blocks(self):
        """Yield ``(vaddr, is_write, dep, obj_id, gaps)`` column blocks."""
        total = 0
        while total < self.n_accesses:
            obj, n = self._schedule_batch(self.n_accesses - total)
            total += int(n.sum())
            bc = self.block_chunks
            for s in range(0, len(obj), bc):
                self.tape.release(self.c)
                yield self._walk_block(obj[s:s + bc], n[s:s + bc])
        self._commit()

    def _schedule_batch(self, remaining):
        """Replay one choice/uniform batch into (obj, burst-length) chunks."""
        P, E = self.P, self.est_chunks
        w = self.tape.aslice(self.c, self.c + 2 * E)
        self.c += 2 * E
        obj = P.cdf.searchsorted(_doubles(w[:E]), side="right")
        u = _doubles(w[E:])
        one = P.p_burst[obj] >= 1.0
        ratio = np.log(np.maximum(u, 1e-12)) / P.log1mp[obj]
        n = np.where(one, 1, 1 + ratio.astype(np.int64))
        n = np.minimum(n, P.percap[obj])
        csum = np.cumsum(n)
        if csum[-1] >= remaining:
            C = int(csum.searchsorted(remaining, side="left")) + 1
            obj, n = obj[:C], n[:C].copy()
            n[-1] = remaining - (int(csum[C - 2]) if C > 1 else 0)
        return obj, n

    def _commit(self):
        """Write the replayed end state back to the caller's Generator."""
        bg = np.random.PCG64()
        bg.state = {**self._state0, "has_uint32": 0, "uinteger": 0}
        bg.advance(self.c)
        st = bg.state
        st["has_uint32"] = self.b
        st["uinteger"] = self.v
        self.rng.bit_generator.state = st

    # ----------------------------------------------------------------- walk

    def _walk_block(self, obj, n):
        P = self.P
        rows = int(n.sum())
        rowstart = _excl_cumsum(n)
        off = np.zeros(rows, dtype=np.int64)
        wr = np.zeros(rows, dtype=bool)
        dep = np.repeat(P.dep_one[obj], n)
        gap = np.zeros(rows, dtype=np.int64)
        out = (off, wr, dep, gap)

        self._seq_str_offsets(obj, n, rowstart, off)

        oc = P.op_cnt[obj]
        opo = np.repeat(obj, oc)
        opk = P.op_tbl[opo, _ragged_arange(oc)]
        opch = np.repeat(np.arange(len(obj), dtype=np.int64), oc)
        opn = n[opch]
        nops = len(opk)

        # After a true event the whole remaining layout is stale, but
        # re-laying the full suffix per event is quadratic in practice
        # (Lemire-rejection-heavy workloads hit thousands of events per
        # million accesses).  Lay out in windows sized by the observed
        # inter-event distance — small when events cluster, growing back
        # to full blocks through quiet stretches — so each event only
        # invalidates about one event's worth of speculative work.
        f = 0
        W = min(nops, max(32, int(self.ev_ema * 1.5)))
        while f < nops:
            g = min(f + W, nops)
            e = self._layout_detect_decode(
                opk[f:g], opn[f:g], opo[f:g], opch[f:g], rowstart, out)
            if e is None:
                self.since_ev += g - f
                f = g
                W = min(W * 4, nops)
                continue
            d = max(self.since_ev + e, 8)
            self.ev_ema = d if self.ev_ema >= 1e9 \
                else 0.75 * self.ev_ema + 0.25 * d
            self.since_ev = 0
            g = f + e
            self._eval_exact(
                int(opk[g]), int(opn[g]), int(opo[g]),
                int(rowstart[opch[g]]), out)
            f = g + 1
            W = min(nops, max(32, int(self.ev_ema * 1.5)))

        vaddr = off + np.repeat(P.base[obj], n)
        obj_id = np.repeat(P.ids[obj], n)
        return vaddr, wr, dep, obj_id, gap

    def _seq_str_offsets(self, obj, n, rowstart, off):
        """Closed-form sequential/strided offsets (no RNG involved)."""
        P = self.P
        for bi in np.unique(obj[(P.patk[obj] == 0) | (P.patk[obj] == 1)]):
            bi = int(bi)
            sel = np.flatnonzero(obj == bi)
            ns = n[sel]
            step, span = int(P.step[bi]), int(P.span[bi])
            starts = (self.seq_cursor[bi]
                      + _excl_cumsum(ns * step)) % span
            self.seq_cursor[bi] = int(
                (self.seq_cursor[bi] + int((ns * step).sum())) % span)
            o = (np.repeat(starts, ns) + _ragged_arange(ns) * step) % span
            if P.patk[bi] == 1:  # strided: clamp into [0, size-ab], align
                o = np.minimum(o, P.clamp[bi])
            o = (o // P.ab) * P.ab
            rws = np.repeat(rowstart[sel], ns) + _ragged_arange(ns)
            off[rws] = o

    # ------------------------------------------------- layout/detect/decode

    def _layout_detect_decode(self, kinds, nn, oo, ch, rowstart, out):
        """Lay out ops [0:] speculatively from the current state, decode
        everything before the first rare event, and advance the state
        there.  Returns the local index of the event op, or ``None``.

        Ziggurat slow paths are too common (~2.2% of gap draws) to be
        frontier events; they are resolved up front by the shift chain
        (:meth:`_zig_chain`), and the resulting extra-word shifts are
        folded into every later read.  Only Lemire rejections and
        degenerate hotspots — a few per million accesses — remain true
        events that cut the layout short.
        """
        P, tape = self.P, self.tape
        h = nn * P.halfmul[oo, kinds]
        par = (self.b + _excl_cumsum(h & 1)) & 1
        fetch = np.where(h > 0, (h - par + 1) // 2, 0)
        wds = nn * P.wordmul[kinds] + fetch
        wstart = self.c + _excl_cumsum(wds)
        hstart = wstart + np.where(kinds == _K_HOT, nn, 0)
        lastw = np.where(fetch > 0, hstart + fetch - 1, -1)
        end_c = int(wstart[-1] + wds[-1])
        tape.need(end_c)

        # Ziggurat gap sites: resolve slow-path extra words exactly.
        zo = np.flatnonzero(kinds == _K_GZ)
        zop = np.repeat(zo, nn[zo])
        zpos = np.repeat(wstart[zo], nn[zo]) + _ragged_arange(nn[zo])
        zgap, op_extras, total_extras = self._zig_chain(
            zpos, zop, oo, len(kinds))
        opshift = _excl_cumsum(op_extras)
        wsh = wstart + opshift
        end_c += total_extras

        # Zig extras consume whole words only, so parities are exact in
        # the base layout; word positions after a slow path all shift.
        lastw_s = np.where(lastw >= 0, lastw + opshift, -1)
        prevw = np.concatenate(([-1], np.maximum.accumulate(lastw_s)[:-1]))

        # Hotspot uniforms (the hot/cold split feeds the half thresholds).
        nho = np.flatnonzero((kinds == _K_HOT) & ~P.hot_aev[oo]
                             & ~P.hot_nohalf[oo])
        upos = np.repeat(wsh[nho], nn[nho]) + _ragged_arange(nn[nho])
        in_hot = _doubles(tape.take(upos)) < np.repeat(P.hot_w[oo[nho]],
                                                       nn[nho])
        nhot_by_op = np.zeros(len(kinds), dtype=np.int64)
        if len(nho):
            ustarts = _excl_cumsum(nn[nho])
            nhot_by_op[nho] = np.add.reduceat(
                in_hot.astype(np.int64), ustarts) if in_hot.size else 0

        # Lemire half sites (normal LEM + normal HOT ops).
        hsel = np.flatnonzero((h > 0) & ~P.hot_aev[oo])
        hop = np.repeat(hsel, h[hsel])
        j = _ragged_arange(h[hsel])
        adj = j - par[hop]
        word = hstart[hop] + opshift[hop] + np.maximum(adj, 0) // 2
        hv = (tape.take(word) >> (np.uint64(32)
                                  * (adj & 1).astype(np.uint64))) \
            & np.uint64(0xFFFFFFFF)
        carry = adj < 0
        if carry.any():
            pw = prevw[hop[carry]]
            # pw == -1 means "carry predates this block" (use self.v);
            # real word indices are always >= self.c, so clamp the
            # sentinel there to keep take() inside the tape window.
            cv = np.where(
                pw >= 0,
                tape.take(np.maximum(pw, self.c)) >> np.uint64(32),
                np.uint64(self.v))
            hv = hv.copy()
            hv[carry] = cv
        is_hot_half = (kinds[hop] == _K_HOT) & (j < nhot_by_op[hop])
        L = np.where(is_hot_half, P.hot_L[oo[hop]], P.lem_L[oo[hop]])
        thr = np.where(is_hot_half, P.hot_thr[oo[hop]], P.lem_thr[oo[hop]])
        m = hv * L
        hrej = (m & np.uint64(0xFFFFFFFF)) < thr

        # First op carrying a true event.
        evf = (kinds == _K_HOT) & P.hot_aev[oo]
        if hrej.any():
            evf = evf.copy()
            evf[hop[hrej]] = True
        ev = np.flatnonzero(evf)
        e = int(ev[0]) if ev.size else None
        end = e if e is not None else len(kinds)

        self._decode(kinds, nn, oo, ch, rowstart, out, end, wsh,
                     zop, zgap, nho, in_hot, hop, m)

        # Advance the state to the cut point.
        if e is not None:
            self.c = int(wsh[e])
            self.b = int(par[e])
            pw = int(prevw[e])
            if pw >= 0:
                self.v = tape.word(pw) >> 32
        else:
            self.c = end_c
            self.b = int((self.b + int((h & 1).sum())) & 1)
            last = int(lastw_s.max()) if len(lastw_s) else -1
            if last >= 0:
                self.v = tape.word(last) >> 32
        return e

    def _zig_fails(self, zpos, K):
        """Fail sites of every zig draw under word shifts ``0..K-1``:
        ``(cols, bounds)`` where ``cols[bounds[s]:bounds[s+1]]`` are the
        (ascending) site indices that take the slow path when read
        ``s`` words late.

        The fail bit is a pure function of the raw *word*, so instead of
        testing every (site, shift) pair, test each word in the block's
        range once (~2.2% fail) and expand only the failing positions
        into the (shift, site) pairs they can hit — two orders of
        magnitude less data than the dense matrix.
        """
        lo = int(zpos[0])
        w = self.tape.aslice(lo, int(zpos[-1]) + K + 1)
        ri = w >> np.uint64(3)
        failw = ~((ri >> np.uint64(8)) < KE[(ri & np.uint64(0xFF))
                                            .astype(np.intp)])
        pw = np.flatnonzero(failw) + lo
        plo = np.searchsorted(zpos, pw - (K - 1))
        cnt = np.searchsorted(zpos, pw, side="right") - plo
        i = np.repeat(plo, cnt) + _ragged_arange(cnt)
        s = np.repeat(pw, cnt) - zpos[i]
        nz1 = len(zpos) + 1
        key = np.sort(s * nz1 + i)
        bounds = np.searchsorted(key // nz1, np.arange(K + 1))
        return key % nz1, bounds

    def _zig_chain(self, zpos, zop, oo, nops):
        """Resolve every ziggurat slow path in the block exactly.

        Each slow path consumes extra words, shifting all later reads;
        which *later* draws fail therefore depends on the cumulative
        shift — a sequential chain.  Enumerating the fail bit of every
        site under every candidate shift (one 2-D gather) reduces the
        chain to a cheap walk over the ~2% failing sites: at shift
        ``s``, the next event is the first site at or past the frontier
        in the precomputed shift-``s`` fail list; its slow path is then
        evaluated with full scalar semantics and the shift advances by
        the words it actually consumed.

        Returns ``(zgap, op_extras, total_extras)``: the decoded gap
        value of every zig draw, extra words consumed per op, and their
        total.
        """
        P, tape = self.P, self.tape
        nz = len(zpos)
        op_extras = np.zeros(nops, dtype=np.int64)
        if nz == 0:
            return np.empty(0, dtype=np.int64), op_extras, 0
        K = int(0.03 * nz) + 24
        cols, bounds = self._zig_fails(zpos, K)
        ze = np.zeros(nz, dtype=np.int64)
        evt_sites: list[int] = []
        evt_vals: list[float] = []
        s = 0
        f = 0
        while True:
            if s >= K:  # chain outran the enumerated shifts (rare)
                K = s + max(K, 32)
                cols, bounds = self._zig_fails(zpos, K)
            row = cols[bounds[s]:bounds[s + 1]]
            t = int(np.searchsorted(row, f))
            if t == len(row):
                break
            i = int(row[t])
            start = int(zpos[i]) + s
            x, cend = self._zig_slow(start)
            ze[i] = cend - start - 1
            evt_sites.append(i)
            evt_vals.append(x)
            s += cend - start - 1
            f = i + 1

        zw = tape.take(zpos + _excl_cumsum(ze))
        zri = zw >> np.uint64(3)
        vals = (zri >> np.uint64(8)).astype(np.float64) \
            * WE[(zri & np.uint64(0xFF)).astype(np.intp)]
        if evt_sites:
            ev = np.asarray(evt_sites, dtype=np.int64)
            vals[ev] = evt_vals
            np.add.at(op_extras, zop[ev], ze[ev])
        zgap = np.ceil(vals / P.gap_denom[oo[zop]]).astype(np.int64)
        return zgap, op_extras, s

    def _decode(self, kinds, nn, oo, ch, rowstart, out, end, wstart,
                zop, zgap, nho, in_hot, hop, m):
        """Decode the event-free ops ``[0:end)`` into the output columns."""
        if end == 0:
            return
        P, tape = self.P, self.tape
        off, wr, dep, gap = out

        def site_rows(ops):
            return (np.repeat(rowstart[ch[ops]], nn[ops])
                    + _ragged_arange(nn[ops]))

        def uniforms(ops):
            pos = np.repeat(wstart[ops], nn[ops]) + _ragged_arange(nn[ops])
            return _doubles(tape.take(pos))

        sel = np.flatnonzero(kinds[:end] == _K_WR)
        if sel.size:
            wr[site_rows(sel)] = uniforms(sel) < np.repeat(P.wf[oo[sel]],
                                                           nn[sel])
        sel = np.flatnonzero(kinds[:end] == _K_DEP)
        if sel.size:
            dep[site_rows(sel)] = uniforms(sel) < np.repeat(P.dp[oo[sel]],
                                                            nn[sel])
        sel = np.flatnonzero(kinds[:end] == _K_GS)
        if sel.size:
            u = uniforms(sel)
            rws = site_rows(sel)
            obs = np.repeat(oo[sel], nn[sel])
            for bi in np.unique(obs):
                pick = obs == bi
                gap[rws[pick]] = 1 + P.gap_tbl[bi].searchsorted(
                    u[pick], side="left")
        zin = zop < end
        if zin.any():
            rws = site_rows(np.flatnonzero(kinds[:end] == _K_GZ))
            gap[rws] = zgap[zin]
        lem_half = (kinds[hop] == _K_LEM) & (hop < end)
        if lem_half.any():
            sel = np.flatnonzero((kinds[:end] == _K_LEM)
                                 & ~P.lem_nohalf[oo[:end]])
            vals = (m[lem_half] >> np.uint64(32)).astype(np.int64)
            off[site_rows(sel)] = (vals // P.ab) * P.ab
        hin = nho < end
        if hin.any():
            hsel = nho[hin]
            urows = site_rows(hsel)
            uop = np.repeat(hsel, nn[hsel])
            order = np.argsort(uop * 2 + (~in_hot[:len(uop)]).astype(np.int64),
                               kind="stable")
            hot_half = (kinds[hop] == _K_HOT) & (hop < end)
            vals = (m[hot_half] >> np.uint64(32)).astype(np.int64)
            off[urows[order]] = (vals // P.ab) * P.ab

    # ---------------------------------------------------------- exact paths

    def _next_half(self) -> int:
        if self.b:
            self.b = 0
            return self.v
        w = self.tape.word(self.c)
        self.c += 1
        self.b = 1
        self.v = w >> 32
        return w & 0xFFFFFFFF

    def _lem_scalar(self, L: int, thr: int) -> int:
        while True:
            m = self._next_half() * L
            if (m & 0xFFFFFFFF) >= thr:
                return m >> 32

    def _zig_slow(self, c: int) -> tuple[float, int]:
        """One standard_exponential draw starting at word ``c``, full
        semantics (tail and wedge slow paths, libm log1p/exp)."""
        tape = self.tape
        while True:
            w = tape.word(c)
            c += 1
            ri = w >> 3
            idx = ri & 0xFF
            k = ri >> 8
            x = k * float(WE[idx])
            if k < int(KE[idx]):
                return x, c
            u = (tape.word(c) >> 11) * _DBL
            c += 1
            if idx == 0:
                return ZIGGURAT_EXP_R - math.log1p(-u), c
            if (float(FE[idx - 1]) - float(FE[idx])) * u + float(FE[idx]) \
                    < math.exp(-x):
                return x, c

    def _zig_exact(self, n: int, denom: float, row0: int, gap: np.ndarray):
        tape = self.tape
        vals = np.empty(n)
        i = 0
        while i < n:
            mreq = n - i
            w = tape.aslice(self.c, self.c + mreq)
            ri = w >> np.uint64(3)
            idx = (ri & np.uint64(0xFF)).astype(np.intp)
            kk = ri >> np.uint64(8)
            ok = kk < KE[idx]
            bad = np.flatnonzero(~ok)
            t = int(bad[0]) if bad.size else mreq
            if t:
                vals[i:i + t] = kk[:t].astype(np.float64) * WE[idx[:t]]
                self.c += t
                i += t
            if t < mreq:
                vals[i], self.c = self._zig_slow(self.c)
                i += 1
        gap[row0:row0 + n] = np.ceil(vals / denom).astype(np.int64)

    def _eval_exact(self, kind, n, bi, row0, out):
        """Evaluate one op with full sequential semantics (event repair)."""
        P = self.P
        off, wr, dep, gap = out
        if kind == _K_GZ:
            self._zig_exact(n, float(P.gap_denom[bi]), row0, gap)
        elif kind == _K_LEM:
            L, thr = int(P.lem_L[bi]), int(P.lem_thr[bi])
            vals = np.asarray([self._lem_scalar(L, thr) for _ in range(n)],
                              dtype=np.int64)
            off[row0:row0 + n] = (vals // P.ab) * P.ab
        elif kind == _K_HOT:
            w = self.tape.aslice(self.c, self.c + n)
            self.c += n
            in_hot = _doubles(w) < float(P.hot_w[bi])
            n_hot = int(in_hot.sum())
            offs = np.zeros(n, dtype=np.int64)
            Lh, th = int(P.hot_L[bi]), int(P.hot_thr[bi])
            Lc, tc = int(P.lem_L[bi]), int(P.lem_thr[bi])
            if n_hot and Lh > 1:
                offs[in_hot] = [self._lem_scalar(Lh, th)
                                for _ in range(n_hot)]
            if n - n_hot and Lc > 1:
                offs[~in_hot] = [self._lem_scalar(Lc, tc)
                                 for _ in range(n - n_hot)]
            off[row0:row0 + n] = (offs // P.ab) * P.ab
        else:  # pragma: no cover - WR/DEP/GS ops never carry events
            raise AssertionError(f"unexpected event op kind {kind}")


def iter_kernel_blocks(builder, n_accesses: int, rng: np.random.Generator,
                       bases, ids):
    """Stream ``(vaddr, is_write, dep, obj_id, gaps)`` blocks, bit-equal
    to the reference loop's concatenated chunks.  The caller's ``rng``
    is advanced to the reference's exact end state once the generator
    is exhausted (not before)."""
    return _Kernel(builder, n_accesses, rng, bases, ids).blocks()
