"""Trace data structures: placed objects, virtual layout, access stream."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cpu.hierarchy import SEG_CODE, SEG_GLOBAL, SEG_STACK

#: Canonical virtual bases of the classic process layout (x86-64ish).
CODE_BASE = 0x0040_0000
GLOBAL_BASE = 0x1000_0000
HEAP_BASE = 0x6000_0000
STACK_TOP = 0x7FF0_0000_0000

PAGE_BYTES = 4096


@dataclass(frozen=True)
class PlacedObject:
    """A memory object (or segment) laid out in virtual memory.

    Attributes:
        obj_id: Non-negative for heap objects; the SEG_* sentinels for
            stack/code/global segments.
        name: Human-readable name, e.g. ``"mcf.arcs"``.
        vbase: Page-aligned virtual base address.
        size_bytes: Extent of the object.
        site: Allocation-site identifier used by MOCA naming (0 for
            segments, which are not heap allocations).
    """

    obj_id: int
    name: str
    vbase: int
    size_bytes: int
    site: int = 0

    @property
    def vend(self) -> int:
        return self.vbase + self.size_bytes

    @property
    def is_heap(self) -> bool:
        return self.obj_id >= 0

    def pages(self) -> range:
        """Virtual page numbers spanned by the object."""
        first = self.vbase // PAGE_BYTES
        last = (self.vend - 1) // PAGE_BYTES
        return range(first, last + 1)


class VirtualLayout:
    """Page-aligned placement of heap objects plus the fixed segments.

    Heap objects are packed upward from ``HEAP_BASE`` with one guard page
    between them, in *allocation order* — the order matters because
    runtime policies (Heter-App, first-touch) allocate on first contact.
    """

    def __init__(self, stack_bytes: int = 64 * 1024,
                 code_bytes: int = 256 * 1024,
                 global_bytes: int = 128 * 1024):
        self.objects: list[PlacedObject] = []
        self._cursor = HEAP_BASE
        self.segments = {
            SEG_STACK: PlacedObject(SEG_STACK, "[stack]",
                                    STACK_TOP - _page_ceil(stack_bytes),
                                    _page_ceil(stack_bytes)),
            SEG_CODE: PlacedObject(SEG_CODE, "[code]", CODE_BASE,
                                   _page_ceil(code_bytes)),
            SEG_GLOBAL: PlacedObject(SEG_GLOBAL, "[global]", GLOBAL_BASE,
                                     _page_ceil(global_bytes)),
        }
        self._ranges_dirty = True
        self._starts: np.ndarray | None = None
        self._ends: np.ndarray | None = None
        self._ids: np.ndarray | None = None

    def place(self, name: str, size_bytes: int, site: int = 0) -> PlacedObject:
        """Append a heap object; returns its placement."""
        if size_bytes <= 0:
            raise ValueError(f"object {name!r} must have positive size")
        size = _page_ceil(size_bytes)
        obj = PlacedObject(len(self.objects), name, self._cursor, size, site)
        self.objects.append(obj)
        self._cursor += size + PAGE_BYTES  # guard page
        self._ranges_dirty = True
        return obj

    def all_regions(self) -> list[PlacedObject]:
        """Heap objects + segments, sorted by virtual base."""
        return sorted(
            list(self.objects) + list(self.segments.values()),
            key=lambda o: o.vbase,
        )

    def by_id(self, obj_id: int) -> PlacedObject:
        if obj_id < 0:
            return self.segments[obj_id]
        return self.objects[obj_id]

    def heap_footprint_bytes(self) -> int:
        return sum(o.size_bytes for o in self.objects)

    def _build_ranges(self) -> None:
        regions = self.all_regions()
        self._starts = np.asarray([r.vbase for r in regions], dtype=np.int64)
        self._ends = np.asarray([r.vend for r in regions], dtype=np.int64)
        self._ids = np.asarray([r.obj_id for r in regions], dtype=np.int32)
        self._ranges_dirty = False

    def resolve(self, vaddrs: np.ndarray) -> np.ndarray:
        """Vectorized owner lookup: virtual addresses → object/segment ids.

        Addresses outside every region resolve to SEG_GLOBAL (the catch-all
        the OS would back with the default module).
        """
        if self._ranges_dirty:
            self._build_ranges()
        idx = np.searchsorted(self._starts, vaddrs, side="right") - 1
        idx = np.clip(idx, 0, len(self._starts) - 1)
        inside = (vaddrs >= self._starts[idx]) & (vaddrs < self._ends[idx])
        out = np.where(inside, self._ids[idx], np.int32(SEG_GLOBAL))
        return out.astype(np.int32)


@dataclass
class AccessTrace:
    """A complete synthetic execution: accesses + layout.

    Attributes:
        inst: Cumulative instruction count at each access (int64).
        vaddr: Virtual byte address accessed (int64).
        is_write: Store flag.
        obj_id: Owning object/segment id.
        dep: Serial-dependence flag (pointer-chase step).
        layout: The virtual-memory layout that produced the addresses.
        total_instructions: Trace length in instructions (>= inst[-1]).
    """

    inst: np.ndarray
    vaddr: np.ndarray
    is_write: np.ndarray
    obj_id: np.ndarray
    dep: np.ndarray
    layout: VirtualLayout
    total_instructions: int

    def __post_init__(self) -> None:
        n = len(self.inst)
        for name in ("vaddr", "is_write", "obj_id", "dep"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} length mismatch")

    def __len__(self) -> int:
        return len(self.inst)

    def resolve_objects(self, vaddrs: np.ndarray) -> np.ndarray:
        return self.layout.resolve(vaddrs)

    def touched_pages(self, obj_id: int | None = None) -> np.ndarray:
        """Distinct virtual page numbers touched (optionally by one object)."""
        v = self.vaddr
        if obj_id is not None:
            v = v[self.obj_id == obj_id]
        return np.unique(v // PAGE_BYTES)


def _page_ceil(nbytes: int) -> int:
    return (nbytes + PAGE_BYTES - 1) // PAGE_BYTES * PAGE_BYTES
