"""Compose per-object access behaviours into one program trace.

Applications access their objects in *bursts* (loop nests touch one or two
structures at a time), which is what gives memory objects their distinct
cache and MLP signatures.  The builder draws a sequence of (object, burst
length) chunks, generates each burst's addresses with the vectorized
pattern generators, and threads a global instruction counter through the
stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace import patterns
from repro.trace.events import AccessTrace, VirtualLayout
from repro.util.fastpath import fast_path_default

PATTERNS = ("seq", "strided", "rand", "chase", "hotspot")


@dataclass(frozen=True)
class ObjectBehavior:
    """Declarative access behaviour of one memory object (or segment).

    Attributes:
        name: Object name, e.g. ``"arcs"``.
        size_bytes: Object extent (pages are allocated for the whole extent).
        weight: Relative share of the application's accesses.
        pattern: One of ``seq | strided | rand | chase | hotspot``.
        burst_mean: Mean burst (chunk) length in accesses.
        write_frac: Fraction of accesses that are stores.
        stride: Byte stride for the ``strided`` pattern.
        hot_fraction / hot_weight: ``hotspot`` parameters.
        dep_prob: Probability an access serially depends on the previous
            one.  ``chase`` forces 1.0 regardless.
        gap_mean: Mean instructions between this object's accesses within
            a burst; ``None`` uses the builder default.  Streaming loops
            (1–4 inst/access) pack many misses into the ROB window — high
            MLP; traversal code (15–40 inst/hop) cannot.
        segment: ``None`` for heap objects, or a SEG_* sentinel to attach
            the behaviour to the stack/code/global segment.
        site: Allocation-site id for MOCA naming (heap objects only).
    """

    name: str
    size_bytes: int
    weight: float
    pattern: str = "seq"
    burst_mean: float = 32.0
    write_frac: float = 0.2
    stride: int = 64
    hot_fraction: float = 0.1
    hot_weight: float = 0.9
    dep_prob: float = 0.0
    gap_mean: float | None = None
    segment: int | None = None
    site: int = 0

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError(f"object {self.name!r} must have positive size")
        if self.burst_mean < 1:
            raise ValueError("burst_mean must be >= 1")
        if self.gap_mean is not None and self.gap_mean < 1:
            raise ValueError("gap_mean must be >= 1 when given")

    @property
    def effective_dep_prob(self) -> float:
        return 1.0 if self.pattern == "chase" else self.dep_prob


class TraceBuilder:
    """Builds an :class:`AccessTrace` from a list of behaviours."""

    def __init__(self, behaviors: list[ObjectBehavior],
                 mem_per_ki: float = 100.0,
                 access_bytes: int = 8):
        if not behaviors:
            raise ValueError("need at least one behaviour")
        if not any(b.weight > 0 for b in behaviors):
            raise ValueError("at least one behaviour needs positive weight")
        if mem_per_ki <= 0:
            raise ValueError("mem_per_ki must be positive")
        if access_bytes <= 0:
            raise ValueError(
                f"access_bytes must be positive, got {access_bytes}")
        self.behaviors = list(behaviors)
        self.mem_per_ki = mem_per_ki
        self.access_bytes = access_bytes

    def build(self, n_accesses: int, rng: np.random.Generator,
              layout: VirtualLayout | None = None,
              fast_path: bool | None = None) -> AccessTrace:
        """Generate a trace of ``n_accesses`` memory references.

        ``fast_path`` selects the vectorized synthesis kernel
        (:mod:`repro.trace.kernel`), which is bit-identical to the
        reference chunk loop; ``None`` follows the process-wide
        ``REPRO_FAST_PATH`` switch.
        """
        layout = layout or VirtualLayout()
        blocks = self.iter_blocks(n_accesses, rng, layout=layout,
                                  fast_path=fast_path)
        vaddr_parts: list[np.ndarray] = []
        write_parts: list[np.ndarray] = []
        dep_parts: list[np.ndarray] = []
        obj_parts: list[np.ndarray] = []
        gap_parts: list[np.ndarray] = []
        for vaddr, is_write, dep, obj_id, gaps in blocks:
            vaddr_parts.append(vaddr)
            write_parts.append(is_write)
            dep_parts.append(dep)
            obj_parts.append(obj_id)
            gap_parts.append(gaps)

        default_gap = max(1.0, 1000.0 / self.mem_per_ki)
        gaps = np.concatenate(gap_parts)[:n_accesses]
        inst = np.cumsum(gaps)
        return AccessTrace(
            inst=inst,
            vaddr=np.concatenate(vaddr_parts)[:n_accesses].astype(np.int64),
            is_write=np.concatenate(write_parts)[:n_accesses],
            dep=np.concatenate(dep_parts)[:n_accesses],
            obj_id=np.concatenate(obj_parts)[:n_accesses],
            layout=layout,
            total_instructions=int(inst[-1] + round(default_gap)),
        )

    def iter_blocks(self, n_accesses: int, rng: np.random.Generator,
                    layout: VirtualLayout | None = None,
                    fast_path: bool | None = None):
        """Stream the trace as ``(vaddr, is_write, dep, obj_id, gaps)``
        column blocks totalling exactly ``n_accesses`` rows.

        This is the bounded-RSS entry point ``trace.chunked`` shards
        from; :meth:`build` is a concatenation of it.  Blocks are
        per-chunk on the reference path and larger batches on the
        kernel path — concatenated content is identical either way.
        """
        if n_accesses <= 0:
            raise ValueError("n_accesses must be positive")
        layout = layout if layout is not None else VirtualLayout()
        bases: list[int] = []
        ids: list[int] = []
        for b in self.behaviors:
            if b.segment is None:
                placed = layout.place(b.name, b.size_bytes, site=b.site)
                bases.append(placed.vbase)
                ids.append(placed.obj_id)
            else:
                seg = layout.segments[b.segment]
                if b.size_bytes > seg.size_bytes:
                    raise ValueError(
                        f"behaviour {b.name!r} larger than its segment")
                bases.append(seg.vbase)
                ids.append(seg.obj_id)

        from repro.trace import kernel
        fast = fast_path if fast_path is not None else fast_path_default()
        if fast and kernel.supported(self, rng):
            return kernel.iter_kernel_blocks(self, n_accesses, rng, bases, ids)
        return self._iter_reference(n_accesses, rng, bases, ids)

    def _iter_reference(self, n_accesses: int, rng: np.random.Generator,
                        bases: list[int], ids: list[int]):
        """The reference chunk loop, yielding one column block per chunk.

        This is the executable specification the kernel is pinned
        against — keep it scalar and obvious.
        """
        # Chunk-selection probability is weight/burst so that the *access*
        # share of each behaviour equals its weight (a chunk contributes
        # burst_mean accesses once selected).
        weights = np.asarray([b.weight for b in self.behaviors], dtype=float)
        bursts = np.asarray([b.burst_mean for b in self.behaviors], dtype=float)
        chunk_w = weights / bursts
        probs = chunk_w / chunk_w.sum()
        mean_burst = float(np.dot(probs, bursts))
        est_chunks = max(16, int(n_accesses / mean_burst * 1.6) + 8)

        chunk_obj = rng.choice(len(self.behaviors), size=est_chunks, p=probs)
        # Geometric burst lengths with the behaviour's own mean.
        u = rng.random(est_chunks)

        default_gap = max(1.0, 1000.0 / self.mem_per_ki)
        gap_means = [b.gap_mean if b.gap_mean is not None else default_gap
                     for b in self.behaviors]

        seq_cursor = [0] * len(self.behaviors)
        total = 0
        ci = 0
        while total < n_accesses:
            if ci >= est_chunks:  # re-draw when the estimate ran short
                chunk_obj = rng.choice(len(self.behaviors), size=est_chunks, p=probs)
                u = rng.random(est_chunks)
                ci = 0
            bi = int(chunk_obj[ci])
            b = self.behaviors[bi]
            # Inverse-CDF geometric with mean burst_mean (>= 1).
            p = 1.0 / b.burst_mean
            n = 1 + int(np.log(max(u[ci], 1e-12)) / np.log(1 - p)) if p < 1.0 else 1
            n = min(n, n_accesses - total, 4 * int(b.burst_mean) + 8)
            ci += 1
            if n <= 0:
                continue
            offsets = self._burst(b, bi, n, rng, seq_cursor)
            dp = b.effective_dep_prob
            vaddr = bases[bi] + offsets
            is_write = rng.random(n) < b.write_frac
            if dp >= 1.0:
                dep = np.ones(n, dtype=bool)
            elif dp <= 0.0:
                dep = np.zeros(n, dtype=bool)
            else:
                dep = rng.random(n) < dp
            obj_id = np.full(n, ids[bi], dtype=np.int32)
            # Per-burst instruction gaps with the behaviour's own density.
            gm = gap_means[bi]
            gaps = rng.geometric(1.0 / gm, size=n).astype(np.int64)
            total += n
            yield vaddr.astype(np.int64), is_write, dep, obj_id, gaps

    def _burst(self, b: ObjectBehavior, bi: int, n: int,
               rng: np.random.Generator, seq_cursor: list[int]) -> np.ndarray:
        ab = self.access_bytes
        if b.pattern == "seq":
            offs, seq_cursor[bi] = patterns.sequential_offsets(
                seq_cursor[bi], n, b.size_bytes, ab)
            return offs
        if b.pattern == "strided":
            offs, seq_cursor[bi] = patterns.strided_offsets(
                seq_cursor[bi], n, b.size_bytes, b.stride, ab)
            return offs
        if b.pattern == "rand":
            return patterns.random_offsets(rng, n, b.size_bytes, ab)
        if b.pattern == "chase":
            return patterns.chase_offsets(rng, n, b.size_bytes, ab)
        if b.pattern == "hotspot":
            return patterns.hotspot_offsets(
                rng, n, b.size_bytes, b.hot_fraction, b.hot_weight, ab)
        raise AssertionError(f"unhandled pattern {b.pattern}")
