"""Vectorized address-pattern generators.

Each generator returns byte *offsets inside an object* for one burst of
accesses.  They are pure numpy (no Python-level per-access work), per the
HPC guide's vectorization idiom.  Determinism comes from the caller's
``numpy.random.Generator``.

Pattern → microarchitectural consequence:

* ``sequential``/``strided`` — spatial locality, row-buffer hits, high MLP;
* ``random`` — no locality, row conflicts, still overlappable (high MLP);
* ``chase`` — random *and serially dependent*: each access's address comes
  from the previous load, so misses cannot overlap (MLP ≈ 1).  This is the
  latency-sensitive behaviour of mcf-style workloads;
* ``hotspot`` — Zipf-weighted page popularity: a small hot set that caches
  well plus a cold tail (gcc-style).
"""

from __future__ import annotations

import numpy as np


def _aligned(offsets: np.ndarray, size: int, align: int) -> np.ndarray:
    """Clamp into ``[0, size - align]`` and align down.

    The clamp ceiling is the last offset where a full ``align``-byte
    access still fits inside the object; objects smaller than one
    access collapse to offset 0.
    """
    out = np.minimum(offsets, max(0, size - align))
    return (out // align) * align


def sequential_offsets(start: int, n: int, size: int, access_bytes: int = 8
                       ) -> tuple[np.ndarray, int]:
    """Dense forward scan from ``start``; wraps at the object end.

    Returns (offsets, next_start) so the caller can continue the scan in
    the next burst — streaming applications sweep objects across bursts.
    """
    if size < access_bytes:
        raise ValueError("object smaller than one access")
    idx = start + np.arange(n, dtype=np.int64) * access_bytes
    span = (size // access_bytes) * access_bytes
    offsets = idx % span
    next_start = int((start + n * access_bytes) % span)
    return offsets, next_start


def strided_offsets(start: int, n: int, size: int, stride: int,
                    access_bytes: int = 8) -> tuple[np.ndarray, int]:
    """Fixed-stride scan (column walks, structure-of-array sweeps)."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    idx = start + np.arange(n, dtype=np.int64) * stride
    span = max(stride, (size // stride) * stride)
    offsets = idx % span
    offsets = _aligned(offsets, size, access_bytes)
    next_start = int((start + n * stride) % span)
    return offsets, next_start


def random_offsets(rng: np.random.Generator, n: int, size: int,
                   access_bytes: int = 8) -> np.ndarray:
    """Uniform random offsets (hash tables, sparse matrices)."""
    raw = rng.integers(0, max(1, size - access_bytes + 1), size=n, dtype=np.int64)
    return (raw // access_bytes) * access_bytes


def chase_offsets(rng: np.random.Generator, n: int, size: int,
                  access_bytes: int = 8) -> np.ndarray:
    """Pointer-chase offsets: random like :func:`random_offsets`.

    The *addresses* of a chase are indistinguishable from uniform random;
    the serial dependence lives in the ``dep`` flags the builder attaches.
    Kept as a separate function so workload specs read declaratively.
    """
    return random_offsets(rng, n, size, access_bytes)


def hotspot_offsets(rng: np.random.Generator, n: int, size: int,
                    hot_fraction: float = 0.1, hot_weight: float = 0.9,
                    access_bytes: int = 8) -> np.ndarray:
    """Bimodal popularity: ``hot_weight`` of accesses hit the first
    ``hot_fraction`` of the object, the rest spread uniformly.

    With a hot region smaller than the LLC this produces the low-MPKI,
    cache-friendly behaviour of compiler/vision bookkeeping structures.
    """
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0.0 <= hot_weight <= 1.0:
        raise ValueError("hot_weight must be in [0, 1]")
    hot_size = max(access_bytes, int(size * hot_fraction))
    in_hot = rng.random(n) < hot_weight
    offsets = np.empty(n, dtype=np.int64)
    n_hot = int(in_hot.sum())
    if n_hot:
        offsets[in_hot] = rng.integers(0, max(1, hot_size - access_bytes + 1),
                                       size=n_hot, dtype=np.int64)
    n_cold = n - n_hot
    if n_cold:
        offsets[~in_hot] = rng.integers(0, max(1, size - access_bytes + 1),
                                        size=n_cold, dtype=np.int64)
    return (offsets // access_bytes) * access_bytes
