"""Trace persistence: save/load :class:`AccessTrace` bundles.

Synthetic traces regenerate deterministically, but persistence matters
for two real workflows: (a) importing traces captured by external tools
(Pin, DynamoRIO, gem5) after converting them to the column format, and
(b) freezing a trace for byte-identical cross-machine comparisons.

Two on-disk shapes share one API, selected by the target path:

* ``*.npz`` — the v1 interchange format, a plain
  ``numpy.savez_compressed`` archive holding the five access columns
  plus a JSON-encoded layout, producible and consumable without this
  library.  Kept for external tooling; loading fully materializes.
* anything else — the v2 mmap-native *directory* format: one raw
  aligned ``.npy`` file per column plus a ``trace.json`` meta sidecar
  (written last, so its presence marks a complete entry).  Loading
  maps the columns with ``np.load(mmap_mode="r")`` and pages lazily,
  so a frozen trace costs no RSS until touched and concurrent readers
  share physical pages.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.cpu.hierarchy import SEG_CODE, SEG_GLOBAL, SEG_STACK
from repro.obs.registry import OBS
from repro.trace.events import (
    PAGE_BYTES,
    AccessTrace,
    PlacedObject,
    VirtualLayout,
    _page_ceil,
)

#: Version embedded in the v2 directory format's ``trace.json``.
FORMAT_VERSION = 2

#: Version embedded in legacy ``.npz`` bundles (unchanged, so archives
#: written by older releases and external converters stay readable).
NPZ_FORMAT_VERSION = 1

#: Meta sidecar of the v2 directory format.
TRACE_META_NAME = "trace.json"

#: Column name → required dtype.  External producers (Pin/DynamoRIO
#: converters, other languages) routinely emit int32 counters or uint8
#: flags; columns are coerced on load so kernels can keep assuming the
#: canonical dtypes.
COLUMN_DTYPES = {
    "inst": np.int64,
    "vaddr": np.int64,
    "is_write": np.bool_,
    "obj_id": np.int32,
    "dep": np.bool_,
}


def coerce_columns(columns: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Validate and dtype-coerce the five access columns.

    Raises ``ValueError`` naming the offending column when a column is
    missing, not 1-D, of unequal length, non-coercible (e.g. floats
    into ``inst``), or when ``inst`` is not monotonically non-decreasing
    (an unsorted instruction column silently corrupts episode
    segmentation downstream).
    """
    out: dict[str, np.ndarray] = {}
    n = None
    for name, dtype in COLUMN_DTYPES.items():
        if name not in columns:
            raise ValueError(f"trace column {name!r} is missing")
        col = np.asarray(columns[name])
        if col.ndim != 1:
            raise ValueError(
                f"trace column {name!r} must be 1-D, got shape {col.shape}")
        if n is None:
            n = len(col)
        elif len(col) != n:
            raise ValueError(
                f"trace column {name!r} has {len(col)} rows, "
                f"expected {n} (columns must be equal length)")
        if col.dtype != dtype:
            if not (np.issubdtype(col.dtype, np.integer)
                    or col.dtype == np.bool_):
                raise ValueError(
                    f"trace column {name!r} has non-integer dtype "
                    f"{col.dtype} (cannot coerce to {np.dtype(dtype)})")
            coerced = col.astype(dtype)
            if np.issubdtype(np.dtype(dtype), np.integer) \
                    and not np.array_equal(coerced, col):
                raise ValueError(
                    f"trace column {name!r} overflows {np.dtype(dtype)}")
            col = coerced
        out[name] = col
    if n and np.any(np.diff(out["inst"]) < 0):
        raise ValueError(
            "trace column 'inst' must be monotonically non-decreasing")
    return out


def layout_to_doc(layout: VirtualLayout) -> dict:
    """JSON-compatible description of a layout (objects + segments).

    Shared by the single-file trace format and the chunked shard
    manifests (:mod:`repro.trace.chunked`), so both round-trip layouts
    identically.
    """
    return {
        "objects": [
            {"name": o.name, "vbase": o.vbase, "size_bytes": o.size_bytes,
             "site": o.site}
            for o in layout.objects
        ],
        "segments": {
            str(seg_id): {"vbase": seg.vbase, "size_bytes": seg.size_bytes,
                          "name": seg.name}
            for seg_id, seg in layout.segments.items()
        },
    }


def layout_from_doc(doc: dict) -> VirtualLayout:
    """Rebuild a :class:`VirtualLayout` from :func:`layout_to_doc` output."""
    layout = VirtualLayout()
    for obj in doc["objects"]:
        placed = layout.place(obj["name"], obj["size_bytes"],
                              site=obj["site"])
        if placed.vbase != obj["vbase"]:
            # Layout packing changed since the trace was written;
            # rebuild the placement verbatim instead.  The packing
            # cursor must follow the rebuilt extent (never move
            # backwards), or a later place() could overlap it.
            rebuilt = PlacedObject(
                placed.obj_id, obj["name"], obj["vbase"],
                obj["size_bytes"], obj["site"])
            layout.objects[-1] = rebuilt
            layout._cursor = max(
                layout._cursor,
                _page_ceil(rebuilt.vend) + PAGE_BYTES)
            layout._ranges_dirty = True
    for seg_key, seg in doc["segments"].items():
        seg_id = int(seg_key)
        if seg_id in (SEG_STACK, SEG_CODE, SEG_GLOBAL):
            layout.segments[seg_id] = PlacedObject(
                seg_id, seg["name"], seg["vbase"], seg["size_bytes"])
            layout._ranges_dirty = True
    return layout


def save_trace(trace: AccessTrace, path: str | Path) -> None:
    """Write a trace to ``path``.

    A ``*.npz`` path gets the v1 single-file interchange bundle; any
    other path becomes a v2 mmap-native directory (columns as raw
    ``.npy`` files, ``trace.json`` meta written last).
    """
    path = Path(path)
    if path.suffix == ".npz":
        layout_doc = {
            "version": NPZ_FORMAT_VERSION,
            **layout_to_doc(trace.layout),
            "total_instructions": trace.total_instructions,
        }
        np.savez_compressed(
            path,
            inst=trace.inst,
            vaddr=trace.vaddr,
            is_write=trace.is_write,
            obj_id=trace.obj_id,
            dep=trace.dep,
            layout=np.frombuffer(json.dumps(layout_doc).encode(),
                                 dtype=np.uint8),
        )
        return
    path.mkdir(parents=True, exist_ok=True)
    pid = os.getpid()
    # Columns first, meta last: the sidecar marks completeness, so a
    # crash mid-write never leaves a readable half-trace.  np.save pads
    # its header to a 64-byte boundary, keeping the data aligned.
    for name in COLUMN_DTYPES:
        target = path / f"{name}.npy"
        tmp = target.with_name(f".{target.name}.{pid}.tmp.npy")
        np.save(tmp, np.ascontiguousarray(getattr(trace, name)))
        os.replace(tmp, target)
    meta = {
        "version": FORMAT_VERSION,
        **layout_to_doc(trace.layout),
        "total_instructions": trace.total_instructions,
    }
    target = path / TRACE_META_NAME
    tmp = target.with_name(f".{target.name}.{pid}.tmp")
    tmp.write_text(json.dumps(meta))
    os.replace(tmp, target)


def load_trace(path: str | Path) -> AccessTrace:
    """Read a trace written by :func:`save_trace` (either format).

    v2 directory entries are returned as lazily-paged mmap views; v1
    npz bundles decompress fully (and pass through
    :func:`coerce_columns` to normalize external dtype slop).
    """
    path = Path(path)
    meta_path = path / TRACE_META_NAME
    if path.is_dir() or meta_path.exists():
        doc = json.loads(meta_path.read_text())
        if doc.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {doc.get('version')!r}")
        layout = layout_from_doc(doc)
        cols = {}
        mapped = 0
        for name, dtype in COLUMN_DTYPES.items():
            arr = np.load(path / f"{name}.npy", mmap_mode="r")
            if arr.dtype != dtype or arr.ndim != 1:
                raise ValueError(
                    f"trace column {name!r} has dtype {arr.dtype} "
                    f"ndim {arr.ndim} (want {np.dtype(dtype)}, 1-D)")
            cols[name] = arr
            mapped += arr.nbytes
        OBS.add("data_plane.bytes_mapped", mapped)
        return AccessTrace(
            layout=layout,
            total_instructions=int(doc["total_instructions"]),
            **cols,
        )
    with np.load(path) as data:
        doc = json.loads(bytes(data["layout"]).decode())
        if doc.get("version") != NPZ_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {doc.get('version')!r}")
        layout = layout_from_doc(doc)
        cols = coerce_columns({name: data[name] for name in COLUMN_DTYPES})
        return AccessTrace(
            layout=layout,
            total_instructions=int(doc["total_instructions"]),
            **cols,
        )


def import_trace(path: str | Path, directory: str | Path, *,
                 chunk_accesses: int):
    """Import a saved/captured trace as a chunked store entry.

    The bounded-RSS on-ramp for external traces: a ``*.trace.npz``
    bundle (written by :func:`save_trace`, or converted from a Pin/
    DynamoRIO/gem5 capture into the same column format) is resharded
    into :class:`repro.trace.chunked.ChunkedTrace` shards under
    ``directory``, after which the cache filter can consume it window
    by window without ever holding the whole trace.  Columns pass
    through :func:`coerce_columns` on load, so external dtype slop is
    normalized before the shards are written.
    """
    from repro.trace import chunked

    return chunked.chunk_trace(load_trace(path), directory,
                               chunk_accesses=chunk_accesses)
