"""Trace persistence: save/load :class:`AccessTrace` as ``.npz`` bundles.

Synthetic traces regenerate deterministically, but persistence matters
for two real workflows: (a) importing traces captured by external tools
(Pin, DynamoRIO, gem5) after converting them to the column format, and
(b) freezing a trace for byte-identical cross-machine comparisons.

The format is a plain ``numpy.savez_compressed`` archive holding the
five access columns plus a JSON-encoded layout (objects, segments), so
it can be produced and consumed without this library.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.cpu.hierarchy import SEG_CODE, SEG_GLOBAL, SEG_STACK
from repro.trace.events import (
    PAGE_BYTES,
    AccessTrace,
    PlacedObject,
    VirtualLayout,
    _page_ceil,
)

FORMAT_VERSION = 1

#: Column name → required dtype.  External producers (Pin/DynamoRIO
#: converters, other languages) routinely emit int32 counters or uint8
#: flags; columns are coerced on load so kernels can keep assuming the
#: canonical dtypes.
COLUMN_DTYPES = {
    "inst": np.int64,
    "vaddr": np.int64,
    "is_write": np.bool_,
    "obj_id": np.int32,
    "dep": np.bool_,
}


def coerce_columns(columns: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Validate and dtype-coerce the five access columns.

    Raises ``ValueError`` naming the offending column when a column is
    missing, not 1-D, of unequal length, non-coercible (e.g. floats
    into ``inst``), or when ``inst`` is not monotonically non-decreasing
    (an unsorted instruction column silently corrupts episode
    segmentation downstream).
    """
    out: dict[str, np.ndarray] = {}
    n = None
    for name, dtype in COLUMN_DTYPES.items():
        if name not in columns:
            raise ValueError(f"trace column {name!r} is missing")
        col = np.asarray(columns[name])
        if col.ndim != 1:
            raise ValueError(
                f"trace column {name!r} must be 1-D, got shape {col.shape}")
        if n is None:
            n = len(col)
        elif len(col) != n:
            raise ValueError(
                f"trace column {name!r} has {len(col)} rows, "
                f"expected {n} (columns must be equal length)")
        if col.dtype != dtype:
            if not (np.issubdtype(col.dtype, np.integer)
                    or col.dtype == np.bool_):
                raise ValueError(
                    f"trace column {name!r} has non-integer dtype "
                    f"{col.dtype} (cannot coerce to {np.dtype(dtype)})")
            coerced = col.astype(dtype)
            if np.issubdtype(np.dtype(dtype), np.integer) \
                    and not np.array_equal(coerced, col):
                raise ValueError(
                    f"trace column {name!r} overflows {np.dtype(dtype)}")
            col = coerced
        out[name] = col
    if n and np.any(np.diff(out["inst"]) < 0):
        raise ValueError(
            "trace column 'inst' must be monotonically non-decreasing")
    return out


def layout_to_doc(layout: VirtualLayout) -> dict:
    """JSON-compatible description of a layout (objects + segments).

    Shared by the single-file trace format and the chunked shard
    manifests (:mod:`repro.trace.chunked`), so both round-trip layouts
    identically.
    """
    return {
        "objects": [
            {"name": o.name, "vbase": o.vbase, "size_bytes": o.size_bytes,
             "site": o.site}
            for o in layout.objects
        ],
        "segments": {
            str(seg_id): {"vbase": seg.vbase, "size_bytes": seg.size_bytes,
                          "name": seg.name}
            for seg_id, seg in layout.segments.items()
        },
    }


def layout_from_doc(doc: dict) -> VirtualLayout:
    """Rebuild a :class:`VirtualLayout` from :func:`layout_to_doc` output."""
    layout = VirtualLayout()
    for obj in doc["objects"]:
        placed = layout.place(obj["name"], obj["size_bytes"],
                              site=obj["site"])
        if placed.vbase != obj["vbase"]:
            # Layout packing changed since the trace was written;
            # rebuild the placement verbatim instead.  The packing
            # cursor must follow the rebuilt extent (never move
            # backwards), or a later place() could overlap it.
            rebuilt = PlacedObject(
                placed.obj_id, obj["name"], obj["vbase"],
                obj["size_bytes"], obj["site"])
            layout.objects[-1] = rebuilt
            layout._cursor = max(
                layout._cursor,
                _page_ceil(rebuilt.vend) + PAGE_BYTES)
            layout._ranges_dirty = True
    for seg_key, seg in doc["segments"].items():
        seg_id = int(seg_key)
        if seg_id in (SEG_STACK, SEG_CODE, SEG_GLOBAL):
            layout.segments[seg_id] = PlacedObject(
                seg_id, seg["name"], seg["vbase"], seg["size_bytes"])
            layout._ranges_dirty = True
    return layout


def save_trace(trace: AccessTrace, path: str | Path) -> None:
    """Write a trace to ``path`` (conventionally ``*.trace.npz``)."""
    layout_doc = {
        "version": FORMAT_VERSION,
        **layout_to_doc(trace.layout),
        "total_instructions": trace.total_instructions,
    }
    np.savez_compressed(
        Path(path),
        inst=trace.inst,
        vaddr=trace.vaddr,
        is_write=trace.is_write,
        obj_id=trace.obj_id,
        dep=trace.dep,
        layout=np.frombuffer(json.dumps(layout_doc).encode(), dtype=np.uint8),
    )


def load_trace(path: str | Path) -> AccessTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        doc = json.loads(bytes(data["layout"]).decode())
        if doc.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {doc.get('version')!r}")
        layout = layout_from_doc(doc)
        cols = coerce_columns({name: data[name] for name in COLUMN_DTYPES})
        return AccessTrace(
            layout=layout,
            total_instructions=int(doc["total_instructions"]),
            **cols,
        )


def import_trace(path: str | Path, directory: str | Path, *,
                 chunk_accesses: int):
    """Import a saved/captured trace as a chunked store entry.

    The bounded-RSS on-ramp for external traces: a ``*.trace.npz``
    bundle (written by :func:`save_trace`, or converted from a Pin/
    DynamoRIO/gem5 capture into the same column format) is resharded
    into :class:`repro.trace.chunked.ChunkedTrace` shards under
    ``directory``, after which the cache filter can consume it window
    by window without ever holding the whole trace.  Columns pass
    through :func:`coerce_columns` on load, so external dtype slop is
    normalized before the shards are written.
    """
    from repro.trace import chunked

    return chunked.chunk_trace(load_trace(path), directory,
                               chunk_accesses=chunk_accesses)
