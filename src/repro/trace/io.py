"""Trace persistence: save/load :class:`AccessTrace` as ``.npz`` bundles.

Synthetic traces regenerate deterministically, but persistence matters
for two real workflows: (a) importing traces captured by external tools
(Pin, DynamoRIO, gem5) after converting them to the column format, and
(b) freezing a trace for byte-identical cross-machine comparisons.

The format is a plain ``numpy.savez_compressed`` archive holding the
five access columns plus a JSON-encoded layout (objects, segments), so
it can be produced and consumed without this library.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.cpu.hierarchy import SEG_CODE, SEG_GLOBAL, SEG_STACK
from repro.trace.events import AccessTrace, PlacedObject, VirtualLayout

FORMAT_VERSION = 1


def save_trace(trace: AccessTrace, path: str | Path) -> None:
    """Write a trace to ``path`` (conventionally ``*.trace.npz``)."""
    layout_doc = {
        "version": FORMAT_VERSION,
        "objects": [
            {"name": o.name, "vbase": o.vbase, "size_bytes": o.size_bytes,
             "site": o.site}
            for o in trace.layout.objects
        ],
        "segments": {
            str(seg_id): {"vbase": seg.vbase, "size_bytes": seg.size_bytes,
                          "name": seg.name}
            for seg_id, seg in trace.layout.segments.items()
        },
        "total_instructions": trace.total_instructions,
    }
    np.savez_compressed(
        Path(path),
        inst=trace.inst,
        vaddr=trace.vaddr,
        is_write=trace.is_write,
        obj_id=trace.obj_id,
        dep=trace.dep,
        layout=np.frombuffer(json.dumps(layout_doc).encode(), dtype=np.uint8),
    )


def load_trace(path: str | Path) -> AccessTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        doc = json.loads(bytes(data["layout"]).decode())
        if doc.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {doc.get('version')!r}")
        layout = VirtualLayout()
        for obj in doc["objects"]:
            placed = layout.place(obj["name"], obj["size_bytes"],
                                  site=obj["site"])
            if placed.vbase != obj["vbase"]:
                # Layout packing changed since the trace was written;
                # rebuild the placement verbatim instead.
                layout.objects[-1] = PlacedObject(
                    placed.obj_id, obj["name"], obj["vbase"],
                    obj["size_bytes"], obj["site"])
                layout._ranges_dirty = True
        for seg_key, seg in doc["segments"].items():
            seg_id = int(seg_key)
            if seg_id in (SEG_STACK, SEG_CODE, SEG_GLOBAL):
                layout.segments[seg_id] = PlacedObject(
                    seg_id, seg["name"], seg["vbase"], seg["size_bytes"])
                layout._ranges_dirty = True
        return AccessTrace(
            inst=data["inst"],
            vaddr=data["vaddr"],
            is_write=data["is_write"],
            obj_id=data["obj_id"],
            dep=data["dep"],
            layout=layout,
            total_instructions=int(doc["total_instructions"]),
        )
