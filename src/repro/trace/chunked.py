"""Chunked traces: mmap-native column shards in a content-addressed store.

A monolithic :class:`~repro.trace.events.AccessTrace` holds five full-
length columns in memory — fine at the default fidelity, hostile at
tens of millions of accesses or when importing real captured traces.
:class:`ChunkedTrace` stores the same five columns as fixed-size
shards on disk and replays them window by window, so both trace
*generation* (shard-by-shard from ``TraceBuilder.iter_blocks``) and
cache *filtering*
(:meth:`~repro.cpu.hierarchy.CacheHierarchy.filter_chunked`) run in
bounded RSS while producing byte-identical results to the monolithic
path (pinned by ``tests/test_trace_chunked.py``).

Store format v2 writes each shard as raw aligned ``.npy`` column files
loaded with ``np.load(mmap_mode="r")`` — a window maps lazily off the
page cache instead of decompressing into private memory, so concurrent
readers of one entry share physical pages.  Legacy v1 entries
(``numpy.savez_compressed`` shards) stay readable in place; the
``shard_format`` manifest field tells the loader which shape an entry
has, and the version field keeps genuinely unknown formats out.

Store layout — one directory per trace, named by the SHA-256 of its
canonical key document (the :mod:`repro.sim.stream_store` economy
applied one stage earlier in the pipeline)::

    <store>/<digest>/shard-00000.inst.npy   # one file per column (v2)
    <store>/<digest>/shard-00000.vaddr.npy  # ... is_write/obj_id/dep
    <store>/<digest>/shard-00001.inst.npy
    <store>/<digest>/manifest.json          # written last = complete

Robustness rules mirror the stream store: every file is written to a
temp name and ``os.replace``d, the manifest is written only after all
shards (a crashed build leaves no manifest, so the entry reads as
absent), entries from other format versions are dropped silently, and
a shard that fails to load warns via ``OBS``, deletes the whole entry,
and raises :class:`CorruptTraceError` — callers rebuild and retry
(:func:`repro.sim.single.filtered_stream_chunked` does exactly that).

Module-level wiring follows the stream-store precedence: an explicit
:func:`configure` call, else ``REPRO_TRACE_STORE_DIR``, else
``<REPRO_CACHE_DIR>/traces``, else a process-lifetime temporary
directory (chunked traces must live *somewhere* on disk — that is the
point).
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import shutil
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro.obs.registry import OBS
from repro.trace.events import AccessTrace, VirtualLayout
from repro.trace.io import COLUMN_DTYPES, layout_from_doc, layout_to_doc
from repro.util.rng import ROOT_SEED

__all__ = [
    "ENV_DIR",
    "TRACE_STORE_VERSION",
    "ChunkedTrace",
    "CorruptTraceError",
    "TraceStore",
    "active",
    "build_chunked",
    "chunk_trace",
    "configure",
    "reset",
    "trace_key",
]

#: On-disk entry format; entries from other versions are dropped —
#: except v1 (npz shards), which stays readable in place.
TRACE_STORE_VERSION = 2

#: Versions :meth:`TraceStore.get` will serve.
READABLE_VERSIONS = (1, TRACE_STORE_VERSION)

#: Environment selection (inherited by sweep worker processes).
ENV_DIR = "REPRO_TRACE_STORE_DIR"

MANIFEST_NAME = "manifest.json"


class CorruptTraceError(RuntimeError):
    """A shard failed to load; the store entry has been deleted.

    Rebuilding the entry (same key) and retrying recovers — the
    chunked drivers in ``repro.sim.single`` do this automatically.
    """


def trace_key(app_name: str, input_name: str, n_accesses: int,
              chunk_accesses: int) -> dict:
    """Canonical key document for one synthetic chunked trace.

    ``chunk_accesses`` is part of the key: shard *content* is identical
    across shard sizes, but the files are laid out differently, so two
    sizes cannot share an entry.
    """
    return {
        "schema": "chunked-trace",
        "app": app_name,
        "input": input_name,
        "n_accesses": int(n_accesses),
        "chunk_accesses": int(chunk_accesses),
        "seed": ROOT_SEED,
    }


def _digest(key: dict) -> str:
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ChunkedTrace:
    """A trace stored as fixed-size column shards under one directory.

    Construct via :meth:`TraceStore.get`, :func:`build_chunked`, or
    :func:`chunk_trace` — the constructor trusts its manifest.  The
    layout (and with it ``resolve``/placement) is rebuilt from the
    manifest, so no monolithic columns are ever needed.
    """

    def __init__(self, directory: str | Path, manifest: dict):
        self.directory = Path(directory)
        self.n_accesses = int(manifest["n_accesses"])
        self.chunk_accesses = int(manifest["chunk_accesses"])
        self.total_instructions = int(manifest["total_instructions"])
        self.shard_rows = [int(r) for r in manifest["shard_rows"]]
        if sum(self.shard_rows) != self.n_accesses:
            raise ValueError(
                f"shard rows sum to {sum(self.shard_rows)}, manifest "
                f"says {self.n_accesses} accesses")
        # v1 manifests predate the field and always hold npz shards.
        self.shard_format = manifest.get("shard_format", "npz")
        if self.shard_format not in ("npz", "npy"):
            raise ValueError(
                f"unknown shard format {self.shard_format!r}")
        self.layout = layout_from_doc(manifest["layout"])

    def __len__(self) -> int:
        return self.n_accesses

    @property
    def n_shards(self) -> int:
        return len(self.shard_rows)

    def shard_path(self, i: int) -> Path:
        """A representative file of shard ``i`` (the whole npz in v1,
        the ``inst`` column in v2) — damage it and the shard is gone."""
        if self.shard_format == "npz":
            return self.directory / f"shard-{i:05d}.npz"
        return self.column_path(i, "inst")

    def column_path(self, i: int, name: str) -> Path:
        return self.directory / f"shard-{i:05d}.{name}.npy"

    def windows(self):
        """Yield one :class:`AccessTrace` window per shard, in order.

        Windows share this trace's layout; ``inst`` carries *global*
        cumulative instruction counts, so windowed consumers see the
        exact rows a monolithic build would hold.  A shard that fails
        to load deletes the entry and raises
        :class:`CorruptTraceError` (rebuild + retry to recover).
        """
        for i in range(self.n_shards):
            yield self._load_shard(i)

    def _load_shard(self, i: int) -> AccessTrace:
        path = self.shard_path(i)
        try:
            if self.shard_format == "npy":
                # v2: map each column read-only; pages fault in lazily
                # and are shared machine-wide through the page cache.
                cols = {}
                mapped = 0
                for name in COLUMN_DTYPES:
                    arr = np.load(self.column_path(i, name), mmap_mode="r")
                    cols[name] = arr
                    mapped += arr.nbytes
                OBS.add("data_plane.bytes_mapped", mapped)
            else:
                with np.load(path) as data:
                    cols = {name: data[name] for name in COLUMN_DTYPES}
            n = self.shard_rows[i]
            for name, dtype in COLUMN_DTYPES.items():
                col = cols[name]
                if col.dtype != dtype or col.shape != (n,):
                    raise ValueError(
                        f"column {name!r} has shape {col.shape} dtype "
                        f"{col.dtype} (want ({n},) {np.dtype(dtype)})")
        except (FileNotFoundError, ValueError, KeyError, TypeError,
                OSError, EOFError, zipfile.BadZipFile) as exc:
            OBS.warn(f"trace store: corrupt shard {path.name} in "
                     f"{self.directory.name} ({type(exc).__name__}: {exc});"
                     f" entry deleted")
            OBS.add("trace_store.corrupt")
            shutil.rmtree(self.directory, ignore_errors=True)
            raise CorruptTraceError(str(path)) from exc
        return AccessTrace(layout=self.layout,
                           total_instructions=self.total_instructions,
                           **cols)

    def materialize(self) -> AccessTrace:
        """Concatenate every shard into one monolithic trace.

        For tests and small traces only — this is exactly the RSS cost
        chunking exists to avoid.
        """
        windows = list(self.windows())
        return AccessTrace(
            inst=np.concatenate([w.inst for w in windows]),
            vaddr=np.concatenate([w.vaddr for w in windows]),
            is_write=np.concatenate([w.is_write for w in windows]),
            obj_id=np.concatenate([w.obj_id for w in windows]),
            dep=np.concatenate([w.dep for w in windows]),
            layout=self.layout,
            total_instructions=self.total_instructions,
        )


# ---- writing ----------------------------------------------------------------


class _Resharder:
    """Accumulate variable-size column blocks, emit fixed-size shards."""

    def __init__(self, directory: Path, chunk_accesses: int):
        self.directory = directory
        self.chunk = chunk_accesses
        self.bufs: dict[str, list[np.ndarray]] = \
            {name: [] for name in COLUMN_DTYPES}
        self.buffered = 0
        self.shard_rows: list[int] = []

    def push(self, cols: dict[str, np.ndarray]) -> None:
        n = len(cols["inst"])
        if n == 0:
            return
        for name, dtype in COLUMN_DTYPES.items():
            self.bufs[name].append(cols[name].astype(dtype, copy=False))
        self.buffered += n
        while self.buffered >= self.chunk:
            self._emit(self.chunk)

    def finish(self) -> list[int]:
        if self.buffered:
            self._emit(self.buffered)
        return self.shard_rows

    def _emit(self, rows: int) -> None:
        stem = f"shard-{len(self.shard_rows):05d}"
        pid = os.getpid()
        for name in COLUMN_DTYPES:
            whole = np.concatenate(self.bufs[name])
            self.bufs[name] = [whole[rows:]] if rows < len(whole) else []
            # Raw .npy per column: np.save pads the header to a 64-byte
            # boundary, so readers can map the data aligned.
            target = self.directory / f"{stem}.{name}.npy"
            tmp = target.with_name(f".{target.name}.{pid}.tmp.npy")
            np.save(tmp, np.ascontiguousarray(whole[:rows]))
            os.replace(tmp, target)
        self.shard_rows.append(rows)
        self.buffered -= rows


def _publish(tmp: Path, final: Path) -> None:
    """Move a fully-built entry directory into place.

    A concurrent builder may have won the race; their entry is
    interchangeable (content-addressed), so ours is discarded.
    """
    try:
        os.rename(tmp, final)
    except OSError:
        shutil.rmtree(tmp, ignore_errors=True)
        if not (final / MANIFEST_NAME).exists():
            raise


def _write_entry(directory: str | Path, chunk_accesses: int,
                 layout: VirtualLayout, total_instructions,
                 fill, key: dict | None) -> ChunkedTrace:
    """Build one store entry atomically; ``fill(resharder)`` streams rows.

    ``total_instructions`` may be a zero-arg callable, evaluated after
    ``fill`` ran — generation only knows the final instruction count
    once the last block has streamed through.
    """
    from repro import __version__

    if chunk_accesses <= 0:
        raise ValueError(
            f"chunk_accesses must be positive, got {chunk_accesses}")
    final = Path(directory)
    final.parent.mkdir(parents=True, exist_ok=True)
    tmp = final.parent / f".{final.name}.{os.getpid()}.tmp"
    shutil.rmtree(tmp, ignore_errors=True)
    tmp.mkdir()
    try:
        sharder = _Resharder(tmp, chunk_accesses)
        fill(sharder)
        shard_rows = sharder.finish()
        if callable(total_instructions):
            total_instructions = total_instructions()
        manifest = {
            "version": TRACE_STORE_VERSION,
            "repro_version": __version__,
            "key": key,
            "shard_format": "npy",
            "n_accesses": sum(shard_rows),
            "chunk_accesses": int(chunk_accesses),
            "shard_rows": shard_rows,
            "total_instructions": int(total_instructions),
            "layout": layout_to_doc(layout),
        }
        # Manifest last: its presence marks the entry complete.
        mtmp = tmp / f".{MANIFEST_NAME}.tmp"
        mtmp.write_text(json.dumps(manifest))
        os.replace(mtmp, tmp / MANIFEST_NAME)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    shutil.rmtree(final, ignore_errors=True)
    _publish(tmp, final)
    OBS.add("trace_store.store")
    return ChunkedTrace(final, manifest)


def build_chunked(builder, n_accesses: int, rng: np.random.Generator,
                  directory: str | Path, *, chunk_accesses: int,
                  layout: VirtualLayout | None = None,
                  fast_path: bool | None = None,
                  key: dict | None = None) -> ChunkedTrace:
    """Generate a chunked trace shard-by-shard from a ``TraceBuilder``.

    Streams ``builder.iter_blocks`` (kernel or reference engine per
    ``fast_path``) through a resharding accumulator, threading the
    cumulative instruction counter across blocks, so peak RSS is one
    shard plus one generator block — never the whole trace.  Content
    is byte-identical to ``builder.build`` with the same arguments:
    the excess rows of the final burst are dropped exactly as
    ``build`` truncates them, and the generator is always drained so
    the caller's ``rng`` finishes in the identical end state.
    """
    layout = layout if layout is not None else VirtualLayout()
    default_gap = max(1.0, 1000.0 / builder.mem_per_ki)
    carry = {"inst": 0, "total": 0}

    def fill(sharder: _Resharder) -> None:
        for vaddr, is_write, dep, obj_id, gaps in builder.iter_blocks(
                n_accesses, rng, layout=layout, fast_path=fast_path):
            take = min(len(vaddr), n_accesses - carry["total"])
            if take <= 0:
                continue  # drain: the kernel commits rng state at the end
            inst = np.cumsum(gaps[:take]) + carry["inst"]
            carry["inst"] = int(inst[-1])
            carry["total"] += take
            sharder.push({"inst": inst, "vaddr": vaddr[:take],
                          "is_write": is_write[:take],
                          "obj_id": obj_id[:take], "dep": dep[:take]})

    return _write_entry(directory, chunk_accesses, layout,
                        lambda: carry["inst"] + round(default_gap),
                        fill, key)


def chunk_trace(trace: AccessTrace, directory: str | Path, *,
                chunk_accesses: int, key: dict | None = None) -> ChunkedTrace:
    """Reshard an in-memory trace into a chunked store entry.

    The import path for external traces: :func:`repro.trace.io
    .import_trace` loads a captured ``*.trace.npz`` and hands it here.
    """
    def fill(sharder: _Resharder) -> None:
        n = len(trace)
        for s in range(0, n, chunk_accesses):
            e = min(s + chunk_accesses, n)
            sharder.push({"inst": trace.inst[s:e],
                          "vaddr": trace.vaddr[s:e],
                          "is_write": trace.is_write[s:e],
                          "obj_id": trace.obj_id[s:e],
                          "dep": trace.dep[s:e]})

    return _write_entry(directory, chunk_accesses, trace.layout,
                        trace.total_instructions, fill, key)


# ---- the store --------------------------------------------------------------


class TraceStore:
    """Content-addressed ``trace_key -> ChunkedTrace`` directory store."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)

    def entry_dir(self, key: dict) -> Path:
        return self.directory / _digest(key)

    def get(self, key: dict) -> ChunkedTrace | None:
        """Stored trace for ``key``, or ``None`` (= build it).

        A missing manifest (absent entry, or a build that died before
        publishing) reads as a miss; an unreadable or version-stale
        entry is deleted and reads as a miss.
        """
        entry = self.entry_dir(key)
        path = entry / MANIFEST_NAME
        try:
            manifest = json.loads(path.read_text())
        except FileNotFoundError:
            OBS.add("trace_store.miss")
            return None
        except (ValueError, OSError) as exc:
            OBS.warn(f"trace store: corrupt manifest {entry.name} "
                     f"({type(exc).__name__}: {exc}); rebuilding")
            OBS.add("trace_store.corrupt")
            shutil.rmtree(entry, ignore_errors=True)
            return None
        if manifest.get("version") not in READABLE_VERSIONS:
            # A genuinely unknown (newer, or pre-v1) format after an
            # upgrade — drop it quietly and rebuild.
            shutil.rmtree(entry, ignore_errors=True)
            OBS.add("trace_store.stale")
            return None
        if manifest.get("version") != TRACE_STORE_VERSION:
            # v1 npz shards: served in place (no rewrite — resharding
            # a large entry on read would defeat the bounded-RSS point;
            # it ages out via normal rebuild/eviction instead).
            OBS.add("trace_store.legacy_hit")
        try:
            trace = ChunkedTrace(entry, manifest)
        except (KeyError, TypeError, ValueError) as exc:
            OBS.warn(f"trace store: bad manifest {entry.name} "
                     f"({type(exc).__name__}: {exc}); rebuilding")
            OBS.add("trace_store.corrupt")
            shutil.rmtree(entry, ignore_errors=True)
            return None
        OBS.add("trace_store.hit")
        return trace

    def build(self, key: dict, builder, n_accesses: int,
              rng: np.random.Generator, *,
              fast_path: bool | None = None) -> ChunkedTrace:
        """Build (and publish) the entry for a synthetic-trace key."""
        return build_chunked(builder, n_accesses, rng, self.entry_dir(key),
                             chunk_accesses=key["chunk_accesses"],
                             fast_path=fast_path, key=key)

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for p in self.directory.iterdir()
                   if (p / MANIFEST_NAME).exists())


# ---- module-level wiring ---------------------------------------------------

_UNSET = object()
_override: object = _UNSET
_env_store: TraceStore | None = None
_tmp_store: TraceStore | None = None


def configure(directory: str | Path | None) -> TraceStore | None:
    """Select the process-wide trace store.

    ``directory=None`` drops the explicit choice — the environment (or
    the temp-dir fallback) decides again.  Unlike the stream store, a
    chunked trace cannot be "disabled": the shards must live somewhere.
    """
    global _override
    _override = None if directory is None else TraceStore(directory)
    return _override  # type: ignore[return-value]


def reset() -> None:
    """Drop explicit configuration; the environment decides again."""
    global _override, _env_store
    _override = _UNSET
    _env_store = None


def active() -> TraceStore:
    """The store chunked builds land in (never ``None``).

    Precedence: explicit :func:`configure` call, else
    ``REPRO_TRACE_STORE_DIR``, else ``<REPRO_CACHE_DIR>/traces``, else
    a process-lifetime temporary directory (removed at exit).
    """
    global _env_store, _tmp_store
    if _override is not _UNSET and _override is not None:
        return _override  # type: ignore[return-value]
    env = os.environ.get(ENV_DIR)
    if env:
        directory = Path(env)
    else:
        base = os.environ.get("REPRO_CACHE_DIR")
        if base:
            directory = Path(base) / "traces"
        else:
            if _tmp_store is None:
                tmp = tempfile.mkdtemp(prefix="repro-traces-")
                atexit.register(shutil.rmtree, tmp, ignore_errors=True)
                _tmp_store = TraceStore(tmp)
            return _tmp_store
    if _env_store is None or _env_store.directory != directory:
        _env_store = TraceStore(directory)
    return _env_store
