"""Tests for the set-associative cache and the L1+L2 hierarchy."""

import numpy as np
import pytest

from repro.cpu.cache import SetAssocCache
from repro.cpu.hierarchy import (
    CacheHierarchy,
    KIND_LOAD,
    KIND_STORE,
    KIND_WRITEBACK,
    SEG_STACK,
)
from repro.trace.builder import ObjectBehavior, TraceBuilder
from repro.util.rng import stream
from repro.util.units import KIB, MIB


class TestSetAssocCache:
    def test_geometry(self):
        c = SetAssocCache(64 * KIB, 2)
        assert c.n_sets == 512
        assert c.line_bytes == 64

    def test_cold_miss_then_hit(self):
        c = SetAssocCache(4096, 2)
        hit, _ = c.access(0, False)
        assert not hit
        hit, _ = c.access(8, False)  # same line
        assert hit

    def test_line_granularity(self):
        c = SetAssocCache(4096, 2)
        c.access(0, False)
        assert c.access(63, False)[0]
        assert not c.access(64, False)[0]

    def test_lru_eviction_order(self):
        c = SetAssocCache(2 * 64, 2, line_bytes=64)  # 1 set, 2 ways
        c.access(0, False)
        c.access(64, False)
        c.access(0, False)          # touch line 0 -> MRU
        _, evicted = c.access(128, False)
        assert evicted is not None
        assert evicted.line_addr == 64  # the LRU victim

    def test_dirty_writeback_on_eviction(self):
        c = SetAssocCache(2 * 64, 2, line_bytes=64)
        c.access(0, True)  # dirty
        c.access(64, False)
        _, evicted = c.access(128, False)
        assert evicted.line_addr == 0
        assert evicted.dirty

    def test_clean_eviction_not_dirty(self):
        c = SetAssocCache(2 * 64, 2, line_bytes=64)
        c.access(0, False)
        c.access(64, False)
        _, evicted = c.access(128, False)
        assert not evicted.dirty

    def test_write_hit_marks_dirty(self):
        c = SetAssocCache(2 * 64, 2, line_bytes=64)
        c.access(0, False)
        c.access(0, True)  # now dirty
        c.access(64, False)
        _, evicted = c.access(128, False)
        assert evicted.dirty

    def test_occupancy_never_exceeds_assoc(self):
        c = SetAssocCache(4 * 64, 4, line_bytes=64)
        for i in range(20):
            c.access(i * 4 * 64, False)  # all same set
        assert all(len(s) <= 4 for s in c._sets)

    def test_fill_no_stat_change(self):
        c = SetAssocCache(4096, 2)
        c.fill(0)
        assert c.n_accesses == 0
        assert c.contains(0)

    def test_flush_returns_dirty_lines(self):
        c = SetAssocCache(4096, 2)
        c.access(0, True)
        c.access(64, False)
        victims = c.flush()
        assert [v.line_addr for v in victims] == [0]
        assert not c.contains(0)

    def test_miss_rate(self):
        c = SetAssocCache(4096, 2)
        c.access(0, False)
        c.access(0, False)
        assert c.miss_rate == pytest.approx(0.5)

    def test_working_set_larger_than_cache_thrashes(self):
        c = SetAssocCache(8 * KIB, 2)
        # Cyclic sweep over 4x the capacity: LRU worst case, ~0 hits.
        for _ in range(3):
            for a in range(0, 32 * KIB, 64):
                c.access(a, False)
        assert c.miss_rate > 0.99

    def test_working_set_smaller_than_cache_hits(self):
        c = SetAssocCache(64 * KIB, 2)
        for _ in range(3):
            for a in range(0, 16 * KIB, 64):
                c.access(a, False)
        assert c.n_hits > c.n_misses

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssocCache(1000, 2)  # not a power of two
        with pytest.raises(ValueError):
            SetAssocCache(64, 128)  # smaller than one set


class TestResidentAccessors:
    """The vector-friendly state accessors the parity harness uses."""

    def test_resident_arrays_orders_lru_to_mru(self):
        c = SetAssocCache(2 * 64, 2, line_bytes=64)  # 1 set, 2 ways
        c.access(0, False)
        c.access(64, False)
        c.access(0, True)           # line 0 -> MRU (and dirty)
        addrs, dirty = c.resident_arrays()
        assert addrs.tolist() == [64, 0]    # LRU first
        assert dirty.tolist() == [False, True]

    def test_resident_arrays_set_major(self):
        c = SetAssocCache(4 * 64, 2, line_bytes=64)  # 2 sets
        c.access(64, True)          # set 1
        c.access(0, False)          # set 0
        addrs, dirty = c.resident_arrays()
        assert addrs.tolist() == [0, 64]    # set order, not access order
        assert dirty.tolist() == [False, True]

    def test_resident_arrays_empty(self):
        addrs, dirty = SetAssocCache(4096, 2).resident_arrays()
        assert len(addrs) == 0 and len(dirty) == 0
        assert addrs.dtype == np.int64 and dirty.dtype == bool

    def test_contains_many_matches_scalar_contains(self):
        c = SetAssocCache(4096, 2)
        rng = stream("tests", "contains_many")
        touched = rng.integers(0, 16 * KIB, size=64)
        for a in touched.tolist():
            c.access(a, False)
        probes = np.arange(0, 16 * KIB, 64, dtype=np.int64) + 3
        mask = c.contains_many(probes)
        assert mask.tolist() == [c.contains(int(a)) for a in probes]

    def test_contains_many_no_lru_side_effects(self):
        c = SetAssocCache(2 * 64, 2, line_bytes=64)
        c.access(0, False)
        c.access(64, False)
        c.contains_many(np.array([0]))      # must NOT touch line 0 to MRU
        _, evicted = c.access(128, False)
        assert evicted.line_addr == 0       # still the LRU victim

    def test_install_lines_round_trips_state(self):
        src = SetAssocCache(4 * KIB, 4)
        rng = stream("tests", "install")
        for a, w in zip(rng.integers(0, 32 * KIB, size=200).tolist(),
                        (rng.random(200) < 0.3).tolist()):
            src.access(int(a), bool(w))
        dst = SetAssocCache(4 * KIB, 4)
        dst.install_lines(*src.resident_arrays())
        a1, d1 = src.resident_arrays()
        a2, d2 = dst.resident_arrays()
        # Same lines, same dirtiness, same recency order.
        assert np.array_equal(a1, a2) and np.array_equal(d1, d2)
        # And identical future behaviour: same victim on a conflict miss.
        _, ev_src = src.access(0, False)
        _, ev_dst = dst.access(0, False)
        assert ev_src == ev_dst

    def test_flush_matches_resident_dirty_lines(self):
        c = SetAssocCache(4096, 2)
        c.access(0, True)
        c.access(64, False)
        c.access(128, True)
        addrs, dirty = c.resident_arrays()
        expected = sorted(addrs[dirty].tolist())
        victims = sorted(v.line_addr for v in c.flush())
        assert victims == expected == [0, 128]
        assert all(len(s) == 0 for s in c._sets)


class TestCacheHierarchy:
    def _trace(self, behaviors, n=20_000, key="h"):
        return TraceBuilder(behaviors).build(n, stream("tests", key))

    def test_filter_produces_stream_and_stats(self, tiny_trace):
        s, stats = CacheHierarchy().filter_trace(tiny_trace)
        assert len(s) > 0
        assert stats.l2_misses == int(s.demand_mask.sum())
        assert stats.total_instructions > 0

    def test_small_object_caches_well(self):
        b = [ObjectBehavior("small", 32 * KIB, 1.0, pattern="seq",
                            gap_mean=5, site=1)]
        s, stats = CacheHierarchy().filter_trace(self._trace(b))
        assert stats.l2_mpki < 0.5

    def test_big_random_object_misses(self):
        b = [ObjectBehavior("big", 8 * MIB, 1.0, pattern="rand",
                            gap_mean=5, site=1)]
        s, stats = CacheHierarchy().filter_trace(self._trace(b))
        assert stats.l2_mpki > 20

    def test_warmup_excludes_cold_misses(self):
        b = [ObjectBehavior("hot", 256 * KIB, 1.0, pattern="hotspot",
                            hot_fraction=0.5, hot_weight=1.0, gap_mean=5,
                            site=1)]
        t = self._trace(b)
        _, cold = CacheHierarchy().filter_trace(t, warmup_frac=0.0)
        _, warm = CacheHierarchy().filter_trace(t, warmup_frac=0.5)
        assert warm.l2_mpki < cold.l2_mpki

    def test_warmup_frac_validated(self, tiny_trace):
        with pytest.raises(ValueError):
            CacheHierarchy().filter_trace(tiny_trace, warmup_frac=1.0)

    def test_writebacks_attributed_to_owner(self):
        b = [ObjectBehavior("w", 4 * MIB, 1.0, pattern="strided", stride=256,
                            gap_mean=4, write_frac=1.0, site=1)]
        t = self._trace(b)
        s, stats = CacheHierarchy().filter_trace(t)
        wb = s.obj_id[s.kind == KIND_WRITEBACK]
        assert len(wb) > 0
        assert (wb == 0).all()  # single heap object -> obj_id 0

    def test_kinds_partition_stream(self, tiny_stream):
        kinds = set(np.unique(tiny_stream.kind).tolist())
        assert kinds <= {KIND_LOAD, KIND_STORE, KIND_WRITEBACK}
        assert KIND_LOAD in kinds

    def test_stream_inst_nondecreasing(self, tiny_stream):
        assert (np.diff(tiny_stream.inst) >= 0).all()

    def test_stream_mpki_matches_stats(self, tiny_trace):
        s, stats = CacheHierarchy().filter_trace(tiny_trace)
        assert s.mpki() == pytest.approx(stats.l2_mpki, rel=1e-6)

    def test_segment_stats_present(self, tiny_trace):
        # tiny_behaviors has no segments; add a stack behaviour.
        b = [ObjectBehavior("stk", 16 * KIB, 1.0, pattern="hotspot",
                            gap_mean=4, segment=SEG_STACK)]
        t = TraceBuilder(b).build(5000, stream("tests", "seg"))
        _, stats = CacheHierarchy().filter_trace(t)
        assert SEG_STACK in stats.per_object

    def test_per_object_counts_sum_to_accesses(self, tiny_trace):
        _, stats = CacheHierarchy().filter_trace(tiny_trace, warmup_frac=0.0)
        assert sum(v[0] for v in stats.per_object.values()) == len(tiny_trace)


def _stream_tuples(s):
    return [(a.dtype, a.tolist())
            for a in (s.inst, s.vline, s.obj_id, s.dep, s.kind)]


class TestWarmupBoundary:
    """The ``inst_offset`` edge cases, pinned on both filter engines."""

    def _trace(self, n, key="warm"):
        b = [ObjectBehavior("o", 1 * MIB, 1.0, pattern="rand",
                            gap_mean=5, site=1)]
        return TraceBuilder(b).build(n, stream("tests", key))

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_zero_warmup_keeps_trace_numbering(self, fast_path):
        t = self._trace(5000)
        s, stats = CacheHierarchy().filter_trace(
            t, warmup_frac=0.0, fast_path=fast_path)
        # No offset: the stream keeps the trace's own instruction counts
        # and the full trace length is the measured window.
        assert stats.total_instructions == int(t.inst[-1])
        # Every record carries a raw trace instruction count.
        assert len(s) > 0 and np.isin(s.inst, t.inst).all()

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_nonzero_warmup_offsets_numbering(self, fast_path):
        t = self._trace(5000)
        s, stats = CacheHierarchy().filter_trace(
            t, warmup_frac=0.5, fast_path=fast_path)
        boundary = int(t.inst[int(len(t) * 0.5) - 1])
        assert stats.total_instructions == int(t.inst[-1]) - boundary
        assert len(s) > 0 and int(s.inst.min()) >= 0

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_tiny_trace_flooring_equals_zero_warmup(self, fast_path):
        # 9 accesses at warmup_frac=0.1 floors to warm_until == 0: the
        # documented contract is exact warmup_frac=0.0 behaviour (no
        # exclusion window, no offset) — not a silent half-state.
        t = self._trace(9, key="tinywarm")
        assert int(len(t) * 0.1) == 0
        floored = CacheHierarchy().filter_trace(
            t, warmup_frac=0.1, fast_path=fast_path)
        explicit = CacheHierarchy().filter_trace(
            t, warmup_frac=0.0, fast_path=fast_path)
        assert _stream_tuples(floored[0]) == _stream_tuples(explicit[0])
        assert floored[0].total_instructions == explicit[0].total_instructions
        assert floored[1] == explicit[1]
