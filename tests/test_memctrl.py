"""Tests for the controller layer: address map, scheduler, channels."""

import pytest

from repro.memctrl.addrmap import GroupAddressMap, LINE_BYTES
from repro.memctrl.controller import ChannelController
from repro.memctrl.request import MemRequest
from repro.memctrl.scheduler import SCHEDULERS, fcfs_order, frfcfs_order
from repro.memctrl.system import ChannelGroup, MemorySystem
from repro.memdev.module import MemoryModule
from repro.memdev.presets import DDR3, HBM, LPDDR2, RLDRAM3
from repro.util.units import MIB


class TestGroupAddressMap:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_roundtrip(self, n):
        amap = GroupAddressMap(n)
        for gaddr in (0, 64, 100, 4096, 9_999_936):
            ch, local = amap.route(gaddr)
            assert amap.inverse(ch, local) == (gaddr // 64) * 64 + gaddr % 64

    def test_consecutive_lines_stripe_channels(self):
        """Every aligned 4-line block covers all four channels (order may
        be permuted by the anti-camping hash)."""
        amap = GroupAddressMap(4)
        for block in range(4):
            channels = {amap.route((block * 4 + i) * LINE_BYTES)[0]
                        for i in range(4)}
            assert channels == {0, 1, 2, 3}

    def test_pow2_strides_do_not_camp(self):
        """The reason the hash exists: every-4th/8th/16th-line streams
        still spread over multiple channels."""
        amap = GroupAddressMap(4)
        for stride_lines in (4, 8, 16, 64):
            chans = {amap.route(i * stride_lines * LINE_BYTES)[0]
                     for i in range(64)}
            assert len(chans) >= 2, stride_lines

    def test_offset_preserved(self):
        amap = GroupAddressMap(2)
        _, local = amap.route(64 + 17)
        assert local % 64 == 17

    def test_single_channel_identity(self):
        amap = GroupAddressMap(1)
        assert amap.route(12345) == (0, 12345)

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            GroupAddressMap(0)

    def test_inverse_validates_channel(self):
        with pytest.raises(ValueError):
            GroupAddressMap(2).inverse(5, 0)

    def test_local_addresses_dense(self):
        """Local line numbers are compact: line k -> k // n on its channel."""
        amap = GroupAddressMap(4)
        _, local = amap.route(7 * LINE_BYTES)
        assert local == (7 // 4) * LINE_BYTES


def _req(gaddr, issue=0, **kw):
    r = MemRequest(group=0, gaddr=gaddr, issue_cycle=issue, **kw)
    r.local_addr = gaddr
    return r


class TestSchedulers:
    def test_fcfs_preserves_issue_order(self):
        m = MemoryModule(DDR3, 16 * MIB)
        reqs = [_req(100 * 64, 5), _req(200 * 64, 1), _req(300 * 64, 3)]
        ordered = fcfs_order(m, reqs)
        assert [r.issue_cycle for r in ordered] == [1, 3, 5]

    def test_frfcfs_prefers_open_row(self):
        m = MemoryModule(DDR3, 16 * MIB)
        m.access(0, 0)  # open row 0 of bank 0
        far = _req(DDR3.effective_row_bytes * DDR3.n_banks * 8, issue=0)
        hit = _req(64, issue=10)  # same open row, younger
        ordered = frfcfs_order(m, [far, hit])
        assert ordered[0] is hit

    def test_frfcfs_reads_before_writebacks(self):
        m = MemoryModule(DDR3, 16 * MIB)
        wb = _req(0, issue=0, is_write=True, demand=False)
        rd = _req(64 * 999, issue=5)
        ordered = frfcfs_order(m, [wb, rd])
        assert ordered[0] is rd

    def test_frfcfs_loads_before_demand_stores(self):
        m = MemoryModule(DDR3, 16 * MIB)
        st = _req(0, issue=0, is_write=True, demand=True)
        ld = _req(64 * 999, issue=5, is_write=False, demand=True)
        ordered = frfcfs_order(m, [st, ld])
        assert ordered[0] is ld

    def test_frfcfs_degrades_to_fcfs_without_locality(self):
        m = MemoryModule(DDR3, 16 * MIB)
        reqs = [_req(64 * 1000 * (i + 1), issue=i) for i in range(4)]
        assert [r.issue_cycle for r in frfcfs_order(m, reqs)] == [0, 1, 2, 3]

    def test_registry(self):
        assert SCHEDULERS["frfcfs"] is frfcfs_order
        assert SCHEDULERS["fcfs"] is fcfs_order

    def test_frfcfs_row_hit_is_a_batch_snapshot(self):
        """Hit/miss classification is frozen when the batch arrives: a
        request targeting the row an earlier same-batch request is about
        to open still sorts — and pays — as a miss.  Pins the snapshot
        policy documented on :func:`frfcfs_order`, which the SoA fast
        path reproduces."""
        m = MemoryModule(DDR3, 16 * MIB)
        row_stride = (DDR3.effective_row_bytes * DDR3.n_banks
                      * DDR3.n_subchannels)
        b = _req(7 * row_stride, issue=0)        # row 7
        d = _req(9 * row_stride, issue=3)        # row 9, same bank
        a = _req(7 * row_stride + 64, issue=5)   # row 7 again
        assert [m.decode(r.local_addr) for r in (b, d, a)] == [
            (0, 0, 7), (0, 0, 9), (0, 0, 7)]
        # Every bank is closed at batch arrival, so the snapshot sorts
        # all three as misses and pure issue order wins: A does NOT jump
        # ahead of D to catch the row B is about to open.
        assert frfcfs_order(m, [a, d, b]) == [b, d, a]
        ChannelController(m).service_batch([a, d, b])
        # Served B, D, A: B opens row 7, D closes it for row 9, A pays a
        # full conflict reopening row 7 — no access was a row hit.
        assert [r.row_hit for r in (b, d, a)] == [False, False, False]
        assert b.done_cycle < d.done_cycle < a.done_cycle


class TestChannelController:
    def test_batch_fills_request_fields(self):
        ctl = ChannelController(MemoryModule(DDR3, 16 * MIB))
        reqs = [_req(i * 64, issue=0) for i in range(4)]
        ctl.service_batch(reqs)
        for r in reqs:
            assert r.done_cycle > 0
            assert r.service_cycles > 0
            assert r.latency == r.queue_cycles + r.service_cycles

    def test_counters(self):
        ctl = ChannelController(MemoryModule(DDR3, 16 * MIB))
        ctl.service_batch([_req(0), _req(64, issue=1)])
        assert ctl.n_served == 2
        assert ctl.mean_latency > 0

    def test_empty_batch_noop(self):
        ctl = ChannelController(MemoryModule(DDR3, 16 * MIB))
        ctl.service_batch([])
        assert ctl.n_served == 0


class TestMemorySystem:
    def test_describe_mentions_groups(self, hetero_system):
        desc = hetero_system.describe()
        assert "RLDRAM3" in desc and "HBM" in desc and "LPDDR2" in desc

    def test_group_lookup(self, hetero_system):
        assert hetero_system.group("lat").timing is RLDRAM3
        assert hetero_system.group("bw").timing is HBM
        assert hetero_system.group("pow").timing is LPDDR2

    def test_modules_flattened(self, hetero_system):
        assert len(hetero_system.modules) == 4  # 1 RL + 1 HBM + 2 LP

    def test_capacity_sums(self, hetero_system):
        assert hetero_system.capacity_bytes == (8 + 16 + 2 * 16) * MIB

    def test_requests_route_to_right_group(self, hetero_system):
        r_lat = MemRequest(group=0, gaddr=0, issue_cycle=0)
        r_bw = MemRequest(group=1, gaddr=0, issue_cycle=0)
        hetero_system.service_batch([r_lat, r_bw])
        assert hetero_system.group("lat").modules[0].n_accesses == 1
        assert hetero_system.group("bw").modules[0].n_accesses == 1

    def test_lp_group_stripes_two_channels(self, hetero_system):
        reqs = [MemRequest(group=2, gaddr=i * 64, issue_cycle=0)
                for i in range(4)]
        hetero_system.service_batch(reqs)
        lp = hetero_system.group("pow")
        assert lp.modules[0].n_accesses == 2
        assert lp.modules[1].n_accesses == 2

    def test_summary_counts(self, ddr3_system):
        reqs = [MemRequest(group=0, gaddr=i * 64, issue_cycle=0)
                for i in range(10)]
        ddr3_system.service_batch(reqs)
        s = ddr3_system.summary(10_000)
        assert s.n_requests == 10
        assert s.total_latency_cycles > 0
        assert s.power_w > 0
        assert s.energy_j > 0

    def test_reset_stats(self, ddr3_system):
        ddr3_system.service_one(MemRequest(group=0, gaddr=0, issue_cycle=0))
        ddr3_system.reset_stats()
        assert ddr3_system.summary(1000).n_requests == 0

    def test_rl_group_serves_faster_than_lp(self, hetero_system):
        lat = {}
        for gname in ("lat", "pow"):
            gi = hetero_system.group_index[gname]
            reqs = [MemRequest(group=gi, gaddr=i * 64 * 997, issue_cycle=0)
                    for i in range(50)]
            hetero_system.service_batch(reqs)
            lat[gname] = sum(r.latency for r in reqs)
        assert lat["lat"] < lat["pow"]

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            MemorySystem({})

    def test_single_channel_group_rejected_zero(self):
        with pytest.raises(ValueError):
            ChannelGroup(DDR3, 0, 16 * MIB)
