"""Property-based parity: synthesis kernel vs reference chunk loop.

The vectorized trace-synthesis kernel (``repro.trace.kernel``) claims
bit-exactness with the reference builder loop — same columns, same
instruction counter, same final RNG state — for every supported
behaviour mix.  Hypothesis sweeps the behaviour space (all five
patterns, geometric gap means straddling numpy's two sampling paths,
burst/write/dependency parameters, multi-object mixes) and holds the
kernel to that claim.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import kernel
from repro.trace.builder import ObjectBehavior, TraceBuilder
from repro.util.rng import stream

#: gap_mean values straddle the numpy geometric sampler's two regimes:
#: the search path (p >= 1/3, i.e. gap_mean <= 3) and the
#: exponential-ziggurat path (p < 1/3), including the 3.0 boundary.
_GAP_MEANS = st.one_of(
    st.none(),
    st.sampled_from([1.0, 2.0, 3.0]),
    st.floats(min_value=3.0, max_value=40.0,
              allow_nan=False, allow_infinity=False),
)


@st.composite
def behaviors(draw, index=0):
    pattern = draw(st.sampled_from(
        ["seq", "strided", "rand", "chase", "hotspot"]))
    return ObjectBehavior(
        name=f"obj{index}",
        size_bytes=draw(st.integers(min_value=64, max_value=1 << 20)),
        weight=draw(st.floats(min_value=0.05, max_value=10.0)),
        pattern=pattern,
        burst_mean=draw(st.floats(min_value=1.0, max_value=128.0)),
        write_frac=draw(st.floats(min_value=0.0, max_value=1.0)),
        stride=draw(st.sampled_from([8, 24, 64, 256, 4096])),
        hot_fraction=draw(st.floats(min_value=0.01, max_value=1.0)),
        hot_weight=draw(st.floats(min_value=0.0, max_value=1.0)),
        dep_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        gap_mean=draw(_GAP_MEANS),
        site=index,
    )


@st.composite
def behavior_lists(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    return [draw(behaviors(index=i)) for i in range(n)]


def _build_both(behaviors_list, n_accesses, *, mem_per_ki=100.0):
    """Build the same trace twice (kernel, reference); return both plus
    the final RNG states."""
    out = []
    for fast in (True, False):
        builder = TraceBuilder(list(behaviors_list), mem_per_ki=mem_per_ki)
        rng = stream("parity", n_accesses)
        if fast:
            assert kernel.supported(builder, rng), \
                "strategy generated an unsupported config"
        trace = builder.build(n_accesses, rng, fast_path=fast)
        out.append((trace, rng.bit_generator.state))
    return out


def _assert_identical(fast, ref):
    (t_fast, s_fast), (t_ref, s_ref) = fast, ref
    np.testing.assert_array_equal(t_fast.inst, t_ref.inst)
    np.testing.assert_array_equal(t_fast.vaddr, t_ref.vaddr)
    np.testing.assert_array_equal(t_fast.is_write, t_ref.is_write)
    np.testing.assert_array_equal(t_fast.dep, t_ref.dep)
    np.testing.assert_array_equal(t_fast.obj_id, t_ref.obj_id)
    assert t_fast.total_instructions == t_ref.total_instructions
    assert s_fast == s_ref, "kernel consumed a different RNG word count"


class TestKernelParity:
    @given(behavior_lists(), st.integers(min_value=1, max_value=6000))
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_across_behavior_space(self, bs, n):
        fast, ref = _build_both(bs, n)
        _assert_identical(fast, ref)

    @given(behaviors(), st.floats(min_value=10.0, max_value=2000.0))
    @settings(max_examples=25, deadline=None)
    def test_mem_intensity_sweep(self, b, mem_per_ki):
        """The default inter-access gap depends on mem_per_ki; the
        kernel must reproduce the rounding at every intensity."""
        fast, ref = _build_both([b], 2000, mem_per_ki=mem_per_ki)
        _assert_identical(fast, ref)

    def test_single_access_trace(self):
        b = ObjectBehavior("one", 4096, 1.0, pattern="rand")
        fast, ref = _build_both([b], 1)
        _assert_identical(fast, ref)

    def test_zero_weight_object_skipped_identically(self):
        """A never-scheduled behaviour must not perturb either engine
        (the reference never evaluates it; supported() ignores it)."""
        bs = [ObjectBehavior("hot", 65536, 1.0, pattern="hotspot"),
              ObjectBehavior("dead", 4096, 0.0, pattern="seq")]
        fast, ref = _build_both(bs, 3000)
        _assert_identical(fast, ref)

    def test_chase_forces_dependencies(self):
        bs = [ObjectBehavior("list", 1 << 18, 1.0, pattern="chase",
                             dep_prob=0.0, gap_mean=25.0)]
        fast, ref = _build_both(bs, 4000)
        _assert_identical(fast, ref)
        assert bool(ref[0].dep[1:].all() or len(ref[0].dep) <= 1)


class TestKernelDispatch:
    def _builder(self):
        return TraceBuilder([ObjectBehavior("o", 8192, 1.0)])

    def test_unsupported_configs_decline(self):
        rng = stream("disp", 1)
        assert not kernel.supported(
            TraceBuilder([ObjectBehavior("tiny", 4, 1.0, pattern="seq")]),
            rng)
        assert not kernel.supported(
            TraceBuilder([ObjectBehavior("huge", 1 << 33, 1.0,
                                         pattern="rand")]), rng)
        assert not kernel.supported(
            self._builder(), np.random.Generator(np.random.MT19937(1)))

    def test_fast_path_false_uses_reference(self, monkeypatch):
        def boom(*a, **k):
            raise AssertionError("kernel invoked despite fast_path=False")
        monkeypatch.setattr(kernel, "iter_kernel_blocks", boom)
        self._builder().build(500, stream("disp", 2), fast_path=False)

    def test_kill_switch_env_disables_kernel(self, monkeypatch):
        def boom(*a, **k):
            raise AssertionError("kernel invoked despite REPRO_FAST_PATH=0")
        monkeypatch.setattr(kernel, "iter_kernel_blocks", boom)
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        self._builder().build(500, stream("disp", 3), fast_path=None)

    def test_default_dispatch_reaches_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
        called = {}
        real = kernel.iter_kernel_blocks

        def spy(*a, **k):
            called["yes"] = True
            return real(*a, **k)
        monkeypatch.setattr(kernel, "iter_kernel_blocks", spy)
        self._builder().build(500, stream("disp", 4), fast_path=None)
        assert called.get("yes")
