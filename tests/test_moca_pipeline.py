"""Tests for the profiler, framework, and placement policies."""

import numpy as np
import pytest

from repro.cpu.hierarchy import CacheHierarchy, SEG_STACK
from repro.moca.allocation import (
    CORE_STRIDE,
    HeterAppPolicy,
    HomogeneousPolicy,
    MocaPolicy,
    plan_placement,
)
from repro.moca.classify import Thresholds
from repro.moca.framework import MocaFramework
from repro.moca.profiler import (
    MemoryObjectProfiler,
    default_profiling_system,
    profile_app,
)
from repro.moca.naming import name_from_site
from repro.trace.builder import ObjectBehavior, TraceBuilder
from repro.trace.events import PAGE_BYTES
from repro.util.rng import stream
from repro.util.units import KIB, MIB
from repro.vm.allocator import OSPageAllocator
from repro.vm.heap import ObjectType
from repro.vm.pagetable import PageTable
from repro.vm.physmem import FramePool


@pytest.fixture
def profiled(tiny_trace):
    return MemoryObjectProfiler().profile_trace(tiny_trace, "tinyapp")


class TestProfiler:
    def test_every_heap_object_in_lut(self, profiled, tiny_trace):
        assert len(profiled.lut) == len(tiny_trace.layout.objects)

    def test_names_derived_from_sites(self, profiled):
        assert profiled.lut.get(name_from_site(1)) is not None
        assert profiled.lut.get(name_from_site(2)) is not None

    def test_chase_object_has_high_stall(self, profiled):
        chase = profiled.lut.get(name_from_site(1))
        streamy = profiled.lut.get(name_from_site(2))
        assert chase.stall_per_load_miss > streamy.stall_per_load_miss

    def test_hot_object_low_mpki(self, profiled):
        hot = profiled.lut.get(name_from_site(3))
        chase = profiled.lut.get(name_from_site(1))
        assert hot.llc_mpki < chase.llc_mpki / 5

    def test_sizes_recorded(self, profiled, tiny_trace):
        for obj in tiny_trace.layout.objects:
            assert profiled.lut.get(name_from_site(obj.site)).size_bytes \
                == obj.size_bytes

    def test_aggregates_match_lut(self, profiled):
        mpki, spm = profiled.lut.totals()
        assert profiled.app_mpki == pytest.approx(mpki)
        assert profiled.app_stall_per_miss == pytest.approx(spm)

    def test_profile_app_memoized(self):
        a = profile_app("sift", "train", 10_000)
        b = profile_app("sift", "train", 10_000)
        assert a is b

    def test_default_profiling_system_is_ddr3(self):
        sys = default_profiling_system()
        assert len(sys.groups) == 1
        assert sys.groups[0].timing.name == "DDR3"
        assert sys.groups[0].n_channels == 4


class TestFramework:
    def test_instrument_types_every_object(self, profiled):
        fw = MocaFramework()
        inst = fw.instrument("tinyapp", profiled)
        assert len(inst.types) == len(profiled.lut)

    def test_expected_classes(self, profiled):
        fw = MocaFramework()
        inst = fw.instrument("tinyapp", profiled)
        assert inst.type_of_site(1) == ObjectType.LAT    # chase
        assert inst.type_of_site(2) == ObjectType.BW     # stream
        assert inst.type_of_site(3) == ObjectType.POW    # hotspot

    def test_unprofiled_site_is_none(self, profiled):
        inst = MocaFramework().instrument("tinyapp", profiled)
        assert inst.type_of_site(999) is None

    def test_thresholds_change_classes(self, profiled):
        strict = MocaFramework(thresholds=Thresholds(thr_lat=1e9))
        inst = strict.instrument("tinyapp", profiled)
        assert all(t == ObjectType.POW for t in inst.types.values())

    def test_runtime_types_resolve_by_site(self, profiled, tiny_trace):
        fw = MocaFramework()
        inst = fw.instrument("tinyapp", profiled)
        types = fw.runtime_types(inst, tiny_trace)
        assert types[0] == ObjectType.LAT
        assert types[1] == ObjectType.BW

    def test_runtime_heat_positive_for_hot(self, profiled, tiny_trace):
        fw = MocaFramework()
        inst = fw.instrument("tinyapp", profiled)
        heat = fw.runtime_heat(inst, tiny_trace)
        assert heat[0] > 0

    def test_partition_histogram(self, profiled):
        inst = MocaFramework().instrument("tinyapp", profiled)
        hist = inst.partition_histogram()
        assert sum(hist.values()) == len(inst.types)


def _allocator(caps, roles):
    pools = {i: FramePool(c, group=i) for i, c in enumerate(caps)}
    return OSPageAllocator(pools, roles, PageTable())


HETERO_ROLES = {"lat": 0, "bw": 1, "pow": 2}


class TestPolicies:
    def test_homogeneous_single_group(self, tiny_stream):
        alloc = _allocator([64 * MIB], {"main": 0})
        plan = plan_placement([tiny_stream], HomogeneousPolicy(), alloc)
        assert (plan.groups[0] == 0).all()

    def test_heter_app_routes_whole_app(self, tiny_stream):
        alloc = _allocator([64 * MIB] * 3, HETERO_ROLES)
        plan = plan_placement([tiny_stream],
                              HeterAppPolicy([ObjectType.LAT]), alloc)
        assert (plan.groups[0] == 0).all()

    def test_heter_app_needs_types(self):
        with pytest.raises(ValueError):
            HeterAppPolicy([])

    def test_moca_routes_by_object(self, tiny_stream):
        policy = MocaPolicy([{0: ObjectType.LAT, 1: ObjectType.BW}])
        alloc = _allocator([64 * MIB] * 3, HETERO_ROLES)
        plan = plan_placement([tiny_stream], policy, alloc)
        g = plan.groups[0]
        obj = tiny_stream.obj_id
        assert (g[obj == 0] == 0).all()
        assert (g[obj == 1] == 1).all()
        assert (g[obj == 2] == 2).all()   # unmapped -> POW
        assert (g[obj == SEG_STACK] == 2).all()

    def test_moca_heat_priority_wins_contended_module(self, tiny_stream,
                                                      tiny_trace):
        """With RL big enough for only one object, the hotter one gets it."""
        types = [{0: ObjectType.LAT, 1: ObjectType.LAT}]
        small_rl = 5 * MIB  # each object is ~4 MiB
        cold_first = MocaPolicy(types, [{0: 0.1, 1: 5.0}])
        alloc = _allocator([small_rl, 64 * MIB, 64 * MIB], HETERO_ROLES)
        plan = plan_placement([tiny_stream], cold_first, alloc,
                              layouts=[tiny_trace.layout])
        g = plan.groups[0]
        obj = tiny_stream.obj_id
        assert (g[obj == 1] == 0).all()      # hotter object in RL
        assert (g[obj == 0] == 1).mean() > 0.5  # colder spilled to HBM

    def test_moca_heat_must_parallel_types(self):
        with pytest.raises(ValueError):
            MocaPolicy([{}], [{}, {}])

    def test_instantiation_order_ties(self, tiny_stream, tiny_trace):
        """Without priorities, earlier-instantiated objects claim the
        contended module (the Heter-App failure mode of Sec. VI-A)."""
        policy = HeterAppPolicy([ObjectType.LAT])
        alloc = _allocator([5 * MIB, 64 * MIB, 64 * MIB], HETERO_ROLES)
        plan = plan_placement([tiny_stream], policy, alloc,
                              layouts=[tiny_trace.layout])
        g = plan.groups[0]
        obj = tiny_stream.obj_id
        assert (g[obj == 0] == 0).all()       # first object holds RL
        assert (g[obj == 1] == 1).mean() > 0.5

    def test_eager_layout_allocation_consumes_extents(self, tiny_stream,
                                                      tiny_trace):
        alloc = _allocator([256 * MIB], {"main": 0})
        plan_placement([tiny_stream], HomogeneousPolicy(), alloc,
                       layouts=[tiny_trace.layout])
        expected = sum(len(r.pages()) for r in tiny_trace.layout.all_regions())
        assert alloc.stats.total_pages == expected

    def test_demand_mode_only_touched_pages(self, tiny_stream):
        alloc = _allocator([256 * MIB], {"main": 0})
        plan_placement([tiny_stream], HomogeneousPolicy(), alloc)
        touched = len(np.unique(tiny_stream.vline // PAGE_BYTES))
        assert alloc.stats.total_pages == touched

    def test_multicore_streams_isolated(self, tiny_stream):
        alloc = _allocator([512 * MIB], {"main": 0})
        plan = plan_placement([tiny_stream, tiny_stream],
                              HomogeneousPolicy(), alloc)
        # Same virtual addresses on two cores map to distinct frames.
        assert not np.array_equal(plan.gaddrs[0], plan.gaddrs[1])

    def test_layouts_length_checked(self, tiny_stream, tiny_trace):
        alloc = _allocator([256 * MIB], {"main": 0})
        with pytest.raises(ValueError):
            plan_placement([tiny_stream], HomogeneousPolicy(), alloc,
                           layouts=[tiny_trace.layout, tiny_trace.layout])

    def test_empty_streams_rejected(self):
        alloc = _allocator([MIB], {"main": 0})
        with pytest.raises(ValueError):
            plan_placement([], HomogeneousPolicy(), alloc)

    def test_core_stride_large_enough(self):
        assert CORE_STRIDE > (1 << 47)  # above the stack top
