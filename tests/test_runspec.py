"""Tests for RunSpec, the run() facade, and the retired aliases."""

import dataclasses

import pytest

from repro.sim.config import HETER_CONFIG1
from repro.sim.spec import RunSpec, run
from repro.util.rng import ROOT_SEED

N = 12_000


class TestValidation:
    def test_unknown_config(self):
        with pytest.raises(ValueError, match="unknown system config"):
            RunSpec("mcf", "Optane", "homogen", N)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            RunSpec("mcf", "Homogen-DDR3", "random", N)

    def test_nonpositive_accesses(self):
        with pytest.raises(ValueError, match="n_accesses"):
            RunSpec("mcf", "Homogen-DDR3", "homogen", 0)

    def test_unknown_input(self):
        with pytest.raises(ValueError, match="input"):
            RunSpec("mcf", "Homogen-DDR3", "homogen", N,
                    input_name="nonesuch")

    def test_bad_workload_name(self):
        with pytest.raises(ValueError):
            RunSpec("not-an-app-or-mix", "Homogen-DDR3", "homogen", N)

    def test_policies_constant_deprecated(self):
        # Kept for one release as a warning re-export of the stock trio;
        # the registry (repro.moca.policy) is the source of truth.
        from repro.sim import spec
        with pytest.deprecated_call():
            names = spec.POLICIES
        assert names == ("homogen", "heter-app", "moca")

    def test_policies_forwarded_from_package(self):
        import repro.sim
        with pytest.deprecated_call():
            names = repro.sim.POLICIES
        assert names == ("homogen", "heter-app", "moca")


class TestIdentity:
    def test_frozen_and_hashable(self):
        spec = RunSpec("mcf", "Homogen-DDR3", "homogen", N)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.policy = "moca"
        assert spec in {spec}

    def test_is_multi(self):
        assert not RunSpec("mcf", "Homogen-DDR3", "homogen", N).is_multi
        assert RunSpec("2L1B1N", "Homogen-DDR3", "homogen", N).is_multi

    def test_key_deterministic(self):
        a = RunSpec("mcf", "Heter-config1", "moca", N)
        b = RunSpec("mcf", "Heter-config1", "moca", N)
        assert a.key() == b.key()
        assert len(a.key()) == 64  # sha256 hex

    @pytest.mark.parametrize("other", [
        RunSpec("lbm", "Heter-config1", "moca", N),
        RunSpec("mcf", "Heter-config2", "moca", N),
        RunSpec("mcf", "Heter-config1", "heter-app", N),
        RunSpec("mcf", "Heter-config1", "moca", N + 1),
        RunSpec("mcf", "Heter-config1", "moca", N, input_name="ref2"),
    ])
    def test_key_covers_every_field(self, other):
        base = RunSpec("mcf", "Heter-config1", "moca", N)
        assert base.key() != other.key()

    def test_thresholds_in_key(self):
        from repro.moca.classify import Thresholds
        base = RunSpec("mcf", "Heter-config1", "moca", N)
        custom = RunSpec("mcf", "Heter-config1", "moca", N,
                         thresholds=Thresholds(2.0, 40.0))
        assert base.key() != custom.key()

    def test_canonical_embeds_config_hash(self):
        doc = RunSpec("mcf", "Heter-config1", "moca", N).canonical()
        assert doc["config"]["name"] == "Heter-config1"
        assert doc["config"]["hash"]
        other = RunSpec("mcf", "Homogen-DDR3", "moca", N).canonical()
        assert doc["config"]["hash"] != other["config"]["hash"]

    def test_system_config_resolves(self):
        spec = RunSpec("mcf", "Heter-config1", "moca", N)
        assert spec.system_config is HETER_CONFIG1

    def test_describe(self):
        assert RunSpec("mcf", "Heter-config1", "moca", N).describe() \
            == "mcf/Heter-config1/moca"


class TestRunFacade:
    def test_single_dispatch(self):
        m = run(RunSpec("sift", "Homogen-DDR3", "homogen", N))
        assert m.n_cores == 1
        assert m.workload == "sift"

    def test_multi_dispatch(self):
        m = run(RunSpec("1B3N", "Homogen-DDR3", "homogen", N))
        assert m.n_cores == 4

    def test_foreign_seed_rejected(self):
        spec = RunSpec("sift", "Homogen-DDR3", "homogen", N,
                       seed=ROOT_SEED + 1)
        with pytest.raises(ValueError, match="root seed"):
            run(spec)


class TestRemovedAliases:
    """run_single/run_multi finished their deprecation cycle in 1.1.0."""

    def test_run_single_removed_with_hint(self):
        import repro.sim.single as single
        with pytest.raises(AttributeError, match="repro.sim.run"):
            single.run_single

    def test_run_multi_removed_with_hint(self):
        import repro.sim.multi as multi
        with pytest.raises(AttributeError, match="repro.sim.run"):
            multi.run_multi
        # The multi hint also names the ad-hoc-config escape hatch that
        # run_multi used to provide.
        with pytest.raises(AttributeError, match="ALL_SYSTEMS"):
            multi.run_multi

    def test_from_import_raises_import_error(self):
        with pytest.raises(ImportError):
            from repro.sim.single import run_single  # noqa: F401
        with pytest.raises(ImportError):
            from repro.sim import run_multi  # noqa: F401

    def test_removed_from_top_level_package(self):
        import repro
        with pytest.raises(AttributeError, match="removed"):
            repro.run_single
        with pytest.raises(AttributeError, match="removed"):
            repro.run_multi
        assert "run_single" not in repro.__all__
        assert "run_multi" not in repro.__all__

    def test_make_policy_optionals_are_keyword_only(self):
        from repro.sim.single import make_policy
        with pytest.raises(TypeError):
            make_policy("moca", ["mcf"], "ref", N, None)


class TestPublicSurface:
    def test_top_level_exports(self):
        import repro
        for name in ("RunSpec", "run", "Fidelity", "FigureResult",
                     "single_sweep", "multi_sweep", "config_sweep"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_sim_exports_spec(self):
        from repro.sim import RunSpec as sim_spec, run as sim_run
        assert sim_spec is RunSpec and sim_run is run
