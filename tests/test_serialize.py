"""Tests for profile/instrumentation persistence."""

import json

import pytest

from repro.moca.classify import Thresholds
from repro.moca.framework import InstrumentedApp, MocaFramework
from repro.moca.lut import ObjectProfile, ProfileLUT
from repro.moca.naming import name_from_site
from repro.moca.profiler import MemoryObjectProfiler
from repro.moca.serialize import (
    FORMAT_VERSION,
    instrumented_from_dict,
    instrumented_to_dict,
    load_instrumented,
    load_lut,
    lut_from_dict,
    lut_to_dict,
    save_instrumented,
    save_lut,
)
from repro.vm.heap import ObjectType


@pytest.fixture
def lut(tiny_trace):
    return MemoryObjectProfiler().profile_trace(tiny_trace, "tinyapp").lut


@pytest.fixture
def instrumented(tiny_trace):
    fw = MocaFramework()
    profiled = MemoryObjectProfiler().profile_trace(tiny_trace, "tinyapp")
    return fw.instrument("tinyapp", profiled)


class TestLutRoundtrip:
    def test_dict_roundtrip_preserves_everything(self, lut):
        restored = lut_from_dict(lut_to_dict(lut))
        assert len(restored) == len(lut)
        for p in lut:
            q = restored.get(p.name)
            assert q is not None
            assert q.llc_misses == p.llc_misses
            assert q.stall_cycles == p.stall_cycles
            assert q.llc_mpki == pytest.approx(p.llc_mpki)
            assert q.label == p.label

    def test_file_roundtrip(self, lut, tmp_path):
        path = tmp_path / "mcf.lut.json"
        save_lut(lut, path)
        restored = load_lut(path)
        assert restored.app_name == lut.app_name
        assert len(restored) == len(lut)

    def test_json_is_plain(self, lut, tmp_path):
        path = tmp_path / "x.json"
        save_lut(lut, path)
        data = json.loads(path.read_text())
        assert data["kind"] == "profile-lut"
        assert data["version"] == FORMAT_VERSION

    def test_wrong_kind_rejected(self, lut):
        d = lut_to_dict(lut)
        d["kind"] = "something-else"
        with pytest.raises(ValueError, match="profile-lut"):
            lut_from_dict(d)

    def test_wrong_version_rejected(self, lut):
        d = lut_to_dict(lut)
        d["version"] = 999
        with pytest.raises(ValueError, match="version"):
            lut_from_dict(d)


class TestInstrumentedRoundtrip:
    def test_dict_roundtrip(self, instrumented):
        restored = instrumented_from_dict(instrumented_to_dict(instrumented))
        assert restored.app_name == instrumented.app_name
        assert restored.types == instrumented.types
        assert restored.thresholds == instrumented.thresholds

    def test_heat_preserved(self, instrumented):
        restored = instrumented_from_dict(instrumented_to_dict(instrumented))
        for name, h in instrumented.heat.items():
            if h > 0:
                assert restored.heat[name] == pytest.approx(h)

    def test_file_roundtrip_usable_for_policy(self, instrumented, tiny_trace,
                                              tmp_path):
        path = tmp_path / "app.moca.json"
        save_instrumented(instrumented, path)
        restored = load_instrumented(path)
        fw = MocaFramework()
        types = fw.runtime_types(restored, tiny_trace)
        assert types[0] == ObjectType.LAT

    def test_manual_document(self):
        doc = {
            "version": FORMAT_VERSION,
            "kind": "instrumented-app",
            "app": "handmade",
            "thresholds": {"thr_lat": 2.0, "thr_bw": 25.0},
            "objects": [
                {"frames": list(name_from_site(7).frames), "type": "lat",
                 "heat": 1.5},
            ],
        }
        app = instrumented_from_dict(doc)
        assert app.type_of_site(7) == ObjectType.LAT
        assert app.heat_of_site(7) == 1.5
        assert app.thresholds == Thresholds(2.0, 25.0)
