"""Tests for the fault-injection layer (``repro.faults``).

Covers plan validation and identity (cache-key separation from clean
runs), capacity faults on frame pools (offline/shrink/trigger/
overcommit), the dedicated exhaustion error, timing derating, LUT
drop/scramble determinism, and end-to-end faulted runs degrading
gracefully instead of crashing.
"""

import dataclasses

import pytest

from repro.faults import FaultPlan, SCENARIOS, apply_lut_faults, \
    apply_system_faults, arm_allocator
from repro.memdev.presets import DDR3
from repro.moca.profiler import profile_app
from repro.sim.config import HETER_CONFIG1, HOMOGEN_DDR3
from repro.sim.spec import RunSpec, run
from repro.vm.allocator import OSPageAllocator, OutOfFramesError
from repro.vm.heap import ObjectType
from repro.vm.pagetable import PageTable
from repro.vm.physmem import FramePool, OutOfMemory
from repro.util.units import MIB


def small_allocator(frames_per_pool: int = 8) -> OSPageAllocator:
    size = frames_per_pool * 4096
    pools = {i: FramePool(size, i, f"pool{i}") for i in range(3)}
    return OSPageAllocator(pools, {"lat": 0, "bw": 1, "pow": 2},
                           PageTable())


class TestFaultPlan:
    def test_clean_by_default(self):
        assert FaultPlan().is_clean
        assert FaultPlan().describe() == "clean"

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(offline_role="nope")
        with pytest.raises(ValueError):
            FaultPlan(shrink_role="pow")  # fraction missing
        with pytest.raises(ValueError):
            FaultPlan(shrink_role="pow", shrink_fraction=1.5)
        with pytest.raises(ValueError):
            FaultPlan(degrade_role="bw", degrade_factor=0.5)
        with pytest.raises(ValueError):
            FaultPlan(trigger_page=-1)

    def test_roundtrip(self):
        for plan in SCENARIOS.values():
            assert FaultPlan.from_dict(plan.canonical()) == plan

    def test_scenarios_are_not_clean(self):
        for name, plan in SCENARIOS.items():
            assert not plan.is_clean, name
            assert plan.describe() != "clean"

    def test_family_flags(self):
        assert FaultPlan(offline_role="lat").has_capacity_fault
        assert FaultPlan(degrade_role="bw",
                         degrade_factor=2.0).has_timing_fault
        assert FaultPlan(lut_drop_fraction=0.5).has_lut_fault


class TestSpecIdentity:
    def test_clean_spec_key_has_no_faults_entry(self):
        spec = RunSpec("mcf", "Homogen-DDR3", "homogen", 1000)
        assert "faults" not in spec.canonical()

    def test_clean_plan_normalizes_to_none(self):
        spec = RunSpec("mcf", "Homogen-DDR3", "homogen", 1000,
                       faults=FaultPlan())
        assert spec.faults is None
        assert spec.key() == RunSpec("mcf", "Homogen-DDR3", "homogen",
                                     1000).key()

    def test_fault_runs_never_collide_with_clean(self):
        clean = RunSpec("mcf", "Heter-config1", "moca", 1000)
        keys = {clean.key()}
        for plan in SCENARIOS.values():
            keys.add(dataclasses.replace(clean, faults=plan).key())
        assert len(keys) == 1 + len(SCENARIOS)

    def test_seed_distinguishes_plans(self):
        a = FaultPlan(lut_drop_fraction=0.5, seed=0)
        b = FaultPlan(lut_drop_fraction=0.5, seed=1)
        sa = RunSpec("mcf", "Heter-config1", "moca", 1000, faults=a)
        sb = RunSpec("mcf", "Heter-config1", "moca", 1000, faults=b)
        assert sa.key() != sb.key()

    def test_describe_carries_fault_label(self):
        spec = RunSpec("mcf", "Heter-config1", "moca", 1000,
                       faults=FaultPlan(offline_role="lat"))
        assert "offline-lat" in spec.describe()


class TestCapacityFaults:
    def test_offline_pool_accepts_nothing(self):
        pool = FramePool(8 * 4096, 0, "p")
        pool.offline()
        assert pool.frames_left == 0
        assert pool.allocate() is None

    def test_shrink_never_revokes_granted_frames(self):
        pool = FramePool(8 * 4096, 0, "p")
        for _ in range(5):
            assert pool.allocate() is not None
        pool.shrink(0.9)  # would leave 0 frames, but 5 are granted
        assert pool.n_frames == 5
        assert pool.frames_left == 0

    def test_immediate_offline_spills_down_chain(self):
        alloc = small_allocator()
        arm_allocator(alloc, FaultPlan(offline_role="lat"))
        group, _ = alloc.allocate_page(0, ObjectType.LAT)
        assert group != 0  # LAT pool is gone; page went down the chain
        assert alloc.stats.spills[ObjectType.LAT] == 1

    def test_triggered_fault_fires_mid_run(self):
        alloc = small_allocator()
        arm_allocator(alloc, FaultPlan(offline_role="lat", trigger_page=2))
        g0, _ = alloc.allocate_page(0, ObjectType.LAT)
        g1, _ = alloc.allocate_page(1, ObjectType.LAT)
        assert g0 == 0 and g1 == 0  # before the trigger: normal service
        g2, _ = alloc.allocate_page(2, ObjectType.LAT)
        assert g2 != 0  # the trigger tripped; pool offline

    def test_out_of_frames_error_payload(self):
        alloc = small_allocator(frames_per_pool=2)
        with pytest.raises(OutOfFramesError) as excinfo:
            for v in range(100):
                alloc.allocate_page(v, ObjectType.BW)
        err = excinfo.value
        assert err.object_type is ObjectType.BW
        assert set(err.occupancy) == {0, 1, 2}
        assert all(used == total for used, total in err.occupancy.values())
        assert isinstance(err, OutOfMemory)  # legacy contract preserved

    def test_overcommit_never_raises(self):
        alloc = small_allocator(frames_per_pool=2)
        for v in range(20):
            try:
                alloc.allocate_page(v, ObjectType.POW)
            except OutOfFramesError:
                alloc.allocate_overcommit(v, ObjectType.POW)
        assert alloc.stats.total_pages == 20
        assert alloc.stats.total_exhausted == 20 - 6
        assert alloc.stats.to_dict()["exhausted"] == 14

    def test_overcommit_skips_offline_pools(self):
        alloc = small_allocator(frames_per_pool=1)
        chain = alloc.chain_for(ObjectType.LAT)
        alloc.pools[chain[-1]].offline()
        for v in range(5):
            try:
                alloc.allocate_page(v, ObjectType.LAT)
            except OutOfFramesError:
                g, _ = alloc.allocate_overcommit(v, ObjectType.LAT)
                assert not alloc.pools[g].is_offline


class TestTimingFaults:
    def test_scaled_timing(self):
        slow = DDR3.scaled(2.0)
        assert slow.tCK_ns == pytest.approx(DDR3.tCK_ns * 2)
        assert slow.tRC_ns == pytest.approx(DDR3.tRC_ns * 2)
        assert slow.tREFI_ns == DDR3.tREFI_ns  # refresh does not relax
        assert slow.n_banks == DDR3.n_banks
        assert slow.tRAS_ns <= slow.tRC_ns

    def test_scaled_rejects_speedup(self):
        with pytest.raises(ValueError):
            DDR3.scaled(0.9)

    def test_apply_system_faults_derates_group(self):
        memsys = HETER_CONFIG1.build()
        before = memsys.group("bw").timing.tCK_ns
        apply_system_faults(memsys, FaultPlan(degrade_role="bw",
                                              degrade_factor=4.0))
        group = memsys.group("bw")
        assert group.timing.tCK_ns == pytest.approx(before * 4)
        assert all(m.timing.tCK_ns == pytest.approx(before * 4)
                   for m in group.modules)
        # the other groups are untouched
        assert memsys.group("lat").timing.tCK_ns < before * 4

    def test_missing_role_is_noop(self):
        memsys = HOMOGEN_DDR3.build()
        before = memsys.group("main").timing.tCK_ns
        apply_system_faults(memsys, FaultPlan(degrade_role="bw",
                                              degrade_factor=4.0))
        assert memsys.group("main").timing.tCK_ns == before

    def test_derate_rejects_geometry_change(self):
        from repro.memdev.presets import HBM
        memsys = HOMOGEN_DDR3.build()
        with pytest.raises(ValueError):
            memsys.group("main").modules[0].derate(HBM)


class TestLutFaults:
    @pytest.fixture(scope="class")
    def profiled(self):
        return profile_app("mcf", n_accesses=8_000)

    def test_drop_is_deterministic_and_nonempty(self, profiled):
        plan = FaultPlan(lut_drop_fraction=0.5)
        a = apply_lut_faults(profiled, plan)
        b = apply_lut_faults(profiled, plan)
        assert sorted(map(str, a.lut.names())) == \
            sorted(map(str, b.lut.names()))
        assert 0 < len(a.lut) < len(profiled.lut)

    def test_drop_leaves_original_untouched(self, profiled):
        n = len(profiled.lut)
        apply_lut_faults(profiled, FaultPlan(lut_drop_fraction=0.9))
        assert len(profiled.lut) == n

    def test_seed_changes_selection(self, profiled):
        a = apply_lut_faults(profiled, FaultPlan(lut_drop_fraction=0.5,
                                                 seed=0))
        b = apply_lut_faults(profiled, FaultPlan(lut_drop_fraction=0.5,
                                                 seed=7))
        assert (sorted(map(str, a.lut.names()))
                != sorted(map(str, b.lut.names())))

    def test_scramble_keeps_names_swaps_stats(self, profiled):
        plan = FaultPlan(lut_scramble_fraction=1.0)
        scrambled = apply_lut_faults(profiled, plan)
        assert sorted(map(str, scrambled.lut.names())) == \
            sorted(map(str, profiled.lut.names()))
        moved = sum(
            1 for name in profiled.lut.names()
            if scrambled.lut.get(name).llc_misses
            != profiled.lut.get(name).llc_misses)
        assert moved >= 2  # a cyclic shift moved at least one pair

    def test_scramble_is_not_applied_in_place(self, profiled):
        snapshot = {str(n): profiled.lut.get(n).llc_misses
                    for n in profiled.lut.names()}
        apply_lut_faults(profiled, FaultPlan(lut_scramble_fraction=1.0))
        assert snapshot == {str(n): profiled.lut.get(n).llc_misses
                            for n in profiled.lut.names()}

    def test_clean_plan_returns_same_object(self, profiled):
        plan = FaultPlan(offline_role="lat")  # no LUT component
        assert apply_lut_faults(profiled, plan) is profiled


class TestEndToEnd:
    N = 8_000

    def test_offline_lat_degrades_but_completes(self):
        clean = run(RunSpec("mcf", "Heter-config1", "moca", self.N))
        faulted = run(RunSpec("mcf", "Heter-config1", "moca", self.N,
                              faults=FaultPlan(offline_role="lat")))
        assert faulted.exec_cycles > 0
        c = clean.meta["placement"]
        f = faulted.meta["placement"]
        assert f["spill_rate"] >= c["spill_rate"]
        assert f["pages"] == c["pages"]  # every page still got a frame
        assert faulted.meta["faults"]["label"] == "offline-lat"

    def test_faulted_run_is_reproducible(self):
        spec = RunSpec("mcf", "Heter-config1", "moca", self.N,
                       faults=FaultPlan(lut_scramble_fraction=0.5))
        a, b = run(spec).to_dict(), run(spec).to_dict()
        a["meta"].pop("created_utc")
        b["meta"].pop("created_utc")
        assert a == b

    def test_clean_run_records_no_fault_meta(self):
        m = run(RunSpec("mcf", "Homogen-DDR3", "homogen", self.N))
        assert "faults" not in m.meta
        assert m.meta["placement"]["pages"] > 0

    def test_extreme_shrink_overcommits_instead_of_crashing(self):
        # Shrink every pool's role target hard; with only the pow pool
        # shrunk the other groups absorb the pages, so push further by
        # offlining bw too via a combined plan.
        plan = FaultPlan(shrink_role="pow", shrink_fraction=1.0,
                         offline_role="bw")
        m = run(RunSpec("mcf", "Heter-config1", "heter-app", self.N,
                        faults=plan))
        placement = m.meta["placement"]
        assert placement["pages"] > 0
        assert m.exec_cycles > 0
