"""Tests for the memory power/energy model (paper Sec. V-A)."""

import pytest

from repro.memdev.module import MemoryModule
from repro.memdev.power import PowerModel
from repro.memdev.presets import DDR3, LPDDR2, RLDRAM3
from repro.util.units import GIB, MIB


@pytest.fixture
def pm() -> PowerModel:
    return PowerModel()


class TestStandby:
    def test_idle_module_draws_standby_only(self, pm):
        m = MemoryModule(DDR3, GIB)
        b = pm.module_power(m, 1_000_000)
        assert b.active_w == 0.0
        assert b.standby_w == pytest.approx(0.256)

    def test_standby_scales_with_capacity(self, pm):
        half = pm.module_power(MemoryModule(DDR3, GIB // 2), 1000)
        full = pm.module_power(MemoryModule(DDR3, GIB), 1000)
        assert full.standby_w == pytest.approx(2 * half.standby_w)

    def test_lpddr_standby_far_below_ddr3(self, pm):
        lp = pm.module_power(MemoryModule(LPDDR2, GIB), 1000)
        d3 = pm.module_power(MemoryModule(DDR3, GIB), 1000)
        assert lp.standby_w * 30 < d3.standby_w

    def test_rldram_standby_4_5x_ddr3(self, pm):
        rl = pm.module_power(MemoryModule(RLDRAM3, GIB), 1000)
        d3 = pm.module_power(MemoryModule(DDR3, GIB), 1000)
        assert 4.0 <= rl.standby_w / d3.standby_w <= 5.0


class TestActive:
    def test_traffic_raises_power(self, pm):
        m = MemoryModule(DDR3, 64 * MIB)
        t = 0
        for i in range(500):
            t = m.access(i * 4096, t).done
        busy = pm.module_power(m, t)
        assert busy.active_w > 0
        assert busy.total_w > busy.standby_w

    def test_active_capped_at_rating(self, pm):
        m = MemoryModule(DDR3, GIB)
        # Force utilization to saturate.
        m.bank_busy_cycles = 10**12
        b = pm.module_power(m, 1000)
        assert b.active_w <= DDR3.active_w_per_gb * 1.0 + 1e-9

    def test_energy_is_power_times_time(self, pm):
        m = MemoryModule(DDR3, GIB)
        b = pm.module_power(m, 2_000_000_000)  # 2 s at 1 GHz
        assert b.elapsed_s == pytest.approx(2.0)
        assert b.energy_j == pytest.approx(b.total_w * 2.0)


class TestSystemAggregation:
    def test_system_power_sums_modules(self, pm):
        mods = [MemoryModule(DDR3, GIB), MemoryModule(LPDDR2, GIB)]
        total = pm.system_power(mods, 1000)
        parts = sum(pm.module_power(m, 1000).total_w for m in mods)
        assert total == pytest.approx(parts)

    def test_system_energy_sums_modules(self, pm):
        mods = [MemoryModule(DDR3, GIB), MemoryModule(RLDRAM3, GIB)]
        total = pm.system_energy(mods, 5000)
        parts = sum(pm.module_power(m, 5000).energy_j for m in mods)
        assert total == pytest.approx(parts)

    def test_zero_elapsed_zero_energy(self, pm):
        b = pm.module_power(MemoryModule(DDR3, GIB), 0)
        assert b.energy_j == 0.0
