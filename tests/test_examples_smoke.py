"""Smoke tests: every example script must import and expose a main()."""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    names = {n.name for n in ast.walk(tree)
             if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
    assert "main" in names, f"{path.name} needs a main() entry point"
    # Guarded entry point so importing never runs the experiment.
    guards = [n for n in tree.body if isinstance(n, ast.If)]
    assert any("__name__" in ast.dump(g.test) for g in guards), path.name


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_docstring_mentions_run_line(path):
    doc = ast.get_docstring(ast.parse(path.read_text()))
    assert doc and "Run:" in doc, f"{path.name} should document how to run it"


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "datacenter_colocation",
            "memory_config_explorer", "custom_application"} <= names
