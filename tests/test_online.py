"""End-to-end tests for the online guidance runner (``repro.sim.online``)."""

import math

import pytest

from repro.faults.plan import FaultPlan
from repro.service import OnlineSpec
from repro.sim.online import run_online
from repro.sim.spec import RunSpec, run

N = 20_000
CFG = "Heter-config1"


class TestSpecWiring:
    def test_offline_key_carries_no_online_or_migration_block(self):
        """Pre-existing cache keys must stay byte-identical: the online
        and migration blocks enter canonical() only when set."""
        doc = RunSpec("milc", CFG, "moca", N).canonical()
        assert "online" not in doc and "migration" not in doc

    def test_online_block_changes_the_key(self):
        plain = RunSpec("milc", CFG, "moca", N)
        online = RunSpec("milc", CFG, "moca", N, online=OnlineSpec())
        assert plain.key() != online.key()
        assert online.canonical()["online"] == OnlineSpec().canonical()

    def test_online_needs_classifying_policy(self):
        with pytest.raises(ValueError, match="classification"):
            RunSpec("milc", CFG, "homogen", N, online=OnlineSpec())

    def test_online_and_migration_are_exclusive(self):
        from repro.vm.migration import MigrationConfig
        with pytest.raises(ValueError, match="both"):
            RunSpec("milc", CFG, "moca", N, online=OnlineSpec(),
                    migration=MigrationConfig())

    def test_run_online_requires_online_spec(self):
        with pytest.raises(ValueError, match="online"):
            run_online(RunSpec("milc", CFG, "moca", N))

    def test_online_spec_roundtrip(self):
        ospec = OnlineSpec(epoch_misses=500, sensitivity=0.75, fault_epoch=2)
        assert OnlineSpec.from_dict(ospec.to_dict()) == ospec

    def test_describe_mentions_online(self):
        spec = RunSpec("milc", CFG, "moca", N, online=OnlineSpec())
        assert "online[" in spec.describe()


class TestRunOnline:
    def test_smoke_and_meta_blocks(self):
        m = run(RunSpec("milc", CFG, "moca", N, online=OnlineSpec()))
        assert m.policy.startswith("online-")
        assert m.exec_cycles > 0 and math.isfinite(m.mem_access_cycles)
        svc = m.meta["service"]
        assert svc["epochs"] == svc["epochs_accepted"] >= 2
        assert m.meta["online"] == OnlineSpec().canonical()
        assert m.meta["migration"]["bytes_copied"] >= 0
        assert "placement" in m.meta

    def test_undrifted_input_converges_to_offline(self):
        """The acceptance bar's quiet half: on the training-adjacent ref
        input the hysteresis holds the offline placement — zero moves."""
        m = run(RunSpec("milc", CFG, "moca", 30_000, online=OnlineSpec()))
        svc = m.meta["service"]
        assert svc["moves"] == 0 and svc["pages_moved"] == 0

    def test_online_beats_offline_on_drifted_input(self):
        """The acceptance bar's drift half, pinned at test fidelity."""
        offline = run(RunSpec("milc", CFG, "moca", 30_000,
                              input_name="drift2"))
        online = run(RunSpec("milc", CFG, "moca", 30_000,
                             input_name="drift2", online=OnlineSpec()))
        assert online.meta["service"]["moves"] > 0
        assert online.mem_access_cycles < offline.mem_access_cycles

    def test_survives_total_telemetry_loss(self):
        """Every epoch's sample dropped: the service must reject them
        all and hold the boot placement rather than abort or drift."""
        plan = FaultPlan(lut_drop_fraction=1.0)
        m = run(RunSpec("milc", CFG, "moca", N, faults=plan,
                        online=OnlineSpec()))
        svc = m.meta["service"]
        assert svc["epochs_accepted"] == 0
        assert svc["rejected_by_reason"].get("missing") == svc["epochs"]
        assert svc["moves"] == 0
        assert math.isfinite(m.mem_access_cycles)

    def test_scrambled_telemetry_is_rejected_not_acted_on(self):
        plan = FaultPlan(lut_scramble_fraction=1.0)
        m = run(RunSpec("milc", CFG, "moca", N, faults=plan,
                        online=OnlineSpec()))
        svc = m.meta["service"]
        assert svc["rejected_by_reason"].get("corrupt") == svc["epochs"]
        assert svc["moves"] == 0

    def test_midrun_capacity_fault_triggers_forced_replacement(self):
        plan = FaultPlan(offline_role="bw", trigger_page=0)
        m = run(RunSpec("milc", CFG, "moca", 30_000, faults=plan,
                        online=OnlineSpec(fault_epoch=3)))
        svc = m.meta["service"]
        assert svc["forced_moves"] > 0
        assert math.isfinite(m.mem_access_cycles)
