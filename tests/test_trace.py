"""Tests for trace patterns, layout, and the trace builder."""

import numpy as np
import pytest

from repro.cpu.hierarchy import SEG_CODE, SEG_GLOBAL, SEG_STACK
from repro.trace.builder import ObjectBehavior, TraceBuilder
from repro.trace.events import (
    HEAP_BASE,
    PAGE_BYTES,
    PlacedObject,
    VirtualLayout,
)
from repro.trace.patterns import (
    chase_offsets,
    hotspot_offsets,
    random_offsets,
    sequential_offsets,
    strided_offsets,
)
from repro.util.rng import stream
from repro.util.units import KIB, MIB


class TestPatterns:
    def test_sequential_dense_and_wrapping(self):
        offs, nxt = sequential_offsets(0, 10, 64)
        assert offs.tolist() == [0, 8, 16, 24, 32, 40, 48, 56, 0, 8]
        assert nxt == 16

    def test_sequential_continues_across_bursts(self):
        offs1, cur = sequential_offsets(0, 4, 1024)
        offs2, _ = sequential_offsets(cur, 4, 1024)
        assert offs2[0] == offs1[-1] + 8

    def test_strided(self):
        offs, _ = strided_offsets(0, 4, 4096, stride=256)
        assert offs.tolist() == [0, 256, 512, 768]

    def test_strided_wraps(self):
        offs, nxt = strided_offsets(0, 5, 1024, stride=256)
        assert offs[4] == 0
        assert nxt == 256

    def test_strided_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            strided_offsets(0, 4, 4096, stride=0)

    def test_random_in_bounds_and_aligned(self, rng):
        offs = random_offsets(rng, 1000, 4096)
        assert (offs >= 0).all() and (offs < 4096).all()
        assert (offs % 8 == 0).all()

    def test_chase_same_distribution_as_random(self, rng):
        offs = chase_offsets(rng, 500, 1 * MIB)
        assert (offs < 1 * MIB).all()

    def test_hotspot_concentrates(self, rng):
        offs = hotspot_offsets(rng, 5000, 1 * MIB, hot_fraction=0.1,
                               hot_weight=0.9)
        hot = (offs < 0.1 * MIB).mean()
        assert hot > 0.85

    def test_hotspot_param_validation(self, rng):
        with pytest.raises(ValueError):
            hotspot_offsets(rng, 10, 4096, hot_fraction=0.0)
        with pytest.raises(ValueError):
            hotspot_offsets(rng, 10, 4096, hot_weight=1.5)

    def test_pattern_determinism(self):
        a = random_offsets(stream("t", 1), 100, 4096)
        b = random_offsets(stream("t", 1), 100, 4096)
        assert (a == b).all()


class TestVirtualLayout:
    def test_objects_page_aligned_and_disjoint(self):
        lay = VirtualLayout()
        a = lay.place("a", 10_000)
        b = lay.place("b", 5_000)
        assert a.vbase % PAGE_BYTES == 0
        assert b.vbase % PAGE_BYTES == 0
        assert a.vend <= b.vbase  # guard page between

    def test_first_object_at_heap_base(self):
        lay = VirtualLayout()
        assert lay.place("a", 100).vbase == HEAP_BASE

    def test_ids_sequential(self):
        lay = VirtualLayout()
        assert lay.place("a", 100).obj_id == 0
        assert lay.place("b", 100).obj_id == 1

    def test_segments_present(self):
        lay = VirtualLayout()
        assert lay.segments[SEG_STACK].name == "[stack]"
        assert lay.segments[SEG_CODE].obj_id == SEG_CODE

    def test_resolve_vectorized(self):
        lay = VirtualLayout()
        a = lay.place("a", 8192)
        b = lay.place("b", 8192)
        addrs = np.asarray([a.vbase, a.vbase + 8191, b.vbase,
                            lay.segments[SEG_STACK].vbase])
        ids = lay.resolve(addrs)
        assert ids.tolist() == [0, 0, 1, SEG_STACK]

    def test_resolve_outside_everything_is_global(self):
        lay = VirtualLayout()
        lay.place("a", 4096)
        ids = lay.resolve(np.asarray([0x100]))
        assert ids[0] == SEG_GLOBAL

    def test_pages_range(self):
        obj = PlacedObject(0, "x", 0x6000_0000, 2 * PAGE_BYTES)
        assert len(obj.pages()) == 2

    def test_footprint(self):
        lay = VirtualLayout()
        lay.place("a", PAGE_BYTES)
        lay.place("b", PAGE_BYTES + 1)  # rounds to 2 pages
        assert lay.heap_footprint_bytes() == 3 * PAGE_BYTES

    def test_rejects_empty_object(self):
        with pytest.raises(ValueError):
            VirtualLayout().place("bad", 0)

    def test_by_id(self):
        lay = VirtualLayout()
        a = lay.place("a", 100)
        assert lay.by_id(0) is a
        assert lay.by_id(SEG_STACK) is lay.segments[SEG_STACK]


class TestObjectBehavior:
    def test_validates_pattern(self):
        with pytest.raises(ValueError):
            ObjectBehavior("x", 4096, 1.0, pattern="zigzag")

    def test_validates_weight_size_burst_gap(self):
        with pytest.raises(ValueError):
            ObjectBehavior("x", 4096, -1.0)
        with pytest.raises(ValueError):
            ObjectBehavior("x", 0, 1.0)
        with pytest.raises(ValueError):
            ObjectBehavior("x", 4096, 1.0, burst_mean=0.5)
        with pytest.raises(ValueError):
            ObjectBehavior("x", 4096, 1.0, gap_mean=0.5)

    def test_chase_forces_dep(self):
        b = ObjectBehavior("x", 4096, 1.0, pattern="chase", dep_prob=0.0)
        assert b.effective_dep_prob == 1.0


class TestTraceBuilder:
    def test_trace_length_exact(self, tiny_behaviors, rng):
        t = TraceBuilder(tiny_behaviors).build(5000, rng)
        assert len(t) == 5000

    def test_determinism(self, tiny_behaviors):
        t1 = TraceBuilder(tiny_behaviors).build(3000, stream("tb", 1))
        t2 = TraceBuilder(tiny_behaviors).build(3000, stream("tb", 1))
        assert (t1.vaddr == t2.vaddr).all()
        assert (t1.inst == t2.inst).all()

    def test_access_share_tracks_weight(self, tiny_behaviors, rng):
        t = TraceBuilder(tiny_behaviors).build(50_000, rng)
        share = (t.obj_id == 0).mean()  # chasey: weight 0.3 of 1.0
        assert 0.2 < share < 0.4

    def test_addresses_inside_objects(self, tiny_behaviors, rng):
        t = TraceBuilder(tiny_behaviors).build(10_000, rng)
        ids = t.layout.resolve(t.vaddr)
        assert (ids == t.obj_id).all()

    def test_chase_accesses_flagged_dep(self, tiny_behaviors, rng):
        t = TraceBuilder(tiny_behaviors).build(10_000, rng)
        chase_mask = t.obj_id == 0
        assert t.dep[chase_mask].all()
        assert not t.dep[~chase_mask].any()

    def test_per_behavior_gap_mean(self, rng):
        b = [
            ObjectBehavior("dense", 1 * MIB, 0.5, pattern="seq", gap_mean=2,
                           burst_mean=16, site=1),
            ObjectBehavior("sparse", 1 * MIB, 0.5, pattern="seq", gap_mean=40,
                           burst_mean=16, site=2),
        ]
        t = TraceBuilder(b).build(30_000, rng)
        gaps = np.diff(t.inst, prepend=0)
        dense = gaps[t.obj_id == 0].mean()
        sparse = gaps[t.obj_id == 1].mean()
        assert sparse > 5 * dense

    def test_write_fraction(self, rng):
        b = [ObjectBehavior("w", 1 * MIB, 1.0, pattern="rand",
                            write_frac=0.5, site=1)]
        t = TraceBuilder(b).build(20_000, rng)
        assert 0.4 < t.is_write.mean() < 0.6

    def test_segment_behavior_maps_to_segment(self, rng):
        b = [ObjectBehavior("stk", 16 * KIB, 1.0, pattern="hotspot",
                            segment=SEG_STACK)]
        t = TraceBuilder(b).build(1000, rng)
        assert (t.obj_id == SEG_STACK).all()

    def test_segment_behavior_too_big_rejected(self, rng):
        b = [ObjectBehavior("stk", 100 * MIB, 1.0, segment=SEG_STACK)]
        with pytest.raises(ValueError, match="larger than its segment"):
            TraceBuilder(b).build(100, rng)

    def test_total_instructions_covers_trace(self, tiny_trace):
        assert tiny_trace.total_instructions >= int(tiny_trace.inst[-1])

    def test_needs_positive_weights(self):
        with pytest.raises(ValueError):
            TraceBuilder([ObjectBehavior("x", 4096, 0.0)])

    def test_needs_behaviors(self):
        with pytest.raises(ValueError):
            TraceBuilder([])

    def test_rejects_nonpositive_n(self, tiny_behaviors, rng):
        with pytest.raises(ValueError):
            TraceBuilder(tiny_behaviors).build(0, rng)

    def test_touched_pages_subset_of_extent(self, tiny_trace):
        obj = tiny_trace.layout.objects[0]
        touched = tiny_trace.touched_pages(0)
        pages = set(obj.pages())
        assert set(touched.tolist()) <= pages
