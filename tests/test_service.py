"""Tests for the online guidance service (``repro.service``).

The hypothesis tests pin the service's three safety invariants from the
module contract: the per-epoch migration budget is never exceeded, two
opposing moves of one object never land within the cooldown window, and
a rejected (missing/short/corrupt) epoch leaves the page table — and
every estimator — byte-identical.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memctrl.system import ChannelGroup, MemorySystem
from repro.memdev.presets import LPDDR2, RLDRAM3
from repro.moca.lut import ObjectProfile, ProfileLUT
from repro.moca.naming import name_from_site
from repro.service import GuidanceService, OnlineSpec, degrade_sample
from repro.service.budget import DeferredMoveQueue, EpochBudget, MoveRequest
from repro.service.detector import PhaseChangeDetector
from repro.service.hysteresis import HysteresisGate
from repro.service.samples import EpochSample, ObjectSample, SampleGuard
from repro.faults.plan import FaultPlan
from repro.trace.events import PAGE_BYTES, VirtualLayout
from repro.util.units import MIB
from repro.vm.allocator import OSPageAllocator
from repro.vm.heap import ObjectType
from repro.vm.pagetable import PageTable
from repro.vm.physmem import FramePool


class ScriptedClassifier:
    """Classifier whose output the test scripts directly."""

    def __init__(self):
        self.assignment = {}

    def classify(self, luts, budget):
        return [dict(self.assignment)]


def make_world(spec, n_objs=3, pages_per_obj=4):
    """A tenant over a two-group system with every object born in POW."""
    memsys = MemorySystem({
        "lat": ChannelGroup(RLDRAM3, 1, 1 * MIB, name="RL"),
        "pow": ChannelGroup(LPDDR2, 1, 64 * MIB, name="LP"),
    })
    pools = {0: FramePool(1 * MIB, 0), 1: FramePool(64 * MIB, 1)}
    alloc = OSPageAllocator(pools, {"lat": 0, "pow": 1}, PageTable())
    layout = VirtualLayout()
    lut = ProfileLUT()
    types = {}
    for i in range(n_objs):
        obj = layout.place(f"obj{i}", pages_per_obj * PAGE_BYTES, site=i + 1)
        for vp in obj.pages():
            alloc.allocate_page(vp, ObjectType.POW)
        # Baseline profile: mpki 5, stall/miss 40, write frac 0.1.
        lut.register(ObjectProfile(
            name=name_from_site(obj.site), label=f"obj{i}",
            size_bytes=obj.size_bytes, accesses=1000, writes=100,
            llc_misses=5000, load_misses=1000, stall_cycles=40_000,
            kilo_instructions=1000.0))
        types[obj.obj_id] = ObjectType.POW
    classifier = ScriptedClassifier()
    service = GuidanceService(spec)
    tenant = service.register(
        "app", allocator=alloc, memsys=memsys, layout=layout, lut=lut,
        classifier=classifier, types=types,
        heat={i: float(n_objs - i) for i in range(n_objs)})
    return service, tenant, classifier


def healthy_sample(epoch, tenant, mpki=5, records=1000):
    """A valid sample reproducing each object's baseline behaviour."""
    objects = {
        obj_id: ObjectSample(obj_id, misses=mpki, load_misses=max(1, mpki),
                             stall_cycles=mpki * 40,
                             writes=max(0, mpki // 10))
        for obj_id in tenant.placements()
    }
    return EpochSample(epoch=epoch, instructions=1000, n_records=records,
                       objects=objects)


def assignment_for(tenant, target):
    return {name: target for name in tenant._objs_of_name}


# ---- hypothesis invariants ---------------------------------------------------


class TestServiceInvariants:
    @given(max_pages=st.integers(1, 16),
           max_cycles=st.integers(2_000, 200_000),
           flips=st.lists(st.booleans(), min_size=4, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_epoch_budget_never_exceeded(self, max_pages, max_cycles, flips):
        spec = OnlineSpec(hysteresis_epochs=1, cooldown_epochs=0,
                          warmup_epochs=0, min_epoch_records=1,
                          max_pages_per_epoch=max_pages,
                          max_cycles_per_epoch=max_cycles)
        service, tenant, cls = make_world(spec, n_objs=4, pages_per_obj=8)
        for epoch, flip in enumerate(flips):
            target = ObjectType.LAT if flip else ObjectType.POW
            cls.assignment = assignment_for(tenant, target)
            d = service.end_epoch(tenant, healthy_sample(epoch, tenant))
            assert d.pages_moved <= max_pages
            assert d.overhead_cycles <= max_cycles

    @given(schedule=st.lists(st.booleans(), min_size=6, max_size=24),
           cooldown=st.integers(0, 4), k=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_no_opposing_moves_within_cooldown(self, schedule, cooldown, k):
        spec = OnlineSpec(hysteresis_epochs=k, cooldown_epochs=cooldown,
                          warmup_epochs=0, min_epoch_records=1)
        service, tenant, cls = make_world(spec, n_objs=2)
        move_log = {}
        for epoch, flip in enumerate(schedule):
            target = ObjectType.LAT if flip else ObjectType.POW
            cls.assignment = assignment_for(tenant, target)
            d = service.end_epoch(tenant, healthy_sample(epoch, tenant))
            for obj_id, typ in d.moves:
                move_log.setdefault(obj_id, []).append((epoch, typ))
        for log in move_log.values():
            for (e1, t1), (e2, t2) in zip(log, log[1:]):
                assert t1 != t2, "consecutive moves must oppose"
                assert e2 - e1 > cooldown

    @given(kind=st.sampled_from(["missing", "short", "neg_instructions",
                                 "neg_counter", "nan_counter"]))
    @settings(max_examples=20, deadline=None)
    def test_rejected_epoch_leaves_page_table_identical(self, kind):
        spec = OnlineSpec(hysteresis_epochs=3, cooldown_epochs=2,
                          warmup_epochs=0, min_epoch_records=10)
        service, tenant, cls = make_world(spec)
        # Build up live state first: one accepted epoch with a pending
        # (hysteresis-building) proposal, so a buggy reject path would
        # have streaks and EWMAs to corrupt.
        cls.assignment = assignment_for(tenant, ObjectType.LAT)
        service.end_epoch(tenant, healthy_sample(0, tenant))

        bad = healthy_sample(1, tenant)
        if kind == "missing":
            bad = None
        elif kind == "short":
            bad.n_records = 3
        elif kind == "neg_instructions":
            bad.instructions = -7
        elif kind == "neg_counter":
            next(iter(bad.objects.values())).misses = -1
        else:
            next(iter(bad.objects.values())).stall_cycles = math.nan

        pt = tenant.allocator.page_table
        pt_before = dict(pt._map)
        ewma_before = {o: (s.ewma_mpki, s.ewma_spm, s.ewma_wf, s.epochs_seen)
                       for o, s in tenant.detector.objects.items()}
        streaks_before = dict(tenant.gate._streaks)
        queue_before = len(tenant.queue)

        d = service.end_epoch(tenant, bad)
        assert not d.accepted
        assert d.reject_reason in ("missing", "short", "corrupt")
        assert d.pages_moved == 0 and d.overhead_cycles == 0
        assert not d.moves
        assert dict(pt._map) == pt_before
        assert {o: (s.ewma_mpki, s.ewma_spm, s.ewma_wf, s.epochs_seen)
                for o, s in tenant.detector.objects.items()} == ewma_before
        assert dict(tenant.gate._streaks) == streaks_before
        assert len(tenant.queue) == queue_before
        assert tenant.stats.epochs_rejected == 1


# ---- service behaviour -------------------------------------------------------


class TestGuidanceService:
    def test_quiet_run_never_moves(self):
        """Samples matching the profile leave the placement untouched."""
        service, tenant, cls = make_world(OnlineSpec(warmup_epochs=0,
                                                     min_epoch_records=1))
        cls.assignment = assignment_for(tenant, ObjectType.POW)
        pt_before = dict(tenant.allocator.page_table._map)
        for epoch in range(6):
            d = service.end_epoch(tenant, healthy_sample(epoch, tenant))
            assert d.accepted and not d.moves
        assert tenant.stats.moves == 0
        assert dict(tenant.allocator.page_table._map) == pt_before

    def test_sustained_flip_moves_after_k_epochs(self):
        spec = OnlineSpec(hysteresis_epochs=2, warmup_epochs=0,
                          min_epoch_records=1)
        service, tenant, cls = make_world(spec)
        cls.assignment = assignment_for(tenant, ObjectType.LAT)
        d0 = service.end_epoch(tenant, healthy_sample(0, tenant))
        assert not d0.moves and d0.suppressed > 0  # building streak
        d1 = service.end_epoch(tenant, healthy_sample(1, tenant))
        assert d1.moves and d1.pages_moved > 0
        pt = tenant.allocator.page_table
        for obj_id, _ in d1.moves:
            for key in tenant.object_pages(obj_id):
                assert pt.lookup(key)[0] == 0  # now in the RL group
        assert tenant.stats.hysteresis_suppressed >= 3

    def test_warmup_epochs_freeze_placement(self):
        spec = OnlineSpec(hysteresis_epochs=1, warmup_epochs=3,
                          min_epoch_records=1)
        service, tenant, cls = make_world(spec)
        cls.assignment = assignment_for(tenant, ObjectType.LAT)
        for epoch in range(3):
            d = service.end_epoch(tenant, healthy_sample(epoch, tenant))
            assert not d.moves
        assert service.end_epoch(tenant, healthy_sample(3, tenant)).moves

    def test_deferred_moves_carry_over(self):
        """Moves that miss the budget drain in later epochs, not never."""
        spec = OnlineSpec(hysteresis_epochs=1, cooldown_epochs=0,
                          warmup_epochs=0, min_epoch_records=1,
                          max_pages_per_epoch=3)
        service, tenant, cls = make_world(spec, n_objs=3, pages_per_obj=4)
        cls.assignment = assignment_for(tenant, ObjectType.LAT)
        total = 0
        for epoch in range(8):
            d = service.end_epoch(tenant, healthy_sample(epoch, tenant))
            total += d.pages_moved
        assert total == 3 * 4  # every page eventually moved
        assert tenant.stats.deferred_moves > 0
        pt = tenant.allocator.page_table
        for obj_id in tenant.placements():
            assert all(pt.lookup(k)[0] == 0
                       for k in tenant.object_pages(obj_id))

    def test_capacity_fault_evacuates_stranded_pages(self):
        service, tenant, cls = make_world(OnlineSpec(warmup_epochs=0,
                                                     min_epoch_records=1))
        tenant.allocator.pools[1].offline()  # POW module dies mid-run
        assert service.on_capacity_fault(tenant) == 3  # every object hit
        cls.assignment = assignment_for(tenant, ObjectType.POW)
        d = service.end_epoch(tenant, healthy_sample(0, tenant))
        assert d.pages_moved == 3 * 4
        assert tenant.stats.forced_moves == 3
        pt = tenant.allocator.page_table
        for obj_id in tenant.placements():
            assert all(pt.lookup(k)[0] == 0
                       for k in tenant.object_pages(obj_id))

    def test_duplicate_tenant_rejected(self):
        service, tenant, _ = make_world(OnlineSpec())
        with pytest.raises(ValueError):
            service.register("app", allocator=tenant.allocator,
                             memsys=tenant.memsys, layout=tenant.layout,
                             lut=tenant.base_lut,
                             classifier=tenant.classifier,
                             types=tenant.placements())

    def test_stats_to_dict_mirrors_counters(self):
        service, tenant, cls = make_world(OnlineSpec(warmup_epochs=0,
                                                     min_epoch_records=1))
        cls.assignment = assignment_for(tenant, ObjectType.POW)
        service.end_epoch(tenant, healthy_sample(0, tenant))
        service.end_epoch(tenant, None)
        d = tenant.stats.to_dict()
        assert d["epochs"] == 2 and d["epochs_accepted"] == 1
        assert d["rejected_by_reason"] == {"missing": 1}


# ---- components --------------------------------------------------------------


class TestPhaseChangeDetector:
    def _primed(self, **kw):
        det = PhaseChangeDetector(alpha=0.5, sensitivity=1.5, **kw)
        det.prime(0, mpki=50.0, spm=40.0, wf=0.1)
        return det

    def _sample(self, epoch, misses, inst=1000):
        return EpochSample(epoch=epoch, instructions=inst, n_records=100,
                           objects={0: ObjectSample(0, misses=misses,
                                                    load_misses=misses or 1,
                                                    stall_cycles=0,
                                                    writes=0)})

    def test_collapse_to_cold_is_detected(self):
        """Hot-to-cold drift must trip: the ratio test's raison d'etre."""
        det = self._primed()
        for epoch in range(4):
            det.observe(self._sample(epoch, misses=0))
        assert 0 in det.changed()

    def test_rise_is_detected(self):
        det = self._primed()
        det.observe(self._sample(0, misses=500))
        assert 0 in det.changed()

    def test_near_zero_jitter_never_trips(self):
        """Features below the floors cannot trip on sampling noise."""
        det = PhaseChangeDetector(alpha=0.5, sensitivity=1.5)
        det.prime(0, mpki=0.5, spm=40.0, wf=0.0)
        det.observe(self._sample(0, misses=1))  # mpki 0.5 -> 1.0-ish
        assert 0 not in det.changed()

    def test_transient_burst_untrips_as_ewma_decays(self):
        det = self._primed()
        det.observe(self._sample(0, misses=500))
        assert 0 in det.changed()
        for epoch in range(1, 8):
            det.observe(self._sample(epoch, misses=50))
        assert 0 not in det.changed()

    def test_unknown_ids_are_ignored(self):
        det = self._primed(known={0})
        det.observe(EpochSample(
            epoch=0, instructions=1000, n_records=100,
            objects={-1: ObjectSample(-1, misses=900, load_misses=900)}))
        assert -1 not in det.objects

    def test_never_profiled_object_is_pinned_live(self):
        det = self._primed(known={0, 7})
        det.observe(EpochSample(
            epoch=0, instructions=1000, n_records=100,
            objects={7: ObjectSample(7, misses=2, load_misses=2)}))
        assert det.objects[7].pinned_live
        assert 7 in det.changed()

    def test_rebase_pins_and_reanchors(self):
        det = self._primed()
        det.observe(self._sample(0, misses=500))
        det.rebase(0)
        st0 = det.objects[0]
        assert st0.pinned_live and st0.base_mpki == st0.ewma_mpki
        assert not st0.phase_changed  # new baseline == current behaviour


class TestHysteresisGate:
    def test_releases_after_k_consecutive(self):
        gate = HysteresisGate(k=3, cooldown=2)
        for epoch in range(2):
            d = gate.check(1, ObjectType.POW, ObjectType.LAT, epoch)
            assert not d.release and d.reason == "building"
        assert gate.check(1, ObjectType.POW, ObjectType.LAT, 2).release

    def test_agreement_resets_streak(self):
        gate = HysteresisGate(k=2, cooldown=0)
        gate.check(1, ObjectType.POW, ObjectType.LAT, 0)
        assert gate.check(1, ObjectType.POW, ObjectType.POW, 1).reason \
            == "agree"
        assert not gate.check(1, ObjectType.POW, ObjectType.LAT, 2).release

    def test_cooldown_blocks_after_move(self):
        gate = HysteresisGate(k=1, cooldown=3)
        gate.record_move(1, epoch=5)
        for epoch in range(6, 9):
            d = gate.check(1, ObjectType.LAT, ObjectType.POW, epoch)
            assert not d.release and d.reason == "cooldown"
        assert gate.check(1, ObjectType.LAT, ObjectType.POW, 9).release


class TestDeferredMoveQueue:
    def test_forced_outranks_heat(self):
        q = DeferredMoveQueue()
        q.push(MoveRequest(1, ObjectType.LAT, heat=99.0))
        q.push(MoveRequest(2, ObjectType.POW, heat=0.0, forced=True))
        assert q.pop().obj_id == 2
        assert q.pop().obj_id == 1
        assert q.pop() is None

    def test_hotter_drains_first(self):
        q = DeferredMoveQueue()
        q.push(MoveRequest(1, ObjectType.LAT, heat=1.0))
        q.push(MoveRequest(2, ObjectType.LAT, heat=5.0))
        assert [q.pop().obj_id, q.pop().obj_id] == [2, 1]

    def test_reenqueue_supersedes_stale_target(self):
        q = DeferredMoveQueue()
        q.push(MoveRequest(1, ObjectType.LAT, heat=5.0))
        q.push(MoveRequest(1, ObjectType.POW, heat=5.0))
        assert len(q) == 1
        req = q.pop()
        assert req.target is ObjectType.POW
        assert q.pop() is None


class TestEpochBudget:
    def test_page_and_cycle_caps(self):
        b = EpochBudget(max_pages=2, max_cycles=100)
        assert b.can_move_page(60)
        b.charge_page(60)
        assert not b.can_move_page(60)  # cycle cap
        assert b.can_move_page(40)
        b.charge_page(40)
        assert b.exhausted


class TestSampleGuard:
    def test_reasons(self):
        guard = SampleGuard(min_records=10)
        ok = EpochSample(epoch=0, instructions=100, n_records=50,
                         objects={0: ObjectSample(0, misses=1)})
        assert guard.validate(ok) is None
        assert guard.validate(None) == "missing"
        short = EpochSample(epoch=0, instructions=100, n_records=3)
        assert guard.validate(short) == "short"
        corrupt = EpochSample(epoch=0, instructions=-1, n_records=50)
        assert guard.validate(corrupt) == "corrupt"

    def test_degrade_sample_is_deterministic(self):
        plan = FaultPlan(lut_scramble_fraction=0.5, seed=3)
        sample = EpochSample(epoch=4, instructions=100, n_records=50,
                             objects={0: ObjectSample(0, misses=9)})
        a = degrade_sample(sample, plan, "app")
        b = degrade_sample(sample, plan, "app")
        assert (a is None) == (b is None)
        if a is not None:
            assert a.instructions == b.instructions

    def test_scrambled_sample_is_rejected(self):
        plan = FaultPlan(lut_scramble_fraction=1.0)
        sample = EpochSample(epoch=0, instructions=100, n_records=50,
                             objects={0: ObjectSample(0, misses=9)})
        garbled = degrade_sample(sample, plan, "app")
        assert SampleGuard().validate(garbled) == "corrupt"

    def test_dropped_sample_goes_missing(self):
        plan = FaultPlan(lut_drop_fraction=1.0)
        sample = EpochSample(epoch=0, instructions=100, n_records=50)
        assert degrade_sample(sample, plan, "app") is None

    def test_clean_plan_passes_through(self):
        sample = EpochSample(epoch=0, instructions=100, n_records=50)
        assert degrade_sample(sample, FaultPlan(), "app") is sample
